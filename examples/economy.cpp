// The microeconomic machinery on its own terms (Section 2): one divisible
// resource, heterogeneous concave agents, and the two mechanism families
// side by side — Heal's resource-directed planning ("planning without
// prices") and Walrasian tâtonnement. The example shows both finding the
// same optimum while exhibiting the path properties the paper contrasts:
// the planner's path is always feasible and monotone; the market's path
// is infeasible until it clears.
#include <cmath>
#include <iostream>

#include "econ/price_directed.hpp"
#include "econ/resource_directed.hpp"
#include "econ/utility.hpp"
#include "util/table.hpp"

int main() {
  using namespace fap;
  std::cout << "One resource, five agents, two mechanisms (Section 2)\n"
            << "-----------------------------------------------------\n";

  // Five agents with different tastes for the resource.
  std::vector<econ::ConcaveUtility> agents;
  agents.push_back(econ::log_utility(1.0, 0.05));
  agents.push_back(econ::log_utility(3.0, 0.05));
  agents.push_back(econ::quadratic_utility(4.0, 6.0));
  agents.push_back(econ::power_utility(2.0, 0.5));
  agents.push_back(econ::log_utility(0.5, 0.05));
  const double total = 1.0;

  // Resource-directed planning.
  econ::PlannerOptions plan_options;
  plan_options.alpha = 0.01;
  plan_options.epsilon = 1e-8;
  plan_options.max_iterations = 500000;
  plan_options.record_trace = true;
  const econ::PlannerResult plan = econ::resource_directed_plan(
      agents, std::vector<double>(5, 0.2), plan_options);

  // Price-directed tâtonnement.
  econ::TatonnementOptions market_options;
  market_options.gamma = 0.3;
  market_options.initial_price = 10.0;
  market_options.demand_cap = total;
  market_options.tol = 1e-8;
  market_options.record_trace = true;
  const econ::TatonnementResult market =
      econ::tatonnement(agents, total, market_options);
  const econ::Equilibrium equilibrium =
      econ::walrasian_equilibrium(agents, total, total);

  util::Table table({"agent", "planner x_i", "market x_i",
                     "marginal utility at optimum"},
                    4);
  for (std::size_t i = 0; i < agents.size(); ++i) {
    table.add_row({static_cast<long long>(i), plan.x[i], market.x[i],
                   agents[i].derivative(plan.x[i])});
  }
  std::cout << table.to_string() << '\n';
  std::cout << "clearing price: " << equilibrium.price
            << " (= the common marginal utility: the planner's Lagrange "
               "multiplier q)\n\n";

  // Path diagnostics.
  double max_infeasibility = 0.0;
  for (const econ::TatonnementIteration& rec : market.trace) {
    max_infeasibility =
        std::max(max_infeasibility, std::fabs(rec.excess_demand));
  }
  bool monotone = true;
  for (std::size_t t = 1; t < plan.trace.size(); ++t) {
    monotone = monotone && plan.trace[t].social_utility >=
                               plan.trace[t - 1].social_utility - 1e-12;
  }
  util::Table paths({"mechanism", "iterations", "path feasible",
                     "path monotone"},
                    0);
  paths.add_row({std::string("resource-directed (Heal)"),
                 static_cast<long long>(plan.iterations),
                 std::string("always"),
                 std::string(monotone ? "yes" : "no")});
  paths.add_row({std::string("price-directed (Walras)"),
                 static_cast<long long>(market.iterations),
                 std::string("only at the fixed point (max excess " +
                             util::format_double(max_infeasibility, 3) +
                             ")"),
                 std::string("not guaranteed")});
  std::cout << paths.to_string() << '\n';
  std::cout << "The file allocation algorithm of Section 5 is exactly the\n"
               "first row applied to U = -C of Eq. 2.\n";
  return 0;
}
