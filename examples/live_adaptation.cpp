// Live adaptation: re-optimizing the allocation while the system keeps
// serving traffic.
//
// Unlike examples/measurement_driven (epoch-based: stop, estimate,
// redeploy), this example runs ONE continuous simulation. Every
// observation window the controller estimates the workload from the live
// log, runs a few iterations of the decentralized algorithm from the
// currently deployed allocation (Section 5.3: intermediate allocations
// are feasible and strictly better, so partial runs are always safe to
// deploy), and rewires the running system in place — no draining, no
// restart. Midway through, the (hidden) workload flips its hot spot, and
// the measured per-access cost visibly recovers.
#include <iostream>

#include "core/allocator.hpp"
#include "core/single_file.hpp"
#include "net/generators.hpp"
#include "sim/des.hpp"
#include "sim/des_system.hpp"
#include "sim/estimation.hpp"
#include "util/table.hpp"

int main() {
  using namespace fap;
  std::cout << "Live in-place adaptation on a running system\n"
            << "--------------------------------------------\n";

  const net::Topology ring = net::make_ring(6, 1.0);
  const net::CostMatrix comm = net::all_pairs_shortest_paths(ring);

  // Hidden truth, phase 1: node 0 is hot.
  core::SingleFileProblem phase1{
      comm, {0.45, 0.05, 0.05, 0.05, 0.05, 0.05},
      std::vector<double>(6, 1.4), /*k=*/1.0, queueing::DelayModel(), {},
      {},
      {}};
  // Hidden truth, phase 2: the hot spot jumps to node 3.
  core::SingleFileProblem phase2 = phase1;
  phase2.lambda = {0.05, 0.05, 0.05, 0.45, 0.05, 0.05};

  // The system starts in phase 1 under a uniform allocation.
  std::vector<double> deployed(6, 1.0 / 6.0);
  const core::SingleFileModel phase1_model(phase1);
  sim::DesConfig config = sim::des_config_for(phase1_model, deployed);
  config.record_log = true;
  config.seed = 31337;
  sim::DesSystem system(config);
  system.advance_until(200.0);  // warm up

  constexpr int kWindows = 10;
  constexpr double kWindowLength = 600.0;
  util::Table table({"window", "phase", "measured cost/access",
                     "deployed max x_i", "controller iterations"},
                    4);

  for (int w = 0; w < kWindows; ++w) {
    // The workload flips at the start of window 5. A real system would
    // not announce this; here we swap the generator rates by rebuilding
    // the DES routing inputs (rates live in the hidden truth).
    const bool second_phase = w >= 5;
    if (w == 5) {
      // Rebuild the system with phase-2 rates, carrying the deployed
      // allocation over (a new DesSystem models the regime change in the
      // exogenous arrival processes).
      const core::SingleFileModel model2(phase2);
      sim::DesConfig cfg2 = sim::des_config_for(model2, deployed);
      cfg2.record_log = true;
      cfg2.seed = 77777;
      system = sim::DesSystem(cfg2);
      system.advance_until(200.0);
    }

    system.reset_window();
    system.advance_until(system.now() + kWindowLength);
    const sim::WindowStats& window = system.window();
    const double measured = window.measured_cost(/*k=*/1.0);

    // Controller: estimate from the live log, improve the allocation with
    // a *budgeted* run (8 iterations), deploy by rewiring in place.
    std::size_t iterations_used = 0;
    if (!window.log.empty()) {
      const sim::EstimatedParameters estimates =
          sim::estimate_parameters(window.log, 6);
      const core::SingleFileModel estimated(sim::problem_from_estimates(
          estimates, comm, /*k=*/1.0, /*fallback_mu=*/1.4));
      core::AllocatorOptions options;
      options.alpha = 0.2;
      options.epsilon = 1e-6;
      options.max_iterations = 8;  // background budget per window
      const core::ResourceDirectedAllocator allocator(estimated, options);
      const core::AllocationResult improved = allocator.run(deployed);
      iterations_used = improved.iterations;
      deployed = improved.x;
      system.set_routing(std::vector<std::vector<double>>(6, deployed));
    }

    double max_x = 0.0;
    for (const double xi : deployed) {
      max_x = std::max(max_x, xi);
    }
    table.add_row({static_cast<long long>(w),
                   std::string(second_phase ? "hot=3" : "hot=0"), measured,
                   max_x, static_cast<long long>(iterations_used)});
  }
  std::cout << table.to_string() << '\n';
  std::cout
      << "The measured cost drops over windows 0-4 as the controller\n"
         "learns phase 1, spikes when the hot spot jumps at window 5, and\n"
         "recovers as the budgeted background iterations re-fragment the\n"
         "file — all without ever taking the system offline.\n";
  return 0;
}
