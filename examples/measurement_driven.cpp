// Closing the adaptive loop of Section 8: the operator does NOT know the
// workload or the service rates. The system runs under the current
// allocation, a monitoring log is collected, per-node λ and μ are
// estimated from the log, the decentralized algorithm optimizes on the
// *estimated* model, and the improved allocation is deployed. Repeat as
// the (hidden) workload drifts.
#include <iostream>

#include "core/allocator.hpp"
#include "core/single_file.hpp"
#include "net/generators.hpp"
#include "sim/des.hpp"
#include "sim/estimation.hpp"
#include "util/table.hpp"

namespace {

// The hidden truth for epoch t: demand gradually migrates from node 0 to
// node 4 over the run; node 2's server degrades halfway through.
fap::core::SingleFileProblem hidden_truth(const fap::net::CostMatrix& comm,
                                          int epoch) {
  const double shift = static_cast<double>(epoch) / 4.0;  // 0 .. 1
  fap::core::SingleFileProblem truth{
      comm,
      {0.40 * (1.0 - shift) + 0.05, 0.10, 0.10,
       0.10, 0.40 * shift + 0.05, 0.10},
      std::vector<double>(6, 2.0),
      /*k=*/1.0,
      fap::queueing::DelayModel(),
      {},
      {},
      {}};
  if (epoch >= 2) {
    truth.mu[2] = 1.2;  // degraded disk
  }
  return truth;
}

}  // namespace

int main() {
  using namespace fap;
  std::cout << "Measurement-driven adaptive allocation (Section 8 loop)\n"
            << "-------------------------------------------------------\n"
            << "Operator knowledge: the network only. Workload and server\n"
            << "speeds are estimated from access logs each epoch.\n\n";

  const net::Topology mesh = net::make_ring(6, 1.0);
  const net::CostMatrix comm = net::all_pairs_shortest_paths(mesh);

  std::vector<double> deployed(6, 1.0 / 6.0);  // day-one default

  util::Table table({"epoch", "true cost of deployed x", "oracle optimum",
                     "gap %", "est. hot node", "samples"},
                    4);
  for (int epoch = 0; epoch <= 4; ++epoch) {
    const core::SingleFileModel truth(hidden_truth(comm, epoch));

    // 1. Operate: run the real system under the deployed allocation and
    //    collect the monitoring log.
    sim::DesConfig config = sim::des_config_for(truth, deployed);
    config.record_log = true;
    config.measured_accesses = 80000;
    config.seed = 1000 + static_cast<std::uint64_t>(epoch);
    const sim::DesResult observed = sim::run_des(config);

    // 2. Estimate λ̂, μ̂ from the log; rebuild the optimization model.
    const sim::EstimatedParameters estimates =
        sim::estimate_parameters(observed.log, 6);
    const core::SingleFileModel estimated(sim::problem_from_estimates(
        estimates, comm, /*k=*/1.0, /*fallback_mu=*/2.0));

    // 3. Optimize on the estimated model, starting from the deployed
    //    allocation (feasible + monotone => always deployable).
    core::AllocatorOptions options;
    options.alpha = 0.15;
    options.epsilon = 1e-6;
    options.max_iterations = 100000;
    const core::ResourceDirectedAllocator allocator(estimated, options);
    const core::AllocationResult adapted = allocator.run(deployed);

    // 4. Score against the oracle that knows the truth.
    const core::ResourceDirectedAllocator oracle(truth, options);
    const core::AllocationResult best =
        oracle.run(core::uniform_allocation(truth));
    const double deployed_cost = truth.cost(adapted.x);

    std::size_t hot = 0;
    for (std::size_t i = 1; i < 6; ++i) {
      if (estimates.lambda[i] > estimates.lambda[hot]) {
        hot = i;
      }
    }
    table.add_row({static_cast<long long>(epoch), deployed_cost, best.cost,
                   100.0 * (deployed_cost - best.cost) / best.cost,
                   static_cast<long long>(hot),
                   static_cast<long long>(estimates.samples)});
    deployed = adapted.x;
  }
  std::cout << table.to_string() << '\n';
  std::cout
      << "Each epoch the estimated model tracks the drifting truth (hot\n"
         "node moves 0 -> 4; node 2 degrades at epoch 2) and the deployed\n"
         "allocation stays within a few percent of the clairvoyant optimum\n"
         "— the paper's adaptive vision, end to end.\n";
  return 0;
}
