// Multi-server nodes (M/M/c) and the economics of pooling.
//
// Two deployments of the same total hardware on the paper's four-node
// ring: four nodes each running ONE fast server of rate 1.5, versus four
// nodes each running FOUR slow servers of rate 0.375 (same per-node
// capacity). Classic queueing theory says the pooled-capacity node with
// one fast server waits less at low load, while many slow servers smooth
// variance at high utilization — and the optimizer sees all of it through
// queueing::DelayModel. The example optimizes both, then validates the
// multi-server prediction in the discrete-event simulator.
#include <iostream>

#include "core/allocator.hpp"
#include "core/single_file.hpp"
#include "queueing/delay.hpp"
#include "sim/des.hpp"
#include "util/table.hpp"

int main() {
  using namespace fap;
  std::cout << "Server pools: one fast server vs four slow servers\n"
            << "--------------------------------------------------\n";

  // Deployment A: the paper's setup (one server of rate 1.5 per node).
  const core::SingleFileModel fast(core::make_paper_ring_problem());

  // Deployment B: four servers of rate 0.375 per node (same capacity).
  core::SingleFileProblem pooled_problem = core::make_paper_ring_problem();
  pooled_problem.delay = queueing::DelayModel::mmc(4);
  pooled_problem.mu.assign(4, 0.375);
  const core::SingleFileModel pooled(std::move(pooled_problem));

  core::AllocatorOptions options;
  options.alpha = 0.2;
  options.epsilon = 1e-6;
  options.max_iterations = 100000;
  const core::AllocationResult fast_run =
      core::ResourceDirectedAllocator(fast, options)
          .run({0.8, 0.1, 0.1, 0.0});
  const core::AllocationResult pooled_run =
      core::ResourceDirectedAllocator(pooled, options)
          .run({0.8, 0.1, 0.1, 0.0});

  util::Table table({"deployment", "optimal cost", "sojourn at x=1/4",
                     "iterations"},
                    4);
  table.add_row({std::string("1 server x rate 1.5 (M/M/1)"), fast_run.cost,
                 fast.problem().delay.sojourn(0.25, 1.5),
                 static_cast<long long>(fast_run.iterations)});
  table.add_row({std::string("4 servers x rate 0.375 (M/M/4)"),
                 pooled_run.cost,
                 pooled.problem().delay.sojourn(0.25, 0.375),
                 static_cast<long long>(pooled_run.iterations)});
  std::cout << table.to_string() << '\n';

  std::cout << "One fast server wins at this utilization (ρ = 1/6): most\n"
               "of the sojourn is service time, and a 4x slower server\n"
               "quadruples it. Both deployments still fragment uniformly —\n"
               "the symmetric optimum is a property of the network, not the\n"
               "queue discipline.\n\n";

  // Validate the M/M/4 model against a running multi-server system.
  sim::DesConfig config =
      sim::des_config_for(pooled, {0.25, 0.25, 0.25, 0.25});
  config.servers_per_node.assign(4, 4);
  config.measured_accesses = 120000;
  config.seed = 4444;
  const sim::DesResult des = sim::run_des(config);
  std::cout << "DES check (M/M/4 nodes): analytic cost "
            << util::format_double(pooled.cost({0.25, 0.25, 0.25, 0.25}), 4)
            << " vs measured "
            << util::format_double(des.measured_cost, 4) << '\n';
  return 0;
}
