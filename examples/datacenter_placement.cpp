// Scenario: placing a shared catalog file across a 12-site wide-area
// deployment with heterogeneous link costs, request rates, server speeds
// and a query/update mix — the kind of workload the paper's introduction
// motivates.
//
// The example compares the decentralized algorithm against the natural
// heuristics an operator might try (single cheapest site, proportional to
// demand, best integral placement), then validates the winner by actually
// running the system in the discrete-event simulator.
#include <iostream>

#include "baselines/heuristics.hpp"
#include "baselines/integral.hpp"
#include "core/allocator.hpp"
#include "core/single_file.hpp"
#include "net/generators.hpp"
#include "sim/des.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace fap;
  std::cout << "Datacenter catalog placement across 12 sites\n"
            << "---------------------------------------------\n";

  // A 12-site metric network: sites link to their 3 nearest peers; link
  // cost = distance (e.g. normalized RTT-dollars).
  util::Rng rng(7);
  const net::Topology wan = net::make_random_metric(12, 3, rng);

  // Workload: three busy sites, the rest light. Updates are rarer but 4x
  // as expensive to ship (they carry the record payload).
  core::QueryUpdateWorkload mix;
  mix.query_rate.assign(12, 0.02);
  mix.update_rate.assign(12, 0.005);
  mix.query_rate[2] = 0.20;
  mix.query_rate[5] = 0.15;
  mix.query_rate[9] = 0.10;
  mix.update_rate[2] = 0.04;
  mix.query_comm_weight = 1.0;
  mix.update_comm_weight = 4.0;

  core::SingleFileProblem problem =
      core::make_problem(wan, mix.combined(), /*mu=*/1.2, /*k=*/1.5);
  problem.comm_weight_rates = mix.comm_weight_rates();
  // Sites 0-3 run faster hardware.
  for (std::size_t i = 0; i < 4; ++i) {
    problem.mu[i] = 2.0;
  }
  const core::SingleFileModel model(std::move(problem));

  // Candidate allocations.
  core::AllocatorOptions options;
  options.alpha = 0.15;
  options.epsilon = 1e-6;
  options.max_iterations = 100000;
  const core::ResourceDirectedAllocator allocator(model, options);
  const core::AllocationResult optimized =
      allocator.run(core::uniform_allocation(model));

  const std::vector<double> uniform = core::uniform_allocation(model);
  const std::vector<double> cheapest =
      baselines::min_comm_cost_allocation(model);
  const std::vector<double> proportional =
      baselines::proportional_to_demand_allocation(model);
  const baselines::IntegralResult integral =
      baselines::best_integral_single(model);

  auto measure = [&model](const std::vector<double>& x) {
    sim::DesConfig config = sim::des_config_for(model, x);
    config.measured_accesses = 120000;
    config.seed = 1234;
    return sim::run_des(config).measured_cost;
  };

  util::Table table({"strategy", "analytic cost", "measured cost (DES)"}, 4);
  table.add_row({std::string("decentralized algorithm"), optimized.cost,
                 measure(optimized.x)});
  table.add_row({std::string("uniform fragmentation"), model.cost(uniform),
                 measure(uniform)});
  table.add_row({std::string("single cheapest site"), model.cost(cheapest),
                 measure(cheapest)});
  table.add_row({std::string("proportional to demand"),
                 model.cost(proportional), measure(proportional)});
  table.add_row({std::string("best integral placement"), integral.cost,
                 measure(integral.x)});
  std::cout << table.to_string() << '\n';

  std::cout << "optimized fragmentation (site: fraction, only > 1%):\n";
  for (std::size_t i = 0; i < optimized.x.size(); ++i) {
    if (optimized.x[i] > 0.01) {
      std::cout << "  site " << i << ": "
                << util::format_double(optimized.x[i], 3)
                << (i < 4 ? "  [fast hardware]" : "") << '\n';
    }
  }
  std::cout << "\nconverged in " << optimized.iterations
            << " iterations; deployment granularity: round to records with "
               "baselines::round_to_records().\n";
  return 0;
}
