// Quickstart: optimally fragment one file over a small network in ~20
// lines of library use.
//
//   $ ./example_quickstart
//
// Builds the paper's four-node ring (μ = 1.5, k = 1, λ = 1), runs the
// decentralized resource-directed algorithm from a lopsided starting
// allocation, and prints the optimal fragmentation.
#include <fstream>
#include <iostream>

#include "core/allocator.hpp"
#include "core/single_file.hpp"
#include "core/trace_export.hpp"
#include "util/table.hpp"

int main() {
  using namespace fap;

  // 1. Describe the system: topology -> least-cost routing -> cost model.
  //    make_paper_ring_problem() is shorthand for:
  //      make_problem(net::make_ring(4, 1.0), Workload::uniform(4, 1.0),
  //                   /*mu=*/1.5, /*k=*/1.0)
  const core::SingleFileModel model(core::make_paper_ring_problem());

  // 2. Configure the algorithm (Section 5.2 of the paper).
  core::AllocatorOptions options;
  options.alpha = 0.3;     // step size
  options.epsilon = 1e-3;  // stop when marginal utilities agree to 1e-3
  options.record_trace = true;
  const core::ResourceDirectedAllocator allocator(model, options);

  // 3. Run from any feasible starting allocation.
  const core::AllocationResult result = allocator.run({0.8, 0.1, 0.1, 0.0});

  // 4. Inspect.
  std::cout << "converged: " << (result.converged ? "yes" : "no") << " in "
            << result.iterations << " iterations\n\n";
  util::Table table({"iteration", "cost", "x1", "x2", "x3", "x4"}, 4);
  for (const core::IterationRecord& rec : result.trace) {
    table.add_row({static_cast<long long>(rec.iteration), rec.cost, rec.x[0],
                   rec.x[1], rec.x[2], rec.x[3]});
  }
  std::cout << table.to_string() << '\n';
  std::cout << "optimal cost: " << result.cost
            << "  (uniform fragmentation, as symmetry demands)\n";

  // 5. Export for plotting / analysis.
  std::ofstream("quickstart_trace.csv") << core::trace_to_csv(result.trace);
  std::ofstream("quickstart_result.json") << core::result_to_json(result);
  std::cout << "\nwrote quickstart_trace.csv and quickstart_result.json\n";
  return 0;
}
