// Scenario from Section 8: "One can easily envision a system where the
// algorithm is run occasionally at night (or whenever the system is
// lightly loaded) to gradually improve the allocation."
//
// A week of operation: the workload drifts every day (a hot region moves
// around the network); each night the operator runs a *budgeted* number of
// iterations from the current allocation. Because the algorithm maintains
// feasibility and monotonicity (Theorems 1-2), every partial nightly run
// leaves a valid allocation that is strictly better for the day's
// workload — exactly the property that makes background operation safe.
#include <iostream>

#include "core/allocator.hpp"
#include "core/single_file.hpp"
#include "fs/directory.hpp"
#include "fs/fragment_map.hpp"
#include "net/generators.hpp"
#include "util/table.hpp"

namespace {

fap::core::Workload workload_for_day(int day) {
  // The hot site rotates around the 8-node ring through the week.
  fap::core::Workload workload;
  workload.lambda.assign(8, 0.03);
  workload.lambda[static_cast<std::size_t>(day) % 8] = 0.40;
  return workload;
}

}  // namespace

int main() {
  using namespace fap;
  std::cout << "Nightly background re-optimization over one week\n"
            << "------------------------------------------------\n";

  const net::Topology ring = net::make_ring(8, 1.0);
  constexpr std::size_t kRecords = 4096;

  // Start from a uniform allocation on day 0, deployed via the directory.
  std::vector<double> allocation(8, 1.0 / 8.0);
  fap::fs::Directory directory(
      fap::fs::FragmentMap::from_allocation(kRecords, allocation));

  util::Table table({"day", "hot site", "cost before night run",
                     "cost after night run", "iterations used",
                     "records migrated", "directory version"},
                    4);
  for (int day = 0; day < 7; ++day) {
    const core::SingleFileModel model(core::make_problem(
        ring, workload_for_day(day), /*mu=*/1.0, /*k=*/1.0));

    const double cost_before = model.cost(allocation);

    // Nightly budget: at most 12 iterations — the run may stop before
    // convergence; feasibility + monotonicity make the partial result
    // deployable anyway.
    core::AllocatorOptions options;
    options.alpha = 0.25;
    options.epsilon = 1e-5;
    options.max_iterations = 12;
    const core::ResourceDirectedAllocator allocator(model, options);
    const core::AllocationResult night = allocator.run(allocation);

    // Deploy: round to record boundaries, count the migration bill, and
    // swap the new layout into the directory atomically.
    const fap::fs::FragmentMap layout =
        fap::fs::FragmentMap::from_allocation(kRecords, night.x);
    const std::size_t migrated = directory.migration_records(layout);
    directory.install(layout);

    table.add_row({static_cast<long long>(day),
                   static_cast<long long>(day % 8), cost_before, night.cost,
                   static_cast<long long>(night.iterations),
                   static_cast<long long>(migrated),
                   static_cast<long long>(directory.version())});
    allocation = night.x;  // deploy the improved allocation
  }
  std::cout << table.to_string() << '\n';

  std::cout << "final allocation after the week (hot site was 6 last):\n  ";
  for (const double xi : allocation) {
    std::cout << util::format_double(xi, 3) << ' ';
  }
  std::cout << "\n\nEvery night's partial run produced a feasible, strictly "
               "cheaper allocation\n(Theorems 1 and 2), so the system could "
               "deploy it immediately each morning.\n";
  return 0;
}
