// Concurrency control over a fragmented file (Section 8.1 made runnable).
//
// Ten records are fragmented 5/5 across two nodes. Two multi-record
// transactions arrive with different message orderings at the two nodes —
// the paper's deadlock scenario — and the waits-for detector catches the
// cycle; aborting the younger transaction resolves it. Then the
// counterpoint: a read-heavy workload where shared locks let readers
// proceed in parallel on both fragments, the concurrency benefit that
// "may well offset any overhead incurred in supporting predicate lock
// operations".
#include <iostream>

#include "fs/directory.hpp"
#include "fs/fragment_map.hpp"
#include "fs/lock_manager.hpp"
#include "util/table.hpp"

int main() {
  using namespace fap;
  std::cout << "Transactions over a fragmented file (Section 8.1)\n"
            << "-------------------------------------------------\n";

  // The file: 10 records split 5/5 over nodes A (0) and B (1).
  const fs::FragmentMap layout =
      fs::FragmentMap::from_allocation(10, {0.5, 0.5});
  const fs::Directory directory(layout);
  std::cout << "record 3 lives at node " << directory.lookup(3)
            << ", record 7 at node " << directory.lookup(7) << "\n\n";

  // --- The deadlock scenario --------------------------------------------
  fs::LockManager locks;
  constexpr fs::TxnId kTxnC = 1;
  constexpr fs::TxnId kTxnD = 2;

  std::cout << "-- scenario: C and D both update all ten records --\n";
  std::cout << "node A sees C first: C locks records 0-4\n";
  for (std::size_t r = 0; r < 5; ++r) {
    locks.acquire(kTxnC, r, fs::LockMode::kExclusive);
  }
  std::cout << "node B sees D first: D locks records 5-9\n";
  for (std::size_t r = 5; r < 10; ++r) {
    locks.acquire(kTxnD, r, fs::LockMode::kExclusive);
  }
  std::cout << "D's subtransaction reaches node A: waits on C\n";
  locks.acquire(kTxnD, 0, fs::LockMode::kExclusive);
  std::cout << "C's subtransaction reaches node B: waits on D\n";
  locks.acquire(kTxnC, 5, fs::LockMode::kExclusive);

  const std::vector<fs::TxnId> cycle = locks.find_deadlock();
  std::cout << "\nwaits-for cycle detected between transactions:";
  for (const fs::TxnId txn : cycle) {
    std::cout << " T" << txn;
  }
  std::cout << "  (\"This would create a deadlock.\")\n";

  std::cout << "resolving: abort T" << kTxnD << " and retry it later\n";
  locks.release_all(kTxnD);
  std::cout << "deadlock after abort? "
            << (locks.find_deadlock().empty() ? "no" : "yes")
            << "; C now holds record 5: "
            << (locks.holds(kTxnC, 5) ? "yes" : "no") << "\n\n";
  locks.release_all(kTxnC);

  // --- The counterpoint: parallel reads ----------------------------------
  std::cout << "-- scenario: four analytics readers over both fragments --\n";
  util::Table table({"reader", "records locked", "granted immediately"}, 0);
  for (fs::TxnId reader = 10; reader < 14; ++reader) {
    std::size_t granted = 0;
    for (std::size_t r = 0; r < 10; ++r) {
      if (locks.acquire(reader, r, fs::LockMode::kShared) ==
          fs::LockOutcome::kGranted) {
        ++granted;
      }
    }
    table.add_row({static_cast<long long>(reader), 10LL,
                   static_cast<long long>(granted)});
  }
  std::cout << table.to_string();
  std::cout << "\nAll four readers hold all ten shared locks concurrently —\n"
               "reads on the two fragments proceed in parallel, the\n"
               "concurrency upside of fragmentation the paper weighs against\n"
               "the multi-node locking overhead.\n";
  return 0;
}
