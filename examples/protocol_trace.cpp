// The algorithm as a distributed protocol: message-level execution with
// both aggregation schemes of Section 5.1, showing per-round progress and
// the communication bill.
#include <iostream>

#include "core/single_file.hpp"
#include "net/generators.hpp"
#include "sim/protocol_sim.hpp"
#include "util/table.hpp"

int main() {
  using namespace fap;
  std::cout << "Decentralized protocol trace (Section 5.1 schemes)\n"
            << "--------------------------------------------------\n";

  // A 6-node star: the hub is the natural central agent.
  const net::Topology star = net::make_star(6, 1.0);
  core::Workload workload;
  workload.lambda = {0.05, 0.15, 0.10, 0.25, 0.20, 0.05};
  const core::SingleFileModel model(
      core::make_problem(star, workload, /*mu=*/1.3, /*k=*/1.0));

  sim::ProtocolConfig config;
  config.algorithm.alpha = 0.2;
  config.algorithm.epsilon = 1e-4;
  config.algorithm.max_iterations = 10000;
  config.record_cost_trace = true;

  std::cout << "\n-- broadcast scheme (every node -> every node) --\n";
  config.scheme = sim::AggregationScheme::kBroadcast;
  const sim::ProtocolResult broadcast =
      sim::run_protocol(model, core::uniform_allocation(model), config);

  util::Table trace({"round", "system cost"}, 6);
  for (std::size_t t = 0; t < broadcast.cost_trace.size(); ++t) {
    trace.add_row({static_cast<long long>(t + 1), broadcast.cost_trace[t]});
  }
  std::cout << trace.to_string();

  std::cout << "\n-- per-run communication bill --\n";
  config.record_cost_trace = false;
  config.scheme = sim::AggregationScheme::kCentralAgent;
  const sim::ProtocolResult central =
      sim::run_protocol(model, core::uniform_allocation(model), config);

  util::Table bill({"scheme", "rounds", "point-to-point msgs",
                    "LAN transmissions", "payload (doubles)", "final cost"},
                   4);
  bill.add_row({std::string("broadcast"),
                static_cast<long long>(broadcast.rounds),
                static_cast<long long>(broadcast.point_to_point_messages),
                static_cast<long long>(broadcast.broadcast_medium_messages),
                static_cast<long long>(broadcast.payload_doubles),
                broadcast.cost});
  bill.add_row({std::string("central agent (hub)"),
                static_cast<long long>(central.rounds),
                static_cast<long long>(central.point_to_point_messages),
                static_cast<long long>(central.broadcast_medium_messages),
                static_cast<long long>(central.payload_doubles),
                central.cost});
  std::cout << bill.to_string() << '\n';

  std::cout << "Both schemes compute the identical allocation (the paper's\n"
               "agreement argument); on a broadcast medium their message\n"
               "counts coincide, on point-to-point links the central agent\n"
               "is cheaper per round.\n";
  std::cout << "\nfinal allocation:";
  for (const double xi : broadcast.x) {
    std::cout << ' ' << util::format_double(xi, 3);
  }
  std::cout << '\n';
  return 0;
}
