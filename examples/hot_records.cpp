// Non-uniform record popularity, end to end — the Section 4 relaxation
// ("we will assume that the individual records with a file are accessed
// on a uniform basis (although this can be easily relaxed)").
//
// A 2000-record catalog with Zipf-skewed access lives on the paper's
// four-node ring where node 0 has faster hardware. The pipeline:
//   1. optimize per-node ACCESS SHARES with the decentralized algorithm
//      (Eq. 1 is a function of shares, not bytes);
//   2. pack records so realized shares match the optimum — hot records
//      spread first;
//   3. compare against the naive layout (split records evenly by count);
//   4. validate both in the discrete-event simulator.
#include <iostream>

#include "core/allocator.hpp"
#include "core/single_file.hpp"
#include "fs/popularity.hpp"
#include "fs/weighted_assignment.hpp"
#include "sim/des.hpp"
#include "util/table.hpp"

int main() {
  using namespace fap;
  std::cout << "Hot records: Zipf-skewed access over a fragmented file\n"
            << "------------------------------------------------------\n";

  core::SingleFileProblem problem = core::make_paper_ring_problem();
  problem.mu = {3.0, 1.5, 1.5, 1.5};  // node 0: fast hardware
  const core::SingleFileModel model(std::move(problem));

  const std::size_t kRecords = 2000;
  const double kZipf = 1.1;
  const std::vector<double> popularity =
      fs::zipf_popularity(kRecords, kZipf);
  std::cout << "hottest record carries "
            << util::format_double(100.0 * popularity.front(), 1)
            << "% of all accesses (Zipf s = " << kZipf << ")\n\n";

  core::AllocatorOptions options;
  options.alpha = 0.2;
  options.epsilon = 1e-6;
  options.max_iterations = 100000;
  const fs::WeightedPlacement placement =
      fs::optimize_record_placement(model, popularity, options);

  // Naive layout: split the records evenly by count.
  std::vector<double> even_split(4, 0.25);
  const fs::FragmentMap naive_map =
      fs::FragmentMap::from_allocation(kRecords, even_split);
  const std::vector<double> naive_shares =
      fs::node_access_shares(naive_map, popularity);

  util::Table table({"node", "optimal access share", "achieved share",
                     "storage fraction", "naive (even split) share"},
                    4);
  for (std::size_t node = 0; node < 4; ++node) {
    table.add_row({static_cast<long long>(node),
                   placement.target_shares[node],
                   placement.assignment.achieved_shares[node],
                   placement.assignment.storage_fractions[node],
                   naive_shares[node]});
  }
  std::cout << table.to_string() << '\n';

  auto measure = [&model](const std::vector<double>& shares) {
    sim::DesConfig config = sim::des_config_for(model, shares);
    config.measured_accesses = 120000;
    config.seed = 271828;
    return sim::run_des(config).measured_cost;
  };

  util::Table costs({"layout", "analytic cost", "measured cost (DES)"}, 4);
  costs.add_row({std::string("optimized record packing"),
                 placement.achieved_cost,
                 measure(placement.assignment.achieved_shares)});
  costs.add_row({std::string("fractional lower bound"),
                 placement.fractional_cost, std::string("-")});
  costs.add_row({std::string("naive even record split"),
                 model.cost(naive_shares), measure(naive_shares)});
  std::cout << costs.to_string() << '\n';

  std::cout
      << "With skewed access, an even record split leaves the head of the\n"
         "Zipf on one node (whoever holds record 0 serves ~"
      << util::format_double(100.0 * naive_shares[0], 0)
      << "% of traffic).\nThe optimizer instead allocates *shares* and the "
         "packer spreads the\nhot head: node 0 stores "
      << util::format_double(
             100.0 * placement.assignment.storage_fractions[0], 1)
      << "% of the bytes yet serves "
      << util::format_double(
             100.0 * placement.assignment.achieved_shares[0], 1)
      << "% of the accesses.\n";
  return 0;
}
