// Section 7 end to end: two replicated copies of a file on a virtual ring
// imposed over an arbitrary physical network.
//
// Steps: impose a ring ordering on a 6-node mesh; allocate m = 2 copies
// with the oscillation-aware multicopy driver; trim to at most one whole
// copy per node; compare against the best integral placement; validate the
// deployable allocation in the discrete-event simulator.
#include <iostream>

#include "baselines/integral.hpp"
#include "core/multicopy_allocator.hpp"
#include "core/ring_model.hpp"
#include "net/generators.hpp"
#include "net/virtual_ring.hpp"
#include "sim/des.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace fap;
  std::cout << "Two copies of a file on a virtual ring (Section 7)\n"
            << "--------------------------------------------------\n";

  // Physical network: a 6-node mesh; the virtual ring visits the nodes in
  // a fixed order, each hop routed along the least-cost physical path.
  util::Rng rng(11);
  const net::Topology mesh = net::make_erdos_renyi(6, 0.6, 0.5, 2.0, rng);
  const std::vector<net::NodeId> order{0, 2, 4, 1, 5, 3};
  const net::VirtualRing ring = net::VirtualRing::from_order(mesh, order);

  std::cout << "virtual ring hop costs (least-cost physical routes):\n  ";
  for (std::size_t p = 0; p < ring.size(); ++p) {
    std::cout << util::format_double(ring.forward_cost(p), 2) << ' ';
  }
  std::cout << "\n\n";

  core::RingProblem problem{ring,
                            /*copies=*/2.0,
                            {0.25, 0.10, 0.10, 0.20, 0.05, 0.30},
                            std::vector<double>(6, 1.6),
                            /*k=*/1.0,
                            queueing::DelayModel::mm1(0.95),
                            /*max_per_node=*/0.0};
  const core::RingModel model(problem);

  // Oscillation-aware optimization (Section 7.3 modifications).
  core::MultiCopyOptions options;
  options.alpha = 0.08;
  options.decay_interval = 25;
  options.alpha_decay = 0.5;
  options.cost_epsilon = 1e-7;
  options.max_iterations = 4000;
  options.record_trace = true;
  const core::MultiCopyAllocator allocator(model, options);
  const core::MultiCopyResult result =
      allocator.run(core::uniform_allocation(model));

  std::cout << "run: " << result.iterations << " iterations, "
            << result.oscillation_count << " cost upticks, final alpha "
            << result.final_alpha << '\n';

  // Deployable allocation: cap at one whole copy per node (Section 7.2's
  // post-processing remark).
  const std::vector<double> deployable =
      core::trim_to_whole_copy(model, result.best_x);

  const baselines::IntegralResult integral =
      baselines::best_integral_ring(model);

  util::Table table({"allocation", "cost (rate)", "comm part", "delay part"},
                    4);
  auto row = [&](const std::string& name, const std::vector<double>& x) {
    table.add_row({name, model.cost(x), model.communication_cost(x),
                   model.delay_cost(x)});
  };
  row("uniform (2/6 each)", core::uniform_allocation(model));
  row("fragmented optimum (best seen)", result.best_x);
  row("deployable (trimmed to <= 1 copy)", deployable);
  row("best integral (2 whole copies)", integral.x);
  std::cout << table.to_string() << '\n';

  std::cout << "fragment map (ring position: fraction of file):\n";
  for (std::size_t p = 0; p < deployable.size(); ++p) {
    std::cout << "  position " << p << " (physical node " << order[p]
              << "): " << util::format_double(deployable[p], 3) << '\n';
  }

  // Validate with the discrete-event simulator.
  sim::DesConfig config = sim::des_config_for(model, deployable);
  config.measured_accesses = 120000;
  config.seed = 77;
  const sim::DesResult des = sim::run_des(config);
  double total_rate = 0.0;
  for (const double rate : model.problem().lambda) {
    total_rate += rate;
  }
  std::cout << "\nDES validation: measured per-access cost "
            << util::format_double(des.measured_cost, 4) << " vs analytic "
            << util::format_double(model.cost(deployable) / total_rate, 4)
            << '\n';
  return 0;
}
