#!/usr/bin/env python3
"""Compare a fresh micro-benchmark run against the committed baseline.

    scripts/perf_check.py [--baseline BENCH_micro.json] [--current RUN.json]
                          [--tolerance 1.5] [--hard-fail 3.0] [--warn-only]

Both inputs are google-benchmark JSON files (as written by
scripts/perf_baseline.sh). Benchmarks are matched by name using the
median aggregate when repetitions were recorded (falling back to the
single reported time otherwise). For each benchmark present in both
files the ratio current/baseline is reported:

  ratio <= tolerance           OK
  tolerance < ratio < hard-fail  WARN (exit 1, or 0 with --warn-only)
  ratio >= hard-fail           FAIL (exit 1 always: a 3x regression is
                               never timer noise, even on a busy CI box)

Benchmarks present only in the current run are listed but do not fail
the check, so adding a benchmark does not require regenerating the
baseline in the same commit. Benchmarks present only in the BASELINE are
a hard failure (even with --warn-only): a benchmark that silently stops
running is exactly the regression this check exists to catch — a rename
or deletion must be accompanied by a baseline refresh, or explicitly
waived with --allow-missing.
"""

from __future__ import annotations

import argparse
import json
import sys


def build_type(path: str) -> str:
    """Best-effort build type recorded in a benchmark JSON's context.

    bench/micro_perf stamps ``fap_build_type`` (release/debug, from
    NDEBUG in the benchmark binary itself). Older captures lack it; fall
    back to google-benchmark's ``library_build_type``, which describes
    how libbenchmark was compiled — usually, but not always, the same
    toolchain configuration. Returns "" when neither is present.
    """
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    context = data.get("context", {})
    return str(context.get("fap_build_type",
                           context.get("library_build_type", ""))).lower()


def load_times(path: str) -> dict[str, float]:
    """Benchmark name -> real time in ns (medians preferred)."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    singles: dict[str, float] = {}
    medians: dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("run_name", bench.get("name", ""))
        time = bench.get("real_time")
        if not name or time is None:
            continue
        if bench.get("aggregate_name") == "median":
            medians[name] = float(time)
        elif bench.get("run_type", "iteration") == "iteration":
            # Non-aggregate rows: keep the last (benchmark emits one row
            # per repetition; without aggregates there is exactly one).
            singles[name] = float(time)
    return {**singles, **medians}


def main() -> int:
    parser = argparse.ArgumentParser(
        description="micro-benchmark regression check")
    parser.add_argument("--baseline", default="BENCH_micro.json",
                        help="committed baseline JSON (default: "
                             "BENCH_micro.json)")
    parser.add_argument("--current", required=True,
                        help="fresh run JSON to compare")
    parser.add_argument("--tolerance", type=float, default=1.5,
                        help="warn when current/baseline exceeds this "
                             "(default: 1.5 — sub-millisecond benchmarks "
                             "swing +-30% with machine frequency/load "
                             "regimes, so a tighter bound cries wolf)")
    parser.add_argument("--hard-fail", type=float, default=3.0,
                        help="always fail at this ratio (default: 3.0)")
    parser.add_argument("--warn-only", action="store_true",
                        help="exit 0 on tolerance breaches below the "
                             "hard-fail ratio (for noisy shared runners); "
                             "does NOT waive missing-benchmark failures")
    parser.add_argument("--allow-missing", action="store_true",
                        help="do not fail when a baseline benchmark is "
                             "absent from the current run (for filtered "
                             "runs, e.g. perf-smoke on a subset)")
    args = parser.parse_args()
    if args.tolerance <= 0 or args.hard_fail < args.tolerance:
        parser.error("need 0 < tolerance <= hard-fail")

    for label, path in (("baseline", args.baseline),
                        ("current", args.current)):
        if build_type(path) == "debug":
            print(f"WARNING: {label} {path} was captured from a DEBUG "
                  f"build; its timings are not comparable to optimized "
                  f"runs (recapture from a Release tree with "
                  f"scripts/perf_baseline.sh)")

    baseline = load_times(args.baseline)
    current = load_times(args.current)
    if not baseline:
        print(f"error: no benchmarks in baseline {args.baseline}")
        return 2
    if not current:
        print(f"error: no benchmarks in current run {args.current}")
        return 2

    shared = sorted(set(baseline) & set(current))
    only_baseline = sorted(set(baseline) - set(current))
    only_current = sorted(set(current) - set(baseline))

    warned = []
    failed = []
    width = max((len(name) for name in shared), default=10)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  ratio")
    for name in shared:
        ratio = current[name] / baseline[name] if baseline[name] > 0 else (
            float("inf") if current[name] > 0 else 1.0)
        if ratio >= args.hard_fail:
            verdict = "FAIL"
            failed.append(name)
        elif ratio > args.tolerance:
            verdict = "WARN"
            warned.append(name)
        else:
            verdict = "ok"
        print(f"{name:<{width}}  {baseline[name]:>10.1f}ns  "
              f"{current[name]:>10.1f}ns  {ratio:5.2f}x  {verdict}")

    missing = []
    for name in only_baseline:
        if args.allow_missing:
            print(f"note: {name} only in baseline (waived by "
                  f"--allow-missing)")
        else:
            print(f"MISSING: {name} in baseline but absent from the "
                  f"current run (deleted or renamed? refresh the baseline "
                  f"with scripts/perf_baseline.sh, or waive an "
                  f"intentionally filtered run with --allow-missing)")
            missing.append(name)
    for name in only_current:
        print(f"note: {name} only in current run (new benchmark; refresh "
              f"the baseline with scripts/perf_baseline.sh)")

    if missing:
        print(f"FAIL: {len(missing)} baseline benchmark(s) missing from "
              f"the current run: {', '.join(missing)}")
        return 1
    if failed:
        print(f"FAIL: {len(failed)} benchmark(s) at >= {args.hard_fail}x "
              f"the baseline: {', '.join(failed)}")
        return 1
    if warned:
        print(f"WARN: {len(warned)} benchmark(s) over the {args.tolerance}x "
              f"tolerance: {', '.join(warned)}")
        return 0 if args.warn_only else 1
    print(f"OK: {len(shared)} benchmark(s) within {args.tolerance}x of the "
          f"baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
