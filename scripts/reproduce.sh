#!/usr/bin/env bash
# Regenerates every figure and ablation of EXPERIMENTS.md.
#
#   scripts/reproduce.sh [results_dir]
#
# Builds (if needed), runs the full test suite, then every bench binary —
# once as human-readable text and once as CSV — into results_dir
# (default: ./results). JOBS=N controls bench sweep parallelism
# (default: all cores; output is bit-identical at any JOBS value).
set -euo pipefail

cd "$(dirname "$0")/.."
RESULTS="${1:-results}"
JOBS="${JOBS:-0}"

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p "$RESULTS"
for bench in build/bench/*; do
  [ -f "$bench" ] && [ -x "$bench" ] || continue
  name="$(basename "$bench")"
  echo "== $name =="
  args=()
  case "$name" in
    micro_perf) ;;  # google-benchmark CLI, no bench_common flags
    *) args+=(--jobs "$JOBS") ;;
  esac
  "$bench" "${args[@]}" | tee "$RESULTS/$name.txt" > /dev/null
  "$bench" "${args[@]}" --csv > "$RESULTS/$name.csv" 2>/dev/null || true
done

echo
echo "All outputs in $RESULTS/. Compare against EXPERIMENTS.md."
