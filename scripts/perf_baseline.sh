#!/usr/bin/env bash
# Captures the micro-benchmark performance baseline.
#
#   scripts/perf_baseline.sh
#
# Builds (if needed) and runs bench/micro_perf with pinned repetitions,
# writing aggregate results (google-benchmark JSON) to OUT. Commit the
# refreshed file whenever a PR intentionally changes hot-path performance;
# scripts/perf_check.py compares fresh runs against it.
#
# Environment overrides:
#   BUILD_DIR  build tree to use                (default: build)
#   OUT        output JSON path                 (default: BENCH_micro.json)
#   REPS       --benchmark_repetitions          (default: 5)
#   MIN_TIME   --benchmark_min_time per rep     (default: 0.05; newer
#              google-benchmark releases also accept a "0.05s" suffix)
#   FILTER     --benchmark_filter regex         (default: all benchmarks)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
OUT="${OUT:-BENCH_micro.json}"
REPS="${REPS:-5}"
MIN_TIME="${MIN_TIME:-0.05}"
FILTER="${FILTER:-.*}"

# Refuse to capture a baseline from a debug tree: -O0 numbers are 5-20x
# slower than Release, so a debug capture poisons every later comparison
# (PR 8 found the committed baseline had been captured this way).
# A missing cache / unset CMAKE_BUILD_TYPE is fine — the top-level
# CMakeLists defaults a fresh configure to RelWithDebInfo. Checked
# before the build step so a Debug tree is refused without building.
check_build_type() {
  local bt
  bt="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
      "${BUILD_DIR}/CMakeCache.txt" 2>/dev/null || true)"
  case "${bt}" in
    Release|RelWithDebInfo|"") ;;
    *)
      echo "error: ${BUILD_DIR} is a ${bt} build;" \
           "capture baselines from Release or RelWithDebInfo" \
           "(cmake -B ${BUILD_DIR} -S . -DCMAKE_BUILD_TYPE=Release)" >&2
      exit 1
      ;;
  esac
}

check_build_type
if [ ! -x "${BUILD_DIR}/bench/micro_perf" ]; then
  cmake -B "${BUILD_DIR}" -S .
  cmake --build "${BUILD_DIR}" --target micro_perf
  check_build_type
fi

"${BUILD_DIR}/bench/micro_perf" \
  --benchmark_repetitions="${REPS}" \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_report_aggregates_only=true \
  --benchmark_filter="${FILTER}" \
  --benchmark_out_format=json \
  --benchmark_out="${OUT}"

echo "wrote ${OUT}"
