// Umbrella header: the full public API of the library.
//
// Reproduction of: J. F. Kurose and R. Simha, "A Microeconomic Approach to
// Optimal File Allocation", ICDCS 1986 (COINS TR 85-43).
#pragma once

#include "baselines/heuristics.hpp"          // IWYU pragma: export
#include "baselines/integral.hpp"            // IWYU pragma: export
#include "baselines/price_directed_fap.hpp"  // IWYU pragma: export
#include "baselines/projected_gradient.hpp"  // IWYU pragma: export
#include "core/allocator.hpp"                // IWYU pragma: export
#include "core/copy_count.hpp"               // IWYU pragma: export
#include "core/cost_model.hpp"               // IWYU pragma: export
#include "core/joint_routing.hpp"            // IWYU pragma: export
#include "core/multi_file.hpp"               // IWYU pragma: export
#include "core/multicopy_allocator.hpp"      // IWYU pragma: export
#include "core/neighbor_allocator.hpp"       // IWYU pragma: export
#include "core/newton_allocator.hpp"         // IWYU pragma: export
#include "core/ring_model.hpp"               // IWYU pragma: export
#include "core/single_file.hpp"              // IWYU pragma: export
#include "core/trace_export.hpp"             // IWYU pragma: export
#include "core/volume_model.hpp"             // IWYU pragma: export
#include "econ/price_directed.hpp"           // IWYU pragma: export
#include "econ/resource_directed.hpp"        // IWYU pragma: export
#include "econ/utility.hpp"                  // IWYU pragma: export
#include "fs/directory.hpp"                  // IWYU pragma: export
#include "fs/fragment_map.hpp"               // IWYU pragma: export
#include "fs/lock_manager.hpp"               // IWYU pragma: export
#include "fs/migration.hpp"                  // IWYU pragma: export
#include "fs/popularity.hpp"                 // IWYU pragma: export
#include "fs/weighted_assignment.hpp"        // IWYU pragma: export
#include "net/generators.hpp"                // IWYU pragma: export
#include "net/shortest_paths.hpp"            // IWYU pragma: export
#include "net/topology.hpp"                  // IWYU pragma: export
#include "net/virtual_ring.hpp"              // IWYU pragma: export
#include "queueing/delay.hpp"                // IWYU pragma: export
#include "runtime/metrics.hpp"               // IWYU pragma: export
#include "runtime/parallel_for.hpp"          // IWYU pragma: export
#include "runtime/sweep.hpp"                 // IWYU pragma: export
#include "runtime/thread_pool.hpp"           // IWYU pragma: export
#include "sim/async_protocol.hpp"            // IWYU pragma: export
#include "sim/des.hpp"                       // IWYU pragma: export
#include "sim/des_system.hpp"                // IWYU pragma: export
#include "sim/estimation.hpp"                // IWYU pragma: export
#include "sim/protocol_sim.hpp"              // IWYU pragma: export
#include "util/json.hpp"                     // IWYU pragma: export
#include "util/numeric.hpp"                  // IWYU pragma: export
#include "util/rng.hpp"                      // IWYU pragma: export
#include "util/stats.hpp"                    // IWYU pragma: export
#include "util/table.hpp"                    // IWYU pragma: export
