// The price-directed (Walrasian tâtonnement) mechanism of Section 2 —
// implemented as the comparison baseline for ablation A3.
//
// A per-unit price p is posted for the resource. Each agent independently
// solves its selfish local problem
//
//   x_i(p) = argmax_{x >= 0}  u_i(x) - p x   (i.e. u_i'(x_i) = p, clamped)
//
// and the price adjusts toward market clearing:
//
//   p <- p + γ ( Σ_i x_i(p) - total ).
//
// The paper lists the drawbacks this exhibits relative to the
// resource-directed scheme, each of which the A3 bench measures:
//   * intermediate demand vectors are generally infeasible (Σ x_i ≠ total);
//   * social utility along the path is not monotone;
//   * every iteration requires each agent to solve a local optimization.
// For strictly concave utilities aggregate demand is strictly decreasing
// in p, so an exact clearing price also exists and is found by bisection
// (walrasian_equilibrium), giving the mechanism's fixed point directly.
#pragma once

#include <cstddef>
#include <vector>

#include "econ/utility.hpp"

namespace fap::econ {

/// Agent i's demand at price p: the x >= 0 with u_i'(x) = p (0 when even
/// u_i'(0) < p; capped at `demand_cap`, which bounds demand when
/// u_i'(x) > p for all x of interest). Solved by bisection on the
/// decreasing derivative.
double agent_demand(const ConcaveUtility& agent, double price,
                    double demand_cap, double tol = 1e-12);

struct TatonnementOptions {
  double gamma = 0.05;          ///< price adjustment speed
  double initial_price = 1.0;
  double demand_cap = 1.0;      ///< per-agent demand cap (resource total is
                                ///< a natural choice)
  double tol = 1e-6;            ///< stop when |Σ demand - total| < tol
  std::size_t max_iterations = 100000;
  bool record_trace = false;
};

struct TatonnementIteration {
  std::size_t iteration = 0;
  double price = 0.0;
  double excess_demand = 0.0;    ///< Σ x_i(p) - total (infeasibility)
  double social_utility = 0.0;   ///< of the (infeasible) demand vector
  std::vector<double> demand;
};

struct TatonnementResult {
  std::vector<double> x;         ///< final demand vector
  double price = 0.0;
  bool converged = false;
  std::size_t iterations = 0;
  std::vector<TatonnementIteration> trace;
};

/// Fixed-γ price adjustment process.
TatonnementResult tatonnement(const std::vector<ConcaveUtility>& agents,
                              double total,
                              const TatonnementOptions& options);

/// One projected tâtonnement step over a VECTOR of resources:
///
///   p_i <- max(0, p_i + γ_i (demand_i - supply_i))
///
/// the multi-resource form of the scalar price update above, used by the
/// catalog engine's capacity price loop (one resource per storage node).
/// Unlike the scalar process — where a negative clearing price is
/// meaningful (agents paid to hold) — capacity prices are Lagrange
/// multipliers of B_i-inequalities and are projected onto p >= 0: an
/// underfull node's constraint is slack, so its price is 0, not negative.
/// All three vectors must have equal size.
void tatonnement_step(std::vector<double>& prices,
                      const std::vector<double>& demand,
                      const std::vector<double>& supply,
                      const std::vector<double>& gamma);

/// Exact market-clearing price by bisection on the (strictly decreasing)
/// aggregate demand; returns the clearing allocation. This is the
/// mechanism's fixed point, used as ground truth in tests.
struct Equilibrium {
  std::vector<double> x;
  double price = 0.0;
};
Equilibrium walrasian_equilibrium(const std::vector<ConcaveUtility>& agents,
                                  double total, double demand_cap,
                                  double tol = 1e-10);

}  // namespace fap::econ
