// Generic economic-agent abstractions (Section 2).
//
// The paper frames FAP as a special case of the pure-exchange resource
// allocation problem from mathematical economics: N agents share a fixed
// amount of one divisible resource, agent i derives utility u_i(x_i) from
// holding x_i of it, and a mechanism must find the allocation maximizing
// the social utility Σ u_i(x_i) subject to Σ x_i = total, x_i >= 0.
// This header defines the agent utility abstraction shared by the two
// mechanism families the paper contrasts: resource-directed (Heal [15],
// Section 2 & 5) and price-directed (Walras/Arrow-Hahn [3], Section 2).
#pragma once

#include <functional>
#include <vector>

namespace fap::econ {

/// A twice-differentiable concave utility of a scalar holding.
struct ConcaveUtility {
  std::function<double(double)> value;
  std::function<double(double)> derivative;         // u'(x), decreasing
  std::function<double(double)> second_derivative;  // u''(x) <= 0
};

/// Common parametric utilities used in tests and examples.
/// Logarithmic: u(x) = w · log(x + shift).
ConcaveUtility log_utility(double weight, double shift = 1e-9);
/// Quadratic: u(x) = a x - b x² / 2 (b > 0).
ConcaveUtility quadratic_utility(double a, double b);
/// Power: u(x) = w x^p with p in (0, 1).
ConcaveUtility power_utility(double weight, double exponent);

/// Social utility Σ u_i(x_i).
double social_utility(const std::vector<ConcaveUtility>& agents,
                      const std::vector<double>& x);

}  // namespace fap::econ
