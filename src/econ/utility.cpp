#include "econ/utility.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace fap::econ {

ConcaveUtility log_utility(double weight, double shift) {
  FAP_EXPECTS(weight > 0.0, "weight must be positive");
  FAP_EXPECTS(shift > 0.0, "shift must be positive");
  return ConcaveUtility{
      [weight, shift](double x) { return weight * std::log(x + shift); },
      [weight, shift](double x) { return weight / (x + shift); },
      [weight, shift](double x) {
        return -weight / ((x + shift) * (x + shift));
      }};
}

ConcaveUtility quadratic_utility(double a, double b) {
  FAP_EXPECTS(b > 0.0, "curvature must be positive for strict concavity");
  return ConcaveUtility{
      [a, b](double x) { return a * x - 0.5 * b * x * x; },
      [a, b](double x) { return a - b * x; },
      [b](double) { return -b; }};
}

ConcaveUtility power_utility(double weight, double exponent) {
  FAP_EXPECTS(weight > 0.0, "weight must be positive");
  FAP_EXPECTS(exponent > 0.0 && exponent < 1.0, "exponent must be in (0, 1)");
  return ConcaveUtility{
      [weight, exponent](double x) { return weight * std::pow(x, exponent); },
      [weight, exponent](double x) {
        return weight * exponent * std::pow(x, exponent - 1.0);
      },
      [weight, exponent](double x) {
        return weight * exponent * (exponent - 1.0) *
               std::pow(x, exponent - 2.0);
      }};
}

double social_utility(const std::vector<ConcaveUtility>& agents,
                      const std::vector<double>& x) {
  FAP_EXPECTS(agents.size() == x.size(), "size mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < agents.size(); ++i) {
    total += agents[i].value(x[i]);
  }
  return total;
}

}  // namespace fap::econ
