// Heal's resource-directed planning procedure in its general economic form
// ("Planning Without Prices" [15], Section 2 of the paper).
//
// Agents hold a feasible allocation of one divisible resource. At each
// step every agent reports its marginal utility u_i'(x_i); the plan then
// transfers resource toward agents whose marginal utility is above the
// average and away from those below it:
//
//   Δx_i = α ( u_i'(x_i) - (1/|A|) Σ_{j∈A} u_j'(x_j) ).
//
// Feasibility (Σ x_i constant) holds at every step and social utility
// increases monotonically — the two properties Section 2 highlights as the
// advantages of the resource-directed class. The FAP algorithm of
// Section 5 is this procedure applied to the file-allocation utility; this
// generic version exists to demonstrate (and test) the mechanism on
// arbitrary concave utilities, exactly as the paper claims: "the
// optimization algorithm itself is very general in nature and can be
// applied to any arbitrary resource allocation problem".
#pragma once

#include <cstddef>
#include <vector>

#include "econ/utility.hpp"

namespace fap::econ {

struct PlannerOptions {
  double alpha = 0.05;
  double epsilon = 1e-6;  ///< stop when active marginals are within ε
  std::size_t max_iterations = 100000;
  bool record_trace = false;
};

struct PlannerIteration {
  std::size_t iteration = 0;
  double social_utility = 0.0;
  double marginal_spread = 0.0;
  std::vector<double> x;
};

struct PlannerResult {
  std::vector<double> x;
  double social_utility = 0.0;
  bool converged = false;
  std::size_t iterations = 0;
  std::vector<PlannerIteration> trace;
};

/// Runs the resource-directed procedure from `initial` (which must be
/// non-negative and sum to the resource total, inferred from the initial
/// allocation itself). The active set excludes agents that would be pushed
/// non-positive, with re-admission by highest marginal utility, mirroring
/// Section 5.2 steps (i)-(v).
PlannerResult resource_directed_plan(const std::vector<ConcaveUtility>& agents,
                                     std::vector<double> initial,
                                     const PlannerOptions& options);

}  // namespace fap::econ
