#include "econ/resource_directed.hpp"

#include <algorithm>
#include <limits>

#include "util/contracts.hpp"

namespace fap::econ {

namespace {

// Boundary threshold for active-set exclusion; interior overshoots are
// θ-clipped in the update, not frozen (see core/allocator.cpp).
constexpr double kBoundaryTol = 1e-12;

double mean_over(const std::vector<double>& values,
                 const std::vector<std::size_t>& subset) {
  double sum = 0.0;
  for (const std::size_t i : subset) {
    sum += values[i];
  }
  return sum / static_cast<double>(subset.size());
}

// Section 5.2 active-set procedure applied to generic marginals.
std::vector<std::size_t> active_set(const std::vector<double>& x,
                                    const std::vector<double>& marginals,
                                    double alpha) {
  const std::size_t n = x.size();
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) {
    all[i] = i;
  }
  const double avg_all = mean_over(marginals, all);
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < n; ++i) {
    if (x[i] > kBoundaryTol ||
        x[i] + alpha * (marginals[i] - avg_all) > 0.0) {
      active.push_back(i);
    }
  }
  if (active.empty()) {
    active.push_back(static_cast<std::size_t>(
        std::max_element(marginals.begin(), marginals.end()) -
        marginals.begin()));
  }
  for (std::size_t round = 0; round < 2 * n + 2; ++round) {
    bool changed = false;
    for (;;) {
      double best = -std::numeric_limits<double>::infinity();
      std::size_t best_i = 0;
      bool found = false;
      for (std::size_t j = 0; j < n; ++j) {
        if (std::find(active.begin(), active.end(), j) != active.end()) {
          continue;
        }
        if (marginals[j] > best) {
          best = marginals[j];
          best_i = j;
          found = true;
        }
      }
      if (!found || best <= mean_over(marginals, active)) {
        break;
      }
      active.push_back(best_i);
      changed = true;
    }
    std::vector<std::size_t> survivors;
    const double avg = mean_over(marginals, active);
    for (const std::size_t i : active) {
      const double d = alpha * (marginals[i] - avg);
      if (x[i] <= kBoundaryTol && d < 0.0 && x[i] + d <= 0.0) {
        changed = true;
        continue;
      }
      survivors.push_back(i);
    }
    if (survivors.empty()) {
      survivors.push_back(*std::max_element(
          active.begin(), active.end(), [&](std::size_t a, std::size_t b) {
            return marginals[a] < marginals[b];
          }));
    }
    active = std::move(survivors);
    if (!changed) {
      break;
    }
  }
  std::sort(active.begin(), active.end());
  return active;
}

}  // namespace

PlannerResult resource_directed_plan(const std::vector<ConcaveUtility>& agents,
                                     std::vector<double> initial,
                                     const PlannerOptions& options) {
  FAP_EXPECTS(!agents.empty(), "need at least one agent");
  FAP_EXPECTS(agents.size() == initial.size(),
              "initial allocation size must match agent count");
  FAP_EXPECTS(options.alpha > 0.0, "step size must be positive");
  FAP_EXPECTS(options.epsilon > 0.0, "epsilon must be positive");
  for (const double xi : initial) {
    FAP_EXPECTS(xi >= 0.0, "initial allocation must be non-negative");
  }

  const std::size_t n = agents.size();
  PlannerResult result;
  result.x = std::move(initial);

  auto marginals_at = [&](const std::vector<double>& x) {
    std::vector<double> m(n);
    for (std::size_t i = 0; i < n; ++i) {
      m[i] = agents[i].derivative(x[i]);
    }
    return m;
  };

  auto record = [&](std::size_t iteration, double spread) {
    if (!options.record_trace) {
      return;
    }
    PlannerIteration rec;
    rec.iteration = iteration;
    rec.social_utility = social_utility(agents, result.x);
    rec.marginal_spread = spread;
    rec.x = result.x;
    result.trace.push_back(std::move(rec));
  };

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    const std::vector<double> marginals = marginals_at(result.x);
    const std::vector<std::size_t> active =
        active_set(result.x, marginals, options.alpha);
    double lo = std::numeric_limits<double>::infinity();
    double hi = -lo;
    for (const std::size_t i : active) {
      lo = std::min(lo, marginals[i]);
      hi = std::max(hi, marginals[i]);
    }
    const double spread = hi - lo;
    record(iter, spread);
    if (spread < options.epsilon) {
      result.converged = true;
      break;
    }

    const double avg = mean_over(marginals, active);
    double theta = 1.0;
    std::vector<double> deltas(active.size());
    for (std::size_t idx = 0; idx < active.size(); ++idx) {
      const std::size_t i = active[idx];
      deltas[idx] = options.alpha * (marginals[i] - avg);
      if (deltas[idx] < 0.0 && result.x[i] + deltas[idx] < 0.0) {
        theta = std::min(theta, result.x[i] / -deltas[idx]);
      }
    }
    for (std::size_t idx = 0; idx < active.size(); ++idx) {
      const std::size_t i = active[idx];
      result.x[i] = std::max(0.0, result.x[i] + theta * deltas[idx]);
    }
    ++result.iterations;
  }
  result.social_utility = social_utility(agents, result.x);
  return result;
}

}  // namespace fap::econ
