#include "econ/price_directed.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace fap::econ {

double agent_demand(const ConcaveUtility& agent, double price,
                    double demand_cap, double tol) {
  FAP_EXPECTS(demand_cap > 0.0, "demand cap must be positive");
  // u' is decreasing: u'(0) <= p means demanding nothing is optimal;
  // u'(cap) >= p means the cap binds.
  if (agent.derivative(0.0) <= price) {
    return 0.0;
  }
  if (agent.derivative(demand_cap) >= price) {
    return demand_cap;
  }
  double lo = 0.0;
  double hi = demand_cap;
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    if (agent.derivative(mid) > price) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

namespace {

std::vector<double> demands_at(const std::vector<ConcaveUtility>& agents,
                               double price, double cap) {
  std::vector<double> x(agents.size(), 0.0);
  for (std::size_t i = 0; i < agents.size(); ++i) {
    x[i] = agent_demand(agents[i], price, cap);
  }
  return x;
}

double sum_of(const std::vector<double>& v) {
  double s = 0.0;
  for (const double x : v) {
    s += x;
  }
  return s;
}

}  // namespace

TatonnementResult tatonnement(const std::vector<ConcaveUtility>& agents,
                              double total,
                              const TatonnementOptions& options) {
  FAP_EXPECTS(!agents.empty(), "need at least one agent");
  FAP_EXPECTS(total > 0.0, "resource total must be positive");
  FAP_EXPECTS(options.gamma > 0.0, "gamma must be positive");
  FAP_EXPECTS(options.tol > 0.0, "tolerance must be positive");

  TatonnementResult result;
  double price = options.initial_price;
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    std::vector<double> demand =
        demands_at(agents, price, options.demand_cap);
    const double excess = sum_of(demand) - total;
    if (options.record_trace) {
      TatonnementIteration rec;
      rec.iteration = iter;
      rec.price = price;
      rec.excess_demand = excess;
      rec.social_utility = social_utility(agents, demand);
      rec.demand = demand;
      result.trace.push_back(std::move(rec));
    }
    result.x = std::move(demand);
    result.price = price;
    ++result.iterations;
    if (std::fabs(excess) < options.tol) {
      result.converged = true;
      break;
    }
    // Excess demand raises the price, excess supply lowers it. The price
    // is allowed to go negative: when holding the resource is costly (as
    // in FAP, where hosting attracts traffic), the market clears at a
    // negative price — agents are paid to hold.
    price += options.gamma * excess;
  }
  return result;
}

void tatonnement_step(std::vector<double>& prices,
                      const std::vector<double>& demand,
                      const std::vector<double>& supply,
                      const std::vector<double>& gamma) {
  FAP_EXPECTS(demand.size() == prices.size() &&
                  supply.size() == prices.size() &&
                  gamma.size() == prices.size(),
              "price/demand/supply/gamma vectors must have equal size");
  for (std::size_t i = 0; i < prices.size(); ++i) {
    FAP_EXPECTS(gamma[i] >= 0.0, "price adjustment speed must be "
                                 "non-negative");
    const double next = prices[i] + gamma[i] * (demand[i] - supply[i]);
    prices[i] = next > 0.0 ? next : 0.0;
  }
}

Equilibrium walrasian_equilibrium(const std::vector<ConcaveUtility>& agents,
                                  double total, double demand_cap,
                                  double tol) {
  FAP_EXPECTS(!agents.empty(), "need at least one agent");
  FAP_EXPECTS(total > 0.0, "resource total must be positive");
  FAP_EXPECTS(static_cast<double>(agents.size()) * demand_cap >= total,
              "caps must admit a clearing allocation");

  // Bracket the clearing price: aggregate demand decreases in p, so grow
  // hi until demand falls below total.
  double lo = 0.0;
  double hi = 1.0;
  while (sum_of(demands_at(agents, hi, demand_cap)) > total) {
    hi *= 2.0;
    FAP_ENSURES(hi < 1e18, "failed to bracket the clearing price");
  }
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    if (sum_of(demands_at(agents, mid, demand_cap)) > total) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  Equilibrium eq;
  eq.price = 0.5 * (lo + hi);
  eq.x = demands_at(agents, eq.price, demand_cap);
  return eq;
}

}  // namespace fap::econ
