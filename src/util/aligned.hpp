// Cache-line-aligned storage for the SoA batch kernels.
//
// The batched allocator lays per-node quantities out as [node][lane]
// planes and the AVX2 kernels load 32-byte vectors from every row, so
// plane rows must start on (at least) 32-byte boundaries. We align to a
// full 64-byte cache line: together with a lane stride rounded up to
// kDoublesPerCacheLine this makes EVERY row of every plane 64-byte
// aligned, which lets the vector loops use aligned loads/stores and
// never touch a cache line they don't own.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace fap::util {

inline constexpr std::size_t kCacheLineBytes = 64;
inline constexpr std::size_t kDoublesPerCacheLine =
    kCacheLineBytes / sizeof(double);

/// Minimal allocator handing out `Alignment`-aligned blocks via the
/// aligned operator new (C++17). Stateless, so vectors using it swap and
/// move exactly like std::vector<double>.
template <class T, std::size_t Alignment>
struct AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");
  static_assert(Alignment >= alignof(T), "alignment below the type's own");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// A std::vector<double> whose data() is 64-byte aligned.
using AlignedVector = std::vector<double, AlignedAllocator<double, kCacheLineBytes>>;

}  // namespace fap::util
