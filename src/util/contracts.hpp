// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects()", GSL's Expects/Ensures). We use exceptions rather
// than terminate so library misuse is testable and recoverable by callers.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fap::util {

/// Thrown when a precondition of a public API is violated.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant or postcondition fails; indicates a
/// bug in this library rather than in calling code.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] void throw_precondition(const char* expr, const char* file,
                                     int line, const std::string& msg);
[[noreturn]] void throw_invariant(const char* expr, const char* file, int line,
                                  const std::string& msg);

}  // namespace detail

}  // namespace fap::util

/// Precondition check: validates arguments of public entry points.
#define FAP_EXPECTS(expr, msg)                                           \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::fap::util::detail::throw_precondition(#expr, __FILE__, __LINE__, \
                                              (msg));                    \
    }                                                                    \
  } while (false)

/// Invariant / postcondition check: validates internal consistency.
#define FAP_ENSURES(expr, msg)                                         \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::fap::util::detail::throw_invariant(#expr, __FILE__, __LINE__, \
                                           (msg));                    \
    }                                                                  \
  } while (false)
