// Small numerical toolkit: finite differences (used by tests to cross-check
// the closed-form gradients of the cost models), scalar minimization (used
// to find the empirically best step size for Figure 6), and float helpers.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace fap::util {

/// True when |a - b| <= abs_tol + rel_tol * max(|a|, |b|).
bool almost_equal(double a, double b, double abs_tol = 1e-9,
                  double rel_tol = 1e-9) noexcept;

/// Central-difference numeric gradient of f at x (one-dimensional per
/// coordinate; f is evaluated 2*dim times).
std::vector<double> numeric_gradient(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> x, double h = 1e-6);

/// Central-difference second derivative of f w.r.t. coordinate i at x.
double numeric_second_derivative(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> x, std::size_t i, double h = 1e-4);

/// Result of a scalar minimization.
struct ScalarMinimum {
  double x = 0.0;
  double value = 0.0;
};

/// Golden-section search for the minimum of a unimodal f over [lo, hi].
/// Runs until the bracket is narrower than tol. If f is not unimodal this
/// still converges to *a* local minimum inside the bracket.
ScalarMinimum golden_section_minimize(const std::function<double(double)>& f,
                                      double lo, double hi,
                                      double tol = 1e-4);

/// Minimizes an integer-argument objective f over [lo, hi] by exhaustive
/// evaluation; ties broken toward the smaller argument. Used for "best
/// iteration count over a grid of step sizes" style searches.
struct GridMinimum {
  double x = 0.0;
  double value = 0.0;
  std::size_t index = 0;  ///< grid index of x (x == grid_points(...)[index])
};
GridMinimum grid_minimize(const std::function<double(double)>& f, double lo,
                          double hi, std::size_t points);

/// The abscissas grid_minimize evaluates, in evaluation order:
/// x_i = lo + (hi - lo)/(points - 1) * i. Exposed so callers can evaluate
/// the objective at every point themselves (e.g. batched across the grid)
/// and reduce with grid_select.
std::vector<double> grid_points(double lo, double hi, std::size_t points);

/// The reduction half of grid_minimize: picks the minimum of
/// (xs[i], values[i]) with grid_minimize's exact tie rule (strictly
/// smaller value wins, so the FIRST — lowest x — of tied values is kept).
/// grid_select(grid_points(lo, hi, p), values) == grid_minimize(f, lo, hi,
/// p) whenever values[i] == f(xs[i]) bit for bit.
GridMinimum grid_select(const std::vector<double>& xs,
                        const std::vector<double>& values);

/// Strict base-10 parse of an unsigned 64-bit integer. True and writes
/// `out` only when `text` is a non-empty, all-digit string whose value
/// fits in std::uint64_t. Rejects what std::strtoull silently accepts:
/// a leading '-' (which would wrap "-3" to ~1.8e19), '+', leading
/// whitespace, trailing junk, and ERANGE overflow. Used by the bench
/// flag parser so `--jobs -3` is a usage error, not a 2^64 thread
/// request.
bool parse_uint64(const char* text, std::uint64_t& out) noexcept;

/// Sum of a vector (convenience, used in feasibility assertions).
double sum(const std::vector<double>& v) noexcept;

/// Compensated (Neumaier) running sum. A naive left-to-right sum of R
/// same-sign terms carries O(R·eps) relative error — ~5e-11 at R = 1e6,
/// visible both in popularity normalization (which promises Σp = 1 to
/// 1e-15) and in catalog node-load accounting (where the capacity
/// residual is compared against 1e-9). Neumaier's variant of Kahan
/// summation keeps the error at O(eps) independent of R, and the result
/// is a pure function of the addend order, so deterministic accumulation
/// stays deterministic.
class NeumaierSum {
 public:
  void add(double v) noexcept {
    const double t = sum_ + v;
    if (std::fabs(sum_) >= std::fabs(v)) {
      comp_ += (sum_ - t) + v;
    } else {
      comp_ += (v - t) + sum_;
    }
    sum_ = t;
  }
  double value() const noexcept { return sum_ + comp_; }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

/// Neumaier-compensated sum of a vector.
double stable_sum(const std::vector<double>& v) noexcept;

/// L-infinity distance between two equally sized vectors.
double linf_distance(const std::vector<double>& a,
                     const std::vector<double>& b);

}  // namespace fap::util
