#include "util/numeric.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace fap::util {

bool almost_equal(double a, double b, double abs_tol, double rel_tol) noexcept {
  const double diff = std::fabs(a - b);
  return diff <= abs_tol + rel_tol * std::max(std::fabs(a), std::fabs(b));
}

std::vector<double> numeric_gradient(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> x, double h) {
  std::vector<double> grad(x.size(), 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double original = x[i];
    x[i] = original + h;
    const double fp = f(x);
    x[i] = original - h;
    const double fm = f(x);
    x[i] = original;
    grad[i] = (fp - fm) / (2.0 * h);
  }
  return grad;
}

double numeric_second_derivative(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> x, std::size_t i, double h) {
  FAP_EXPECTS(i < x.size(), "coordinate out of range");
  const double original = x[i];
  const double f0 = f(x);
  x[i] = original + h;
  const double fp = f(x);
  x[i] = original - h;
  const double fm = f(x);
  return (fp - 2.0 * f0 + fm) / (h * h);
}

ScalarMinimum golden_section_minimize(const std::function<double(double)>& f,
                                      double lo, double hi, double tol) {
  FAP_EXPECTS(hi > lo, "bracket must be non-empty");
  FAP_EXPECTS(tol > 0.0, "tolerance must be positive");
  constexpr double kInvPhi = 0.6180339887498949;  // 1/phi
  double a = lo;
  double b = hi;
  double c = b - kInvPhi * (b - a);
  double d = a + kInvPhi * (b - a);
  double fc = f(c);
  double fd = f(d);
  while (b - a > tol) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - kInvPhi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + kInvPhi * (b - a);
      fd = f(d);
    }
  }
  const double x = 0.5 * (a + b);
  return ScalarMinimum{x, f(x)};
}

GridMinimum grid_minimize(const std::function<double(double)>& f, double lo,
                          double hi, std::size_t points) {
  const std::vector<double> xs = grid_points(lo, hi, points);
  std::vector<double> values;
  values.reserve(xs.size());
  for (const double x : xs) {
    values.push_back(f(x));
  }
  return grid_select(xs, values);
}

std::vector<double> grid_points(double lo, double hi, std::size_t points) {
  FAP_EXPECTS(points >= 2, "grid needs at least two points");
  FAP_EXPECTS(hi > lo, "grid range must be non-empty");
  std::vector<double> xs;
  xs.reserve(points);
  xs.push_back(lo);
  const double step = (hi - lo) / static_cast<double>(points - 1);
  for (std::size_t i = 1; i < points; ++i) {
    xs.push_back(lo + step * static_cast<double>(i));
  }
  return xs;
}

GridMinimum grid_select(const std::vector<double>& xs,
                        const std::vector<double>& values) {
  FAP_EXPECTS(!xs.empty() && xs.size() == values.size(),
              "grid_select needs one value per abscissa");
  GridMinimum best{xs[0], values[0], 0};
  for (std::size_t i = 1; i < xs.size(); ++i) {
    if (values[i] < best.value) {
      best = GridMinimum{xs[i], values[i], i};
    }
  }
  return best;
}

bool parse_uint64(const char* text, std::uint64_t& out) noexcept {
  if (text == nullptr || *text == '\0') {
    return false;
  }
  std::uint64_t value = 0;
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') {
      return false;  // signs, whitespace, and trailing junk all land here
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(*p - '0');
    if (value > (~std::uint64_t{0} - digit) / 10) {
      return false;  // would overflow (the ERANGE case)
    }
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

double sum(const std::vector<double>& v) noexcept {
  double total = 0.0;
  for (const double x : v) {
    total += x;
  }
  return total;
}

double stable_sum(const std::vector<double>& v) noexcept {
  NeumaierSum acc;
  for (const double x : v) {
    acc.add(x);
  }
  return acc.value();
}

double linf_distance(const std::vector<double>& a,
                     const std::vector<double>& b) {
  FAP_EXPECTS(a.size() == b.size(), "size mismatch");
  double dist = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dist = std::max(dist, std::fabs(a[i] - b[i]));
  }
  return dist;
}

}  // namespace fap::util
