// Minimal JSON emission (no external dependencies) for exporting
// experiment artifacts — allocation traces, bench series, estimated
// parameters — to plotting and analysis tools.
//
// Writer only: the library consumes no JSON. The emitter produces
// RFC 8259-conformant output: strings are escaped (control characters,
// quotes, backslashes), non-finite doubles are emitted as null (JSON has
// no NaN/Inf), and containers nest arbitrarily.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fap::util {

/// Streaming JSON writer with explicit begin/end nesting.
///
///   JsonWriter json;
///   json.begin_object();
///   json.key("alpha").value(0.3);
///   json.key("trace").begin_array();
///   for (double c : costs) json.value(c);
///   json.end_array();
///   json.end_object();
///   std::string out = json.str();
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; must be inside an object and followed by a
  /// value (or container).
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& text);
  JsonWriter& value(const char* text);
  JsonWriter& value(double number);
  JsonWriter& value(long long number);
  JsonWriter& value(std::size_t number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// Convenience: a whole array of doubles.
  JsonWriter& value(const std::vector<double>& numbers);

  /// The document so far. Throws unless all containers are closed.
  std::string str() const;

 private:
  enum class Frame { kObject, kArray };
  void comma_if_needed();
  void note_value();

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;
  bool expecting_value_ = false;  // a key was just written
};

/// JSON string escaping (exposed for tests).
std::string json_escape(const std::string& text);

}  // namespace fap::util
