#include "util/rng.hpp"

#include <cmath>
#include <numeric>

namespace fap::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
  // Guard against the (astronomically unlikely) all-zero state, which is a
  // fixed point of xoshiro.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Lemire-style rejection: draw until the value falls in the largest
  // multiple of n representable in 64 bits.
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) {
      return r % n;
    }
  }
}

double Rng::normal(double mean, double stddev) noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return mean + stddev * u * factor;
}

Rng Rng::split() noexcept {
  return Rng((*this)());
}

std::vector<std::size_t> Rng::permutation(std::size_t n) noexcept {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = uniform_index(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace fap::util
