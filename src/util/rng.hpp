// Deterministic, splittable pseudo-random number generation.
//
// All stochastic components of the library (workload generators, the
// discrete-event simulator, random topologies) draw from fap::util::Rng so
// that every experiment is exactly reproducible from a single seed, and so
// that independent components can be handed independent streams via split().
#pragma once

#include <cstdint>
#include <vector>

namespace fap::util {

/// xoshiro256++ generator seeded through splitmix64, per the reference
/// implementation by Blackman & Vigna. Satisfies the C++ named requirement
/// UniformRandomBitGenerator so it can also drive <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four words of state by iterating splitmix64 on `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next 64 uniformly distributed bits.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection to avoid
  /// modulo bias.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Exponentially distributed variate with the given rate (mean 1/rate).
  double exponential(double rate) noexcept;

  /// Standard normal variate (Marsaglia polar method).
  double normal(double mean = 0.0, double stddev = 1.0) noexcept;

  /// Returns an independent generator derived from this one's stream.
  /// Statistically, streams produced by successive split() calls do not
  /// overlap for any practical experiment length.
  Rng split() noexcept;

  /// Random permutation of {0, 1, ..., n-1} (Fisher–Yates).
  std::vector<std::size_t> permutation(std::size_t n) noexcept;

 private:
  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace fap::util
