// Deterministic, splittable pseudo-random number generation.
//
// All stochastic components of the library (workload generators, the
// discrete-event simulator, random topologies) draw from fap::util::Rng so
// that every experiment is exactly reproducible from a single seed, and so
// that independent components can be handed independent streams via split().
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace fap::util {

/// xoshiro256++ generator seeded through splitmix64, per the reference
/// implementation by Blackman & Vigna. Satisfies the C++ named requirement
/// UniformRandomBitGenerator so it can also drive <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four words of state by iterating splitmix64 on `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  // The per-draw primitives are defined inline: the DES event loop draws
  // two exponentials and one uniform per completed access, and the
  // out-of-line call chain (exponential -> uniform -> operator()) was
  // measurable there. The arithmetic is unchanged.

  /// Next 64 uniformly distributed bits.
  result_type operator()() noexcept {
    const std::uint64_t result =
        rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    // 53 top bits -> double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection to avoid
  /// modulo bias.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Exponentially distributed variate with the given rate (mean 1/rate).
  double exponential(double rate) noexcept {
    // -log(1 - U) / rate; 1 - U avoids log(0).
    return -std::log1p(-uniform()) / rate;
  }

  /// Standard normal variate (Marsaglia polar method).
  double normal(double mean = 0.0, double stddev = 1.0) noexcept;

  /// Returns an independent generator derived from this one's stream.
  /// Statistically, streams produced by successive split() calls do not
  /// overlap for any practical experiment length.
  Rng split() noexcept;

  /// Random permutation of {0, 1, ..., n-1} (Fisher–Yates).
  std::vector<std::size_t> permutation(std::size_t n) noexcept;

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace fap::util
