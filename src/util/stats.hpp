// Online statistics used by the discrete-event simulator and the benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace fap::util {

/// Numerically stable single-pass accumulator (Welford) for mean, variance
/// and extrema of a stream of observations.
class RunningStats {
 public:
  /// Defined inline: this is the DES event loop's per-observation hot
  /// path (four adds per completed access), and the out-of-line call was
  /// measurable there.
  void add(double x) noexcept {
    if (count_ == 0) {
      min_ = x;
      max_ = x;
    } else {
      min_ = std::min(min_, x);
      max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  /// Merge another accumulator into this one (parallel Welford / Chan).
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept;
  /// Unbiased sample variance; 0 for fewer than two observations.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept;
  double max() const noexcept;
  double sum() const noexcept { return mean() * static_cast<double>(count_); }

  /// Half-width of the ~95% normal-approximation confidence interval of the
  /// mean (1.96 * s / sqrt(n)); 0 for fewer than two observations.
  double ci95_halfwidth() const noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Time-weighted average of a piecewise-constant signal, e.g. queue length
/// over simulated time. Call record(t, value) whenever the signal changes;
/// the value is held until the next record.
///
/// Timestamps are expected to be non-decreasing. A record whose time lies
/// before the previous one is clamped to the previous time (the change is
/// treated as simultaneous with the last one): the signal value updates,
/// no interval is accumulated, and — crucially — the clock never rewinds,
/// so a later in-order record cannot double-count the overlapped span.
class TimeWeightedStats {
 public:
  void record(double time, double value) noexcept;
  /// Average of the signal over [first record time, `until`].
  double average(double until) const noexcept;
  double last_value() const noexcept { return value_; }

 private:
  bool started_ = false;
  double start_time_ = 0.0;
  double last_time_ = 0.0;
  double value_ = 0.0;
  double weighted_sum_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); out-of-range finite samples are
/// clamped into the edge buckets, non-finite samples are counted aside
/// (they carry no position, so filing them into a bucket would silently
/// poison every quantile). Used for delay distributions in the DES.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  /// Inline for the same reason as RunningStats::add — once per DES
  /// completion.
  void add(double x) noexcept {
    if (!std::isfinite(x)) {
      ++nonfinite_;
      return;
    }
    std::size_t idx = 0;
    if (x >= hi_) {
      idx = counts_.size() - 1;
    } else if (x > lo_) {
      idx = static_cast<std::size_t>((x - lo_) / width_);
      idx = std::min(idx, counts_.size() - 1);
    }
    ++counts_[idx];
    ++total_;
  }
  /// Zeroes every bucket (range and bucket count unchanged) without
  /// releasing storage — equivalent to a freshly constructed histogram
  /// with the same parameters.
  void clear() noexcept;
  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bucket) const;
  std::size_t total() const noexcept { return total_; }
  /// Samples rejected by add() for being NaN or infinite.
  std::size_t nonfinite() const noexcept { return nonfinite_; }
  /// Inclusive lower edge of the given bucket.
  double bucket_lo(std::size_t bucket) const;
  /// Linearly interpolated quantile estimate, q in [0, 1]. Empty buckets
  /// are skipped when the target lands exactly on a cumulative boundary,
  /// and the interpolated value never exceeds hi_.
  double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t nonfinite_ = 0;
};

/// Histogram with exponentially spaced bucket edges over [lo, hi), lo > 0:
/// bucket b covers [lo·r^b, lo·r^(b+1)) with r = (hi/lo)^(1/buckets), so
/// relative resolution is constant across the range. This is what makes
/// p999 of a heavy-tailed delay distribution meaningful: a linear
/// histogram wide enough for the tail quantizes the body into one coarse
/// bucket, while here every decade gets the same number of buckets.
///
/// Finite samples at or below lo land in bucket 0 and samples at or above
/// hi in the last bucket (clamped, like Histogram); non-finite samples
/// are counted aside. merge() makes the per-window accumulation in the
/// trace server exact under any merge order (integer bucket adds).
class LogHistogram {
 public:
  LogHistogram(double lo, double hi, std::size_t buckets);

  /// Inline: once per served request in the trace-serving loop.
  void add(double x) noexcept {
    if (!std::isfinite(x)) {
      ++nonfinite_;
      return;
    }
    std::size_t idx = 0;
    if (x >= hi_) {
      idx = counts_.size() - 1;
    } else if (x > lo_) {
      idx = static_cast<std::size_t>(std::log(x / lo_) * inv_log_step_);
      idx = std::min(idx, counts_.size() - 1);
    }
    ++counts_[idx];
    ++total_;
  }
  void clear() noexcept;
  /// Adds the other histogram's buckets into this one. The two must have
  /// been constructed with identical (lo, hi, buckets).
  void merge(const LogHistogram& other);
  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bucket) const;
  std::size_t total() const noexcept { return total_; }
  std::size_t nonfinite() const noexcept { return nonfinite_; }
  /// Inclusive lower edge of the given bucket: lo·r^bucket.
  double bucket_lo(std::size_t bucket) const;
  /// Quantile estimate with linear interpolation inside the (geometric)
  /// bucket, q in [0, 1]; same empty-bucket-skip and hi_ clamp semantics
  /// as Histogram::quantile.
  double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  double log_step_;      ///< ln r
  double inv_log_step_;  ///< 1 / ln r
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t nonfinite_ = 0;
};

}  // namespace fap::util
