// Online statistics used by the discrete-event simulator and the benches.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace fap::util {

/// Numerically stable single-pass accumulator (Welford) for mean, variance
/// and extrema of a stream of observations.
class RunningStats {
 public:
  /// Defined inline: this is the DES event loop's per-observation hot
  /// path (four adds per completed access), and the out-of-line call was
  /// measurable there.
  void add(double x) noexcept {
    if (count_ == 0) {
      min_ = x;
      max_ = x;
    } else {
      min_ = std::min(min_, x);
      max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  /// Merge another accumulator into this one (parallel Welford / Chan).
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept;
  /// Unbiased sample variance; 0 for fewer than two observations.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept;
  double max() const noexcept;
  double sum() const noexcept { return mean() * static_cast<double>(count_); }

  /// Half-width of the ~95% normal-approximation confidence interval of the
  /// mean (1.96 * s / sqrt(n)); 0 for fewer than two observations.
  double ci95_halfwidth() const noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Time-weighted average of a piecewise-constant signal, e.g. queue length
/// over simulated time. Call record(t, value) whenever the signal changes;
/// the value is held until the next record.
class TimeWeightedStats {
 public:
  void record(double time, double value) noexcept;
  /// Average of the signal over [first record time, `until`].
  double average(double until) const noexcept;
  double last_value() const noexcept { return value_; }

 private:
  bool started_ = false;
  double start_time_ = 0.0;
  double last_time_ = 0.0;
  double value_ = 0.0;
  double weighted_sum_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples are clamped
/// into the edge buckets. Used for delay distributions in the DES.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  /// Inline for the same reason as RunningStats::add — once per DES
  /// completion.
  void add(double x) noexcept {
    std::size_t idx = 0;
    if (x >= hi_) {
      idx = counts_.size() - 1;
    } else if (x > lo_) {
      idx = static_cast<std::size_t>((x - lo_) / width_);
      idx = std::min(idx, counts_.size() - 1);
    }
    ++counts_[idx];
    ++total_;
  }
  /// Zeroes every bucket (range and bucket count unchanged) without
  /// releasing storage — equivalent to a freshly constructed histogram
  /// with the same parameters.
  void clear() noexcept;
  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bucket) const;
  std::size_t total() const noexcept { return total_; }
  /// Inclusive lower edge of the given bucket.
  double bucket_lo(std::size_t bucket) const;
  /// Linearly interpolated quantile estimate, q in [0, 1].
  double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace fap::util
