#include "util/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/contracts.hpp"

namespace fap::util {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma_if_needed() {
  if (!stack_.empty() && has_items_.back() && !expecting_value_) {
    out_ += ',';
  }
}

void JsonWriter::note_value() {
  if (!stack_.empty()) {
    has_items_.back() = true;
  }
  expecting_value_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  FAP_EXPECTS(stack_.empty() || stack_.back() == Frame::kArray ||
                  expecting_value_,
              "an object inside an object needs a key first");
  comma_if_needed();
  out_ += '{';
  note_value();
  stack_.push_back(Frame::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  FAP_EXPECTS(!stack_.empty() && stack_.back() == Frame::kObject,
              "no object to close");
  FAP_EXPECTS(!expecting_value_, "dangling key");
  out_ += '}';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  FAP_EXPECTS(stack_.empty() || stack_.back() == Frame::kArray ||
                  expecting_value_,
              "an array inside an object needs a key first");
  comma_if_needed();
  out_ += '[';
  note_value();
  stack_.push_back(Frame::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  FAP_EXPECTS(!stack_.empty() && stack_.back() == Frame::kArray,
              "no array to close");
  out_ += ']';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  FAP_EXPECTS(!stack_.empty() && stack_.back() == Frame::kObject,
              "keys are only valid inside objects");
  FAP_EXPECTS(!expecting_value_, "two keys in a row");
  comma_if_needed();
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  has_items_.back() = true;
  expecting_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& text) {
  comma_if_needed();
  out_ += '"';
  out_ += json_escape(text);
  out_ += '"';
  note_value();
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string(text));
}

JsonWriter& JsonWriter::value(double number) {
  if (!std::isfinite(number)) {
    return null();  // JSON has no NaN/Inf
  }
  comma_if_needed();
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", number);
  out_ += buffer;
  note_value();
  return *this;
}

JsonWriter& JsonWriter::value(long long number) {
  comma_if_needed();
  out_ += std::to_string(number);
  note_value();
  return *this;
}

JsonWriter& JsonWriter::value(std::size_t number) {
  comma_if_needed();
  out_ += std::to_string(number);
  note_value();
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  comma_if_needed();
  out_ += flag ? "true" : "false";
  note_value();
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_if_needed();
  out_ += "null";
  note_value();
  return *this;
}

JsonWriter& JsonWriter::value(const std::vector<double>& numbers) {
  begin_array();
  for (const double x : numbers) {
    value(x);
  }
  return end_array();
}

std::string JsonWriter::str() const {
  FAP_EXPECTS(stack_.empty(), "unclosed containers in JSON document");
  return out_;
}

}  // namespace fap::util
