// ASCII table / CSV rendering for the bench binaries. Each bench prints the
// series behind one figure of the paper in a form that can be eyeballed or
// redirected to CSV for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace fap::util {

/// A cell is a string, an integer, or a double (printed with fixed
/// precision chosen per table).
using Cell = std::variant<std::string, long long, double>;

/// Column-aligned table builder.
///
///   Table t({"alpha", "iterations", "final cost"});
///   t.add_row({0.3, 10LL, 1.8327});
///   std::cout << t.to_string();
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int double_precision = 6);

  void add_row(std::vector<Cell> row);
  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Render with padded, right-aligned numeric columns.
  std::string to_string() const;
  /// Render as RFC-4180-ish CSV (quotes only when needed).
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int double_precision_;
};

/// Renders a y-versus-index series as a crude ASCII line chart, used by the
/// convergence-profile benches so the "shape" of each paper figure is
/// visible directly in terminal output.
///
/// `height` rows tall; samples are bucketed horizontally to at most `width`
/// columns.
std::string ascii_chart(const std::vector<double>& series, std::size_t width,
                        std::size_t height, const std::string& y_label);

/// Formats a double with the given precision (helper shared by Table and
/// ad-hoc bench output).
std::string format_double(double v, int precision);

}  // namespace fap::util
