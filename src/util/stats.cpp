#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace fap::util {

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const noexcept {
  return count_ == 0 ? 0.0 : mean_;
}

double RunningStats::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept {
  return std::sqrt(variance());
}

double RunningStats::min() const noexcept {
  return count_ == 0 ? 0.0 : min_;
}

double RunningStats::max() const noexcept {
  return count_ == 0 ? 0.0 : max_;
}

double RunningStats::ci95_halfwidth() const noexcept {
  if (count_ < 2) {
    return 0.0;
  }
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

void TimeWeightedStats::record(double time, double value) noexcept {
  if (!started_) {
    started_ = true;
    start_time_ = time;
    last_time_ = time;
  } else {
    // Clamp out-of-order timestamps to the last seen time instead of
    // rewinding last_time_: a rewind would make the next in-order record
    // re-accumulate the already-counted [time, last_time_] span into
    // weighted_sum_. record() is noexcept, so clamping (not throwing) is
    // the only available response.
    const double t = std::max(time, last_time_);
    weighted_sum_ += value_ * (t - last_time_);
    last_time_ = t;
  }
  value_ = value;
}

double TimeWeightedStats::average(double until) const noexcept {
  if (!started_ || until <= start_time_) {
    return 0.0;
  }
  double sum = weighted_sum_;
  if (until > last_time_) {
    sum += value_ * (until - last_time_);
  }
  return sum / (until - start_time_);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  FAP_EXPECTS(hi > lo, "histogram range must be non-empty");
  FAP_EXPECTS(buckets > 0, "histogram needs at least one bucket");
}

void Histogram::clear() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  nonfinite_ = 0;
}

std::size_t Histogram::count(std::size_t bucket) const {
  FAP_EXPECTS(bucket < counts_.size(), "bucket out of range");
  return counts_[bucket];
}

double Histogram::bucket_lo(std::size_t bucket) const {
  FAP_EXPECTS(bucket < counts_.size(), "bucket out of range");
  return lo_ + width_ * static_cast<double>(bucket);
}

double Histogram::quantile(double q) const {
  FAP_EXPECTS(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  if (total_ == 0) {
    return lo_;
  }
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double next = cumulative + static_cast<double>(counts_[b]);
    // Empty buckets are skipped even when the target lands exactly on the
    // cumulative boundary: the quantile must sit where mass actually is,
    // not at the left edge of a hole in the distribution.
    if (counts_[b] > 0 && next >= target) {
      const double within =
          (target - cumulative) / static_cast<double>(counts_[b]);
      return std::min(bucket_lo(b) + within * width_, hi_);
    }
    cumulative = next;
  }
  return hi_;
}

LogHistogram::LogHistogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  FAP_EXPECTS(lo > 0.0, "log histogram needs a positive lower edge");
  FAP_EXPECTS(hi > lo, "histogram range must be non-empty");
  FAP_EXPECTS(buckets > 0, "histogram needs at least one bucket");
  log_step_ = std::log(hi_ / lo_) / static_cast<double>(buckets);
  inv_log_step_ = 1.0 / log_step_;
}

void LogHistogram::clear() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  nonfinite_ = 0;
}

void LogHistogram::merge(const LogHistogram& other) {
  FAP_EXPECTS(lo_ == other.lo_ && hi_ == other.hi_ &&
                  counts_.size() == other.counts_.size(),
              "merging log histograms with different parameters");
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    counts_[b] += other.counts_[b];
  }
  total_ += other.total_;
  nonfinite_ += other.nonfinite_;
}

std::size_t LogHistogram::count(std::size_t bucket) const {
  FAP_EXPECTS(bucket < counts_.size(), "bucket out of range");
  return counts_[bucket];
}

double LogHistogram::bucket_lo(std::size_t bucket) const {
  FAP_EXPECTS(bucket < counts_.size(), "bucket out of range");
  return lo_ * std::exp(log_step_ * static_cast<double>(bucket));
}

double LogHistogram::quantile(double q) const {
  FAP_EXPECTS(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  if (total_ == 0) {
    return lo_;
  }
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double next = cumulative + static_cast<double>(counts_[b]);
    if (counts_[b] > 0 && next >= target) {
      const double within =
          (target - cumulative) / static_cast<double>(counts_[b]);
      const double edge = lo_ * std::exp(log_step_ * static_cast<double>(b));
      const double width =
          lo_ * std::exp(log_step_ * static_cast<double>(b + 1)) - edge;
      return std::min(edge + within * width, hi_);
    }
    cumulative = next;
  }
  return hi_;
}

}  // namespace fap::util
