#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/contracts.hpp"

namespace fap::util {

namespace {

std::string cell_to_string(const Cell& cell, int precision) {
  if (const auto* s = std::get_if<std::string>(&cell)) {
    return *s;
  }
  if (const auto* i = std::get_if<long long>(&cell)) {
    return std::to_string(*i);
  }
  return format_double(std::get<double>(cell), precision);
}

bool csv_needs_quoting(const std::string& s) {
  return s.find_first_of(",\"\n") != std::string::npos;
}

std::string csv_escape(const std::string& s) {
  if (!csv_needs_quoting(s)) {
    return s;
  }
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string format_double(double v, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << v;
  return out.str();
}

Table::Table(std::vector<std::string> headers, int double_precision)
    : headers_(std::move(headers)), double_precision_(double_precision) {
  FAP_EXPECTS(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<Cell> row) {
  FAP_EXPECTS(row.size() == headers_.size(),
              "row width must match header width");
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  std::vector<std::size_t> widths;
  widths.reserve(headers_.size());
  for (const auto& h : headers_) {
    widths.push_back(h.size());
  }
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(cell_to_string(row[c], double_precision_));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }

  std::ostringstream out;
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c]))
          << cells[c];
    }
    out << " |\n";
  };
  print_row(headers_);
  out << '|';
  for (const std::size_t w : widths) {
    out << std::string(w + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rendered) {
    print_row(row);
  }
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "" : ",") << csv_escape(headers_[c]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : ",")
          << csv_escape(cell_to_string(row[c], double_precision_));
    }
    out << '\n';
  }
  return out.str();
}

std::string ascii_chart(const std::vector<double>& series, std::size_t width,
                        std::size_t height, const std::string& y_label) {
  if (series.empty() || width == 0 || height == 0) {
    return "(empty series)\n";
  }
  // Bucket the series horizontally.
  const std::size_t columns = std::min(width, series.size());
  std::vector<double> buckets(columns, 0.0);
  for (std::size_t c = 0; c < columns; ++c) {
    const std::size_t lo = c * series.size() / columns;
    std::size_t hi = (c + 1) * series.size() / columns;
    hi = std::max(hi, lo + 1);
    double sum = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      sum += series[i];
    }
    buckets[c] = sum / static_cast<double>(hi - lo);
  }
  const auto [mn_it, mx_it] = std::minmax_element(buckets.begin(),
                                                  buckets.end());
  const double mn = *mn_it;
  const double mx = *mx_it;
  const double span = (mx - mn) > 0 ? (mx - mn) : 1.0;

  std::ostringstream out;
  out << y_label << "  (top=" << format_double(mx, 4)
      << ", bottom=" << format_double(mn, 4) << ")\n";
  for (std::size_t r = 0; r < height; ++r) {
    // Row r covers values in the band [band_lo, band_hi).
    const double band_hi =
        mx - span * static_cast<double>(r) / static_cast<double>(height);
    const double band_lo =
        mx - span * static_cast<double>(r + 1) / static_cast<double>(height);
    out << "  |";
    for (std::size_t c = 0; c < columns; ++c) {
      const bool hit = (buckets[c] >= band_lo && buckets[c] <= band_hi) ||
                       (r == height - 1 && buckets[c] <= band_lo);
      out << (hit ? '*' : ' ');
    }
    out << '\n';
  }
  out << "  +" << std::string(columns, '-') << "> iteration\n";
  return out.str();
}

}  // namespace fap::util
