// The Section 5.4 generalization to M distinct single-copy files:
//
//   C(x) = Σ_i Σ_f ( C_i^f + k · T( Σ_g λ^g x_i^g , μ_i ) ) x_i^f
//
// where x_i^f is the fraction of file f stored at node i, λ^f is the
// network-wide access rate to file f and T is the queueing sojourn time.
// The delay argument Σ_g λ^g x_i^g is the *combined* arrival rate at node
// i: as the paper emphasizes, this captures "the effects of simultaneous
// accesses to different files stored at the same location, a real-world
// resource contention phenomenon which is typically not considered in most
// FAP formulations".
//
// Because files share each node's queue, cross partials between two files
// at the same node are non-zero (unlike the single-file objective the
// appendix analyzes); the objective is still jointly convex, so the
// resource-directed iteration — one conservation constraint per file —
// converges to the global optimum, which the tests verify against the
// centralized projected-gradient solver.
#pragma once

#include <cstddef>
#include <vector>

#include "core/cost_model.hpp"
#include "core/single_file.hpp"
#include "net/shortest_paths.hpp"
#include "queueing/delay.hpp"

namespace fap::core {

/// Problem description for M files over N nodes.
struct MultiFileProblem {
  net::CostMatrix comm;                       ///< shared network c_ij
  /// per_file_lambda[f][j]: rate at which node j accesses file f.
  std::vector<std::vector<double>> per_file_lambda;
  std::vector<double> mu;                     ///< per-node service rates
  double k = 1.0;
  queueing::DelayModel delay;
};

/// Variable layout: x[f * N + i] is the fraction of file f at node i.
class MultiFileModel : public CostModel {
 public:
  explicit MultiFileModel(MultiFileProblem problem);

  std::size_t node_count() const noexcept { return node_count_; }
  std::size_t file_count() const noexcept {
    return problem_.per_file_lambda.size();
  }
  std::size_t dimension() const override {
    return node_count_ * file_count();
  }
  /// Flat index of (file f, node i).
  std::size_t index(std::size_t file, std::size_t node) const;

  std::vector<ConstraintGroup> constraint_groups() const override;
  double cost(const std::vector<double>& x) const override;
  std::vector<double> gradient(const std::vector<double>& x) const override;
  std::vector<double> second_derivative(
      const std::vector<double>& x) const override;

  /// Network-wide access rate λ^f of file f.
  double file_rate(std::size_t file) const;

  /// System-wide communication cost C_i^f of an access to file f at node i.
  double access_cost(std::size_t file, std::size_t node) const;

  /// Combined access arrival rate at node i under allocation x.
  double node_arrival_rate(const std::vector<double>& x,
                           std::size_t node) const;

  const MultiFileProblem& problem() const noexcept { return problem_; }

 private:
  MultiFileProblem problem_;
  std::size_t node_count_ = 0;
  std::vector<double> file_rate_;               // λ^f
  std::vector<std::vector<double>> access_cost_;  // [f][i] = C_i^f
};

}  // namespace fap::core
