#include "core/joint_routing.hpp"

#include <unordered_map>

#include "util/contracts.hpp"
#include "util/numeric.hpp"

namespace fap::core {

namespace {

// Canonical key for an undirected edge.
std::uint64_t edge_key(std::size_t u, std::size_t v, std::size_t n) {
  const std::size_t lo = std::min(u, v);
  const std::size_t hi = std::max(u, v);
  return static_cast<std::uint64_t>(lo) * n + hi;
}

}  // namespace

JointRoutingOptimizer::JointRoutingOptimizer(JointRoutingProblem problem,
                                             JointRoutingOptions options)
    : problem_(std::move(problem)), options_(options) {
  FAP_EXPECTS(problem_.workload.lambda.size() == problem_.topology.node_count(),
              "workload size must match node count");
  FAP_EXPECTS(problem_.mu.size() == problem_.topology.node_count(),
              "mu size must match node count");
  FAP_EXPECTS(problem_.congestion_factor >= 0.0,
              "congestion factor must be non-negative");
  FAP_EXPECTS(options_.damping > 0.0 && options_.damping <= 1.0,
              "damping must be in (0, 1]");
  FAP_EXPECTS(options_.max_outer_iterations >= 1, "need outer iterations");
  FAP_EXPECTS(options_.tol > 0.0, "tolerance must be positive");
  FAP_EXPECTS(problem_.topology.connected(), "topology must be connected");
}

net::Topology JointRoutingOptimizer::effective_topology(
    const std::vector<double>& flow) const {
  const auto& edges = problem_.topology.edges();
  FAP_EXPECTS(flow.size() == edges.size(), "one flow value per edge");
  net::Topology effective(problem_.topology.node_count());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    FAP_EXPECTS(flow[e] >= 0.0, "flows must be non-negative");
    effective.add_edge(
        edges[e].u, edges[e].v,
        edges[e].cost * (1.0 + problem_.congestion_factor * flow[e]));
  }
  return effective;
}

std::vector<double> JointRoutingOptimizer::link_flows(
    const net::Topology& effective, const std::vector<double>& x) const {
  const std::size_t n = effective.node_count();
  FAP_EXPECTS(x.size() == n, "allocation size mismatch");

  // Edge index lookup for flow accumulation.
  std::unordered_map<std::uint64_t, std::size_t> index;
  const auto& edges = problem_.topology.edges();
  index.reserve(edges.size());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    index[edge_key(edges[e].u, edges[e].v, n)] = e;
  }

  // Hop-by-hop least-cost forwarding tables (one per node). Consistent
  // shortest-path forwarding is loop-free for positive link costs.
  std::vector<std::vector<net::NodeId>> next(n);
  for (std::size_t node = 0; node < n; ++node) {
    next[node] = net::dijkstra_next_hops(effective, node);
  }

  std::vector<double> flow(edges.size(), 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    const double rate = problem_.workload.lambda[j];
    if (rate <= 0.0) {
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const double traffic = rate * x[i];
      if (traffic <= 0.0 || i == j) {
        continue;
      }
      std::size_t current = j;
      std::size_t hops = 0;
      while (current != i) {
        const std::size_t hop = next[current][i];
        const auto it = index.find(edge_key(current, hop, n));
        FAP_ENSURES(it != index.end(), "forwarding used a non-edge");
        flow[it->second] += traffic;
        current = hop;
        FAP_ENSURES(++hops <= n, "forwarding loop detected");
      }
    }
  }
  return flow;
}

JointRoutingResult JointRoutingOptimizer::run(
    const std::vector<double>& initial) const {
  const std::size_t n = problem_.topology.node_count();
  FAP_EXPECTS(initial.size() == n, "initial allocation size mismatch");

  JointRoutingResult result;
  result.x = initial;
  result.link_flow.assign(problem_.topology.edge_count(), 0.0);
  result.comm = net::CostMatrix(n);

  for (std::size_t outer = 0; outer < options_.max_outer_iterations;
       ++outer) {
    const bool frozen = outer >= options_.freeze_routing_after;

    // 1. Route under the current (damped) flow estimate.
    const net::Topology effective = effective_topology(result.link_flow);
    net::CostMatrix comm = net::all_pairs_shortest_paths(effective);

    // 2. Allocate under the induced c_ji.
    SingleFileProblem sub{comm, problem_.workload.lambda, problem_.mu,
                          problem_.k, problem_.delay,
                          {},
                          {},
                          {}};
    const SingleFileModel model(std::move(sub));
    const ResourceDirectedAllocator allocator(model, options_.allocator);
    const AllocationResult inner = allocator.run(result.x);

    // 3. Measure the flow this allocation induces, with damping —
    // unless routing is frozen (the Section 7.3-style anti-flapping
    // remedy: stop moving the discontinuous part).
    double flow_delta = 0.0;
    if (!frozen) {
      const std::vector<double> raw = link_flows(effective, inner.x);
      std::vector<double> damped(raw.size(), 0.0);
      for (std::size_t e = 0; e < raw.size(); ++e) {
        damped[e] = options_.damping * raw[e] +
                    (1.0 - options_.damping) * result.link_flow[e];
      }
      flow_delta = util::linf_distance(damped, result.link_flow);
      result.link_flow = std::move(damped);
    }

    const double allocation_delta = util::linf_distance(inner.x, result.x);
    result.trace.push_back(JointRoutingOuterRecord{
        outer, inner.cost, allocation_delta, flow_delta});

    result.x = inner.x;
    result.cost = inner.cost;
    result.comm = std::move(comm);
    ++result.outer_iterations;

    // Flow movement only matters through its effect on link costs, so the
    // criterion is scaled by γ (with γ = 0 routing is static and the
    // allocation criterion alone decides).
    if (allocation_delta < options_.tol &&
        problem_.congestion_factor * flow_delta < options_.tol) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace fap::core
