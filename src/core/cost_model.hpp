// Abstract objective interface consumed by the allocation algorithms.
//
// A cost model maps an allocation vector x (fractions of one or more files
// held at each node) to the system-wide expected access cost C(x) of
// Eq. 1, and exposes exact first and second partial derivatives. The
// paper's utility (Eq. 2) is U = -C; the allocators work in cost terms and
// flip signs where the paper's statement flips them (see the remark after
// Eq. 4 in the appendix: "the order of the two terms ... will be reversed
// so that the marginal utility is subtracted from the average").
//
// Constraint structure: variables are partitioned into groups, each of
// which must sum to a fixed total (Σ_{i∈g} x_i = total_g, x_i >= 0). The
// single-copy single-file problem has one group with total 1; the M-file
// problem of Section 5.4 has M groups of total 1; the m-copy ring problem
// of Section 7 has one group with total m.
#pragma once

#include <cstddef>
#include <vector>

namespace fap::core {

/// One resource-conservation constraint: Σ_{i in indices} x_i == total.
struct ConstraintGroup {
  std::vector<std::size_t> indices;
  double total = 1.0;
};

/// Interface for a differentiable allocation objective.
class CostModel {
 public:
  virtual ~CostModel() = default;

  /// Number of allocation variables.
  virtual std::size_t dimension() const = 0;

  /// Resource-conservation groups; every variable belongs to exactly one.
  virtual std::vector<ConstraintGroup> constraint_groups() const = 0;

  /// Per-variable upper bounds (storage capacities, the generalization of
  /// Suri [33] surveyed in Section 3: "storage constraints were
  /// additionally considered"). Empty (the default) means unbounded; a
  /// non-empty vector must have one entry per variable. check_feasible
  /// enforces x_i <= upper_bounds()[i] when present, and the allocators'
  /// active-set logic treats capped variables symmetrically to the
  /// x_i >= 0 boundary.
  virtual std::vector<double> upper_bounds() const { return {}; }

  /// System-wide expected access cost at allocation x (length dimension()).
  virtual double cost(const std::vector<double>& x) const = 0;

  /// Exact gradient ∂C/∂x_i at x. For piecewise objectives (Section 7)
  /// this is the right-hand derivative.
  virtual std::vector<double> gradient(const std::vector<double>& x) const = 0;

  /// Diagonal of the Hessian, ∂²C/∂x_i². The paper's objectives have zero
  /// cross partials ("the cross partial derivatives are 0", Theorem 2), so
  /// the diagonal is the whole Hessian.
  virtual std::vector<double> second_derivative(
      const std::vector<double>& x) const = 0;

  /// Writes gradient(x) into `out` (resized as needed). Models on hot
  /// paths override this to fill the caller's buffer without allocating;
  /// the default falls back to the allocating gradient(). Overrides must
  /// produce bit-identical values to gradient().
  virtual void gradient_into(const std::vector<double>& x,
                             std::vector<double>& out) const {
    out = gradient(x);
  }

  /// Buffer-filling variant of second_derivative(); same contract as
  /// gradient_into.
  virtual void second_derivative_into(const std::vector<double>& x,
                                      std::vector<double>& out) const {
    out = second_derivative(x);
  }

  /// Utility of Eq. 2.
  double utility(const std::vector<double>& x) const { return -cost(x); }

  /// Marginal utilities ∂U/∂x_i = -∂C/∂x_i.
  std::vector<double> marginal_utilities(const std::vector<double>& x) const;

  /// Buffer-filling variant of marginal_utilities(); allocation-free when
  /// the model overrides gradient_into.
  void marginal_utilities_into(const std::vector<double>& x,
                               std::vector<double>& out) const;

  /// Throws PreconditionError unless x has the right dimension, is
  /// non-negative, and satisfies every constraint group to within `tol`.
  void check_feasible(const std::vector<double>& x, double tol = 1e-9) const;
};

/// Uniform allocation: every variable in each group gets total/|group|.
/// With upper bounds present, excess above a variable's cap is poured
/// uniformly into the group's uncapped variables, so the result is always
/// feasible.
std::vector<double> uniform_allocation(const CostModel& model);

/// True when x is feasible for the model to within tol (non-throwing
/// variant of CostModel::check_feasible).
bool is_feasible(const CostModel& model, const std::vector<double>& x,
                 double tol = 1e-9);

}  // namespace fap::core
