// Choosing the number of copies — the most salient open issue the paper
// lists for the multicopy model (Section 8.2): "how many copies are
// optimal for the system? i.e. what is the best value of m? ...
// Furthermore, the cost of storage and copy maintenance will affect the
// optimal number of copies."
//
// optimal_copy_count() answers it the way the paper frames it: sweep
// m = 1..max_copies, optimize the fragment allocation for each m with the
// Section 7.3 multicopy driver, and add a per-copy storage/maintenance
// cost. More copies reduce access cost (shorter ring walks, parallel
// service) with diminishing returns, while storage grows linearly, so the
// total is unimodal in practice and the sweep exposes the knee.
#pragma once

#include <cstddef>
#include <vector>

#include "core/multicopy_allocator.hpp"
#include "core/ring_model.hpp"

namespace fap::core {

struct CopyCountOptions {
  /// Cost per unit time of storing and maintaining one whole copy
  /// (consistency traffic, disk, etc.).
  double storage_cost_per_copy = 0.1;
  /// Largest m to consider (capped at the node count so integral
  /// placements remain meaningful).
  std::size_t max_copies = 0;  // 0 = node count
  /// Inner optimizer settings per m.
  MultiCopyOptions inner;
};

struct CopyCountEntry {
  std::size_t copies = 0;
  double access_cost = 0.0;   ///< optimized RingModel cost (comm + delay)
  double storage_cost = 0.0;  ///< storage_cost_per_copy * m
  double total_cost = 0.0;
  std::vector<double> allocation;  ///< best fragment allocation found
};

struct CopyCountResult {
  std::vector<CopyCountEntry> sweep;  ///< one entry per m = 1..max
  std::size_t best_copies = 0;
  double best_total_cost = 0.0;
};

/// Sweeps the copy count for a ring system described by `base` (its
/// `copies` field is overridden per sweep entry).
CopyCountResult optimal_copy_count(const RingProblem& base,
                                   const CopyCountOptions& options);

}  // namespace fap::core
