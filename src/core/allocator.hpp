// The paper's contribution: the decentralized, resource-directed file
// allocation algorithm of Section 5.2.
//
// Each iteration:
//   (a) every node evaluates its marginal utility ∂U/∂x_i at the current
//       allocation (U = -C, so ∂U/∂x_i = -∂C/∂x_i);
//   (b) the average marginal utility over the active set A is formed and
//       every active node computes Δx_i = α (∂U/∂x_i - avg_A);
//   (c) x_i += Δx_i for i ∈ A.
// until max_{i,j∈A} |∂U/∂x_i - ∂U/∂x_j| < ε.
//
// The active set A is all nodes unless some node would receive a
// non-positive allocation; then A is computed by the paper's procedure
// (steps (i)-(v) of Section 5.2): drop violators, then re-admit excluded
// nodes in decreasing marginal-utility order while their marginal utility
// exceeds the active-set average.
//
// Three strengthenings beyond the paper's literal statement (documented in
// DESIGN.md §5 decision 2, and exercised by property tests):
//   * exclusion from A applies only to nodes already at the x_i = 0
//     boundary. The literal rule would also freeze an *interior* node
//     whose (large-α) step overshoots below zero — at which point the
//     spread-over-A criterion fires at a non-optimal allocation. The
//     paper's own Figure 4 run (start (0,0,0,1), α = 0.3) hits this case;
//   * interior overshoots are instead handled by scaling the whole group
//     step with the largest θ ∈ (0,1] that keeps it non-negative — the
//     binding node lands exactly on zero and is treated as a boundary
//     node from the next iteration on;
//   * the boundary drop/re-admit procedure is iterated to a fixed point,
//     because a single pass can leave a node in A whose Δx (recomputed
//     with the smaller average) still pushes it below zero.
// All preserve feasibility (Σ Δx_i = 0 by construction) and monotonicity
// (a shorter step along an ascent direction).
//
// This class runs the arithmetic centrally for convenience; the
// message-passing realization that executes the identical arithmetic as a
// per-node protocol lives in sim/protocol_sim.hpp, and a test pins the two
// to bitwise-equal traces.
#pragma once

#include <cstddef>
#include <vector>

#include "core/active_set.hpp"
#include "core/cost_model.hpp"

namespace fap::core {

/// How the step size α is chosen at each iteration.
enum class StepRule {
  kFixed,    ///< use AllocatorOptions::alpha every iteration
  kDynamic,  ///< evaluate the Theorem-2 inequality (Eq. 5) at the current
             ///< allocation and take `dynamic_safety` times that bound (the
             ///< appendix remark: "we could get a better value for α if we
             ///< dynamically calculate it at each iteration")
};

struct AllocatorOptions {
  double alpha = 0.1;
  StepRule step_rule = StepRule::kFixed;
  /// Termination: all active marginal utilities within ε of each other.
  double epsilon = 1e-3;
  std::size_t max_iterations = 100000;
  /// Record the allocation/cost at every iteration (the convergence
  /// profiles of Figures 3, 4, 8, 9 come from this trace).
  bool record_trace = false;
  /// For kDynamic: fraction of the per-iteration bound to use. 0.5 is the
  /// second-order-optimal choice (the bound is the zero of the quadratic
  /// model of ΔU; half of it maximizes that quadratic).
  double dynamic_safety = 0.5;
  /// Use the O(n²)-per-round reference active-set procedure
  /// (active_set_reference) instead of the incremental O(n log n) one.
  /// The two are decision-for-decision identical; this switch exists so
  /// the equivalence tests (and any future debugging) can pin the fast
  /// path against the literal Section 5.2 transcription.
  bool use_reference_active_set = false;
};

/// State of one iteration, as recorded in the trace. Entry 0 describes the
/// initial allocation.
struct IterationRecord {
  std::size_t iteration = 0;
  double cost = 0.0;
  /// Step size used to move *from* this allocation (0 for the final entry).
  double alpha = 0.0;
  /// Total number of nodes in active sets across constraint groups.
  std::size_t active_set_size = 0;
  /// max_{i,j∈A} |∂U/∂x_i - ∂U/∂x_j| (max over groups).
  double marginal_spread = 0.0;
  std::vector<double> x;
};

struct AllocationResult {
  std::vector<double> x;
  double cost = 0.0;
  bool converged = false;
  /// Number of reallocation steps performed.
  std::size_t iterations = 0;
  std::vector<IterationRecord> trace;
};

class ResourceDirectedAllocator {
 public:
  /// The model reference must outlive the allocator.
  ResourceDirectedAllocator(const CostModel& model, AllocatorOptions options);

  /// Runs the algorithm from the given feasible initial allocation.
  /// Throws PreconditionError if `initial` is infeasible.
  AllocationResult run(std::vector<double> initial) const;

  /// Result of a single iteration step, exposed so the protocol simulation
  /// and the adaptive/nightly-mode examples can drive iterations one at a
  /// time.
  struct StepOutcome {
    std::vector<double> x;           ///< allocation after the step
    bool terminal = false;           ///< termination criterion already held
    double marginal_spread = 0.0;    ///< spread before the step
    std::size_t active_set_size = 0;
    double alpha_used = 0.0;
  };

  /// Performs one iteration from `x` (which must be feasible). If the
  /// termination criterion holds at `x`, returns terminal=true and x
  /// unchanged.
  StepOutcome step(const std::vector<double>& x) const;

  /// Round hook for protocol simulations over unreliable networks
  /// (sim/lossy_network.hpp): identical arithmetic to step(), but the
  /// feasibility precondition tolerates conservation-sum drift up to
  /// `sum_tolerance` per group. An agent stepping from a stale view of
  /// remote fragments sees Σx wander off the group total (the
  /// async-staleness failure mode, DESIGN.md §4f); the update itself
  /// never reads the sum, so relaxing only that check is sound.
  /// Dimension, non-negativity, and capacity checks stay strict.
  StepOutcome step_with_drift(const std::vector<double>& x,
                              double sum_tolerance) const;

  /// Computes the paper's set A for one constraint group given the current
  /// allocation and marginal utilities, following steps (i)-(v). Exposed
  /// for white-box tests. Returned indices are positions into
  /// `group.indices`' index space (i.e. variable indices).
  ///
  /// This is the fast path: a membership bitmask plus running sums of the
  /// active marginal utilities (O(1) mean updates) and two lazy heaps over
  /// the excluded nodes (O(log n) best-|gap| re-admission), replacing the
  /// reference procedure's per-candidate linear scans. Its decisions —
  /// and, by construction, the floating-point values every decision is
  /// based on — are identical to active_set_reference.
  std::vector<std::size_t> active_set(const ConstraintGroup& group,
                                      const std::vector<double>& x,
                                      const std::vector<double>& marginal_u,
                                      double alpha) const;

  /// The literal steps (i)-(v) transcription (linear membership scans,
  /// re-averaged means): O(n²) per drop/re-admit round. Kept as the
  /// equivalence oracle for active_set; not used on any hot path unless
  /// AllocatorOptions::use_reference_active_set is set.
  std::vector<std::size_t> active_set_reference(
      const ConstraintGroup& group, const std::vector<double>& x,
      const std::vector<double>& marginal_u, double alpha) const;

  const AllocatorOptions& options() const noexcept { return options_; }

  /// The per-iteration dynamic step bound (Eq. 5 evaluated at x over the
  /// active variables `active`): 2 Σ (dU_i - avg)² / Σ |d²U_i| (dU_i - avg)².
  double dynamic_alpha_bound(const std::vector<double>& x,
                             const std::vector<std::size_t>& active) const;

 private:
  /// Reusable scratch memory. Every vector is sized on first use and then
  /// only ever shrunk/refilled in place, so steady-state step()/run()
  /// perform no heap allocations (for models that implement the
  /// *_into derivative hooks, e.g. SingleFileModel). Because the
  /// workspace is mutated from const entry points it makes a single
  /// allocator instance non-reentrant: concurrent step()/run() calls on
  /// the SAME instance race — give each thread its own allocator (the
  /// runtime sweeps already construct per-task allocators).
  struct Workspace {
    std::vector<double> du;              ///< marginal utilities at x
    std::vector<double> d2c;             ///< second derivatives (kDynamic)
    std::vector<double> deltas;          ///< per-active-node Δx of one group
    std::vector<double> x_next;          ///< run()'s ping-pong buffer
    /// Scratch of the shared active-set fast path (core/active_set.hpp);
    /// aset.active holds the set under construction.
    detail::ActiveSetWorkspace aset;
    /// Per-group active sets and step sizes of the step() first pass.
    std::vector<std::vector<std::size_t>> group_active;
    std::vector<double> group_alpha;
  };

  /// Per-step bookkeeping shared by step() and run()'s in-place loop.
  struct StepStats {
    bool terminal = false;
    double marginal_spread = 0.0;
    std::size_t active_set_size = 0;
    double alpha_used = 0.0;
  };

  /// One iteration from `x` into `x_out` (unchanged copy of x when the
  /// termination criterion already holds). `x_out` must not alias `x`.
  /// `sum_tolerance` relaxes only the conservation-sum precondition
  /// (step_with_drift); the default is check_feasible's strict 1e-9.
  StepStats step_into(const std::vector<double>& x,
                      std::vector<double>& x_out,
                      double sum_tolerance = 1e-9) const;

  /// check_feasible against the cached groups/caps — no allocation.
  void check_feasible_cached(const std::vector<double>& x,
                             double sum_tolerance = 1e-9) const;

  /// dynamic_alpha_bound evaluated from the workspace's du/d2c (already
  /// computed for the current x) instead of re-querying the model.
  double dynamic_alpha_bound_cached(
      const std::vector<std::size_t>& active) const;

  const CostModel& model_;
  AllocatorOptions options_;
  /// Constraint structure and bounds are fixed per model; query them once.
  std::vector<ConstraintGroup> groups_;
  std::vector<double> caps_;
  std::size_t dim_ = 0;
  mutable Workspace ws_;
};

}  // namespace fap::core
