// Multiple copies of a file on a virtual ring (Section 7.2).
//
// m copies of the file are laid out contiguously, end to end, around a
// unidirectional virtual ring, so "the file is contiguous at any node":
// node j sees the file starting at itself and extending forward until one
// whole copy has been covered. The amount of file node j accesses at node
// i is therefore
//
//   w_ji(x) = min(S_ji, 1) - min(S_j,i-1, 1),
//   S_ji    = Σ x_t over the forward walk j, j+1, ..., i (inclusive),
//
// and the system-wide cost is
//
//   C(x) = Σ_j λ_j Σ_i w_ji · d(j, i)  +  k Σ_i a_i · T(a_i, μ_i),
//   a_i  = Σ_j λ_j w_ji,
//
// with d(j, i) the forward ring distance and T the queueing sojourn time —
// exactly the Section 7.2 worked example (communication cost
// 11·0.1 + 7·0.3 + 5·0.7 + 2·0.8 + 0·0.8 = 8.3 for 0.8 of the file at
// node 4 of the 7-ring; arrival rate 2.7 for the delay term), which is
// pinned by a unit test.
//
// The constraint is Σ x_i = m with x_i >= 0 and *no* upper bound on x_i:
// as Section 7.2 argues, "a node can be allocated more than a whole file,
// if that is what is cheaper for the system" (trimming to at most one copy
// per node is a post-processing step, provided by trim_to_whole_copy).
//
// The communication term is piecewise linear in x: when a copy boundary
// crosses a node, whole link costs enter or leave the marginal utilities
// ("the marginal utilities will therefore change in jumps, the jumps being
// whole link costs"). gradient() returns the right-hand derivative,
// computed from the boundary structure. Because a node may transiently be
// assigned more traffic than its service rate, the delay model defaults to
// a linearized M/M/1 (DelayModel rho_max = 0.95), per the paper's remark
// that "some functional approximation can easily be made for T_i".
#pragma once

#include <cstddef>
#include <vector>

#include "core/cost_model.hpp"
#include "net/virtual_ring.hpp"
#include "queueing/delay.hpp"

namespace fap::core {

struct RingProblem {
  net::VirtualRing ring;
  double copies = 2.0;             ///< m; must be >= 1 for full coverage
  std::vector<double> lambda;      ///< per-node access rates λ_j
  std::vector<double> mu;          ///< per-node service rates μ_i
  double k = 1.0;
  queueing::DelayModel delay = queueing::DelayModel::mm1(/*rho_max=*/0.95);
  /// Optional per-node storage cap (0 = unconstrained). Setting 1.0
  /// enforces "no more than a whole file resides at a node" *inside* the
  /// algorithm — the constraint Section 7.2 handles by post-hoc trimming
  /// ("it is a simple matter to ensure that no more than a whole file
  /// resides at a node ... after the algorithm has run to completion").
  /// Requires n·max_per_node >= m.
  double max_per_node = 0.0;
};

/// The Section 7.3 experimental setup: four-node virtual ring, m = 2,
/// μ = 1.5, k = 1, λ = 1 split evenly. `link_costs` selects the
/// communication-dominated ring (4,1,1,1) or the delay-dominated unit ring.
RingProblem make_paper_ring_problem(const std::vector<double>& link_costs,
                                    double copies = 2.0);

class RingModel : public CostModel {
 public:
  explicit RingModel(RingProblem problem);

  std::size_t dimension() const override { return problem_.lambda.size(); }
  std::vector<ConstraintGroup> constraint_groups() const override;
  std::vector<double> upper_bounds() const override;
  double cost(const std::vector<double>& x) const override;
  std::vector<double> gradient(const std::vector<double>& x) const override;
  std::vector<double> second_derivative(
      const std::vector<double>& x) const override;

  /// Communication component of cost(x) alone.
  double communication_cost(const std::vector<double>& x) const;
  /// Queueing-delay component of cost(x) alone.
  double delay_cost(const std::vector<double>& x) const;

  /// w_ji(x): the amount of file node `j` accesses at node `i` (row-major
  /// n×n). Each row sums to 1. Used by the discrete-event simulator to
  /// route accesses.
  std::vector<std::vector<double>> access_weights(
      const std::vector<double>& x) const;

  /// Access arrival rate a_i at every node.
  std::vector<double> arrival_rates(const std::vector<double>& x) const;

  const RingProblem& problem() const noexcept { return problem_; }

 private:
  RingProblem problem_;
  double total_rate_ = 0.0;
};

/// Post-processing per Section 7.2: caps every node at one whole copy
/// (x_i <= 1), redistributing the excess to other nodes in increasing
/// marginal-cost order. The result is feasible and costs no more than an
/// uncapped allocation rounded naively.
std::vector<double> trim_to_whole_copy(const RingModel& model,
                                       std::vector<double> x);

}  // namespace fap::core
