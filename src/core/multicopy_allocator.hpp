// Driver for the multiple-copy problem (Section 7.3).
//
// The ring objective is piecewise smooth: whenever a copy boundary crosses
// a node, whole link costs jump into or out of the marginal utilities, so
// a fixed-step gradient iteration oscillates around the optimum instead of
// meeting the all-marginals-equal criterion. The paper's modification:
//
//   "When oscillations are observed the value of the stepsize parameter α
//    is decreased by a fixed amount after a certain predetermined number
//    of iterations. When the difference in cost measured at two successive
//    iterations is judged to be small enough the algorithm halts."
//
// and for pathological, strongly communication-dominated instances:
//
//   "a different halting technique has to be used such as observing the
//    oscillations over a period of time and halting when the cost is at
//    the lowest observed point."
//
// MultiCopyAllocator implements both: it runs the Section 5.2 iteration
// (via ResourceDirectedAllocator::step), detects oscillation as a cost
// increase between successive iterations, decays α after every
// `decay_interval` iterations in which oscillation occurred, halts when the
// successive-cost difference falls below `cost_epsilon` (or the plain
// marginal-spread criterion fires first), and always remembers the
// lowest-cost allocation ever visited, which is what it returns.
#pragma once

#include <cstddef>
#include <vector>

#include "core/allocator.hpp"
#include "core/cost_model.hpp"

namespace fap::core {

struct MultiCopyOptions {
  double alpha = 0.1;
  /// Marginal-spread termination (usually never fires on a discontinuous
  /// objective; kept for the delay-dominated cases that do converge).
  double epsilon = 1e-3;
  /// Halt when |cost_t - cost_{t-1}| < cost_epsilon.
  double cost_epsilon = 1e-7;
  /// Multiplicative α decrease applied when oscillation was observed
  /// during the last window.
  double alpha_decay = 0.5;
  /// Window length ("a certain predetermined number of iterations").
  std::size_t decay_interval = 20;
  std::size_t max_iterations = 5000;
  bool record_trace = false;
};

struct MultiCopyResult {
  /// Lowest-cost allocation observed over the whole run.
  std::vector<double> best_x;
  double best_cost = 0.0;
  /// Allocation at the final iteration (may be worse than best_x when the
  /// run was still oscillating at the cap).
  std::vector<double> final_x;
  double final_cost = 0.0;
  bool converged = false;
  std::size_t iterations = 0;
  /// Number of iterations at which the cost increased over its predecessor.
  std::size_t oscillation_count = 0;
  /// α in effect when the run stopped.
  double final_alpha = 0.0;
  std::vector<IterationRecord> trace;
};

class MultiCopyAllocator {
 public:
  MultiCopyAllocator(const CostModel& model, MultiCopyOptions options);

  MultiCopyResult run(std::vector<double> initial) const;

 private:
  const CostModel& model_;
  MultiCopyOptions options_;
};

}  // namespace fap::core
