#include "core/trace_export.hpp"

#include <sstream>

#include "util/json.hpp"
#include "util/table.hpp"

namespace fap::core {

std::string trace_to_csv(const std::vector<IterationRecord>& trace) {
  std::ostringstream out;
  out << "iteration,cost,alpha,active_set,spread";
  const std::size_t dims = trace.empty() ? 0 : trace.front().x.size();
  for (std::size_t i = 0; i < dims; ++i) {
    out << ",x" << i;
  }
  out << '\n';
  for (const IterationRecord& rec : trace) {
    out << rec.iteration << ',' << util::format_double(rec.cost, 12) << ','
        << util::format_double(rec.alpha, 12) << ',' << rec.active_set_size
        << ',' << util::format_double(rec.marginal_spread, 12);
    for (const double xi : rec.x) {
      out << ',' << util::format_double(xi, 12);
    }
    out << '\n';
  }
  return out.str();
}

std::string result_to_json(const AllocationResult& result) {
  util::JsonWriter json;
  json.begin_object();
  json.key("converged").value(result.converged);
  json.key("iterations").value(result.iterations);
  json.key("cost").value(result.cost);
  json.key("x").value(result.x);
  json.key("trace").begin_array();
  for (const IterationRecord& rec : result.trace) {
    json.begin_object();
    json.key("iteration").value(rec.iteration);
    json.key("cost").value(rec.cost);
    json.key("alpha").value(rec.alpha);
    json.key("active_set").value(rec.active_set_size);
    json.key("spread").value(rec.marginal_spread);
    json.key("x").value(rec.x);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

}  // namespace fap::core
