#include "core/active_set.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contracts.hpp"

namespace fap::core::detail {

void active_set_fast(const ConstraintGroup& group, const std::vector<double>& x,
                     const std::vector<double>& marginal_u, double alpha,
                     const std::vector<double>& caps, std::size_t dim,
                     ActiveSetWorkspace& ws) {
  FAP_EXPECTS(!group.indices.empty(), "constraint group must be non-empty");
  const std::vector<std::size_t>& members = group.indices;
  const std::size_t m = members.size();

  const auto cap_of = [&caps](std::size_t i) {
    return caps.empty() ? std::numeric_limits<double>::infinity() : caps[i];
  };
  const auto pinned = [&](std::size_t i, double d) {
    if (x[i] <= kBoundaryTol && d < 0.0 && x[i] + d <= 0.0) {
      return true;  // at the floor, being decreased
    }
    const double cap = cap_of(i);
    return x[i] >= cap - kBoundaryTol && d > 0.0 && x[i] + d >= cap;
  };

  std::vector<std::size_t>& active = ws.active;
  active.clear();

  // Step (i): the reference recomputes mean_over(marginal_u, group.indices)
  // for every candidate; the sum is the same left-to-right sum each time,
  // so computing it once is bit-identical.
  double sum_full = 0.0;
  for (const std::size_t i : members) {
    sum_full += marginal_u[i];
  }
  const double avg_full = sum_full / static_cast<double>(m);
  for (const std::size_t i : members) {
    const double d = alpha * (marginal_u[i] - avg_full);
    if (!pinned(i, d)) {
      active.push_back(i);
    }
  }

  // Fast path: nobody pinned under the full-group average. The reference's
  // round 0 is then a provable no-op — no outsiders exist to re-admit, and
  // its drop pass recomputes the same left-to-right group sum and repeats
  // exactly the pinned() checks step (i) just passed — so A is the whole
  // group and the heaps are never needed. This is the steady state of an
  // interior trajectory, which makes the per-iteration cost O(m) there.
  if (active.size() == m) {
    std::sort(active.begin(), active.end());
    return;
  }

  // Second fast path: step (i)'s survivors are often already the fixed
  // point. The typical lane of a large catalog is a point mass whose
  // active set is one interior node with every other node pinned at the
  // floor below the average; the reference's round 0 then re-admits
  // nobody (no excluded candidate's gap clears the active average — the
  // first peek of either heap comes back empty-handed, which is exactly
  // "no eligible outsider strictly beats the average") and its drop pass
  // pins nobody, so it exits with the active set unchanged. Detecting
  // that is two O(m) scans over the same sums and pinned() arithmetic
  // the reference would evaluate — bit-identical decisions — and skips
  // the O(dim) bitmask and the two heap builds below.
  if (!active.empty()) {
    double sum_active = 0.0;
    for (const std::size_t i : active) {
      sum_active += marginal_u[i];
    }
    const double avg = sum_active / static_cast<double>(active.size());
    bool settled = true;
    for (const std::size_t i : members) {
      if (pinned(i, alpha * (marginal_u[i] - avg_full))) {
        // Excluded by step (i): would round 0's re-admission take it?
        const double gap = marginal_u[i] - avg;
        if ((gap > 0.0 && x[i] < cap_of(i) - kBoundaryTol) ||
            (gap < 0.0 && x[i] > kBoundaryTol)) {
          settled = false;
          break;
        }
      } else if (pinned(i, alpha * (marginal_u[i] - avg))) {
        // Active member round 0's drop pass would pin.
        settled = false;
        break;
      }
    }
    if (settled) {
      std::sort(active.begin(), active.end());
      return;
    }
  }

  // Membership bitmask (replaces the reference's std::find scans) and the
  // variable -> group-position map used to re-enqueue dropped nodes.
  ws.in_active.assign(dim, 0);
  if (ws.pos_in_group.size() != dim) {
    ws.pos_in_group.resize(dim);
  }
  for (std::size_t p = 0; p < m; ++p) {
    ws.pos_in_group[members[p]] = p;
  }
  for (const std::size_t i : active) {
    ws.in_active[i] = 1;
  }

  if (active.empty()) {
    // Degenerate; keep the node with the highest marginal utility (first
    // maximum in group order, as std::max_element returns).
    std::size_t best = members.front();
    for (const std::size_t i : members) {
      if (marginal_u[i] > marginal_u[best]) {
        best = i;
      }
    }
    active.push_back(best);
    ws.in_active[best] = 1;
  }

  // Lazy re-admission heaps over group positions. Eligibility is a static
  // property of x (strictly inside the respective bound), so each heap is
  // built once; entries already re-admitted are skipped on pop. For the
  // gainer heap (candidates with marginal > average) the re-admission gap
  // grows with the marginal utility, so the best gainer is the max-du
  // candidate; dually the best loser is the min-du candidate. Ties broken
  // toward the earlier group position — the element the reference's
  // position-ordered strict-improvement scan would settle on.
  const auto gainer_less = [&](std::size_t a, std::size_t b) {
    const double da = marginal_u[members[a]];
    const double db = marginal_u[members[b]];
    if (da != db) {
      return da < db;
    }
    return a > b;
  };
  const auto loser_less = [&](std::size_t a, std::size_t b) {
    const double da = marginal_u[members[a]];
    const double db = marginal_u[members[b]];
    if (da != db) {
      return da > db;
    }
    return a > b;
  };
  std::vector<std::size_t>& gainers = ws.gainer_heap;
  std::vector<std::size_t>& losers = ws.loser_heap;
  gainers.clear();
  losers.clear();
  for (std::size_t p = 0; p < m; ++p) {
    const std::size_t j = members[p];
    if (x[j] < cap_of(j) - kBoundaryTol) {
      gainers.push_back(p);
    }
    if (x[j] > kBoundaryTol) {
      losers.push_back(p);
    }
  }
  std::make_heap(gainers.begin(), gainers.end(), gainer_less);
  std::make_heap(losers.begin(), losers.end(), loser_less);

  // Pops stale (already-active) entries, then returns the top position, or
  // m when the heap has no live candidate.
  const auto peek = [&](std::vector<std::size_t>& heap,
                        const auto& less) -> std::size_t {
    while (!heap.empty() && ws.in_active[members[heap.front()]] != 0) {
      std::pop_heap(heap.begin(), heap.end(), less);
      heap.pop_back();
    }
    return heap.empty() ? m : heap.front();
  };

  const std::size_t round_limit = 2 * m + 2;
  std::vector<std::size_t>& survivors = ws.survivors;
  for (std::size_t round = 0; round < round_limit; ++round) {
    bool changed = false;

    // Running sum of the active marginal utilities, rebuilt in the active
    // vector's insertion order so every mean below reproduces the
    // reference's fresh left-to-right mean_over bit for bit (appending the
    // admitted node's term to the running sum IS the next left-to-right
    // sum, because the node is appended at the end).
    double sum_active = 0.0;
    for (const std::size_t i : active) {
      sum_active += marginal_u[i];
    }

    // Re-admission: largest |marginal - average| eligible node first.
    for (;;) {
      const double avg = sum_active / static_cast<double>(active.size());
      const std::size_t gp = peek(gainers, gainer_less);
      const std::size_t lp = peek(losers, loser_less);
      double gainer_gap = 0.0;
      double loser_gap = 0.0;
      if (gp < m) {
        const double gap = marginal_u[members[gp]] - avg;
        if (gap > 0.0) {
          gainer_gap = gap;  // == fabs(gap)
        }
      }
      if (lp < m) {
        const double gap = marginal_u[members[lp]] - avg;
        if (gap < 0.0) {
          loser_gap = std::fabs(gap);
        }
      }
      std::size_t best_pos = m;
      if (gainer_gap > 0.0 || loser_gap > 0.0) {
        if (gainer_gap > loser_gap) {
          best_pos = gp;
        } else if (loser_gap > gainer_gap) {
          best_pos = lp;
        } else {
          // Exact cross-class tie: the reference's scan keeps the first
          // (smallest-position) candidate attaining the maximum.
          best_pos = std::min(gp, lp);
        }
      }
      if (best_pos == m) {
        break;
      }
      const std::size_t j = members[best_pos];
      active.push_back(j);
      ws.in_active[j] = 1;
      sum_active += marginal_u[j];
      changed = true;
    }

    // Drop: members whose recomputed Δx pins them at a boundary. Dropped
    // nodes go back into the candidate heaps (duplicates are fine — stale
    // copies are skipped on pop).
    const double avg = sum_active / static_cast<double>(active.size());
    survivors.clear();
    for (const std::size_t i : active) {
      const double d = alpha * (marginal_u[i] - avg);
      if (pinned(i, d)) {
        changed = true;
        ws.in_active[i] = 0;
        const std::size_t p = ws.pos_in_group[i];
        if (x[i] < cap_of(i) - kBoundaryTol) {
          gainers.push_back(p);
          std::push_heap(gainers.begin(), gainers.end(), gainer_less);
        }
        if (x[i] > kBoundaryTol) {
          losers.push_back(p);
          std::push_heap(losers.begin(), losers.end(), loser_less);
        }
        continue;
      }
      survivors.push_back(i);
    }
    if (survivors.empty()) {
      // Everyone is a violator only in degenerate corner cases; keep the
      // best node defensively (first maximum in the pre-drop active order).
      std::size_t best = active.front();
      for (const std::size_t i : active) {
        if (marginal_u[i] > marginal_u[best]) {
          best = i;
        }
      }
      survivors.push_back(best);
      ws.in_active[best] = 1;
    }
    std::swap(active, survivors);

    if (!changed) {
      break;
    }
  }
  std::sort(active.begin(), active.end());
}

}  // namespace fap::core::detail
