#include "core/simd_dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "core/batch_kernels.hpp"
#include "util/contracts.hpp"

namespace fap::core {

namespace {

// -1 = no override; otherwise a SimdLevel. Relaxed is enough: the
// override is a test/bench hook flipped between runs, and every kernel
// set produces identical results anyway.
std::atomic<int> g_override{-1};

}  // namespace

const char* simd_level_name(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kScalar:
      break;
  }
  return "scalar";
}

bool cpu_supports_avx2() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool avx2_kernels_compiled() noexcept {
#if defined(FAP_HAVE_AVX2_KERNELS)
  return true;
#else
  return false;
#endif
}

bool scalar_kernels_forced_by_env() {
  const char* value = std::getenv("FAP_FORCE_SCALAR_KERNELS");
  if (value == nullptr || value[0] == '\0') {
    return false;
  }
  return std::strcmp(value, "0") != 0;
}

SimdLevel active_simd_level() {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 0) {
    return static_cast<SimdLevel>(forced);
  }
  if (scalar_kernels_forced_by_env()) {
    return SimdLevel::kScalar;
  }
  // CPUID and the compile-time answer never change within a process;
  // cache the probe.
  static const bool avx2_ok = avx2_kernels_compiled() && cpu_supports_avx2();
  return avx2_ok ? SimdLevel::kAvx2 : SimdLevel::kScalar;
}

void force_simd_level(SimdLevel level) {
  FAP_EXPECTS(level == SimdLevel::kScalar ||
                  (avx2_kernels_compiled() && cpu_supports_avx2()),
              "cannot force the AVX2 kernels: not compiled in or the CPU "
              "lacks AVX2");
  g_override.store(static_cast<int>(level), std::memory_order_relaxed);
}

void clear_simd_override() {
  g_override.store(-1, std::memory_order_relaxed);
}

namespace detail {

const BatchKernels& select_batch_kernels() {
  switch (active_simd_level()) {
    case SimdLevel::kAvx2:
#if defined(FAP_HAVE_AVX2_KERNELS)
      return avx2_batch_kernels();
#else
      break;
#endif
    case SimdLevel::kScalar:
      break;
  }
  return scalar_batch_kernels();
}

}  // namespace detail

}  // namespace fap::core
