// Shared state and kernel table for the batched SoA allocator.
//
// BatchAllocator's run_all() loop is a fixed sequence of dense row passes
// over [node][lane] planes. Each pass is expressed here as a function
// pointer so the same driver can run either the portable scalar kernels
// (core/batch_kernels_scalar.cpp — the loops the allocator always had,
// moved verbatim) or the hand-vectorized AVX2 kernels
// (core/batch_kernels_avx2.cpp), selected at runtime by
// core/simd_dispatch. The two kernel sets are BITWISE equivalent:
//
//   * lanes are independent instances, so no kernel performs a
//     cross-lane reduction — vectorizing across the lane dimension
//     re-orders nothing within any lane;
//   * every AVX2 arithmetic instruction used (add/sub/mul/div/min/max/
//     cmp/blend/and/xor) is exactly rounded or an exact selection, and
//     both TUs are compiled with -ffp-contract=off, so no FMA fusion can
//     perturb a rounding on either side;
//   * selections mirror the scalar ternaries' tie and signed-zero
//     behavior (see queueing/delay_simd.hpp and the per-kernel notes);
//   * cached quotients (the imu plane) are computed once with the same
//     operands the scalar expression divides every iteration — division
//     is deterministic, so reuse is bitwise reevaluation.
//
// Plane geometry: row j of a plane starts at data() + j * stride. stride
// is the lane count rounded up to util::kDoublesPerCacheLine (8), and
// planes are 64-byte aligned (util::AlignedVector), so every row is
// 64-byte aligned and the AVX2 loops need no scalar remainder: they
// process ceil(live/4)*4 lanes per row with aligned 32-byte accesses.
// Columns in [live, stride) are dead — they hold benign finite values
// (initial padding or a retired lane's stale column) whose results are
// never read, and no masked lane can trap (FP exceptions are masked).
//
// Padding invariants (rows j >= lane n of a live column): x = 0, c = 0,
// mu = 1, imu = 1, cap = +inf, du = 0 at every point a dense loop reads
// them — see batch_allocator.cpp for why each is load-bearing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/aligned.hpp"

namespace fap::core::detail {

/// Lane stride granularity in doubles: one 64-byte cache line.
inline constexpr std::size_t kLaneStrideMultiple = util::kDoublesPerCacheLine;

/// Doubles per AVX2 vector; the kernels' lane-group width.
inline constexpr std::size_t kSimdLanes = 4;

inline constexpr std::size_t round_up_stride(std::size_t lanes) {
  return (lanes + kLaneStrideMultiple - 1) / kLaneStrideMultiple *
         kLaneStrideMultiple;
}

/// Lane groups a vector kernel processes to cover `live` lanes.
inline constexpr std::size_t round_up_simd(std::size_t live) {
  return (live + kSimdLanes - 1) / kSimdLanes * kSimdLanes;
}

/// The structure-of-arrays state the kernels operate on. Owned by
/// BatchAllocator; kernels see it as plain pointers + geometry.
struct BatchSoA {
  std::size_t stride = 0;    ///< row stride (lanes rounded up to 8)
  std::size_t live = 0;      ///< occupied columns (prefix)
  std::size_t node_cap = 0;  ///< plane row count
  std::size_t n_min = 0;     ///< min lane dimension among live lanes
  std::size_t n_max = 0;     ///< max lane dimension among live lanes
  bool any_dyn = false;      ///< any live lane uses the dynamic step rule

  // Planes, row-major [node][lane], rows 64-byte aligned.
  util::AlignedVector x, xn, du, d2c, c, mu, imu, cap;

  // Per-lane constants (length stride). lane_nd and lane_dynd are the
  // double-typed twins of the allocator's integer metadata so vector
  // masks can compare them without conversions (n <= 2^53 is exact).
  util::AlignedVector lane_tr, lane_k, lane_scv, lane_rho, lane_nd,
      lane_dynd, lane_alpha_opt, lane_safety;

  // Per-iteration outputs (length stride).
  util::AlignedVector sum_full, avg_full, alpha, lo, hi, theta;
  // Census flags: nonzero iff some node of the lane trips the pin /
  // violation predicate. (The scalar kernels store counts, the AVX2
  // kernels store 0/1 — only zero-ness is ever observed.)
  std::vector<std::uint32_t> pinc, viol;

  double* row(util::AlignedVector& plane, std::size_t j) {
    return plane.data() + j * stride;
  }
  const double* row(const util::AlignedVector& plane, std::size_t j) const {
    return plane.data() + j * stride;
  }
};

/// One entry per dense pass of the lockstep iteration, in call order.
struct BatchKernels {
  const char* name;

  /// du (and d2c when with_second) for rows [0, n_max), then the du
  /// padding invariant restored (du = 0 on rows >= lane n). Only called
  /// when every live lane has a single-server delay law; M/M/c batches
  /// take the per-lane scalar path in batch_allocator.cpp.
  void (*derivative_rows)(BatchSoA& soa, bool with_second);

  /// Restores the du padding invariant alone (the per-lane M/M/c path
  /// leaves stale values on padding rows).
  void (*zero_du_padding)(BatchSoA& soa);

  /// sum_full[k] = Σ_j du[j][k] (node rows in ascending order, exactly
  /// the serial left-to-right sum), avg_full[k] = sum_full[k] / n_k.
  void (*lane_sums)(BatchSoA& soa);

  /// alpha[k]: the lane's fixed step, or the Theorem-2 dynamic bound
  /// over the whole group (safety * 2Σdev² / Σ|d2c|·dev²) for dynamic
  /// lanes.
  void (*step_sizes)(BatchSoA& soa);

  /// pinc/viol census against the full-group average step, plus the θ
  /// clipping scan: theta[k] = min over violating nodes of the exact
  /// serial candidates (1.0 when nothing violates). theta is only
  /// meaningful for unpinned lanes — pinned lanes re-derive their step
  /// on the gathered scalar path.
  void (*census_theta)(BatchSoA& soa);

  /// Marginal-utility spread: lo/hi over each lane's real rows only
  /// (padding must not participate in min/max).
  void (*spread)(BatchSoA& soa);

  /// xn = clamp(x + theta * alpha * (du - avg)) over rows [0, n_max),
  /// then the xn padding invariant restored (xn = 0 on rows >= lane n).
  void (*apply_step)(BatchSoA& soa);
};

/// The portable kernels (always available; bit-identical to the serial
/// allocator by construction — they ARE the original loops).
const BatchKernels& scalar_batch_kernels();

#if defined(FAP_HAVE_AVX2_KERNELS)
/// The hand-vectorized kernels (present only when the build compiled
/// core/batch_kernels_avx2.cpp with -mavx2).
const BatchKernels& avx2_batch_kernels();
#endif

/// Dispatch: the kernel set active_simd_level() selects right now.
const BatchKernels& select_batch_kernels();

}  // namespace fap::core::detail
