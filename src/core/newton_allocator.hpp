// Second-derivative (Newton-scaled) variant of the resource-directed
// algorithm — the extension the paper reports under Future Research
// (Section 8.2): "We are at the moment investigating the use of second
// derivative information in this algorithm... The second derivative
// algorithm is resilient to changes in the scale of the problem... and
// increases the tolerance of the algorithm towards the selection of the
// stepsize parameter."
//
// Following the center-free second-order schemes of Ho, Servi & Suri [20]
// and Bertsekas et al. [2], each active node moves by
//
//   Δx_i = α ( ∂U/∂x_i - ū ) / h_i ,   h_i = |∂²U/∂x_i²| ,
//   ū    = Σ_{j∈A} (∂U/∂x_j / h_j)  /  Σ_{j∈A} (1/h_j) ,
//
// i.e. the average is curvature-weighted and each node's move is scaled by
// its own curvature. Σ_{i∈A} Δx_i = 0 by construction, so feasibility is
// preserved exactly as in Theorem 1, and the direction remains an ascent
// direction, so monotonicity holds for small α. Because ∂U and ∂²U scale
// together under any rescaling of the cost function (link costs, k), the
// update — and hence a good choice of α — is invariant to problem scale;
// the A2 ablation bench demonstrates this against the first-order
// algorithm.
#pragma once

#include <cstddef>
#include <vector>

#include "core/allocator.hpp"
#include "core/cost_model.hpp"

namespace fap::core {

struct NewtonAllocatorOptions {
  /// Step size; α = 1 is the pure (coordinate-wise) Newton step.
  double alpha = 1.0;
  double epsilon = 1e-3;
  std::size_t max_iterations = 100000;
  bool record_trace = false;
  /// Curvatures below this floor (relative to the largest curvature in the
  /// group) are clamped, so the update stays bounded on the delay model's
  /// linear extension where ∂²U = 0.
  double curvature_floor = 1e-9;
};

class NewtonAllocator {
 public:
  NewtonAllocator(const CostModel& model, NewtonAllocatorOptions options);

  AllocationResult run(std::vector<double> initial) const;

  struct StepOutcome {
    std::vector<double> x;
    bool terminal = false;
    double marginal_spread = 0.0;
    std::size_t active_set_size = 0;
    double alpha_used = 0.0;
  };
  StepOutcome step(const std::vector<double>& x) const;

  const NewtonAllocatorOptions& options() const noexcept { return options_; }

 private:
  const CostModel& model_;
  NewtonAllocatorOptions options_;
};

}  // namespace fap::core
