#include "core/neighbor_allocator.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace fap::core {

namespace {

constexpr double kEmptyTol = 1e-12;

}  // namespace

NeighborAllocator::NeighborAllocator(const CostModel& model,
                                     const net::Topology& graph,
                                     NeighborAllocatorOptions options)
    : model_(model), graph_(graph), options_(options) {
  FAP_EXPECTS(options_.alpha > 0.0, "step size must be positive");
  FAP_EXPECTS(options_.epsilon > 0.0, "epsilon must be positive");
  FAP_EXPECTS(options_.max_iterations > 0, "need at least one iteration");
  const std::vector<ConstraintGroup> groups = model_.constraint_groups();
  FAP_EXPECTS(!groups.empty(), "model must have a conservation constraint");
  FAP_EXPECTS(model_.dimension() ==
                  groups.size() * graph_.node_count(),
              "each constraint group needs exactly one variable per "
              "communication-graph node");
  for (const ConstraintGroup& group : groups) {
    FAP_EXPECTS(group.indices.size() == graph_.node_count(),
                "each constraint group needs exactly one variable per "
                "communication-graph node");
  }
  FAP_EXPECTS(graph_.connected(),
              "a disconnected communication graph cannot equalize marginal "
              "utilities across components");
  FAP_EXPECTS(model_.upper_bounds().empty(),
              "NeighborAllocator does not support storage capacities; use "
              "ResourceDirectedAllocator");
}

std::size_t NeighborAllocator::messages_per_iteration() const noexcept {
  return 2 * graph_.edge_count();
}

NeighborAllocator::StepOutcome NeighborAllocator::step(
    const std::vector<double>& x) const {
  model_.check_feasible(x);
  const std::vector<double> du = model_.marginal_utilities(x);
  const std::vector<ConstraintGroup> groups = model_.constraint_groups();

  // Requested flow per (group, edge), toward the higher-marginal-utility
  // endpoint, and the resulting requested egress per variable.
  struct Flow {
    std::size_t from = 0;  // variable indices
    std::size_t to = 0;
    double amount = 0.0;
  };
  std::vector<Flow> flows;
  flows.reserve(groups.size() * graph_.edge_count());
  std::vector<double> egress(x.size(), 0.0);
  double max_live_gap = 0.0;
  for (const ConstraintGroup& group : groups) {
    for (const net::Edge& edge : graph_.edges()) {
      // Convention: group.indices[p] is the variable at graph node p.
      const std::size_t var_u = group.indices[edge.u];
      const std::size_t var_v = group.indices[edge.v];
      const double gap = du[var_v] - du[var_u];
      const std::size_t from = gap >= 0.0 ? var_u : var_v;
      const std::size_t to = gap >= 0.0 ? var_v : var_u;
      const double magnitude = std::fabs(gap);
      // An edge is at rest when its gap is small or its donor is empty.
      if (magnitude >= options_.epsilon && x[from] > kEmptyTol) {
        max_live_gap = std::max(max_live_gap, magnitude);
      }
      if (magnitude > 0.0 && x[from] > kEmptyTol) {
        // Metropolis edge weight: a node of degree d aggregates d edge
        // flows, so un-weighted diffusion is unstable at hubs (a star's
        // hub would see an effective step of degree·α). Scaling each edge
        // by 1/(1 + max degree of its endpoints) keeps the per-node
        // aggregate step below α regardless of topology — the standard
        // consensus-weight choice.
        const double weight =
            1.0 / (1.0 + static_cast<double>(
                             std::max(graph_.neighbors(edge.u).size(),
                                      graph_.neighbors(edge.v).size())));
        const double amount = options_.alpha * weight * magnitude;
        flows.push_back(Flow{from, to, amount});
        egress[from] += amount;
      }
    }
  }

  StepOutcome outcome;
  outcome.x = x;
  outcome.max_edge_gap = max_live_gap;
  if (max_live_gap < options_.epsilon) {
    outcome.terminal = true;
    return outcome;
  }

  // Egress rationing: a variable cannot ship more than it holds.
  std::vector<double> scale(x.size(), 1.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (egress[i] > x[i]) {
      scale[i] = x[i] / egress[i];
    }
  }
  for (const Flow& flow : flows) {
    const double moved = scale[flow.from] * flow.amount;
    outcome.x[flow.from] -= moved;
    outcome.x[flow.to] += moved;
  }
  for (double& xi : outcome.x) {
    if (xi < 0.0) {
      xi = 0.0;  // floating-point dust only; rationing prevents real debt
    }
  }
  return outcome;
}

AllocationResult NeighborAllocator::run(std::vector<double> initial) const {
  model_.check_feasible(initial);
  AllocationResult result;
  result.x = std::move(initial);

  auto record = [&](std::size_t iteration, const StepOutcome& outcome) {
    if (!options_.record_trace) {
      return;
    }
    IterationRecord rec;
    rec.iteration = iteration;
    rec.cost = model_.cost(result.x);
    rec.alpha = outcome.terminal ? 0.0 : options_.alpha;
    rec.active_set_size = model_.dimension();
    rec.marginal_spread = outcome.max_edge_gap;
    rec.x = result.x;
    result.trace.push_back(std::move(rec));
  };

  for (std::size_t iter = 0; iter < options_.max_iterations; ++iter) {
    StepOutcome outcome = step(result.x);
    record(iter, outcome);
    if (outcome.terminal) {
      result.converged = true;
      break;
    }
    result.x = std::move(outcome.x);
    ++result.iterations;
  }
  result.cost = model_.cost(result.x);
  return result;
}

}  // namespace fap::core
