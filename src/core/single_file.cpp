#include "core/single_file.hpp"

#include <algorithm>
#include <cmath>

#include "net/generators.hpp"
#include "util/contracts.hpp"
#include "util/numeric.hpp"

namespace fap::core {

double Workload::total() const noexcept {
  return util::sum(lambda);
}

Workload Workload::uniform(std::size_t n, double total) {
  FAP_EXPECTS(n >= 1, "workload needs at least one node");
  FAP_EXPECTS(total > 0.0, "total access rate must be positive");
  return Workload{std::vector<double>(n, total / static_cast<double>(n))};
}

Workload QueryUpdateWorkload::combined() const {
  FAP_EXPECTS(query_rate.size() == update_rate.size(),
              "query/update rate vectors must have equal size");
  Workload w;
  w.lambda.resize(query_rate.size());
  for (std::size_t i = 0; i < query_rate.size(); ++i) {
    FAP_EXPECTS(query_rate[i] >= 0.0 && update_rate[i] >= 0.0,
                "rates must be non-negative");
    w.lambda[i] = query_rate[i] + update_rate[i];
  }
  return w;
}

std::vector<double> QueryUpdateWorkload::comm_weight_rates() const {
  FAP_EXPECTS(query_rate.size() == update_rate.size(),
              "query/update rate vectors must have equal size");
  FAP_EXPECTS(query_comm_weight >= 0.0 && update_comm_weight >= 0.0,
              "communication weights must be non-negative");
  std::vector<double> omega(query_rate.size());
  for (std::size_t i = 0; i < omega.size(); ++i) {
    omega[i] =
        query_comm_weight * query_rate[i] + update_comm_weight * update_rate[i];
  }
  return omega;
}

SingleFileProblem make_problem(const net::Topology& topology,
                               const Workload& workload, double mu, double k,
                               queueing::DelayModel delay) {
  FAP_EXPECTS(workload.lambda.size() == topology.node_count(),
              "workload size must match node count");
  SingleFileProblem problem{
      net::all_pairs_shortest_paths(topology),
      workload.lambda,
      std::vector<double>(topology.node_count(), mu),
      k,
      delay,
      {},
      {},
      {}};
  return problem;
}

SingleFileProblem make_problem(const net::Topology& topology,
                               const Workload& workload, double mu, double k,
                               net::CostMatrixCache& cache,
                               queueing::DelayModel delay) {
  FAP_EXPECTS(workload.lambda.size() == topology.node_count(),
              "workload size must match node count");
  SingleFileProblem problem{
      *cache.get(topology),
      workload.lambda,
      std::vector<double>(topology.node_count(), mu),
      k,
      delay,
      {},
      {},
      {}};
  return problem;
}

SingleFileProblem make_problem(std::shared_ptr<const net::CostProvider> comm,
                               const Workload& workload, double mu, double k,
                               queueing::DelayModel delay) {
  FAP_EXPECTS(comm != nullptr, "provider overload needs a provider");
  FAP_EXPECTS(workload.lambda.size() == comm->node_count(),
              "workload size must match node count");
  const std::size_t n = comm->node_count();
  SingleFileProblem problem{net::CostMatrix(0),
                            workload.lambda,
                            std::vector<double>(n, mu),
                            k,
                            delay,
                            {},
                            {},
                            {},
                            std::move(comm)};
  return problem;
}

SingleFileProblem make_paper_ring_problem() {
  const net::Topology ring = net::make_ring(4, 1.0);
  return make_problem(ring, Workload::uniform(4, 1.0), /*mu=*/1.5, /*k=*/1.0);
}

SingleFileProblem make_paper_ring_problem(net::CostMatrixCache& cache) {
  const net::Topology ring = net::make_ring(4, 1.0);
  return make_problem(ring, Workload::uniform(4, 1.0), /*mu=*/1.5, /*k=*/1.0,
                      cache);
}

SingleFileModel::SingleFileModel(SingleFileProblem problem)
    : problem_(std::move(problem)) {
  const std::size_t n = problem_.lambda.size();
  FAP_EXPECTS(n >= 1, "problem needs at least one node");
  const bool overridden = !problem_.access_cost_override.empty();
  const bool has_provider = problem_.comm_provider != nullptr;
  if (has_provider) {
    FAP_EXPECTS(problem_.comm_provider->node_count() == n,
                "cost provider size must match node count");
  }
  if (overridden) {
    FAP_EXPECTS(problem_.access_cost_override.size() == n,
                "access cost override must match node count");
    FAP_EXPECTS(problem_.comm.node_count() == 0 ||
                    problem_.comm.node_count() == n,
                "cost matrix size must match node count");
  } else {
    FAP_EXPECTS(problem_.comm.node_count() == n ||
                    (has_provider && problem_.comm.node_count() == 0),
                "need a full cost matrix or a cost provider");
  }
  FAP_EXPECTS(problem_.mu.size() == n, "mu size must match node count");
  FAP_EXPECTS(problem_.k >= 0.0, "k must be non-negative");
  for (const double rate : problem_.lambda) {
    FAP_EXPECTS(rate >= 0.0, "access rates must be non-negative");
  }
  total_rate_ = util::sum(problem_.lambda);
  FAP_EXPECTS(total_rate_ > 0.0, "network-wide access rate must be positive");
  for (const double mu : problem_.mu) {
    FAP_EXPECTS(mu > 0.0, "service rates must be positive");
    if (problem_.delay.rho_max() >= 1.0) {
      // With x_i <= 1 the arrival rate at any node is at most λ, so λ < μ_i
      // (the paper's μ > λ assumption) keeps every queue in the pure-model
      // regime.
      FAP_EXPECTS(total_rate_ < problem_.delay.capacity(mu),
                  "stability requires λ below every node's service "
                  "capacity (or a linearized delay model, see DelayModel "
                  "rho_max)");
    }
  }

  if (!problem_.storage_capacity.empty()) {
    FAP_EXPECTS(problem_.storage_capacity.size() == n,
                "storage capacities must match node count");
    double capacity_total = 0.0;
    for (const double cap : problem_.storage_capacity) {
      FAP_EXPECTS(cap >= 0.0, "storage capacities must be non-negative");
      capacity_total += cap;
    }
    FAP_EXPECTS(capacity_total >= 1.0 - 1e-9,
                "total storage capacity must hold at least one whole file");
  }

  if (overridden) {
    access_cost_ = problem_.access_cost_override;
    return;
  }

  // ω defaults to λ: the base model does not distinguish queries/updates.
  const std::vector<double>& omega = problem_.comm_weight_rates.empty()
                                         ? problem_.lambda
                                         : problem_.comm_weight_rates;
  FAP_EXPECTS(omega.size() == n, "comm weight rates must match node count");

  // C_i = Σ_j (ω_j / λ) c_ji. Accumulated row-major (j outer) through the
  // unchecked row accessor: per destination i the additions still happen in
  // increasing j, so the totals are bit-identical to the column-major
  // double loop, but each row of the O(n²) matrix is walked contiguously
  // and without per-element bounds checks. The provider branch streams the
  // identical rows in the identical order (providers return bit-equal rows
  // by contract), so both branches produce the same bytes; it just never
  // materializes the n×n matrix.
  access_cost_.assign(n, 0.0);
  const bool dense = problem_.comm.node_count() == n;
  for (std::size_t j = 0; j < n; ++j) {
    const double weight = omega[j];
    net::CostRow provider_row;
    const double* row;
    if (dense) {
      row = problem_.comm.row(j);
    } else {
      provider_row = problem_.comm_provider->row(j);
      row = provider_row.data();
    }
    for (std::size_t i = 0; i < n; ++i) {
      access_cost_[i] += weight * row[i];
    }
  }
  for (double& c : access_cost_) {
    c /= total_rate_;
  }
}

std::vector<ConstraintGroup> SingleFileModel::constraint_groups() const {
  ConstraintGroup group;
  group.indices.resize(dimension());
  for (std::size_t i = 0; i < group.indices.size(); ++i) {
    group.indices[i] = i;
  }
  group.total = 1.0;
  return {group};
}

double SingleFileModel::cost(const std::vector<double>& x) const {
  FAP_EXPECTS(x.size() == dimension(), "allocation has wrong dimension");
  double total = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] == 0.0) {
      continue;  // zero fragment contributes zero cost regardless of T_i
    }
    const double a = total_rate_ * x[i];
    total +=
        x[i] * (access_cost_[i] +
                problem_.k * problem_.delay.sojourn(a, problem_.mu[i]));
  }
  return total;
}

std::vector<double> SingleFileModel::gradient(
    const std::vector<double>& x) const {
  std::vector<double> grad;
  gradient_into(x, grad);
  return grad;
}

void SingleFileModel::gradient_into(const std::vector<double>& x,
                                    std::vector<double>& out) const {
  FAP_EXPECTS(x.size() == dimension(), "allocation has wrong dimension");
  out.assign(x.size(), 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double a = total_rate_ * x[i];
    const double mu = problem_.mu[i];
    // d/dx [ x (C_i + k T(λx)) ] = C_i + k T(λx) + k λ x T'(λx)
    out[i] = access_cost_[i] +
             problem_.k * (problem_.delay.sojourn(a, mu) +
                           a * problem_.delay.d_sojourn(a, mu));
  }
}

std::vector<double> SingleFileModel::second_derivative(
    const std::vector<double>& x) const {
  std::vector<double> hess;
  second_derivative_into(x, hess);
  return hess;
}

void SingleFileModel::second_derivative_into(const std::vector<double>& x,
                                             std::vector<double>& out) const {
  FAP_EXPECTS(x.size() == dimension(), "allocation has wrong dimension");
  out.assign(x.size(), 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double a = total_rate_ * x[i];
    const double mu = problem_.mu[i];
    // d²/dx² = λ (2 k T'(λx) + k λ x T''(λx))
    out[i] = total_rate_ * problem_.k *
             (2.0 * problem_.delay.d_sojourn(a, mu) +
              a * problem_.delay.d2_sojourn(a, mu));
  }
}

double SingleFileModel::access_cost(std::size_t i) const {
  FAP_EXPECTS(i < access_cost_.size(), "node id out of range");
  return access_cost_[i];
}

DerivativeBounds SingleFileModel::derivative_bounds() const {
  FAP_EXPECTS(problem_.delay.discipline() == queueing::Discipline::kMM1 &&
                  problem_.delay.rho_max() >= 1.0,
              "the appendix bounds are derived for the pure M/M/1 model");
  const double mu = *std::min_element(problem_.mu.begin(), problem_.mu.end());
  FAP_EXPECTS(total_rate_ < mu, "appendix bounds require λ < μ");
  const auto [c_min_it, c_max_it] =
      std::minmax_element(access_cost_.begin(), access_cost_.end());
  DerivativeBounds b;
  b.c_min = *c_min_it;
  b.c_max = *c_max_it;
  const double lambda = total_rate_;
  const double k = problem_.k;
  const double gap = mu - lambda;
  b.grad_min = b.c_min + k / mu;
  b.grad_max = b.c_max + mu * k / (gap * gap);
  b.hess_max = 2.0 * mu * k * lambda / (gap * gap * gap);
  return b;
}

double SingleFileModel::theorem2_alpha_bound(double epsilon) const {
  FAP_EXPECTS(epsilon > 0.0, "epsilon must be positive");
  const DerivativeBounds b = derivative_bounds();
  const double mu = *std::min_element(problem_.mu.begin(), problem_.mu.end());
  const double lambda = total_rate_;
  const double k = problem_.k;
  const double n = static_cast<double>(dimension());
  const double gap = mu - lambda;
  const double inner =
      (b.c_max - b.c_min) * mu * gap + lambda * k * (2.0 * mu - lambda);
  FAP_ENSURES(inner > 0.0, "theorem-2 denominator term must be positive");
  return epsilon * epsilon * gap * gap * gap * gap /
         (2.0 * n * k * lambda * inner * inner);
}

}  // namespace fap::core
