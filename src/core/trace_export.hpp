// Exporting algorithm runs for plotting and downstream analysis: the
// per-iteration trace as CSV (one row per iteration) or the whole result
// as a JSON document.
#pragma once

#include <string>
#include <vector>

#include "core/allocator.hpp"

namespace fap::core {

/// CSV with header `iteration,cost,alpha,active_set,spread,x0,x1,...`.
/// Empty traces produce just the header (with no x columns).
std::string trace_to_csv(const std::vector<IterationRecord>& trace);

/// JSON object: {"converged": ..., "iterations": ..., "cost": ...,
/// "x": [...], "trace": [{"iteration": ..., "cost": ..., "alpha": ...,
/// "active_set": ..., "spread": ..., "x": [...]}, ...]}.
std::string result_to_json(const AllocationResult& result);

}  // namespace fap::core
