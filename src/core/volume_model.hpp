// Volume-dependent transfer costs — the Section 8.2 model variant:
// "if we consider systems in which the whole portion of the file is
// copied to the querying node instead of a remote transaction working on
// its behalf at the destination node then the communications cost will
// depend on the volume of file transferred. ... Such a model is useful in
// certain message-based distributed systems where data objects are passed
// by value."
//
// Each access from j served at i ships base_volume + volume_factor · x_i
// units over the j→i route (the fragment at i is copied by value, so a
// larger fragment costs more to ship):
//
//   C(x) = Σ_i x_i [ C_i (b + v x_i) + k T(λ x_i, μ_i) ] ,
//
// with C_i the Section 4 system-wide route cost, b = base_volume and
// v = volume_factor. The communication term is now *quadratic* in x_i, so
// even with k = 0 the objective is strictly convex and fragmentation pays:
// the volume penalty alone spreads the file (quantified by
// bench/ablation_volume). The model plugs into every allocator unchanged.
#pragma once

#include <cstddef>
#include <vector>

#include "core/cost_model.hpp"
#include "core/single_file.hpp"

namespace fap::core {

class VolumeTransferModel : public CostModel {
 public:
  /// `problem` as for SingleFileModel; `base_volume` (b >= 0) is the
  /// per-access fixed payload and `volume_factor` (v >= 0) the
  /// fragment-size-proportional payload. With b = 1, v = 0 this is
  /// exactly the Section 4 model.
  VolumeTransferModel(SingleFileProblem problem, double base_volume,
                      double volume_factor);

  std::size_t dimension() const override { return base_.dimension(); }
  std::vector<ConstraintGroup> constraint_groups() const override;
  double cost(const std::vector<double>& x) const override;
  std::vector<double> gradient(const std::vector<double>& x) const override;
  std::vector<double> second_derivative(
      const std::vector<double>& x) const override;

  double base_volume() const noexcept { return base_volume_; }
  double volume_factor() const noexcept { return volume_factor_; }
  const SingleFileModel& base_model() const noexcept { return base_; }

 private:
  SingleFileModel base_;
  double base_volume_;
  double volume_factor_;
};

}  // namespace fap::core
