#include "core/ring_model.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/contracts.hpp"
#include "util/numeric.hpp"

namespace fap::core {

RingProblem make_paper_ring_problem(const std::vector<double>& link_costs,
                                    double copies) {
  FAP_EXPECTS(link_costs.size() == 4, "the paper's ring has four nodes");
  RingProblem problem{net::VirtualRing(link_costs),
                      copies,
                      std::vector<double>(4, 0.25),
                      std::vector<double>(4, 1.5),
                      /*k=*/1.0,
                      queueing::DelayModel::mm1(/*rho_max=*/0.95),
                      /*max_per_node=*/0.0};
  return problem;
}

RingModel::RingModel(RingProblem problem) : problem_(std::move(problem)) {
  const std::size_t n = problem_.ring.size();
  FAP_EXPECTS(problem_.lambda.size() == n, "lambda size must match ring size");
  FAP_EXPECTS(problem_.mu.size() == n, "mu size must match ring size");
  FAP_EXPECTS(problem_.copies >= 1.0,
              "need at least one whole copy for every access to be "
              "satisfiable");
  FAP_EXPECTS(problem_.k >= 0.0, "k must be non-negative");
  for (const double rate : problem_.lambda) {
    FAP_EXPECTS(rate >= 0.0, "access rates must be non-negative");
  }
  total_rate_ = util::sum(problem_.lambda);
  FAP_EXPECTS(total_rate_ > 0.0, "network-wide access rate must be positive");
  if (problem_.max_per_node > 0.0) {
    FAP_EXPECTS(static_cast<double>(n) * problem_.max_per_node >=
                    problem_.copies - 1e-9,
                "per-node caps must admit m whole copies");
  }
  for (const double mu : problem_.mu) {
    FAP_EXPECTS(mu > 0.0, "service rates must be positive");
    if (problem_.delay.rho_max() >= 1.0) {
      FAP_EXPECTS(total_rate_ < problem_.delay.capacity(mu),
                  "with a pure queueing model the whole network rate must "
                  "fit at any single node; use a linearized DelayModel "
                  "instead");
    }
  }
}

std::vector<ConstraintGroup> RingModel::constraint_groups() const {
  ConstraintGroup group;
  group.indices.resize(dimension());
  std::iota(group.indices.begin(), group.indices.end(), std::size_t{0});
  group.total = problem_.copies;
  return {group};
}

std::vector<double> RingModel::upper_bounds() const {
  if (problem_.max_per_node <= 0.0) {
    return {};
  }
  return std::vector<double>(dimension(), problem_.max_per_node);
}

std::vector<std::vector<double>> RingModel::access_weights(
    const std::vector<double>& x) const {
  FAP_EXPECTS(x.size() == dimension(), "allocation has wrong dimension");
  const std::size_t n = dimension();
  std::vector<std::vector<double>> w(n, std::vector<double>(n, 0.0));
  for (std::size_t j = 0; j < n; ++j) {
    double cumulative = 0.0;
    for (std::size_t offset = 0; offset < n; ++offset) {
      const std::size_t node = (j + offset) % n;
      const double before = std::min(cumulative, 1.0);
      cumulative += x[node];
      const double after = std::min(cumulative, 1.0);
      w[j][node] = after - before;
      if (after >= 1.0) {
        break;  // first whole copy covered; later nodes get weight 0
      }
    }
  }
  return w;
}

std::vector<double> RingModel::arrival_rates(
    const std::vector<double>& x) const {
  const std::vector<std::vector<double>> w = access_weights(x);
  std::vector<double> a(dimension(), 0.0);
  for (std::size_t j = 0; j < dimension(); ++j) {
    for (std::size_t i = 0; i < dimension(); ++i) {
      a[i] += problem_.lambda[j] * w[j][i];
    }
  }
  return a;
}

double RingModel::communication_cost(const std::vector<double>& x) const {
  const std::vector<std::vector<double>> w = access_weights(x);
  double comm = 0.0;
  for (std::size_t j = 0; j < dimension(); ++j) {
    for (std::size_t i = 0; i < dimension(); ++i) {
      if (w[j][i] > 0.0) {
        comm += problem_.lambda[j] * w[j][i] *
                problem_.ring.forward_distance(j, i);
      }
    }
  }
  return comm;
}

double RingModel::delay_cost(const std::vector<double>& x) const {
  const std::vector<double> a = arrival_rates(x);
  double delay = 0.0;
  for (std::size_t i = 0; i < dimension(); ++i) {
    if (a[i] > 0.0) {
      delay += problem_.k * a[i] * problem_.delay.sojourn(a[i], problem_.mu[i]);
    }
  }
  return delay;
}

double RingModel::cost(const std::vector<double>& x) const {
  return communication_cost(x) + delay_cost(x);
}

namespace {

// Per-source walk structure: the nodes strictly inside source j's first
// copy (cumulative coverage through the node still below 1) and the
// boundary node at which coverage reaches 1.
struct Walk {
  std::vector<std::size_t> inside;  // nodes with S_after < 1, in walk order
  std::size_t boundary = 0;         // first node with S_after >= 1
};

Walk make_walk(const std::vector<double>& x, std::size_t j) {
  const std::size_t n = x.size();
  Walk walk;
  double cumulative = 0.0;
  for (std::size_t offset = 0; offset < n; ++offset) {
    const std::size_t node = (j + offset) % n;
    cumulative += x[node];
    if (cumulative >= 1.0) {
      walk.boundary = node;
      return walk;
    }
    walk.inside.push_back(node);
  }
  // Σ x_i = m >= 1 guarantees coverage up to floating-point dust in the
  // cumulative sum; treat the final node of the walk as the boundary.
  FAP_ENSURES(cumulative >= 1.0 - 1e-6,
              "ring walk failed to cover one whole copy");
  walk.boundary = walk.inside.back();
  walk.inside.pop_back();
  return walk;
}

}  // namespace

std::vector<double> RingModel::gradient(const std::vector<double>& x) const {
  FAP_EXPECTS(x.size() == dimension(), "allocation has wrong dimension");
  const std::size_t n = dimension();
  const std::vector<double> a = arrival_rates(x);

  // φ_i = d/da [ k a T(a) ] = k (T(a_i) + a_i T'(a_i)): the marginal delay
  // cost of directing one more unit of access rate at node i.
  std::vector<double> phi(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    phi[i] = problem_.k * (problem_.delay.sojourn(a[i], problem_.mu[i]) +
                           a[i] * problem_.delay.d_sojourn(a[i],
                                                           problem_.mu[i]));
  }

  // Raising x_l by dx (for l strictly inside source j's first copy) moves
  // λ_j dx of access weight from j's boundary node b_j to l, changing cost
  // by λ_j [ (d(j,l) + φ_l) - (d(j,b_j) + φ_b) ] dx. Nodes at or beyond
  // the boundary contribute nothing (right-hand derivative).
  std::vector<double> grad(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    if (problem_.lambda[j] == 0.0) {
      continue;
    }
    const Walk walk = make_walk(x, j);
    const double boundary_value =
        problem_.ring.forward_distance(j, walk.boundary) + phi[walk.boundary];
    for (const std::size_t l : walk.inside) {
      grad[l] += problem_.lambda[j] *
                 (problem_.ring.forward_distance(j, l) + phi[l] -
                  boundary_value);
    }
  }
  return grad;
}

std::vector<double> RingModel::second_derivative(
    const std::vector<double>& x) const {
  FAP_EXPECTS(x.size() == dimension(), "allocation has wrong dimension");
  const std::size_t n = dimension();
  const std::vector<double> a = arrival_rates(x);

  // ψ_i = d²/da² [ k a T(a) ] = k (2 T'(a_i) + a_i T''(a_i)).
  std::vector<double> psi(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    psi[i] =
        problem_.k * (2.0 * problem_.delay.d_sojourn(a[i], problem_.mu[i]) +
                      a[i] * problem_.delay.d2_sojourn(a[i], problem_.mu[i]));
  }

  // Within a region of fixed boundaries the communication term is linear,
  // so curvature comes from the delay term only:
  //   ∂a_l/∂x_l = Σ_{j: l inside walk_j} λ_j            (gains at l)
  //   ∂a_b/∂x_l = -Σ_{j: b_j = b, l inside walk_j} λ_j  (losses at b)
  //   ∂²C/∂x_l² = ψ_l (∂a_l/∂x_l)² + Σ_b ψ_b (∂a_b/∂x_l)².
  std::vector<double> gain(n, 0.0);
  // loss[l * n + b]: rate moved away from boundary b per unit of x_l.
  std::vector<double> loss(n * n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    if (problem_.lambda[j] == 0.0) {
      continue;
    }
    const Walk walk = make_walk(x, j);
    for (const std::size_t l : walk.inside) {
      gain[l] += problem_.lambda[j];
      loss[l * n + walk.boundary] += problem_.lambda[j];
    }
  }
  std::vector<double> hess(n, 0.0);
  for (std::size_t l = 0; l < n; ++l) {
    double value = psi[l] * gain[l] * gain[l];
    for (std::size_t b = 0; b < n; ++b) {
      const double moved = loss[l * n + b];
      if (moved > 0.0) {
        value += psi[b] * moved * moved;
      }
    }
    hess[l] = value;
  }
  return hess;
}

std::vector<double> trim_to_whole_copy(const RingModel& model,
                                       std::vector<double> x) {
  model.check_feasible(x);
  FAP_EXPECTS(model.problem().copies <=
                  static_cast<double>(model.dimension()),
              "cannot cap nodes at one copy when m exceeds the node count");
  double excess = 0.0;
  for (double& xi : x) {
    if (xi > 1.0) {
      excess += xi - 1.0;
      xi = 1.0;
    }
  }
  if (excess <= 0.0) {
    return x;
  }
  // Pour the excess into uncapped nodes in increasing marginal-cost order.
  const std::vector<double> grad = model.gradient(x);
  std::vector<std::size_t> order(x.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&grad](std::size_t a, std::size_t b) {
    return grad[a] < grad[b];
  });
  for (const std::size_t i : order) {
    if (excess <= 0.0) {
      break;
    }
    const double room = 1.0 - x[i];
    if (room > 0.0) {
      const double poured = std::min(room, excess);
      x[i] += poured;
      excess -= poured;
    }
  }
  FAP_ENSURES(excess <= 1e-9, "trim failed to redistribute all excess");
  return x;
}

}  // namespace fap::core
