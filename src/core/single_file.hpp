// The paper's primary objective: one copy of one file fragmented over N
// nodes (Section 4, Eq. 1-2), with the Section 5.4 generalizations:
// per-node service rates μ_i, query/update cost weighting, and alternate
// (M/G/1) queueing disciplines.
//
//   C(x) = Σ_i ( C_i + k · T(λ x_i, μ_i) ) x_i
//   C_i  = Σ_j (ω_j / λ) c_ji          (system-wide comm cost of access at i)
//
// where λ = Σ_j λ_j is the network-wide access rate, T is the queueing
// sojourn time, k relates delay to communication cost, and ω_j defaults to
// λ_j (it differs only when queries and updates carry different
// communication weights).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/cost_model.hpp"
#include "net/cost_cache.hpp"
#include "net/cost_provider.hpp"
#include "net/shortest_paths.hpp"
#include "net/topology.hpp"
#include "queueing/delay.hpp"

namespace fap::core {

/// Per-node Poisson access-generation rates.
struct Workload {
  std::vector<double> lambda;

  /// Network-wide access rate λ = Σ λ_i.
  double total() const noexcept;

  /// Every node generates rate `total / n`.
  static Workload uniform(std::size_t n, double total);
};

/// Query/update workload for the Section 5.4 split-cost generalization:
/// queries and updates share the service queue (both are "accesses") but
/// may carry different communication weights (an update typically touches
/// every fragment holder or carries a larger payload).
struct QueryUpdateWorkload {
  std::vector<double> query_rate;
  std::vector<double> update_rate;
  double query_comm_weight = 1.0;
  double update_comm_weight = 1.0;

  /// Combined access rates λ_j = q_j + u_j.
  Workload combined() const;

  /// Communication weight rates ω_j = w_q q_j + w_u u_j.
  std::vector<double> comm_weight_rates() const;
};

/// Full problem description for the single-copy single-file FAP.
struct SingleFileProblem {
  net::CostMatrix comm;           ///< c_ij: least-cost access i -> j
  std::vector<double> lambda;     ///< per-node access rates λ_i
  std::vector<double> mu;         ///< per-node service rates μ_i
  double k = 1.0;                 ///< delay-vs-communication scaling
  queueing::DelayModel delay;     ///< M/M/1 by default
  /// Communication weight rates ω_j; empty means ω = λ (the paper's base
  /// model, which does not distinguish queries from updates).
  std::vector<double> comm_weight_rates;
  /// Per-node storage capacity as a fraction of the file (x_i <= s_i) —
  /// the Suri [33] generalization from the Section 3 survey. Empty means
  /// unconstrained. Must sum to at least 1 so a feasible allocation
  /// exists.
  std::vector<double> storage_capacity;
  /// When non-empty (one entry per node), these ARE the access costs C_i:
  /// the model skips the Σ_j (ω_j/λ) c_ji aggregation and `comm` may be
  /// empty. The catalog engine uses this to hand the serial reference
  /// allocator the exact priced access-cost vector its batched inner
  /// solves see — assembling C_i twice through different summation orders
  /// would break the bit-identity pin at the last ulp.
  std::vector<double> access_cost_override;
  /// Row-based alternative to `comm` for large N: when set (and `comm` is
  /// empty), C_i is assembled by streaming provider rows j = 0..n-1 in the
  /// same order as the dense loop, so the result is byte-identical to the
  /// dense path while the cost structure stays O(n + cached rows) instead
  /// of n². A populated `comm` always wins over the provider (the dense
  /// fast path stays the small-N default).
  std::shared_ptr<const net::CostProvider> comm_provider;
};

/// Convenience: builds a SingleFileProblem from a physical topology using
/// least-cost routing (the paper's assumption), a uniform service rate μ,
/// and workload `w`.
SingleFileProblem make_problem(const net::Topology& topology,
                               const Workload& workload, double mu, double k,
                               queueing::DelayModel delay = {});

/// Cache-aware variant: identical result (the cache returns the matrix
/// all_pairs_shortest_paths would compute — byte-identical by contract),
/// but repeated calls with content-equal topologies pay the APSP once.
/// This is the overload sweeps should use: each task rebuilds its model
/// independently, and the shared cache collapses the common APSP work.
SingleFileProblem make_problem(const net::Topology& topology,
                               const Workload& workload, double mu, double k,
                               net::CostMatrixCache& cache,
                               queueing::DelayModel delay = {});

/// Provider-backed variant for large N: no dense matrix is ever built —
/// the model streams provider rows during C_i assembly, byte-identical to
/// the dense overloads on the same network (providers return bit-equal
/// rows by contract) with memory O(n + cached rows).
SingleFileProblem make_problem(std::shared_ptr<const net::CostProvider> comm,
                               const Workload& workload, double mu, double k,
                               queueing::DelayModel delay = {});

/// The paper's four-node-ring experimental setup (Section 6): unit link
/// costs, μ = 1.5, k = 1, λ = 1 split evenly, ε = 0.001.
SingleFileProblem make_paper_ring_problem();

/// Cache-aware variant of make_paper_ring_problem.
SingleFileProblem make_paper_ring_problem(net::CostMatrixCache& cache);

/// Bounds on the derivatives of C used by the Theorem-2 step-size bound
/// (appendix items (a)-(d)).
struct DerivativeBounds {
  double grad_min = 0.0;   ///< min over x of ∂C/∂x_i  = C_min + k/μ
  double grad_max = 0.0;   ///< max over x of ∂C/∂x_i  = C_max + kμ/(μ-λ)²
  double hess_max = 0.0;   ///< max over x of ∂²C/∂x_i² = 2μkλ/(μ-λ)³
  double c_min = 0.0;      ///< min_i C_i
  double c_max = 0.0;      ///< max_i C_i
};

/// Differentiable cost model for SingleFileProblem. One constraint group:
/// Σ x_i = 1.
class SingleFileModel : public CostModel {
 public:
  explicit SingleFileModel(SingleFileProblem problem);

  std::size_t dimension() const override { return problem_.lambda.size(); }
  std::vector<ConstraintGroup> constraint_groups() const override;
  std::vector<double> upper_bounds() const override {
    return problem_.storage_capacity;
  }
  double cost(const std::vector<double>& x) const override;
  std::vector<double> gradient(const std::vector<double>& x) const override;
  std::vector<double> second_derivative(
      const std::vector<double>& x) const override;
  void gradient_into(const std::vector<double>& x,
                     std::vector<double>& out) const override;
  void second_derivative_into(const std::vector<double>& x,
                              std::vector<double>& out) const override;

  const SingleFileProblem& problem() const noexcept { return problem_; }

  /// System-wide communication cost C_i of directing an access to node i.
  double access_cost(std::size_t i) const;
  const std::vector<double>& access_costs() const noexcept {
    return access_cost_;
  }

  /// Network-wide access rate λ.
  double total_rate() const noexcept { return total_rate_; }

  /// Appendix bounds (a)-(d); requires a pure M/M/1 delay model. μ is taken
  /// as min_i μ_i, which is conservative (maximizes every bound).
  DerivativeBounds derivative_bounds() const;

  /// The Theorem-2 upper bound on the step size α that provably guarantees
  /// a monotone increase in utility at every iteration:
  ///
  ///   α < ε² (μ-λ)⁴ / ( 2 n k λ ( (C_max - C_min) μ (μ-λ) + λ k (2μ-λ) )² )
  ///
  /// As the paper notes, this is very conservative; larger α usually
  /// converges much faster (Figure 5, ablation A1).
  double theorem2_alpha_bound(double epsilon) const;

 private:
  SingleFileProblem problem_;
  std::vector<double> access_cost_;  // C_i
  double total_rate_ = 0.0;          // λ
};

}  // namespace fap::core
