#include "core/cost_model.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace fap::core {

std::vector<double> CostModel::marginal_utilities(
    const std::vector<double>& x) const {
  std::vector<double> grad = gradient(x);
  for (double& g : grad) {
    g = -g;
  }
  return grad;
}

void CostModel::marginal_utilities_into(const std::vector<double>& x,
                                        std::vector<double>& out) const {
  gradient_into(x, out);
  for (double& g : out) {
    g = -g;
  }
}

void CostModel::check_feasible(const std::vector<double>& x,
                               double tol) const {
  FAP_EXPECTS(x.size() == dimension(), "allocation has wrong dimension");
  for (const double xi : x) {
    FAP_EXPECTS(xi >= -tol, "allocation must be non-negative");
  }
  const std::vector<double> caps = upper_bounds();
  if (!caps.empty()) {
    FAP_EXPECTS(caps.size() == x.size(),
                "one upper bound per variable when bounds are present");
    for (std::size_t i = 0; i < x.size(); ++i) {
      FAP_EXPECTS(x[i] <= caps[i] + tol,
                  "allocation exceeds a storage capacity");
    }
  }
  for (const ConstraintGroup& group : constraint_groups()) {
    double sum = 0.0;
    for (const std::size_t i : group.indices) {
      FAP_EXPECTS(i < x.size(), "constraint index out of range");
      sum += x[i];
    }
    FAP_EXPECTS(std::fabs(sum - group.total) <= tol,
                "allocation violates a resource-conservation constraint");
  }
}

std::vector<double> uniform_allocation(const CostModel& model) {
  std::vector<double> x(model.dimension(), 0.0);
  const std::vector<double> caps = model.upper_bounds();
  for (const ConstraintGroup& group : model.constraint_groups()) {
    const double share =
        group.total / static_cast<double>(group.indices.size());
    for (const std::size_t i : group.indices) {
      x[i] = share;
    }
    if (caps.empty()) {
      continue;
    }
    // Water-filling: repeatedly clamp capped variables and spread the
    // excess over the rest. Terminates in at most |group| rounds.
    for (std::size_t round = 0; round < group.indices.size(); ++round) {
      double excess = 0.0;
      std::size_t open = 0;
      for (const std::size_t i : group.indices) {
        if (x[i] > caps[i]) {
          excess += x[i] - caps[i];
          x[i] = caps[i];
        } else if (x[i] < caps[i]) {
          ++open;
        }
      }
      if (excess <= 0.0) {
        break;
      }
      FAP_EXPECTS(open > 0,
                  "total capacity is below the group's resource total");
      const double top_up = excess / static_cast<double>(open);
      for (const std::size_t i : group.indices) {
        if (x[i] < caps[i]) {
          x[i] += top_up;
        }
      }
    }
  }
  return x;
}

bool is_feasible(const CostModel& model, const std::vector<double>& x,
                 double tol) {
  try {
    model.check_feasible(x, tol);
    return true;
  } catch (const util::PreconditionError&) {
    return false;
  }
}

}  // namespace fap::core
