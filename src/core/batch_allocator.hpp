// Batched structure-of-arrays allocator kernel.
//
// Every figure and ablation evaluates many *independent* small
// ResourceDirectedAllocator instances — an α sweep, a grid search, a
// table of randomized problems. Run one at a time, each iteration is a
// handful of scalar divides over n ≈ 4–64 nodes: far too little work to
// feed the vector units or amortize per-call overhead. BatchAllocator
// steps K instances in lockstep instead, with every per-node quantity
// laid out [node][lane] (lane = instance) so the delay-law and utility
// arithmetic of one node row vectorizes across the batch dimension.
//
// The dense passes of the lockstep iteration live behind the
// core/batch_kernels.hpp function table: a portable scalar set (the
// loops this class always had) and a hand-vectorized AVX2 set, selected
// at runtime by core/simd_dispatch (CPUID, overridable via
// FAP_FORCE_SCALAR_KERNELS or force_simd_level). The two sets are
// bitwise equivalent — see batch_kernels.hpp for the argument — so
// dispatch is purely a speed decision.
//
// Bit-identity contract: lanes are independent instances, so no
// cross-lane reduction exists anywhere — each lane executes exactly the
// scalar operation sequence of ResourceDirectedAllocator::run /
// Workspace::step_into (same expressions, same order, same boundary
// logic via the shared core/active_set.hpp fast path), and IEEE-754 ops
// are exactly rounded regardless of whether they sit in a vector
// register. The kernel TUs are compiled with -ffp-contract=off so no FMA
// contraction can perturb a rounding. Consequently run_all() returns
// results (x, cost, converged, iterations) bitwise equal to running each
// submission through ResourceDirectedAllocator serially — pinned across
// randomized instances by core_batch_allocator_test, which also pins the
// AVX2 and scalar kernel sets against each other.
//
// Lane lifecycle: submissions queue in submit() order; run_all() loads
// the first `width` of them into lanes and iterates. A lane retires when
// its termination criterion fires (converged) or its iteration cap is
// reached, and its column is immediately backfilled from the pending
// queue; when the queue is dry, live columns are compacted left so the
// vector loops stay dense.
//
// Supported models: SingleFileModel (any delay discipline; single-server
// disciplines take the vectorized derivative path, M/M/c lanes fall back
// to per-lane scalar evaluation), fixed or dynamic step rule, optional
// storage capacities. Trace recording and the reference active set are
// not supported (use the serial allocator for those).
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/active_set.hpp"
#include "core/allocator.hpp"
#include "core/batch_kernels.hpp"
#include "core/single_file.hpp"
#include "queueing/delay.hpp"
#include "util/aligned.hpp"

namespace fap::core {

/// Result of one batched instance: AllocationResult minus the trace.
struct BatchRunResult {
  std::vector<double> x;
  double cost = 0.0;
  bool converged = false;
  std::size_t iterations = 0;
};

class BatchAllocator {
 public:
  /// Default lane count: wide enough to fill AVX-512 registers many times
  /// over and amortize per-iteration lane bookkeeping, small enough that
  /// the SoA planes of typical (n <= 64) problems stay cache-resident.
  static constexpr std::size_t kDefaultWidth = 64;

  explicit BatchAllocator(std::size_t width = kDefaultWidth);

  /// Enqueues one instance; returns its index into run_all()'s result
  /// vector. Copies everything it needs from `model` (the reference need
  /// not outlive the call). Throws PreconditionError on infeasible
  /// `start`, invalid options, or options requesting trace recording /
  /// the reference active set.
  std::size_t submit(const SingleFileModel& model,
                     const AllocatorOptions& options,
                     std::vector<double> start);

  /// A submission without the SingleFileModel wrapper: exactly the fields
  /// run_all() consumes, by pointer into caller-owned storage (borrowed
  /// only for the duration of submit(), which copies). The catalog engine
  /// feeds ~1e6 instances per pricing round; constructing a model object
  /// (comm matrix + λ vector + access-cost aggregation) per instance
  /// would dominate the solve, while the priced access-cost vector is
  /// already assembled. `caps` may be null (unbounded).
  struct RawInstance {
    std::size_t n = 0;
    double total_rate = 0.0;         ///< λ (arrival at node i is λ·x_i)
    double k = 0.0;
    queueing::DelayModel delay;
    const double* access_cost = nullptr;  ///< C_i, length n
    const double* mu = nullptr;           ///< length n
    const double* caps = nullptr;         ///< length n, null = unbounded
    const double* start = nullptr;        ///< feasible start, length n
  };

  /// Raw-field twin of submit(model, ...): applies the same validations
  /// SingleFileModel's constructor and check_feasible() would (positive
  /// rates, stability under pure delay models, capacity admits a whole
  /// file, feasible start) and queues an instance that run_all() treats
  /// identically — submitting the model's own access_costs()/μ/caps here
  /// yields bitwise the same results.
  std::size_t submit(const RawInstance& raw, const AllocatorOptions& options);

  /// Runs every pending submission to completion and returns their
  /// results in submission order. Clears the queue; the allocator can be
  /// reused for a new round of submissions afterwards.
  std::vector<BatchRunResult> run_all();

  std::size_t width() const noexcept { return width_; }
  std::size_t pending() const noexcept { return pending_.size(); }

  /// Counters of the last run_all() call.
  struct Stats {
    std::size_t instances = 0;
    /// Lockstep iterations executed (each steps every live lane once).
    std::size_t lockstep_iterations = 0;
    /// Name of the kernel set the run dispatched to ("scalar"/"avx2").
    const char* kernels = "";
  };
  const Stats& stats() const noexcept { return stats_; }

 private:
  /// One queued submission (AoS; transposed into the SoA planes on load).
  struct Instance {
    std::size_t n = 0;
    double alpha = 0.0;
    double epsilon = 0.0;
    double dynamic_safety = 0.0;
    bool dynamic_rule = false;
    std::size_t max_iterations = 0;
    double total_rate = 0.0;
    double k = 0.0;
    queueing::DelayModel delay;
    std::vector<double> access_cost;
    std::vector<double> mu;
    std::vector<double> caps;  ///< empty = unbounded
    std::vector<double> start;
  };

  void load_lane(std::size_t lane, std::size_t instance_id);
  void refresh_lane_summary();
  void compute_derivatives();
  void scalar_lane_step(std::size_t lane);
  double column_cost(std::size_t lane,
                     const util::AlignedVector& plane) const;
  void harvest(std::size_t lane, const util::AlignedVector& plane,
               bool converged, std::vector<BatchRunResult>& results) const;

  std::size_t width_;
  std::vector<Instance> pending_;
  Stats stats_;

  // --- run_all() state. The planes, lane constants and per-iteration
  // outputs the kernels touch live in soa_ (row-major [node][lane],
  // 64-byte-aligned rows, stride = lanes_ rounded up to 8 — see
  // core/batch_kernels.hpp); what follows is the bookkeeping only the
  // driver needs. Padding rows (j >= lane n) hold x = 0, mu = 1, imu = 1,
  // cap = +inf, du = 0 so the dense row loops never need per-element
  // guards (see the padding invariants in batch_allocator.cpp).
  detail::BatchSoA soa_;
  const detail::BatchKernels* kernels_ = nullptr;
  std::size_t lanes_ = 0;       ///< columns occupied at full width
  std::size_t live_ = 0;        ///< columns currently occupied (prefix)
  std::size_t node_cap_ = 0;    ///< plane row count
  std::vector<std::size_t> lane_inst_, lane_n_, lane_maxit_, lane_iter_;
  std::vector<double> lane_eps_;
  std::vector<unsigned char> lane_dyn_, lane_single_;
  std::vector<queueing::DelayModel> lane_delay_;
  std::vector<unsigned char> term_, scalar_lane_;
  // Lane summary, refreshed when lane membership changes (n_min / n_max /
  // any_dyn live in soa_ where the kernels read them).
  bool all_single_ = true;
  // Scalar-tail scratch (boundary lanes).
  std::vector<double> gx_, gdu_, gd2c_, gcaps_, deltas_;
  detail::ActiveSetWorkspace aset_;
  std::unordered_map<std::size_t, ConstraintGroup> group_by_n_;
};

}  // namespace fap::core
