#include "core/newton_allocator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contracts.hpp"

namespace fap::core {

namespace {

// Boundary threshold for active-set exclusion; see the matching constant in
// allocator.cpp — interior overshoots are θ-clipped, not frozen.
constexpr double kBoundaryTol = 1e-12;

// Curvature-weighted mean ū of marginal utilities over `subset`.
double weighted_mean(const std::vector<double>& du,
                     const std::vector<double>& inv_h,
                     const std::vector<std::size_t>& subset) {
  double num = 0.0;
  double den = 0.0;
  for (const std::size_t i : subset) {
    num += du[i] * inv_h[i];
    den += inv_h[i];
  }
  return num / den;
}

double spread_over(const std::vector<double>& values,
                   const std::vector<std::size_t>& subset) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const std::size_t i : subset) {
    lo = std::min(lo, values[i]);
    hi = std::max(hi, values[i]);
  }
  return hi - lo;
}

}  // namespace

NewtonAllocator::NewtonAllocator(const CostModel& model,
                                 NewtonAllocatorOptions options)
    : model_(model), options_(options) {
  FAP_EXPECTS(options_.alpha > 0.0, "step size must be positive");
  FAP_EXPECTS(options_.epsilon > 0.0, "epsilon must be positive");
  FAP_EXPECTS(options_.max_iterations > 0, "need at least one iteration");
  FAP_EXPECTS(options_.curvature_floor > 0.0,
              "curvature floor must be positive");
  FAP_EXPECTS(model_.upper_bounds().empty(),
              "NewtonAllocator does not support storage capacities; use "
              "ResourceDirectedAllocator");
}

NewtonAllocator::StepOutcome NewtonAllocator::step(
    const std::vector<double>& x) const {
  model_.check_feasible(x);
  const std::vector<double> du = model_.marginal_utilities(x);
  const std::vector<double> d2c = model_.second_derivative(x);
  const std::vector<ConstraintGroup> groups = model_.constraint_groups();

  // Inverse curvatures with the relative floor applied per group.
  std::vector<double> inv_h(du.size(), 1.0);

  StepOutcome outcome;
  outcome.x = x;
  bool all_within_epsilon = true;
  double max_spread = 0.0;

  struct GroupPlan {
    std::vector<std::size_t> active;
  };
  std::vector<GroupPlan> plans;
  plans.reserve(groups.size());

  for (const ConstraintGroup& group : groups) {
    double max_h = 0.0;
    for (const std::size_t i : group.indices) {
      max_h = std::max(max_h, std::fabs(d2c[i]));
    }
    const double floor = std::max(options_.curvature_floor * max_h,
                                  std::numeric_limits<double>::min());
    for (const std::size_t i : group.indices) {
      const double h = std::max(std::fabs(d2c[i]), floor);
      inv_h[i] = max_h > 0.0 ? 1.0 / h : 1.0;  // all-zero curvature: revert
                                               // to first-order weights
    }

    // Active-set determination, mirroring Section 5.2 steps (i)-(v) with
    // the curvature-weighted average and scaled moves.
    const auto delta = [&](std::size_t i,
                           const std::vector<std::size_t>& members) {
      return options_.alpha * (du[i] - weighted_mean(du, inv_h, members)) *
             inv_h[i];
    };

    GroupPlan plan;
    for (const std::size_t i : group.indices) {
      if (x[i] > kBoundaryTol || x[i] + delta(i, group.indices) > 0.0) {
        plan.active.push_back(i);
      }
    }
    if (plan.active.empty()) {
      plan.active.push_back(*std::max_element(
          group.indices.begin(), group.indices.end(),
          [&](std::size_t a, std::size_t b) { return du[a] < du[b]; }));
    }
    const std::size_t round_limit = 2 * group.indices.size() + 2;
    for (std::size_t round = 0; round < round_limit; ++round) {
      bool changed = false;
      for (;;) {  // re-admit gainers
        std::size_t best = 0;
        double best_du = -std::numeric_limits<double>::infinity();
        bool found = false;
        for (const std::size_t j : group.indices) {
          if (std::find(plan.active.begin(), plan.active.end(), j) !=
              plan.active.end()) {
            continue;
          }
          if (du[j] > best_du) {
            best_du = du[j];
            best = j;
            found = true;
          }
        }
        if (!found || best_du <= weighted_mean(du, inv_h, plan.active)) {
          break;
        }
        plan.active.push_back(best);
        changed = true;
      }
      std::vector<std::size_t> survivors;
      for (const std::size_t i : plan.active) {
        const double d = delta(i, plan.active);
        if (x[i] <= kBoundaryTol && d < 0.0 && x[i] + d <= 0.0) {
          changed = true;
          continue;
        }
        survivors.push_back(i);
      }
      if (survivors.empty()) {
        survivors.push_back(*std::max_element(
            plan.active.begin(), plan.active.end(),
            [&](std::size_t a, std::size_t b) { return du[a] < du[b]; }));
      }
      plan.active = std::move(survivors);
      if (!changed) {
        break;
      }
    }
    std::sort(plan.active.begin(), plan.active.end());

    const double spread = spread_over(du, plan.active);
    max_spread = std::max(max_spread, spread);
    if (spread >= options_.epsilon) {
      all_within_epsilon = false;
    }
    outcome.active_set_size += plan.active.size();
    plans.push_back(std::move(plan));
  }

  outcome.marginal_spread = max_spread;
  if (all_within_epsilon) {
    outcome.terminal = true;
    return outcome;
  }

  for (const GroupPlan& plan : plans) {
    const double avg = weighted_mean(du, inv_h, plan.active);
    std::vector<double> deltas(plan.active.size());
    double theta = 1.0;
    for (std::size_t idx = 0; idx < plan.active.size(); ++idx) {
      const std::size_t i = plan.active[idx];
      deltas[idx] = options_.alpha * (du[i] - avg) * inv_h[i];
      if (deltas[idx] < 0.0 && x[i] + deltas[idx] < 0.0) {
        theta = std::min(theta, x[i] / -deltas[idx]);
      }
    }
    for (std::size_t idx = 0; idx < plan.active.size(); ++idx) {
      const std::size_t i = plan.active[idx];
      outcome.x[i] = std::max(0.0, x[i] + theta * deltas[idx]);
    }
    outcome.alpha_used = std::max(outcome.alpha_used, theta * options_.alpha);
  }
  return outcome;
}

AllocationResult NewtonAllocator::run(std::vector<double> initial) const {
  model_.check_feasible(initial);
  AllocationResult result;
  result.x = std::move(initial);

  auto record = [&](std::size_t iteration, const StepOutcome& outcome) {
    if (!options_.record_trace) {
      return;
    }
    IterationRecord rec;
    rec.iteration = iteration;
    rec.cost = model_.cost(result.x);
    rec.alpha = outcome.terminal ? 0.0 : outcome.alpha_used;
    rec.active_set_size = outcome.active_set_size;
    rec.marginal_spread = outcome.marginal_spread;
    rec.x = result.x;
    result.trace.push_back(std::move(rec));
  };

  for (std::size_t iter = 0; iter < options_.max_iterations; ++iter) {
    StepOutcome outcome = step(result.x);
    record(iter, outcome);
    if (outcome.terminal) {
      result.converged = true;
      break;
    }
    result.x = std::move(outcome.x);
    ++result.iterations;
  }
  result.cost = model_.cost(result.x);
  return result;
}

}  // namespace fap::core
