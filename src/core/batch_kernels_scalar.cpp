// Portable batch kernels: the BatchAllocator row loops as they existed
// before SIMD dispatch, moved here verbatim and re-pointed at BatchSoA.
// This TU is compiled -O3 -ffp-contract=off (src/CMakeLists.txt): -O3 so
// GCC's autovectorizer takes the division-heavy stride-1 row loops, and
// contraction off so no FMA can perturb a rounding — these loops are the
// reference operation sequence BOTH the serial-equivalence pin and the
// AVX2-equivalence pin are measured against.
#include <algorithm>
#include <cmath>
#include <limits>

#include "core/active_set.hpp"
#include "core/batch_kernels.hpp"
#include "queueing/delay.hpp"

namespace fap::core::detail {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void zero_du_padding(BatchSoA& soa) {
  const std::size_t s = soa.stride;
  for (std::size_t j = soa.n_min; j < soa.n_max; ++j) {
    double* dur = soa.row(soa.du, j);
    for (std::size_t k = 0; k < soa.live; ++k) {
      if (static_cast<double>(j) >= soa.lane_nd[k]) {
        dur[k] = 0.0;
      }
    }
  }
  (void)s;
}

void derivative_rows(BatchSoA& soa, bool with_second) {
  const std::size_t s = soa.stride;
  const std::size_t live = soa.live;
  // Identical per-cell expression sequence as SingleFileModel::
  // gradient_into + marginal_utilities_into's negation (the lin_*
  // helpers are bit-equal to DelayModel::sojourn et al. for
  // single-server disciplines — see queueing/delay.hpp).
  if (with_second) {
    for (std::size_t j = 0; j < soa.n_max; ++j) {
      const double* xr = soa.row(soa.x, j);
      const double* mr = soa.row(soa.mu, j);
      const double* cr = soa.row(soa.c, j);
      double* dur = soa.row(soa.du, j);
      double* d2r = soa.row(soa.d2c, j);
      for (std::size_t k = 0; k < live; ++k) {
        const double a = soa.lane_tr[k] * xr[k];
        const double m = mr[k];
        const double scv = soa.lane_scv[k];
        const double rho = soa.lane_rho[k];
        const double T = queueing::detail::lin_sojourn(a, m, scv, rho);
        const double dT = queueing::detail::lin_d_sojourn(a, m, scv, rho);
        const double d2T = queueing::detail::lin_d2_sojourn(a, m, scv, rho);
        dur[k] = -(cr[k] + soa.lane_k[k] * (T + a * dT));
        d2r[k] = soa.lane_tr[k] * soa.lane_k[k] * (2.0 * dT + a * d2T);
      }
    }
  } else {
    for (std::size_t j = 0; j < soa.n_max; ++j) {
      const double* xr = soa.row(soa.x, j);
      const double* mr = soa.row(soa.mu, j);
      const double* cr = soa.row(soa.c, j);
      double* dur = soa.row(soa.du, j);
      for (std::size_t k = 0; k < live; ++k) {
        const double a = soa.lane_tr[k] * xr[k];
        const double m = mr[k];
        const double scv = soa.lane_scv[k];
        const double rho = soa.lane_rho[k];
        const double T = queueing::detail::lin_sojourn(a, m, scv, rho);
        const double dT = queueing::detail::lin_d_sojourn(a, m, scv, rho);
        dur[k] = -(cr[k] + soa.lane_k[k] * (T + a * dT));
      }
    }
  }
  // Restore the du padding invariant (the dense loop computed garbage on
  // padding cells).
  zero_du_padding(soa);
  (void)s;
}

void lane_sums(BatchSoA& soa) {
  const std::size_t live = soa.live;
  // Lane sums Σ_j du (left-to-right over node rows, so bit-equal to the
  // serial mean_over sums; padding adds trailing +0.0 terms — see the
  // padding notes in batch_allocator.cpp).
  std::fill(soa.sum_full.begin(), soa.sum_full.begin() + live, 0.0);
  for (std::size_t j = 0; j < soa.n_max; ++j) {
    const double* dur = soa.row(soa.du, j);
    for (std::size_t k = 0; k < live; ++k) {
      soa.sum_full[k] += dur[k];
    }
  }
  for (std::size_t k = 0; k < live; ++k) {
    soa.avg_full[k] = soa.sum_full[k] / soa.lane_nd[k];
  }
}

void step_sizes(BatchSoA& soa) {
  const std::size_t s = soa.stride;
  // Provisional per-lane step size (the serial first-pass α: fixed, or
  // the dynamic Theorem-2 bound over the whole group).
  for (std::size_t k = 0; k < soa.live; ++k) {
    if (soa.lane_dynd[k] == 0.0) {
      soa.alpha[k] = soa.lane_alpha_opt[k];
      continue;
    }
    const auto n = static_cast<std::size_t>(soa.lane_nd[k]);
    const double avg = soa.avg_full[k];
    double numerator = 0.0;
    double denominator = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double dev = soa.du[j * s + k] - avg;
      numerator += dev * dev;
      denominator += std::fabs(soa.d2c[j * s + k]) * dev * dev;
    }
    const double bound = denominator <= 0.0 ? soa.lane_alpha_opt[k]
                                            : 2.0 * numerator / denominator;
    soa.alpha[k] = soa.lane_safety[k] * bound;
  }
}

// The serial second-pass θ loop over a full active set (all nodes).
double scalar_theta(const BatchSoA& soa, std::size_t lane) {
  const std::size_t s = soa.stride;
  const auto n = static_cast<std::size_t>(soa.lane_nd[lane]);
  const double al = soa.alpha[lane];
  const double avg = soa.avg_full[lane];
  double theta = 1.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double d = al * (soa.du[j * s + lane] - avg);
    const double xj = soa.x[j * s + lane];
    if (d < 0.0 && xj + d < 0.0) {
      theta = std::min(theta, xj / -d);
    }
    const double cp = soa.cap[j * s + lane];
    if (d > 0.0 && xj + d > cp) {
      theta = std::min(theta, (cp - xj) / d);
    }
  }
  return std::max(theta, 0.0);
}

void census_theta(BatchSoA& soa) {
  using detail::kBoundaryTol;
  const std::size_t live = soa.live;
  // Step (i) census: per lane, how many nodes the full-group average
  // pins (active-set fast-path predicate) and how many the unscaled
  // step would push outside [0, cap] (θ != 1 predicate). Padding cells
  // satisfy neither (x = 0, d >= 0, cap = +inf).
  std::fill(soa.pinc.begin(), soa.pinc.begin() + live, 0u);
  std::fill(soa.viol.begin(), soa.viol.begin() + live, 0u);
  for (std::size_t j = 0; j < soa.n_max; ++j) {
    const double* xr = soa.row(soa.x, j);
    const double* dur = soa.row(soa.du, j);
    const double* capr = soa.row(soa.cap, j);
    for (std::size_t k = 0; k < live; ++k) {
      const double d = soa.alpha[k] * (dur[k] - soa.avg_full[k]);
      const double xj = xr[k];
      const double cp = capr[k];
      const bool pin = (xj <= kBoundaryTol && d < 0.0 && xj + d <= 0.0) ||
                       (xj >= cp - kBoundaryTol && d > 0.0 && xj + d >= cp);
      const bool vi = (d < 0.0 && xj + d < 0.0) || (d > 0.0 && xj + d > cp);
      soa.pinc[k] += pin ? 1u : 0u;
      soa.viol[k] += vi ? 1u : 0u;
    }
  }
  // θ for unpinned violating lanes (the only lanes whose θ the apply
  // pass can make observable — pinned lanes are overwritten by the
  // gathered scalar step, and θ stays exactly 1.0 everywhere else).
  for (std::size_t k = 0; k < live; ++k) {
    soa.theta[k] = 1.0;
    if (soa.pinc[k] == 0 && soa.viol[k] != 0) {
      soa.theta[k] = scalar_theta(soa, k);
    }
  }
}

void spread(BatchSoA& soa) {
  const std::size_t live = soa.live;
  constexpr double inf = kInf;
  // Marginal-utility spread per lane (over all nodes == the full active
  // set). min/max must not see padding: dense region + guarded tail.
  std::fill(soa.lo.begin(), soa.lo.begin() + live, inf);
  std::fill(soa.hi.begin(), soa.hi.begin() + live, -inf);
  for (std::size_t j = 0; j < soa.n_min; ++j) {
    const double* dur = soa.row(soa.du, j);
    for (std::size_t k = 0; k < live; ++k) {
      soa.lo[k] = std::min(soa.lo[k], dur[k]);
      soa.hi[k] = std::max(soa.hi[k], dur[k]);
    }
  }
  for (std::size_t j = soa.n_min; j < soa.n_max; ++j) {
    const double* dur = soa.row(soa.du, j);
    for (std::size_t k = 0; k < live; ++k) {
      if (static_cast<double>(j) < soa.lane_nd[k]) {
        soa.lo[k] = std::min(soa.lo[k], dur[k]);
        soa.hi[k] = std::max(soa.hi[k], dur[k]);
      }
    }
  }
}

void apply_step(BatchSoA& soa) {
  const std::size_t live = soa.live;
  // Vectorized apply: xn = clamp(x + θ·α·(du - avg)). Runs for every
  // lane — terminal lanes harvest from x so their xn garbage is dead,
  // and pinned lanes overwrite their column immediately after.
  for (std::size_t j = 0; j < soa.n_max; ++j) {
    const double* xr = soa.row(soa.x, j);
    const double* dur = soa.row(soa.du, j);
    const double* capr = soa.row(soa.cap, j);
    double* xnr = soa.row(soa.xn, j);
    for (std::size_t k = 0; k < live; ++k) {
      const double d = soa.alpha[k] * (dur[k] - soa.avg_full[k]);
      double t = xr[k] + soa.theta[k] * d;
      t = t < 0.0 ? 0.0 : t;
      const double cp = capr[k];
      t = t > cp ? cp : t;
      xnr[k] = t;
    }
  }
  // Restore the x-plane padding invariant on the soon-to-be x plane.
  for (std::size_t j = soa.n_min; j < soa.n_max; ++j) {
    double* xnr = soa.row(soa.xn, j);
    for (std::size_t k = 0; k < live; ++k) {
      if (static_cast<double>(j) >= soa.lane_nd[k]) {
        xnr[k] = 0.0;
      }
    }
  }
}

}  // namespace

const BatchKernels& scalar_batch_kernels() {
  static constexpr BatchKernels kTable = {
      "scalar",     &derivative_rows, &zero_du_padding, &lane_sums,
      &step_sizes,  &census_theta,    &spread,          &apply_step,
  };
  return kTable;
}

}  // namespace fap::core::detail
