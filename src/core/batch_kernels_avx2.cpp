// Hand-vectorized AVX2 batch kernels: 4 lanes per 32-byte vector, walked
// k-outer / j-inner so lane constants stay in registers while a lane
// group streams down its plane columns.
//
// Bit-identity with core/batch_kernels_scalar.cpp rests on the rules in
// core/batch_kernels.hpp. The per-kernel notes below call out every
// place vector semantics could diverge from the scalar ternaries and how
// each is handled:
//
//   * std::min(acc, v)  ==  _mm256_min_pd(v, acc)   (src2 wins ties)
//     std::max(acc, v)  ==  _mm256_max_pd(v, acc)
//   * `t < 0.0 ? 0.0 : t` must be cmp+blend, NOT max_pd: max_pd(-0,+0)
//     returns +0 where the scalar ternary keeps -0.0. Same for the cap
//     clamp and for std::max(theta, 0.0).
//   * unary negation is an exact sign-bit XOR; fabs an exact AND.
//   * masked accumulations AND the addend to +0.0; every sum they feed
//     is provably never -0.0, so adding +0.0 is the identity bitwise.
//   * lane groups cover ceil(live/4)*4 columns. Columns beyond `live`
//     compute garbage that is never read and cannot trap (FP exceptions
//     are masked); metadata for them is zero-initialized by the
//     allocator, so no comparison sees uninitialized memory.
//
// This TU is compiled -O3 -mavx2 -ffp-contract=off (src/CMakeLists.txt)
// and its body is guarded so builds without AVX2 support compile it
// empty. NO FMA intrinsics anywhere — fused rounding would break the
// equivalence pin.
#include "core/batch_kernels.hpp"

#if defined(FAP_HAVE_AVX2_KERNELS) && defined(__AVX2__)

#include <immintrin.h>

#include <cstddef>
#include <limits>

#include "core/active_set.hpp"
#include "queueing/delay_simd.hpp"

namespace fap::core::detail {

namespace {

namespace qx = fap::queueing::detail::avx2;

constexpr double kInf = std::numeric_limits<double>::infinity();

inline __m256d negate_pd(__m256d v) {
  return _mm256_xor_pd(v, _mm256_set1_pd(-0.0));
}

inline __m256d fabs_pd(__m256d v) {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), v);
}

void zero_du_padding(BatchSoA& soa) {
  const std::size_t s = soa.stride;
  const std::size_t kend = round_up_simd(soa.live);
  for (std::size_t k = 0; k < kend; k += kSimdLanes) {
    const __m256d nd = _mm256_load_pd(soa.lane_nd.data() + k);
    for (std::size_t j = soa.n_min; j < soa.n_max; ++j) {
      const __m256d keep =
          _mm256_cmp_pd(_mm256_set1_pd(static_cast<double>(j)), nd,
                        _CMP_LT_OQ);
      double* p = soa.du.data() + j * s + k;
      // Masked-off cells become +0.0 — the exact literal the scalar
      // kernel stores.
      _mm256_store_pd(p, _mm256_and_pd(_mm256_load_pd(p), keep));
    }
  }
}

void derivative_rows(BatchSoA& soa, bool with_second) {
  const std::size_t s = soa.stride;
  const std::size_t kend = round_up_simd(soa.live);
  const __m256d two = _mm256_set1_pd(2.0);
  for (std::size_t k = 0; k < kend; k += kSimdLanes) {
    const __m256d tr = _mm256_load_pd(soa.lane_tr.data() + k);
    const __m256d kk = _mm256_load_pd(soa.lane_k.data() + k);
    const __m256d scv = _mm256_load_pd(soa.lane_scv.data() + k);
    const __m256d rho = _mm256_load_pd(soa.lane_rho.data() + k);
    // tr*kk rounds the same way every cell; hoisting it is bitwise the
    // scalar per-cell `lane_tr * lane_k * (...)` left fold.
    const __m256d trkk = _mm256_mul_pd(tr, kk);
    if (with_second) {
      for (std::size_t j = 0; j < soa.n_max; ++j) {
        const std::size_t off = j * s + k;
        const __m256d x = _mm256_load_pd(soa.x.data() + off);
        const __m256d m = _mm256_load_pd(soa.mu.data() + off);
        const __m256d im = _mm256_load_pd(soa.imu.data() + off);
        const __m256d c = _mm256_load_pd(soa.c.data() + off);
        const __m256d a = _mm256_mul_pd(tr, x);
        const __m256d knee = _mm256_mul_pd(rho, m);
        const __m256d ae = qx::knee_clamp(a, knee);
        const __m256d pkT = qx::pk_sojourn_cached_imu(ae, m, im, scv);
        const __m256d pkd = qx::pk_d_sojourn(ae, m, scv);
        // lin_sojourn: T = pk_sojourn(ae) + pk_d_sojourn(ae) * (a - ae);
        // lin_d_sojourn re-derives the same ae, so dT is exactly pkd.
        const __m256d T =
            _mm256_add_pd(pkT, _mm256_mul_pd(pkd, _mm256_sub_pd(a, ae)));
        const __m256d inner = _mm256_add_pd(T, _mm256_mul_pd(a, pkd));
        const __m256d du =
            negate_pd(_mm256_add_pd(c, _mm256_mul_pd(kk, inner)));
        _mm256_store_pd(soa.du.data() + off, du);
        const __m256d d2T =
            qx::lin_d2_select(a, knee, qx::pk_d2_sojourn(a, m, scv));
        const __m256d d2 = _mm256_mul_pd(
            trkk, _mm256_add_pd(_mm256_mul_pd(two, pkd),
                                _mm256_mul_pd(a, d2T)));
        _mm256_store_pd(soa.d2c.data() + off, d2);
      }
    } else {
      for (std::size_t j = 0; j < soa.n_max; ++j) {
        const std::size_t off = j * s + k;
        const __m256d x = _mm256_load_pd(soa.x.data() + off);
        const __m256d m = _mm256_load_pd(soa.mu.data() + off);
        const __m256d im = _mm256_load_pd(soa.imu.data() + off);
        const __m256d c = _mm256_load_pd(soa.c.data() + off);
        const __m256d a = _mm256_mul_pd(tr, x);
        const __m256d knee = _mm256_mul_pd(rho, m);
        const __m256d ae = qx::knee_clamp(a, knee);
        const __m256d pkT = qx::pk_sojourn_cached_imu(ae, m, im, scv);
        const __m256d pkd = qx::pk_d_sojourn(ae, m, scv);
        const __m256d T =
            _mm256_add_pd(pkT, _mm256_mul_pd(pkd, _mm256_sub_pd(a, ae)));
        const __m256d inner = _mm256_add_pd(T, _mm256_mul_pd(a, pkd));
        const __m256d du =
            negate_pd(_mm256_add_pd(c, _mm256_mul_pd(kk, inner)));
        _mm256_store_pd(soa.du.data() + off, du);
      }
    }
  }
  zero_du_padding(soa);
}

void lane_sums(BatchSoA& soa) {
  const std::size_t s = soa.stride;
  const std::size_t kend = round_up_simd(soa.live);
  for (std::size_t k = 0; k < kend; k += kSimdLanes) {
    // Node rows in ascending order: the serial left-to-right sum, with
    // trailing +0.0 padding terms (see the padding notes).
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t j = 0; j < soa.n_max; ++j) {
      acc = _mm256_add_pd(acc, _mm256_load_pd(soa.du.data() + j * s + k));
    }
    _mm256_store_pd(soa.sum_full.data() + k, acc);
    const __m256d nd = _mm256_load_pd(soa.lane_nd.data() + k);
    _mm256_store_pd(soa.avg_full.data() + k, _mm256_div_pd(acc, nd));
  }
}

void step_sizes(BatchSoA& soa) {
  const std::size_t s = soa.stride;
  const std::size_t kend = round_up_simd(soa.live);
  if (!soa.any_dyn) {
    for (std::size_t k = 0; k < kend; k += kSimdLanes) {
      _mm256_store_pd(soa.alpha.data() + k,
                      _mm256_load_pd(soa.lane_alpha_opt.data() + k));
    }
    return;
  }
  const __m256d zero = _mm256_setzero_pd();
  const __m256d two = _mm256_set1_pd(2.0);
  for (std::size_t k = 0; k < kend; k += kSimdLanes) {
    const __m256d nd = _mm256_load_pd(soa.lane_nd.data() + k);
    const __m256d avg = _mm256_load_pd(soa.avg_full.data() + k);
    const __m256d alpha_opt = _mm256_load_pd(soa.lane_alpha_opt.data() + k);
    __m256d num = zero;
    __m256d den = zero;
    for (std::size_t j = 0; j < soa.n_max; ++j) {
      const std::size_t off = j * s + k;
      const __m256d real =
          _mm256_cmp_pd(_mm256_set1_pd(static_cast<double>(j)), nd,
                        _CMP_LT_OQ);
      const __m256d dev =
          _mm256_sub_pd(_mm256_load_pd(soa.du.data() + off), avg);
      // Masked rows add +0.0 to partials that are never -0.0 (each
      // addend is dev² >= +0 resp. |d2c|·dev² >= +0), so the masked
      // fold is bitwise the scalar j < n loop.
      num = _mm256_add_pd(num,
                          _mm256_and_pd(_mm256_mul_pd(dev, dev), real));
      const __m256d d2 = fabs_pd(_mm256_load_pd(soa.d2c.data() + off));
      den = _mm256_add_pd(
          den,
          _mm256_and_pd(_mm256_mul_pd(_mm256_mul_pd(d2, dev), dev), real));
    }
    // bound = den <= 0 ? alpha_opt : 2*num/den  (the masked-off quotient
    // may be inf/NaN; it is blended away and cannot trap).
    const __m256d quot = _mm256_div_pd(_mm256_mul_pd(two, num), den);
    const __m256d bound = _mm256_blendv_pd(
        quot, alpha_opt, _mm256_cmp_pd(den, zero, _CMP_LE_OQ));
    const __m256d dyn_alpha = _mm256_mul_pd(
        _mm256_load_pd(soa.lane_safety.data() + k), bound);
    const __m256d dynd = _mm256_load_pd(soa.lane_dynd.data() + k);
    const __m256d is_dyn = _mm256_cmp_pd(dynd, zero, _CMP_NEQ_OQ);
    _mm256_store_pd(soa.alpha.data() + k,
                    _mm256_blendv_pd(alpha_opt, dyn_alpha, is_dyn));
  }
}

void census_theta(BatchSoA& soa) {
  const std::size_t s = soa.stride;
  const std::size_t kend = round_up_simd(soa.live);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d tol = _mm256_set1_pd(kBoundaryTol);
  const __m256d inf = _mm256_set1_pd(kInf);
  for (std::size_t k = 0; k < kend; k += kSimdLanes) {
    const __m256d alpha = _mm256_load_pd(soa.alpha.data() + k);
    const __m256d avg = _mm256_load_pd(soa.avg_full.data() + k);
    // Pass 1 — census only (no divisions).
    __m256d pin_acc = zero;
    __m256d vi_acc = zero;
    for (std::size_t j = 0; j < soa.n_max; ++j) {
      const std::size_t off = j * s + k;
      const __m256d x = _mm256_load_pd(soa.x.data() + off);
      const __m256d du = _mm256_load_pd(soa.du.data() + off);
      const __m256d cap = _mm256_load_pd(soa.cap.data() + off);
      const __m256d d = _mm256_mul_pd(alpha, _mm256_sub_pd(du, avg));
      const __m256d xpd = _mm256_add_pd(x, d);
      const __m256d dneg = _mm256_cmp_pd(d, zero, _CMP_LT_OQ);
      const __m256d dpos = _mm256_cmp_pd(d, zero, _CMP_GT_OQ);
      // pin = (x <= tol && d < 0 && x+d <= 0) ||
      //       (x >= cap - tol && d > 0 && x+d >= cap)
      const __m256d pin_lo = _mm256_and_pd(
          _mm256_and_pd(_mm256_cmp_pd(x, tol, _CMP_LE_OQ), dneg),
          _mm256_cmp_pd(xpd, zero, _CMP_LE_OQ));
      const __m256d pin_hi = _mm256_and_pd(
          _mm256_and_pd(
              _mm256_cmp_pd(x, _mm256_sub_pd(cap, tol), _CMP_GE_OQ), dpos),
          _mm256_cmp_pd(xpd, cap, _CMP_GE_OQ));
      pin_acc = _mm256_or_pd(pin_acc, _mm256_or_pd(pin_lo, pin_hi));
      // vi = (d < 0 && x+d < 0) || (d > 0 && x+d > cap).
      const __m256d vi_lo =
          _mm256_and_pd(dneg, _mm256_cmp_pd(xpd, zero, _CMP_LT_OQ));
      const __m256d vi_hi =
          _mm256_and_pd(dpos, _mm256_cmp_pd(xpd, cap, _CMP_GT_OQ));
      vi_acc = _mm256_or_pd(vi_acc, _mm256_or_pd(vi_lo, vi_hi));
    }
    // Census flags: only zero-ness is observed, so 0/1 per lane is
    // equivalent to the scalar counts.
    const int pin_bits = _mm256_movemask_pd(pin_acc);
    const int vi_bits = _mm256_movemask_pd(vi_acc);
    for (std::size_t lane = 0; lane < kSimdLanes; ++lane) {
      soa.pinc[k + lane] =
          static_cast<std::uint32_t>((pin_bits >> lane) & 1);
      soa.viol[k + lane] =
          static_cast<std::uint32_t>((vi_bits >> lane) & 1);
    }
    // Pass 2 — the θ clipping scan, with its two divisions per cell,
    // runs only when some unpinned lane of the group violates. θ is
    // observable only for such lanes (the scalar kernel computes it
    // exactly for them and leaves 1.0 elsewhere); pinned lanes re-derive
    // their step on the gathered scalar path, so any value here is dead.
    __m256d theta = _mm256_set1_pd(1.0);
    if ((vi_bits & ~pin_bits & 0xF) != 0) {
      for (std::size_t j = 0; j < soa.n_max; ++j) {
        const std::size_t off = j * s + k;
        const __m256d x = _mm256_load_pd(soa.x.data() + off);
        const __m256d du = _mm256_load_pd(soa.du.data() + off);
        const __m256d cap = _mm256_load_pd(soa.cap.data() + off);
        const __m256d d = _mm256_mul_pd(alpha, _mm256_sub_pd(du, avg));
        const __m256d xpd = _mm256_add_pd(x, d);
        const __m256d vi_lo =
            _mm256_and_pd(_mm256_cmp_pd(d, zero, _CMP_LT_OQ),
                          _mm256_cmp_pd(xpd, zero, _CMP_LT_OQ));
        const __m256d vi_hi =
            _mm256_and_pd(_mm256_cmp_pd(d, zero, _CMP_GT_OQ),
                          _mm256_cmp_pd(xpd, cap, _CMP_GT_OQ));
        // θ candidates in the scalar order (cand1 then cand2 per node,
        // nodes ascending). std::min(theta, cand) == min_pd(cand, theta).
        // Non-candidates blend to +inf, which min_pd discards
        // (theta <= 1); the raw quotients may be inf/NaN but cannot trap.
        const __m256d cand1 = _mm256_blendv_pd(
            inf, _mm256_div_pd(x, negate_pd(d)), vi_lo);
        theta = _mm256_min_pd(cand1, theta);
        const __m256d cand2 = _mm256_blendv_pd(
            inf, _mm256_div_pd(_mm256_sub_pd(cap, x), d), vi_hi);
        theta = _mm256_min_pd(cand2, theta);
      }
      // std::max(theta, 0.0) keeps -0.0 (no max_pd — it would flip it).
      theta = _mm256_blendv_pd(theta, zero,
                               _mm256_cmp_pd(theta, zero, _CMP_LT_OQ));
    }
    _mm256_store_pd(soa.theta.data() + k, theta);
  }
}

void spread(BatchSoA& soa) {
  const std::size_t s = soa.stride;
  const std::size_t kend = round_up_simd(soa.live);
  const __m256d pinf = _mm256_set1_pd(kInf);
  const __m256d ninf = _mm256_set1_pd(-kInf);
  for (std::size_t k = 0; k < kend; k += kSimdLanes) {
    __m256d lo = pinf;
    __m256d hi = ninf;
    // Dense region: every live lane has a real row here.
    for (std::size_t j = 0; j < soa.n_min; ++j) {
      const __m256d du = _mm256_load_pd(soa.du.data() + j * s + k);
      // std::min(lo, du) == min_pd(du, lo); std::max(hi, du) ==
      // max_pd(du, hi) — ties and signed zeros resolve to src2 = acc,
      // exactly the scalar ternary.
      lo = _mm256_min_pd(du, lo);
      hi = _mm256_max_pd(du, hi);
    }
    // Guarded tail: padding must not enter min/max — blend it to the
    // reduction's identity element instead.
    const __m256d nd = _mm256_load_pd(soa.lane_nd.data() + k);
    for (std::size_t j = soa.n_min; j < soa.n_max; ++j) {
      const __m256d real =
          _mm256_cmp_pd(_mm256_set1_pd(static_cast<double>(j)), nd,
                        _CMP_LT_OQ);
      const __m256d du = _mm256_load_pd(soa.du.data() + j * s + k);
      lo = _mm256_min_pd(_mm256_blendv_pd(pinf, du, real), lo);
      hi = _mm256_max_pd(_mm256_blendv_pd(ninf, du, real), hi);
    }
    _mm256_store_pd(soa.lo.data() + k, lo);
    _mm256_store_pd(soa.hi.data() + k, hi);
  }
}

void apply_step(BatchSoA& soa) {
  const std::size_t s = soa.stride;
  const std::size_t kend = round_up_simd(soa.live);
  const __m256d zero = _mm256_setzero_pd();
  for (std::size_t k = 0; k < kend; k += kSimdLanes) {
    const __m256d alpha = _mm256_load_pd(soa.alpha.data() + k);
    const __m256d avg = _mm256_load_pd(soa.avg_full.data() + k);
    const __m256d theta = _mm256_load_pd(soa.theta.data() + k);
    for (std::size_t j = 0; j < soa.n_max; ++j) {
      const std::size_t off = j * s + k;
      const __m256d x = _mm256_load_pd(soa.x.data() + off);
      const __m256d du = _mm256_load_pd(soa.du.data() + off);
      const __m256d cap = _mm256_load_pd(soa.cap.data() + off);
      const __m256d d = _mm256_mul_pd(alpha, _mm256_sub_pd(du, avg));
      __m256d t = _mm256_add_pd(x, _mm256_mul_pd(theta, d));
      // Clamps via cmp+blend: `t < 0 ? 0 : t` keeps t = -0.0 (max_pd
      // would turn it into +0.0 and break bit-identity).
      t = _mm256_blendv_pd(t, zero, _mm256_cmp_pd(t, zero, _CMP_LT_OQ));
      t = _mm256_blendv_pd(t, cap, _mm256_cmp_pd(t, cap, _CMP_GT_OQ));
      _mm256_store_pd(soa.xn.data() + off, t);
    }
    // Restore the x-plane padding invariant on the soon-to-be x plane.
    const __m256d nd = _mm256_load_pd(soa.lane_nd.data() + k);
    for (std::size_t j = soa.n_min; j < soa.n_max; ++j) {
      const __m256d keep =
          _mm256_cmp_pd(_mm256_set1_pd(static_cast<double>(j)), nd,
                        _CMP_LT_OQ);
      double* p = soa.xn.data() + j * s + k;
      _mm256_store_pd(p, _mm256_and_pd(_mm256_load_pd(p), keep));
    }
  }
}

}  // namespace

const BatchKernels& avx2_batch_kernels() {
  static constexpr BatchKernels kTable = {
      "avx2",      &derivative_rows, &zero_du_padding, &lane_sums,
      &step_sizes, &census_theta,    &spread,          &apply_step,
  };
  return kTable;
}

}  // namespace fap::core::detail

#endif  // FAP_HAVE_AVX2_KERNELS && __AVX2__
