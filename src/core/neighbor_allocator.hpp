// Neighbors-only (gossip) variant of the resource-directed algorithm —
// the communication restriction the paper poses as future research
// (Section 8.2): "we wish to look at restrictions in communication where
// nodes communicate only with their neighbours. ... It would be extremely
// beneficial to find algorithms based on marginal utility that maintain
// the attractive properties of feasibility, monotonicity and rapid
// convergence and yet execute with a 'neighbours-only' restriction."
//
// Mechanism (diffusion / center-free, after Ho-Servi-Suri [20]): each
// iteration every node sends its marginal utility ∂U/∂x_i to its direct
// neighbors in a communication graph. For every edge (i, j), file mass
//
//   f_ij = α w_ij ( ∂U/∂x_j - ∂U/∂x_i )   (flows toward higher marginal
//                                           utility when positive)
//
// moves across the edge, where w_ij = 1/(1 + max(deg_i, deg_j)) is the
// Metropolis consensus weight — without it a high-degree hub aggregates
// deg·α worth of step per iteration and diffusion diverges on stars. Since every transfer debits one endpoint and
// credits the other, Σ x_i is conserved exactly (feasibility, Theorem 1's
// analogue is structural), and to first order
//
//   ΔU ≈ Σ_(i,j) f_ij (∂U/∂x_j - ∂U/∂x_i) = α Σ (∂U/∂x_j - ∂U/∂x_i)² ≥ 0,
//
// so utility increases monotonically for small α. Non-negativity is kept
// by *egress rationing*: when a node's total requested outflow exceeds
// its holding, all of its outgoing flows are scaled down proportionally
// (a node cannot ship file it does not have); rationing only shrinks
// non-negative terms of the ascent direction, so monotonicity survives.
//
// Termination is purely local: an edge is at rest when its marginal-
// utility gap is below ε or its lower-utility endpoint holds nothing; the
// algorithm stops when every edge is at rest. At such a point the KKT
// conditions hold *along edges*. One caveat, demonstrated by a dedicated
// test: a node pinned at zero can form a "dry barrier" between two
// positive regions, leaving a globally suboptimal rest point — local
// communication cannot push mass through an empty, expensive relay. When
// the optimum is interior (every x_i* > 0, the common FAP case) the rest
// point is the global optimum.
//
// Per iteration the scheme costs 2|E| point-to-point messages, versus
// N(N-1) for the Section 5.1 broadcast — the tradeoff quantified by
// bench/ablation_neighbor.
#pragma once

#include <cstddef>
#include <vector>

#include "core/allocator.hpp"
#include "core/cost_model.hpp"
#include "net/topology.hpp"

namespace fap::core {

struct NeighborAllocatorOptions {
  double alpha = 0.1;
  /// An edge is at rest when its |∂U/∂x_i - ∂U/∂x_j| < ε (or its poorer
  /// endpoint is empty).
  double epsilon = 1e-3;
  std::size_t max_iterations = 100000;
  bool record_trace = false;
};

class NeighborAllocator {
 public:
  /// `model` may have any number of constraint groups (e.g. one per file
  /// for MultiFileModel); each group must contain exactly one variable
  /// per node of `graph`, with the convention that the p-th index of a
  /// group is the variable hosted at graph node p (this is how every
  /// model in this library lays out its groups). Mass then diffuses
  /// per group along the graph's edges, conserving each group's total
  /// independently. Both references must outlive the allocator.
  NeighborAllocator(const CostModel& model, const net::Topology& graph,
                    NeighborAllocatorOptions options);

  AllocationResult run(std::vector<double> initial) const;

  struct StepOutcome {
    std::vector<double> x;
    bool terminal = false;
    /// Largest marginal-utility gap across a live (non-rationed-dry) edge.
    double max_edge_gap = 0.0;
  };
  StepOutcome step(const std::vector<double>& x) const;

  /// Point-to-point messages per iteration: each node sends its marginal
  /// utility to every neighbor (2 per edge).
  std::size_t messages_per_iteration() const noexcept;

  const NeighborAllocatorOptions& options() const noexcept {
    return options_;
  }

 private:
  const CostModel& model_;
  const net::Topology& graph_;
  NeighborAllocatorOptions options_;
};

}  // namespace fap::core
