// Shared implementation of the Section 5.2 active-set procedure's fast
// path, factored out of ResourceDirectedAllocator so the batched SoA
// kernel (core::BatchAllocator) runs the *same compiled code* on lanes
// that hit a boundary — which is what keeps the batch path
// decision-identical (and therefore bit-identical) to the serial one.
//
// The algorithm and its equivalence argument against the literal
// steps (i)-(v) transcription live with active_set_reference in
// allocator.cpp; this file only hosts the mechanics.
#pragma once

#include <cstddef>
#include <vector>

#include "core/cost_model.hpp"

namespace fap::core::detail {

// A node counts as sitting on a bound below this threshold. Exclusion
// from the active set (Section 5.2 steps (i)-(v)) applies only to
// boundary nodes: an *interior* node whose step would overshoot below
// zero must have the step clipped (θ-scaling in step_into) rather than be
// frozen at its current allocation — freezing it would make the
// spread-over-A termination criterion fire at a point violating the
// Section 5.3 optimality conditions (∂U/∂x_i = q must hold at every
// x_i > 0). The paper's own Figure 4 run (start (0,0,0,1), α = 0.3)
// exercises exactly this case: the literal rule would freeze node 4 at
// x = 1 on the first iteration.
inline constexpr double kBoundaryTol = 1e-12;

/// Reusable scratch for active_set_fast. Sized on first use and refilled
/// in place afterwards, so steady-state calls allocate nothing.
struct ActiveSetWorkspace {
  std::vector<std::size_t> active;     ///< active set under construction
  std::vector<std::size_t> survivors;  ///< drop-pass output
  std::vector<unsigned char> in_active;   ///< membership bitmask by variable
  std::vector<std::size_t> pos_in_group;  ///< variable -> group position
  /// Lazy re-admission heaps: candidate positions into group.indices,
  /// keyed on marginal utility (max-du for boundary gainers, min-du for
  /// boundary losers), ties broken toward the earlier group position —
  /// the reference scan order.
  std::vector<std::size_t> gainer_heap;
  std::vector<std::size_t> loser_heap;
};

/// Computes the paper's set A for one constraint group given the current
/// allocation and marginal utilities, writing the sorted result into
/// `ws.active`. `caps` is the per-variable upper-bound vector (empty =
/// unbounded) and `dim` the variable-index space size (bitmask sizing).
/// Decision-for-decision identical to
/// ResourceDirectedAllocator::active_set_reference (pinned by
/// core_allocator_test across 400+ randomized instances).
void active_set_fast(const ConstraintGroup& group, const std::vector<double>& x,
                     const std::vector<double>& marginal_u, double alpha,
                     const std::vector<double>& caps, std::size_t dim,
                     ActiveSetWorkspace& ws);

}  // namespace fap::core::detail
