#include "core/multicopy_allocator.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace fap::core {

MultiCopyAllocator::MultiCopyAllocator(const CostModel& model,
                                       MultiCopyOptions options)
    : model_(model), options_(options) {
  FAP_EXPECTS(options_.alpha > 0.0, "step size must be positive");
  FAP_EXPECTS(options_.epsilon > 0.0, "epsilon must be positive");
  FAP_EXPECTS(options_.cost_epsilon > 0.0, "cost_epsilon must be positive");
  FAP_EXPECTS(options_.alpha_decay > 0.0 && options_.alpha_decay < 1.0,
              "alpha_decay must be in (0, 1)");
  FAP_EXPECTS(options_.decay_interval > 0, "decay interval must be positive");
  FAP_EXPECTS(options_.max_iterations > 0, "need at least one iteration");
}

MultiCopyResult MultiCopyAllocator::run(std::vector<double> initial) const {
  model_.check_feasible(initial);

  MultiCopyResult result;
  result.final_x = std::move(initial);
  result.final_cost = model_.cost(result.final_x);
  result.best_x = result.final_x;
  result.best_cost = result.final_cost;

  double alpha = options_.alpha;
  std::size_t oscillations_in_window = 0;
  std::size_t window_position = 0;
  double previous_cost = result.final_cost;

  AllocatorOptions inner_options;
  inner_options.epsilon = options_.epsilon;
  inner_options.step_rule = StepRule::kFixed;

  auto record = [&](std::size_t iteration,
                    const ResourceDirectedAllocator::StepOutcome& outcome) {
    if (!options_.record_trace) {
      return;
    }
    IterationRecord rec;
    rec.iteration = iteration;
    rec.cost = result.final_cost;
    rec.alpha = outcome.terminal ? 0.0 : alpha;
    rec.active_set_size = outcome.active_set_size;
    rec.marginal_spread = outcome.marginal_spread;
    rec.x = result.final_x;
    result.trace.push_back(std::move(rec));
  };

  for (std::size_t iter = 0; iter < options_.max_iterations; ++iter) {
    inner_options.alpha = alpha;
    const ResourceDirectedAllocator stepper(model_, inner_options);
    const ResourceDirectedAllocator::StepOutcome outcome =
        stepper.step(result.final_x);
    record(iter, outcome);
    if (outcome.terminal) {
      // Plain Section 5.2 criterion: all active marginal utilities equal
      // to within ε. Happens in the delay-dominated regime.
      result.converged = true;
      break;
    }

    result.final_x = outcome.x;
    result.final_cost = model_.cost(result.final_x);
    ++result.iterations;

    if (result.final_cost < result.best_cost) {
      result.best_cost = result.final_cost;
      result.best_x = result.final_x;
    }

    const double cost_change = result.final_cost - previous_cost;
    if (cost_change > 0.0) {
      ++result.oscillation_count;
      ++oscillations_in_window;
    } else if (std::fabs(cost_change) < options_.cost_epsilon) {
      // "When the difference in cost measured at two successive iterations
      // is judged to be small enough the algorithm halts."
      result.converged = true;
      previous_cost = result.final_cost;
      break;
    }
    previous_cost = result.final_cost;

    // α decay at window boundaries where oscillation was observed.
    if (++window_position == options_.decay_interval) {
      if (oscillations_in_window > 0) {
        alpha *= options_.alpha_decay;
      }
      oscillations_in_window = 0;
      window_position = 0;
    }
  }

  result.final_alpha = alpha;
  return result;
}

}  // namespace fap::core
