// Joint file allocation and routing — the Section 8.2 integration the
// paper calls for: "it would be extremely useful to integrate file
// allocation with other network problems such as the classic routing
// problem ... the routing may well depend on the allocation of files
// itself for some networks, and it will be worthwhile to integrate the
// two problems."
//
// The dependency loop: the allocation x determines how much traffic each
// link carries; congested links are effectively more expensive; link
// costs determine the routes and hence the c_ji matrix; c_ji determines
// the optimal allocation. This module closes the loop by alternating:
//
//   1. route: shortest paths under effective link costs
//        cost_e = base_e · (1 + γ · flow_e)
//   2. measure: per-link flow induced by (x, routes):
//        each unit of λ_j x_i traffic traverses every link of the j→i
//        route (request + response, counted once with the cost already
//        accounting for the round trip, as in the base model)
//   3. allocate: run the Section 5 algorithm under the new c_ji
//
// with exponential damping on the flow estimates (classic remedy for
// route flapping). γ = 0 decouples the problems and reproduces the plain
// algorithm; γ > 0 spreads both the file and the traffic around
// bottleneck links (tested and benchmarked in ablation_joint_routing).
#pragma once

#include <cstddef>
#include <vector>

#include "core/allocator.hpp"
#include "core/single_file.hpp"
#include "net/shortest_paths.hpp"
#include "net/topology.hpp"
#include "queueing/delay.hpp"

namespace fap::core {

struct JointRoutingProblem {
  net::Topology topology;   ///< base link costs = uncongested costs
  Workload workload;
  std::vector<double> mu;
  double k = 1.0;
  queueing::DelayModel delay;
  /// Congestion sensitivity γ: effective link cost multiplier per unit of
  /// flow. 0 = routing independent of allocation (the base model).
  double congestion_factor = 0.0;
};

struct JointRoutingOptions {
  AllocatorOptions allocator;
  /// Damping β on flow estimates: flow <- β·new + (1-β)·old.
  double damping = 0.5;
  std::size_t max_outer_iterations = 100;
  /// Outer convergence: allocation movement and γ-scaled flow movement
  /// both below this (L∞).
  double tol = 1e-6;
  /// After this many outer iterations the routing is frozen (flows and
  /// the cost matrix stop updating) and only the allocation continues to
  /// a fixed point. Routing is a discrete choice, so near a tie the
  /// route can flip indefinitely as flows drift — the same
  /// discontinuity-driven oscillation the paper meets in Section 7.3,
  /// remedied the same way (stop moving the discontinuous part).
  std::size_t freeze_routing_after = 50;
};

struct JointRoutingOuterRecord {
  std::size_t iteration = 0;
  double cost = 0.0;            ///< Eq. 1 under the iteration's c_ji
  double allocation_delta = 0.0;
  double flow_delta = 0.0;
};

struct JointRoutingResult {
  std::vector<double> x;
  net::CostMatrix comm{1};          ///< final congestion-adjusted matrix
  std::vector<double> link_flow;    ///< per topology edge, damped estimate
  double cost = 0.0;
  bool converged = false;
  std::size_t outer_iterations = 0;
  std::vector<JointRoutingOuterRecord> trace;
};

class JointRoutingOptimizer {
 public:
  JointRoutingOptimizer(JointRoutingProblem problem,
                        JointRoutingOptions options);

  /// Alternating optimization from `initial` (must be feasible: Σx = 1,
  /// x >= 0).
  JointRoutingResult run(const std::vector<double>& initial) const;

  /// Per-edge flow induced by allocation `x` when traffic follows
  /// least-cost routes under the given effective topology. Exposed for
  /// tests. Edge order matches topology.edges().
  std::vector<double> link_flows(const net::Topology& effective,
                                 const std::vector<double>& x) const;

  /// Effective topology for a flow estimate.
  net::Topology effective_topology(const std::vector<double>& flow) const;

 private:
  JointRoutingProblem problem_;
  JointRoutingOptions options_;
};

}  // namespace fap::core
