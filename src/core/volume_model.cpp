#include "core/volume_model.hpp"

#include "util/contracts.hpp"

namespace fap::core {

VolumeTransferModel::VolumeTransferModel(SingleFileProblem problem,
                                         double base_volume,
                                         double volume_factor)
    : base_(std::move(problem)),
      base_volume_(base_volume),
      volume_factor_(volume_factor) {
  FAP_EXPECTS(base_volume >= 0.0, "base volume must be non-negative");
  FAP_EXPECTS(volume_factor >= 0.0, "volume factor must be non-negative");
  FAP_EXPECTS(base_volume + volume_factor > 0.0,
              "some payload must be shipped per access");
}

std::vector<ConstraintGroup> VolumeTransferModel::constraint_groups() const {
  return base_.constraint_groups();
}

double VolumeTransferModel::cost(const std::vector<double>& x) const {
  FAP_EXPECTS(x.size() == dimension(), "allocation has wrong dimension");
  const SingleFileProblem& problem = base_.problem();
  const double lambda = base_.total_rate();
  double total = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] == 0.0) {
      continue;
    }
    const double comm = base_.access_cost(i) *
                        (base_volume_ + volume_factor_ * x[i]);
    const double delay =
        problem.k * problem.delay.sojourn(lambda * x[i], problem.mu[i]);
    total += x[i] * (comm + delay);
  }
  return total;
}

std::vector<double> VolumeTransferModel::gradient(
    const std::vector<double>& x) const {
  FAP_EXPECTS(x.size() == dimension(), "allocation has wrong dimension");
  const SingleFileProblem& problem = base_.problem();
  const double lambda = base_.total_rate();
  std::vector<double> grad(x.size(), 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double a = lambda * x[i];
    const double mu = problem.mu[i];
    // d/dx [ x C_i (b + v x) ] = C_i (b + 2 v x)
    grad[i] = base_.access_cost(i) *
                  (base_volume_ + 2.0 * volume_factor_ * x[i]) +
              problem.k * (problem.delay.sojourn(a, mu) +
                           a * problem.delay.d_sojourn(a, mu));
  }
  return grad;
}

std::vector<double> VolumeTransferModel::second_derivative(
    const std::vector<double>& x) const {
  FAP_EXPECTS(x.size() == dimension(), "allocation has wrong dimension");
  const SingleFileProblem& problem = base_.problem();
  const double lambda = base_.total_rate();
  std::vector<double> hess(x.size(), 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double a = lambda * x[i];
    const double mu = problem.mu[i];
    hess[i] = 2.0 * base_.access_cost(i) * volume_factor_ +
              lambda * problem.k *
                  (2.0 * problem.delay.d_sojourn(a, mu) +
                   a * problem.delay.d2_sojourn(a, mu));
  }
  return hess;
}

}  // namespace fap::core
