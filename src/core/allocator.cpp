#include "core/allocator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contracts.hpp"

namespace fap::core {

namespace {

// Boundary tolerance shared with the fast path; the rationale for
// boundary-only exclusion lives with its definition in core/active_set.hpp.
using detail::kBoundaryTol;

// Mean of `values` over the index subset `subset`.
double mean_over(const std::vector<double>& values,
                 const std::vector<std::size_t>& subset) {
  double sum = 0.0;
  for (const std::size_t i : subset) {
    sum += values[i];
  }
  return sum / static_cast<double>(subset.size());
}

// max - min of `values` over `subset`.
double spread_over(const std::vector<double>& values,
                   const std::vector<std::size_t>& subset) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const std::size_t i : subset) {
    lo = std::min(lo, values[i]);
    hi = std::max(hi, values[i]);
  }
  return hi - lo;
}

}  // namespace

ResourceDirectedAllocator::ResourceDirectedAllocator(const CostModel& model,
                                                     AllocatorOptions options)
    : model_(model),
      options_(options),
      groups_(model.constraint_groups()),
      caps_(model.upper_bounds()),
      dim_(model.dimension()) {
  FAP_EXPECTS(options_.alpha > 0.0, "step size must be positive");
  FAP_EXPECTS(options_.epsilon > 0.0, "epsilon must be positive");
  FAP_EXPECTS(options_.max_iterations > 0, "need at least one iteration");
  FAP_EXPECTS(options_.dynamic_safety > 0.0 && options_.dynamic_safety <= 1.0,
              "dynamic_safety must be in (0, 1]");
}

double ResourceDirectedAllocator::dynamic_alpha_bound(
    const std::vector<double>& x,
    const std::vector<std::size_t>& active) const {
  const std::vector<double> du = model_.marginal_utilities(x);
  const std::vector<double> d2c = model_.second_derivative(x);
  const double avg = mean_over(du, active);
  double numerator = 0.0;
  double denominator = 0.0;
  for (const std::size_t i : active) {
    const double dev = du[i] - avg;
    numerator += dev * dev;
    denominator += std::fabs(d2c[i]) * dev * dev;
  }
  if (denominator <= 0.0) {
    // Locally linear objective (e.g. on the delay model's tangent
    // extension): the quadratic model imposes no bound; fall back to a
    // conservative finite step.
    return options_.alpha;
  }
  return 2.0 * numerator / denominator;
}

double ResourceDirectedAllocator::dynamic_alpha_bound_cached(
    const std::vector<std::size_t>& active) const {
  // Same arithmetic as dynamic_alpha_bound, reading the derivatives already
  // computed into the workspace for the current allocation.
  const double avg = mean_over(ws_.du, active);
  double numerator = 0.0;
  double denominator = 0.0;
  for (const std::size_t i : active) {
    const double dev = ws_.du[i] - avg;
    numerator += dev * dev;
    denominator += std::fabs(ws_.d2c[i]) * dev * dev;
  }
  if (denominator <= 0.0) {
    return options_.alpha;
  }
  return 2.0 * numerator / denominator;
}

void ResourceDirectedAllocator::check_feasible_cached(
    const std::vector<double>& x, double sum_tolerance) const {
  // CostModel::check_feasible against the cached constraint structure:
  // identical checks, messages, and default tolerance, but no
  // constraint_groups()/upper_bounds() round trips. Only the
  // conservation-sum check honors `sum_tolerance` (step_with_drift).
  constexpr double tol = 1e-9;
  FAP_EXPECTS(x.size() == dim_, "allocation has wrong dimension");
  for (const double xi : x) {
    FAP_EXPECTS(xi >= -tol, "allocation must be non-negative");
  }
  if (!caps_.empty()) {
    FAP_EXPECTS(caps_.size() == x.size(),
                "one upper bound per variable when bounds are present");
    for (std::size_t i = 0; i < x.size(); ++i) {
      FAP_EXPECTS(x[i] <= caps_[i] + tol,
                  "allocation exceeds a storage capacity");
    }
  }
  for (const ConstraintGroup& group : groups_) {
    double sum = 0.0;
    for (const std::size_t i : group.indices) {
      FAP_EXPECTS(i < x.size(), "constraint index out of range");
      sum += x[i];
    }
    FAP_EXPECTS(std::fabs(sum - group.total) <= sum_tolerance,
                "allocation violates a resource-conservation constraint");
  }
}

std::vector<std::size_t> ResourceDirectedAllocator::active_set(
    const ConstraintGroup& group, const std::vector<double>& x,
    const std::vector<double>& marginal_u, double alpha) const {
  detail::active_set_fast(group, x, marginal_u, alpha, caps_, dim_, ws_.aset);
  return ws_.aset.active;
}

std::vector<std::size_t> ResourceDirectedAllocator::active_set_reference(
    const ConstraintGroup& group, const std::vector<double>& x,
    const std::vector<double>& marginal_u, double alpha) const {
  FAP_EXPECTS(!group.indices.empty(), "constraint group must be non-empty");
  const std::vector<double> caps = model_.upper_bounds();
  const auto cap_of = [&caps](std::size_t i) {
    return caps.empty() ? std::numeric_limits<double>::infinity() : caps[i];
  };

  // Δx under the average of the candidate set `members`.
  const auto delta = [&](std::size_t i,
                         const std::vector<std::size_t>& members) {
    return alpha * (marginal_u[i] - mean_over(marginal_u, members));
  };

  // A variable pinned at a boundary moving further into it is excluded
  // (both bounds treated symmetrically: the paper's x_i >= 0 logic, plus
  // the storage-capacity ceiling of the Suri [33] generalization).
  const auto pinned = [&](std::size_t i, double d) {
    if (x[i] <= kBoundaryTol && d < 0.0 && x[i] + d <= 0.0) {
      return true;  // at the floor, being decreased
    }
    const double cap = cap_of(i);
    return x[i] >= cap - kBoundaryTol && d > 0.0 && x[i] + d >= cap;
  };

  // Step (i): start from the whole group, keep nodes not pinned under the
  // full-group average.
  std::vector<std::size_t> active;
  active.reserve(group.indices.size());
  for (const std::size_t i : group.indices) {
    if (!pinned(i, delta(i, group.indices))) {
      active.push_back(i);
    }
  }
  if (active.empty()) {
    // Degenerate; keep the node with the highest marginal utility.
    const std::size_t best = *std::max_element(
        group.indices.begin(), group.indices.end(),
        [&](std::size_t a, std::size_t b) {
          return marginal_u[a] < marginal_u[b];
        });
    active.push_back(best);
  }

  // Steps (ii)-(v) plus the fixed-point strengthening: alternately
  // re-admit excluded nodes that would move AWAY from their boundary
  // (floor-pinned gainers, cap-pinned losers — both safe), and drop
  // active nodes whose recomputed Δx pins them.
  const std::size_t round_limit = 2 * group.indices.size() + 2;
  for (std::size_t round = 0; round < round_limit; ++round) {
    bool changed = false;

    // Re-admission: largest |marginal - average| eligible node first.
    for (;;) {
      const double avg = mean_over(marginal_u, active);
      std::size_t best = 0;
      double best_gap = 0.0;
      bool found = false;
      for (const std::size_t j : group.indices) {
        if (std::find(active.begin(), active.end(), j) != active.end()) {
          continue;
        }
        const double gap = marginal_u[j] - avg;
        const bool safe_gainer = gap > 0.0 && x[j] < cap_of(j) - kBoundaryTol;
        const bool safe_loser = gap < 0.0 && x[j] > kBoundaryTol;
        if ((safe_gainer || safe_loser) && std::fabs(gap) > best_gap) {
          best_gap = std::fabs(gap);
          best = j;
          found = true;
        }
      }
      if (!found) {
        break;
      }
      active.push_back(best);
      changed = true;
    }

    // Drop: members whose recomputed Δx pins them at a boundary.
    std::vector<std::size_t> survivors;
    survivors.reserve(active.size());
    for (const std::size_t i : active) {
      if (pinned(i, delta(i, active))) {
        changed = true;
        continue;
      }
      survivors.push_back(i);
    }
    if (survivors.empty()) {
      // Everyone is a violator only in degenerate corner cases; keep the
      // best node defensively.
      survivors.push_back(*std::max_element(
          active.begin(), active.end(), [&](std::size_t a, std::size_t b) {
            return marginal_u[a] < marginal_u[b];
          }));
    }
    active = std::move(survivors);

    if (!changed) {
      break;
    }
  }
  std::sort(active.begin(), active.end());
  return active;
}

ResourceDirectedAllocator::StepStats ResourceDirectedAllocator::step_into(
    const std::vector<double>& x, std::vector<double>& x_out,
    double sum_tolerance) const {
  check_feasible_cached(x, sum_tolerance);
  model_.marginal_utilities_into(x, ws_.du);
  if (options_.step_rule == StepRule::kDynamic) {
    model_.second_derivative_into(x, ws_.d2c);
  }

  const std::size_t n_groups = groups_.size();
  if (ws_.group_active.size() != n_groups) {
    ws_.group_active.resize(n_groups);
  }
  ws_.group_alpha.assign(n_groups, 0.0);

  StepStats stats;
  bool all_within_epsilon = true;
  double max_spread = 0.0;

  // First pass: determine the active set and step size per group and check
  // the global termination criterion.
  for (std::size_t g = 0; g < n_groups; ++g) {
    const ConstraintGroup& group = groups_[g];
    // Provisional step size for set-A determination; for the dynamic rule
    // this uses the whole group, then is refined over the active set.
    double alpha = options_.alpha;
    if (options_.step_rule == StepRule::kDynamic) {
      alpha =
          options_.dynamic_safety * dynamic_alpha_bound_cached(group.indices);
    }
    std::vector<std::size_t>& active = ws_.group_active[g];
    if (options_.use_reference_active_set) {
      active = active_set_reference(group, x, ws_.du, alpha);
    } else {
      detail::active_set_fast(group, x, ws_.du, alpha, caps_, dim_, ws_.aset);
      active = ws_.aset.active;
    }
    if (options_.step_rule == StepRule::kDynamic) {
      alpha = options_.dynamic_safety * dynamic_alpha_bound_cached(active);
    }
    ws_.group_alpha[g] = alpha;

    const double spread = spread_over(ws_.du, active);
    max_spread = std::max(max_spread, spread);
    if (spread >= options_.epsilon) {
      all_within_epsilon = false;
    }
    stats.active_set_size += active.size();
  }

  stats.marginal_spread = max_spread;
  x_out = x;
  if (all_within_epsilon) {
    stats.terminal = true;
    return stats;
  }

  // Second pass: apply Δx_i = α (∂U/∂x_i - avg_A) per group, scaled by the
  // largest θ ∈ (0,1] that keeps the group within [0, cap].
  const auto cap_of = [this](std::size_t i) {
    return caps_.empty() ? std::numeric_limits<double>::infinity() : caps_[i];
  };
  double alpha_used = 0.0;
  for (std::size_t g = 0; g < n_groups; ++g) {
    const std::vector<std::size_t>& active = ws_.group_active[g];
    const double group_alpha = ws_.group_alpha[g];
    const double avg = mean_over(ws_.du, active);
    std::vector<double>& deltas = ws_.deltas;
    deltas.assign(active.size(), 0.0);
    double theta = 1.0;
    for (std::size_t idx = 0; idx < active.size(); ++idx) {
      const std::size_t i = active[idx];
      deltas[idx] = group_alpha * (ws_.du[i] - avg);
      if (deltas[idx] < 0.0 && x[i] + deltas[idx] < 0.0) {
        theta = std::min(theta, x[i] / -deltas[idx]);
      }
      const double cap = cap_of(i);
      if (deltas[idx] > 0.0 && x[i] + deltas[idx] > cap) {
        theta = std::min(theta, (cap - x[i]) / deltas[idx]);
      }
    }
    theta = std::max(theta, 0.0);
    for (std::size_t idx = 0; idx < active.size(); ++idx) {
      const std::size_t i = active[idx];
      x_out[i] = x[i] + theta * deltas[idx];
      if (x_out[i] < 0.0) {
        x_out[i] = 0.0;  // absorb floating-point dust
      }
      if (x_out[i] > cap_of(i)) {
        x_out[i] = cap_of(i);
      }
    }
    alpha_used = std::max(alpha_used, theta * group_alpha);
  }
  stats.alpha_used = alpha_used;
  return stats;
}

ResourceDirectedAllocator::StepOutcome ResourceDirectedAllocator::step(
    const std::vector<double>& x) const {
  StepOutcome outcome;
  const StepStats stats = step_into(x, outcome.x);
  outcome.terminal = stats.terminal;
  outcome.marginal_spread = stats.marginal_spread;
  outcome.active_set_size = stats.active_set_size;
  outcome.alpha_used = stats.alpha_used;
  return outcome;
}

ResourceDirectedAllocator::StepOutcome
ResourceDirectedAllocator::step_with_drift(const std::vector<double>& x,
                                           double sum_tolerance) const {
  FAP_EXPECTS(sum_tolerance >= 0.0, "drift tolerance must be non-negative");
  StepOutcome outcome;
  const StepStats stats = step_into(x, outcome.x, sum_tolerance);
  outcome.terminal = stats.terminal;
  outcome.marginal_spread = stats.marginal_spread;
  outcome.active_set_size = stats.active_set_size;
  outcome.alpha_used = stats.alpha_used;
  return outcome;
}

AllocationResult ResourceDirectedAllocator::run(
    std::vector<double> initial) const {
  check_feasible_cached(initial);
  AllocationResult result;
  result.x = std::move(initial);

  auto record = [&](std::size_t iteration, const StepStats& stats) {
    if (!options_.record_trace) {
      return;
    }
    IterationRecord rec;
    rec.iteration = iteration;
    rec.cost = model_.cost(result.x);
    rec.alpha = stats.terminal ? 0.0 : stats.alpha_used;
    rec.active_set_size = stats.active_set_size;
    rec.marginal_spread = stats.marginal_spread;
    rec.x = result.x;
    result.trace.push_back(std::move(rec));
  };

  // Steady state allocates nothing: each iteration steps result.x into the
  // workspace's ping-pong buffer and swaps (trace recording, when enabled,
  // copies by design).
  for (std::size_t iter = 0; iter < options_.max_iterations; ++iter) {
    const StepStats stats = step_into(result.x, ws_.x_next);
    record(iter, stats);
    if (stats.terminal) {
      result.converged = true;
      break;
    }
    std::swap(result.x, ws_.x_next);
    ++result.iterations;
  }
  if (!result.converged && options_.record_trace) {
    // Record the final state reached at the iteration cap.
    StepStats final_state;
    final_state.terminal = true;
    record(result.iterations, final_state);
  }
  result.cost = model_.cost(result.x);
  return result;
}

}  // namespace fap::core
