#include "core/allocator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contracts.hpp"

namespace fap::core {

namespace {

// A node counts as sitting on the x_i >= 0 boundary below this threshold.
// Exclusion from the active set (Section 5.2 steps (i)-(v)) applies only to
// boundary nodes: an *interior* node whose step would overshoot below zero
// must have the step clipped (θ-scaling in step()) rather than be frozen at
// its current allocation — freezing it would make the spread-over-A
// termination criterion fire at a point violating the Section 5.3
// optimality conditions (∂U/∂x_i = q must hold at every x_i > 0). The
// paper's own Figure 4 run (start (0,0,0,1), α = 0.3) exercises exactly
// this case: the literal rule would freeze node 4 at x = 1 on the first
// iteration.
constexpr double kBoundaryTol = 1e-12;

// Mean of `values` over the index subset `subset`.
double mean_over(const std::vector<double>& values,
                 const std::vector<std::size_t>& subset) {
  double sum = 0.0;
  for (const std::size_t i : subset) {
    sum += values[i];
  }
  return sum / static_cast<double>(subset.size());
}

// max - min of `values` over `subset`.
double spread_over(const std::vector<double>& values,
                   const std::vector<std::size_t>& subset) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const std::size_t i : subset) {
    lo = std::min(lo, values[i]);
    hi = std::max(hi, values[i]);
  }
  return hi - lo;
}

}  // namespace

ResourceDirectedAllocator::ResourceDirectedAllocator(const CostModel& model,
                                                     AllocatorOptions options)
    : model_(model), options_(options) {
  FAP_EXPECTS(options_.alpha > 0.0, "step size must be positive");
  FAP_EXPECTS(options_.epsilon > 0.0, "epsilon must be positive");
  FAP_EXPECTS(options_.max_iterations > 0, "need at least one iteration");
  FAP_EXPECTS(options_.dynamic_safety > 0.0 && options_.dynamic_safety <= 1.0,
              "dynamic_safety must be in (0, 1]");
}

double ResourceDirectedAllocator::dynamic_alpha_bound(
    const std::vector<double>& x,
    const std::vector<std::size_t>& active) const {
  const std::vector<double> du = model_.marginal_utilities(x);
  const std::vector<double> d2c = model_.second_derivative(x);
  const double avg = mean_over(du, active);
  double numerator = 0.0;
  double denominator = 0.0;
  for (const std::size_t i : active) {
    const double dev = du[i] - avg;
    numerator += dev * dev;
    denominator += std::fabs(d2c[i]) * dev * dev;
  }
  if (denominator <= 0.0) {
    // Locally linear objective (e.g. on the delay model's tangent
    // extension): the quadratic model imposes no bound; fall back to a
    // conservative finite step.
    return options_.alpha;
  }
  return 2.0 * numerator / denominator;
}

std::vector<std::size_t> ResourceDirectedAllocator::active_set(
    const ConstraintGroup& group, const std::vector<double>& x,
    const std::vector<double>& marginal_u, double alpha) const {
  FAP_EXPECTS(!group.indices.empty(), "constraint group must be non-empty");
  const std::vector<double> caps = model_.upper_bounds();
  const auto cap_of = [&caps](std::size_t i) {
    return caps.empty() ? std::numeric_limits<double>::infinity() : caps[i];
  };

  // Δx under the average of the candidate set `members`.
  const auto delta = [&](std::size_t i,
                         const std::vector<std::size_t>& members) {
    return alpha * (marginal_u[i] - mean_over(marginal_u, members));
  };

  // A variable pinned at a boundary moving further into it is excluded
  // (both bounds treated symmetrically: the paper's x_i >= 0 logic, plus
  // the storage-capacity ceiling of the Suri [33] generalization).
  const auto pinned = [&](std::size_t i, double d) {
    if (x[i] <= kBoundaryTol && d < 0.0 && x[i] + d <= 0.0) {
      return true;  // at the floor, being decreased
    }
    const double cap = cap_of(i);
    return x[i] >= cap - kBoundaryTol && d > 0.0 && x[i] + d >= cap;
  };

  // Step (i): start from the whole group, keep nodes not pinned under the
  // full-group average.
  std::vector<std::size_t> active;
  active.reserve(group.indices.size());
  for (const std::size_t i : group.indices) {
    if (!pinned(i, delta(i, group.indices))) {
      active.push_back(i);
    }
  }
  if (active.empty()) {
    // Degenerate; keep the node with the highest marginal utility.
    const std::size_t best = *std::max_element(
        group.indices.begin(), group.indices.end(),
        [&](std::size_t a, std::size_t b) {
          return marginal_u[a] < marginal_u[b];
        });
    active.push_back(best);
  }

  // Steps (ii)-(v) plus the fixed-point strengthening: alternately
  // re-admit excluded nodes that would move AWAY from their boundary
  // (floor-pinned gainers, cap-pinned losers — both safe), and drop
  // active nodes whose recomputed Δx pins them.
  const std::size_t round_limit = 2 * group.indices.size() + 2;
  for (std::size_t round = 0; round < round_limit; ++round) {
    bool changed = false;

    // Re-admission: largest |marginal - average| eligible node first.
    for (;;) {
      const double avg = mean_over(marginal_u, active);
      std::size_t best = 0;
      double best_gap = 0.0;
      bool found = false;
      for (const std::size_t j : group.indices) {
        if (std::find(active.begin(), active.end(), j) != active.end()) {
          continue;
        }
        const double gap = marginal_u[j] - avg;
        const bool safe_gainer = gap > 0.0 && x[j] < cap_of(j) - kBoundaryTol;
        const bool safe_loser = gap < 0.0 && x[j] > kBoundaryTol;
        if ((safe_gainer || safe_loser) && std::fabs(gap) > best_gap) {
          best_gap = std::fabs(gap);
          best = j;
          found = true;
        }
      }
      if (!found) {
        break;
      }
      active.push_back(best);
      changed = true;
    }

    // Drop: members whose recomputed Δx pins them at a boundary.
    std::vector<std::size_t> survivors;
    survivors.reserve(active.size());
    for (const std::size_t i : active) {
      if (pinned(i, delta(i, active))) {
        changed = true;
        continue;
      }
      survivors.push_back(i);
    }
    if (survivors.empty()) {
      // Everyone is a violator only in degenerate corner cases; keep the
      // best node defensively.
      survivors.push_back(*std::max_element(
          active.begin(), active.end(), [&](std::size_t a, std::size_t b) {
            return marginal_u[a] < marginal_u[b];
          }));
    }
    active = std::move(survivors);

    if (!changed) {
      break;
    }
  }
  std::sort(active.begin(), active.end());
  return active;
}

ResourceDirectedAllocator::StepOutcome ResourceDirectedAllocator::step(
    const std::vector<double>& x) const {
  model_.check_feasible(x);
  const std::vector<double> du = model_.marginal_utilities(x);
  const std::vector<ConstraintGroup> groups = model_.constraint_groups();

  StepOutcome outcome;
  outcome.x = x;

  // First pass: determine the active set and step size per group and check
  // the global termination criterion.
  struct GroupPlan {
    std::vector<std::size_t> active;
    double alpha = 0.0;
  };
  std::vector<GroupPlan> plans;
  plans.reserve(groups.size());
  bool all_within_epsilon = true;
  double max_spread = 0.0;

  for (const ConstraintGroup& group : groups) {
    GroupPlan plan;
    // Provisional step size for set-A determination; for the dynamic rule
    // this uses the whole group, then is refined over the active set.
    double alpha = options_.alpha;
    if (options_.step_rule == StepRule::kDynamic) {
      alpha = options_.dynamic_safety * dynamic_alpha_bound(x, group.indices);
    }
    plan.active = active_set(group, x, du, alpha);
    if (options_.step_rule == StepRule::kDynamic) {
      alpha = options_.dynamic_safety * dynamic_alpha_bound(x, plan.active);
    }
    plan.alpha = alpha;

    const double spread = spread_over(du, plan.active);
    max_spread = std::max(max_spread, spread);
    if (spread >= options_.epsilon) {
      all_within_epsilon = false;
    }
    outcome.active_set_size += plan.active.size();
    plans.push_back(std::move(plan));
  }

  outcome.marginal_spread = max_spread;
  if (all_within_epsilon) {
    outcome.terminal = true;
    return outcome;
  }

  // Second pass: apply Δx_i = α (∂U/∂x_i - avg_A) per group, scaled by the
  // largest θ ∈ (0,1] that keeps the group within [0, cap].
  const std::vector<double> caps = model_.upper_bounds();
  const auto cap_of = [&caps](std::size_t i) {
    return caps.empty() ? std::numeric_limits<double>::infinity() : caps[i];
  };
  double alpha_used = 0.0;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const GroupPlan& plan = plans[g];
    const double avg = mean_over(du, plan.active);
    std::vector<double> deltas(plan.active.size());
    double theta = 1.0;
    for (std::size_t idx = 0; idx < plan.active.size(); ++idx) {
      const std::size_t i = plan.active[idx];
      deltas[idx] = plan.alpha * (du[i] - avg);
      if (deltas[idx] < 0.0 && x[i] + deltas[idx] < 0.0) {
        theta = std::min(theta, x[i] / -deltas[idx]);
      }
      const double cap = cap_of(i);
      if (deltas[idx] > 0.0 && x[i] + deltas[idx] > cap) {
        theta = std::min(theta, (cap - x[i]) / deltas[idx]);
      }
    }
    theta = std::max(theta, 0.0);
    for (std::size_t idx = 0; idx < plan.active.size(); ++idx) {
      const std::size_t i = plan.active[idx];
      outcome.x[i] = x[i] + theta * deltas[idx];
      if (outcome.x[i] < 0.0) {
        outcome.x[i] = 0.0;  // absorb floating-point dust
      }
      if (outcome.x[i] > cap_of(i)) {
        outcome.x[i] = cap_of(i);
      }
    }
    alpha_used = std::max(alpha_used, theta * plan.alpha);
  }
  outcome.alpha_used = alpha_used;
  return outcome;
}

AllocationResult ResourceDirectedAllocator::run(
    std::vector<double> initial) const {
  model_.check_feasible(initial);
  AllocationResult result;
  result.x = std::move(initial);

  auto record = [&](std::size_t iteration, const StepOutcome& outcome) {
    if (!options_.record_trace) {
      return;
    }
    IterationRecord rec;
    rec.iteration = iteration;
    rec.cost = model_.cost(result.x);
    rec.alpha = outcome.terminal ? 0.0 : outcome.alpha_used;
    rec.active_set_size = outcome.active_set_size;
    rec.marginal_spread = outcome.marginal_spread;
    rec.x = result.x;
    result.trace.push_back(std::move(rec));
  };

  for (std::size_t iter = 0; iter < options_.max_iterations; ++iter) {
    StepOutcome outcome = step(result.x);
    record(iter, outcome);
    if (outcome.terminal) {
      result.converged = true;
      break;
    }
    result.x = std::move(outcome.x);
    ++result.iterations;
  }
  if (!result.converged && options_.record_trace) {
    // Record the final state reached at the iteration cap.
    StepOutcome final_state;
    final_state.terminal = true;
    record(result.iterations, final_state);
  }
  result.cost = model_.cost(result.x);
  return result;
}

}  // namespace fap::core
