// Runtime SIMD dispatch for the batched allocator kernels.
//
// The AVX2 kernel TU (core/batch_kernels_avx2.cpp) is compiled with
// -mavx2 while the rest of the library stays baseline x86-64, so the
// binary always RUNS everywhere; whether the vector kernels are ENTERED
// is decided here at runtime:
//
//   1. a programmatic override (force_simd_level) — test/bench hook;
//   2. the FAP_FORCE_SCALAR_KERNELS environment variable (set and not
//      "0"/"" forces the scalar kernels — the CI lever that makes an
//      AVX2 machine behave like a non-AVX2 one);
//   3. CPUID: AVX2 support detected via __builtin_cpu_supports;
//   4. whether the AVX2 TU was compiled in at all (non-x86 builds, or a
//      compiler without -mavx2, fall back to scalar silently).
//
// Both kernel sets produce bitwise-identical results (the equivalence is
// pinned by core_batch_allocator_test), so dispatch is a pure speed
// decision and can never change observable output.
#pragma once

namespace fap::core {

enum class SimdLevel {
  kScalar,  ///< portable scalar/autovectorized kernels (always available)
  kAvx2,    ///< hand-vectorized AVX2 kernels (x86-64 with AVX2 only)
};

/// Human-readable name ("scalar" / "avx2") for logs and bench context.
const char* simd_level_name(SimdLevel level) noexcept;

/// True when the running CPU reports AVX2 (false on non-x86 builds).
bool cpu_supports_avx2() noexcept;

/// True when the AVX2 kernel TU was compiled into this binary.
bool avx2_kernels_compiled() noexcept;

/// Re-reads FAP_FORCE_SCALAR_KERNELS from the environment: set to
/// anything but "" or "0" means the scalar kernels are forced.
bool scalar_kernels_forced_by_env();

/// The level batch kernels will dispatch to right now: programmatic
/// override if set, else env override, else the best compiled-in level
/// the CPU supports.
SimdLevel active_simd_level();

/// Test/bench hook: pin dispatch to `level` until clear_simd_override().
/// Throws PreconditionError when asked for kAvx2 on a machine (or build)
/// without it — a forced level must be honorable, never silently
/// downgraded.
void force_simd_level(SimdLevel level);

/// Remove a force_simd_level pin; dispatch returns to env/CPUID.
void clear_simd_override();

}  // namespace fap::core
