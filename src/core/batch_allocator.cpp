// SoA lockstep kernel. See batch_allocator.hpp for the contract; the
// comments here focus on the padding invariants that let the row loops
// run dense (no per-element lane guards) without perturbing any lane's
// arithmetic:
//
//   rows j >= lane_n_[k] of column k hold  x = 0, mu = 1, cap = +inf,
//   du = 0  at every point where a dense loop reads them.
//
// Consequences, each load-bearing for bit-identity:
//   * the derivative row loop may evaluate padding cells (a = 0, mu = 1
//     is well inside every stability region — no traps, no NaNs); the
//     results are zeroed by a tail pass before anyone reads du;
//   * the lane sum Σ_j du[j][k] sees the real values first (rows are
//     ordered) and then adds +0.0 terms, which cannot change a partial
//     sum s except for s = -0.0 — and a -0.0 sum implies every du is
//     ±0.0, in which case the lane's spread is 0, it terminates without
//     stepping, and the sign never reaches an observable value;
//   * the pinned/violation row predicates are identically false on
//     padding cells (x = 0 with step d >= 0 against cap = +inf);
//   * min/max spread reductions CANNOT include padding (a 0.0 would
//     masquerade as the max of all-negative utilities), so they are the
//     one pair of loops with an explicit [n_min, n_max) scalar tail.
//
// This TU is compiled with -O3 -ffp-contract=off (see src/CMakeLists.txt):
// -O3 so GCC's vectorizer takes the division-heavy row loops at stride-1,
// -ffp-contract=off so no FMA contraction can ever fuse a multiply-add
// the serial path rounds twice.

#include "core/batch_allocator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contracts.hpp"

namespace fap::core {

namespace {

using detail::kBoundaryTol;

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

BatchAllocator::BatchAllocator(std::size_t width) : width_(width) {
  FAP_EXPECTS(width >= 1, "batch width must be at least 1");
}

std::size_t BatchAllocator::submit(const SingleFileModel& model,
                                   const AllocatorOptions& options,
                                   std::vector<double> start) {
  // Same validations as the ResourceDirectedAllocator constructor + run().
  FAP_EXPECTS(options.alpha > 0.0, "step size must be positive");
  FAP_EXPECTS(options.epsilon > 0.0, "epsilon must be positive");
  FAP_EXPECTS(options.max_iterations > 0, "need at least one iteration");
  FAP_EXPECTS(options.dynamic_safety > 0.0 && options.dynamic_safety <= 1.0,
              "dynamic_safety must be in (0, 1]");
  FAP_EXPECTS(!options.record_trace,
              "BatchAllocator does not record traces; use the serial "
              "ResourceDirectedAllocator for traced runs");
  FAP_EXPECTS(!options.use_reference_active_set,
              "BatchAllocator always uses the fast active set");
  model.check_feasible(start);

  Instance inst;
  inst.n = model.dimension();
  inst.alpha = options.alpha;
  inst.epsilon = options.epsilon;
  inst.dynamic_safety = options.dynamic_safety;
  inst.dynamic_rule = options.step_rule == StepRule::kDynamic;
  inst.max_iterations = options.max_iterations;
  inst.total_rate = model.total_rate();
  inst.k = model.problem().k;
  inst.delay = model.problem().delay;
  inst.access_cost = model.access_costs();
  inst.mu = model.problem().mu;
  inst.caps = model.problem().storage_capacity;
  inst.start = std::move(start);
  pending_.push_back(std::move(inst));
  return pending_.size() - 1;
}

std::size_t BatchAllocator::submit(const RawInstance& raw,
                                   const AllocatorOptions& options) {
  FAP_EXPECTS(options.alpha > 0.0, "step size must be positive");
  FAP_EXPECTS(options.epsilon > 0.0, "epsilon must be positive");
  FAP_EXPECTS(options.max_iterations > 0, "need at least one iteration");
  FAP_EXPECTS(options.dynamic_safety > 0.0 && options.dynamic_safety <= 1.0,
              "dynamic_safety must be in (0, 1]");
  FAP_EXPECTS(!options.record_trace,
              "BatchAllocator does not record traces; use the serial "
              "ResourceDirectedAllocator for traced runs");
  FAP_EXPECTS(!options.use_reference_active_set,
              "BatchAllocator always uses the fast active set");

  // Model-level validations, mirroring the SingleFileModel constructor.
  FAP_EXPECTS(raw.n >= 1, "problem needs at least one node");
  FAP_EXPECTS(raw.access_cost != nullptr && raw.mu != nullptr &&
                  raw.start != nullptr,
              "raw instance needs access costs, service rates and a start");
  FAP_EXPECTS(raw.total_rate > 0.0,
              "network-wide access rate must be positive");
  FAP_EXPECTS(raw.k >= 0.0, "k must be non-negative");
  for (std::size_t i = 0; i < raw.n; ++i) {
    FAP_EXPECTS(raw.mu[i] > 0.0, "service rates must be positive");
    if (raw.delay.rho_max() >= 1.0) {
      FAP_EXPECTS(raw.total_rate < raw.delay.capacity(raw.mu[i]),
                  "stability requires λ below every node's service "
                  "capacity (or a linearized delay model, see DelayModel "
                  "rho_max)");
    }
  }
  if (raw.caps != nullptr) {
    double capacity_total = 0.0;
    for (std::size_t i = 0; i < raw.n; ++i) {
      FAP_EXPECTS(raw.caps[i] >= 0.0, "storage capacities must be "
                                      "non-negative");
      capacity_total += raw.caps[i];
    }
    FAP_EXPECTS(capacity_total >= 1.0 - 1e-9,
                "total storage capacity must hold at least one whole file");
  }

  // Start feasibility, mirroring CostModel::check_feasible (tol 1e-9,
  // one Σ = 1 group).
  constexpr double kTol = 1e-9;
  double start_sum = 0.0;
  for (std::size_t i = 0; i < raw.n; ++i) {
    FAP_EXPECTS(raw.start[i] >= -kTol, "allocation must be non-negative");
    if (raw.caps != nullptr) {
      FAP_EXPECTS(raw.start[i] <= raw.caps[i] + kTol,
                  "allocation exceeds a storage capacity");
    }
    start_sum += raw.start[i];
  }
  FAP_EXPECTS(std::fabs(start_sum - 1.0) <= kTol,
              "allocation violates a resource-conservation constraint");

  Instance inst;
  inst.n = raw.n;
  inst.alpha = options.alpha;
  inst.epsilon = options.epsilon;
  inst.dynamic_safety = options.dynamic_safety;
  inst.dynamic_rule = options.step_rule == StepRule::kDynamic;
  inst.max_iterations = options.max_iterations;
  inst.total_rate = raw.total_rate;
  inst.k = raw.k;
  inst.delay = raw.delay;
  inst.access_cost.assign(raw.access_cost, raw.access_cost + raw.n);
  inst.mu.assign(raw.mu, raw.mu + raw.n);
  if (raw.caps != nullptr) {
    inst.caps.assign(raw.caps, raw.caps + raw.n);
  }
  inst.start.assign(raw.start, raw.start + raw.n);
  pending_.push_back(std::move(inst));
  return pending_.size() - 1;
}

void BatchAllocator::load_lane(std::size_t lane, std::size_t instance_id) {
  const Instance& inst = pending_[instance_id];
  const std::size_t s = lanes_;
  for (std::size_t j = 0; j < node_cap_; ++j) {
    const bool real = j < inst.n;
    x_[j * s + lane] = real ? inst.start[j] : 0.0;
    c_[j * s + lane] = real ? inst.access_cost[j] : 0.0;
    mu_[j * s + lane] = real ? inst.mu[j] : 1.0;
    cap_[j * s + lane] =
        (real && !inst.caps.empty()) ? inst.caps[j] : kInf;
  }
  lane_inst_[lane] = instance_id;
  lane_n_[lane] = inst.n;
  lane_maxit_[lane] = inst.max_iterations;
  lane_iter_[lane] = 0;
  lane_tr_[lane] = inst.total_rate;
  lane_k_[lane] = inst.k;
  lane_alpha_opt_[lane] = inst.alpha;
  lane_eps_[lane] = inst.epsilon;
  lane_safety_[lane] = inst.dynamic_safety;
  lane_scv_[lane] = inst.delay.scv();
  lane_rho_[lane] = inst.delay.rho_max();
  lane_dyn_[lane] = inst.dynamic_rule ? 1 : 0;
  lane_single_[lane] =
      inst.delay.discipline() != queueing::Discipline::kMMc ? 1 : 0;
  lane_delay_[lane] = inst.delay;
}

void BatchAllocator::refresh_lane_summary() {
  n_min_ = std::numeric_limits<std::size_t>::max();
  n_max_ = 0;
  all_single_ = true;
  any_dyn_ = false;
  for (std::size_t k = 0; k < live_; ++k) {
    n_min_ = std::min(n_min_, lane_n_[k]);
    n_max_ = std::max(n_max_, lane_n_[k]);
    all_single_ = all_single_ && lane_single_[k] != 0;
    any_dyn_ = any_dyn_ || lane_dyn_[k] != 0;
  }
  if (live_ == 0) {
    n_min_ = n_max_ = 0;
  }
}

void BatchAllocator::compute_derivatives() {
  const std::size_t s = lanes_;
  const std::size_t live = live_;
  if (all_single_) {
    // Vectorized rows: identical per-cell expression sequence as
    // SingleFileModel::gradient_into + marginal_utilities_into's negation
    // (the lin_* helpers are bit-equal to DelayModel::sojourn et al. for
    // single-server disciplines — see queueing/delay.hpp).
    if (any_dyn_) {
      for (std::size_t j = 0; j < n_max_; ++j) {
        const double* xr = x_.data() + j * s;
        const double* mr = mu_.data() + j * s;
        const double* cr = c_.data() + j * s;
        double* dur = du_.data() + j * s;
        double* d2r = d2c_.data() + j * s;
        for (std::size_t k = 0; k < live; ++k) {
          const double a = lane_tr_[k] * xr[k];
          const double m = mr[k];
          const double scv = lane_scv_[k];
          const double rho = lane_rho_[k];
          const double T = queueing::detail::lin_sojourn(a, m, scv, rho);
          const double dT = queueing::detail::lin_d_sojourn(a, m, scv, rho);
          const double d2T = queueing::detail::lin_d2_sojourn(a, m, scv, rho);
          dur[k] = -(cr[k] + lane_k_[k] * (T + a * dT));
          d2r[k] = lane_tr_[k] * lane_k_[k] * (2.0 * dT + a * d2T);
        }
      }
    } else {
      for (std::size_t j = 0; j < n_max_; ++j) {
        const double* xr = x_.data() + j * s;
        const double* mr = mu_.data() + j * s;
        const double* cr = c_.data() + j * s;
        double* dur = du_.data() + j * s;
        for (std::size_t k = 0; k < live; ++k) {
          const double a = lane_tr_[k] * xr[k];
          const double m = mr[k];
          const double scv = lane_scv_[k];
          const double rho = lane_rho_[k];
          const double T = queueing::detail::lin_sojourn(a, m, scv, rho);
          const double dT = queueing::detail::lin_d_sojourn(a, m, scv, rho);
          dur[k] = -(cr[k] + lane_k_[k] * (T + a * dT));
        }
      }
    }
  } else {
    // A multi-server lane is present: evaluate per lane through the exact
    // scalar DelayModel entry points (Erlang C has a data-dependent
    // series; there is nothing to vectorize across lanes).
    for (std::size_t k = 0; k < live; ++k) {
      const queueing::DelayModel& delay = lane_delay_[k];
      const double tr = lane_tr_[k];
      const double kk = lane_k_[k];
      const bool dyn = lane_dyn_[k] != 0;
      for (std::size_t j = 0; j < lane_n_[k]; ++j) {
        const double a = tr * x_[j * s + k];
        const double m = mu_[j * s + k];
        const double T = delay.sojourn(a, m);
        const double dT = delay.d_sojourn(a, m);
        du_[j * s + k] = -(c_[j * s + k] + kk * (T + a * dT));
        if (dyn) {
          const double d2T = delay.d2_sojourn(a, m);
          d2c_[j * s + k] = tr * kk * (2.0 * dT + a * d2T);
        }
      }
    }
  }
  // Restore the du padding invariant (the vector path computed garbage on
  // padding cells; the per-lane path left stale values).
  for (std::size_t j = n_min_; j < n_max_; ++j) {
    double* dur = du_.data() + j * s;
    for (std::size_t k = 0; k < live; ++k) {
      if (j >= lane_n_[k]) {
        dur[k] = 0.0;
      }
    }
  }
}

void BatchAllocator::scalar_theta(std::size_t lane) {
  // The serial second-pass θ loop over a full active set (all nodes).
  const std::size_t s = lanes_;
  const std::size_t n = lane_n_[lane];
  const double al = alpha_[lane];
  const double avg = avg_full_[lane];
  double theta = 1.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double d = al * (du_[j * s + lane] - avg);
    const double xj = x_[j * s + lane];
    if (d < 0.0 && xj + d < 0.0) {
      theta = std::min(theta, xj / -d);
    }
    const double cp = cap_[j * s + lane];
    if (d > 0.0 && xj + d > cp) {
      theta = std::min(theta, (cp - xj) / d);
    }
  }
  theta_[lane] = std::max(theta, 0.0);
}

void BatchAllocator::scalar_lane_step(std::size_t lane) {
  // A lane with a pinned node: gather it into contiguous scratch and run
  // the serial step verbatim — the SAME shared active-set fast path the
  // serial allocator calls, then the dynamic-α refinement, spread check
  // and θ-scaled apply, writing the stepped column into xn_.
  const std::size_t s = lanes_;
  const std::size_t n = lane_n_[lane];
  gx_.resize(n);
  gdu_.resize(n);
  gcaps_.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    gx_[j] = x_[j * s + lane];
    gdu_[j] = du_[j * s + lane];
    gcaps_[j] = cap_[j * s + lane];
  }
  ConstraintGroup& group = group_by_n_[n];
  if (group.indices.size() != n) {
    group.indices.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
      group.indices[j] = j;
    }
    group.total = 1.0;
  }

  double al = alpha_[lane];
  detail::active_set_fast(group, gx_, gdu_, al, gcaps_, n, aset_);
  const std::vector<std::size_t>& active = aset_.active;

  if (lane_dyn_[lane] != 0) {
    // Refine α over the active set (dynamic_alpha_bound_cached).
    double sum = 0.0;
    for (const std::size_t i : active) {
      sum += gdu_[i];
    }
    const double avg = sum / static_cast<double>(active.size());
    double numerator = 0.0;
    double denominator = 0.0;
    for (const std::size_t i : active) {
      const double dev = gdu_[i] - avg;
      numerator += dev * dev;
      denominator += std::fabs(d2c_[i * s + lane]) * dev * dev;
    }
    const double bound = denominator <= 0.0 ? lane_alpha_opt_[lane]
                                            : 2.0 * numerator / denominator;
    al = lane_safety_[lane] * bound;
  }

  double lo = kInf;
  double hi = -kInf;
  for (const std::size_t i : active) {
    lo = std::min(lo, gdu_[i]);
    hi = std::max(hi, gdu_[i]);
  }
  if (hi - lo < lane_eps_[lane]) {
    term_[lane] = 1;
    return;
  }

  double sum = 0.0;
  for (const std::size_t i : active) {
    sum += gdu_[i];
  }
  const double avg = sum / static_cast<double>(active.size());
  deltas_.assign(active.size(), 0.0);
  double theta = 1.0;
  for (std::size_t idx = 0; idx < active.size(); ++idx) {
    const std::size_t i = active[idx];
    deltas_[idx] = al * (gdu_[i] - avg);
    if (deltas_[idx] < 0.0 && gx_[i] + deltas_[idx] < 0.0) {
      theta = std::min(theta, gx_[i] / -deltas_[idx]);
    }
    const double cp = gcaps_[i];
    if (deltas_[idx] > 0.0 && gx_[i] + deltas_[idx] > cp) {
      theta = std::min(theta, (cp - gx_[i]) / deltas_[idx]);
    }
  }
  theta = std::max(theta, 0.0);

  // x_out = x, then overwrite the active entries (serial order).
  for (std::size_t j = 0; j < n; ++j) {
    xn_[j * s + lane] = gx_[j];
  }
  for (std::size_t idx = 0; idx < active.size(); ++idx) {
    const std::size_t i = active[idx];
    double t = gx_[i] + theta * deltas_[idx];
    if (t < 0.0) {
      t = 0.0;  // absorb floating-point dust
    }
    if (t > gcaps_[i]) {
      t = gcaps_[i];
    }
    xn_[i * s + lane] = t;
  }
}

double BatchAllocator::column_cost(std::size_t lane,
                                   const std::vector<double>& plane) const {
  // SingleFileModel::cost in node order over the lane's column.
  const std::size_t s = lanes_;
  const double tr = lane_tr_[lane];
  const double kk = lane_k_[lane];
  const queueing::DelayModel& delay = lane_delay_[lane];
  double total = 0.0;
  for (std::size_t j = 0; j < lane_n_[lane]; ++j) {
    const double xj = plane[j * s + lane];
    if (xj == 0.0) {
      continue;  // zero fragment contributes zero cost regardless of T_i
    }
    const double a = tr * xj;
    total += xj * (c_[j * s + lane] + kk * delay.sojourn(a, mu_[j * s + lane]));
  }
  return total;
}

void BatchAllocator::harvest(std::size_t lane, const std::vector<double>& plane,
                             bool converged,
                             std::vector<BatchRunResult>& results) const {
  const std::size_t s = lanes_;
  BatchRunResult& out = results[lane_inst_[lane]];
  out.x.resize(lane_n_[lane]);
  for (std::size_t j = 0; j < lane_n_[lane]; ++j) {
    out.x[j] = plane[j * s + lane];
  }
  out.converged = converged;
  out.iterations = lane_iter_[lane];
  out.cost = column_cost(lane, plane);
}

std::vector<BatchRunResult> BatchAllocator::run_all() {
  stats_ = Stats{};
  stats_.instances = pending_.size();
  std::vector<BatchRunResult> results(pending_.size());
  if (pending_.empty()) {
    return results;
  }

  lanes_ = std::min(width_, pending_.size());
  node_cap_ = 0;
  for (const Instance& inst : pending_) {
    node_cap_ = std::max(node_cap_, inst.n);
  }
  const std::size_t cells = node_cap_ * lanes_;
  x_.assign(cells, 0.0);
  xn_.assign(cells, 0.0);
  du_.assign(cells, 0.0);
  d2c_.assign(cells, 0.0);
  c_.assign(cells, 0.0);
  mu_.assign(cells, 1.0);
  cap_.assign(cells, kInf);
  const auto resize_lane_arrays = [this]() {
    lane_inst_.resize(lanes_);
    lane_n_.resize(lanes_);
    lane_maxit_.resize(lanes_);
    lane_iter_.resize(lanes_);
    lane_tr_.resize(lanes_);
    lane_k_.resize(lanes_);
    lane_alpha_opt_.resize(lanes_);
    lane_eps_.resize(lanes_);
    lane_safety_.resize(lanes_);
    lane_scv_.resize(lanes_);
    lane_rho_.resize(lanes_);
    lane_dyn_.resize(lanes_);
    lane_single_.resize(lanes_);
    lane_delay_.resize(lanes_);
    sum_full_.resize(lanes_);
    avg_full_.resize(lanes_);
    alpha_.resize(lanes_);
    lo_.resize(lanes_);
    hi_.resize(lanes_);
    theta_.resize(lanes_);
    pinc_.resize(lanes_);
    viol_.resize(lanes_);
    term_.resize(lanes_);
    scalar_lane_.resize(lanes_);
  };
  resize_lane_arrays();

  std::size_t next_pending = 0;
  live_ = 0;
  while (live_ < lanes_ && next_pending < pending_.size()) {
    load_lane(live_++, next_pending++);
  }
  refresh_lane_summary();

  std::vector<unsigned char> retired(lanes_, 0);
  const std::size_t s = lanes_;

  while (live_ > 0) {
    ++stats_.lockstep_iterations;
    const std::size_t live = live_;

    compute_derivatives();

    // Lane sums Σ_j du (left-to-right over node rows, so bit-equal to the
    // serial mean_over sums; padding adds trailing +0.0 terms — see the
    // file comment).
    std::fill(sum_full_.begin(), sum_full_.begin() + live, 0.0);
    for (std::size_t j = 0; j < n_max_; ++j) {
      const double* dur = du_.data() + j * s;
      for (std::size_t k = 0; k < live; ++k) {
        sum_full_[k] += dur[k];
      }
    }
    for (std::size_t k = 0; k < live; ++k) {
      avg_full_[k] = sum_full_[k] / static_cast<double>(lane_n_[k]);
    }

    // Provisional per-lane step size (the serial first-pass α: fixed, or
    // the dynamic Theorem-2 bound over the whole group).
    for (std::size_t k = 0; k < live; ++k) {
      if (lane_dyn_[k] == 0) {
        alpha_[k] = lane_alpha_opt_[k];
        continue;
      }
      const std::size_t n = lane_n_[k];
      const double avg = avg_full_[k];
      double numerator = 0.0;
      double denominator = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        const double dev = du_[j * s + k] - avg;
        numerator += dev * dev;
        denominator += std::fabs(d2c_[j * s + k]) * dev * dev;
      }
      const double bound = denominator <= 0.0 ? lane_alpha_opt_[k]
                                              : 2.0 * numerator / denominator;
      alpha_[k] = lane_safety_[k] * bound;
    }

    // Step (i) census: per lane, how many nodes the full-group average
    // pins (active-set fast-path predicate) and how many the unscaled
    // step would push outside [0, cap] (θ != 1 predicate). Padding cells
    // satisfy neither (x = 0, d >= 0, cap = +inf).
    std::fill(pinc_.begin(), pinc_.begin() + live, 0u);
    std::fill(viol_.begin(), viol_.begin() + live, 0u);
    for (std::size_t j = 0; j < n_max_; ++j) {
      const double* xr = x_.data() + j * s;
      const double* dur = du_.data() + j * s;
      const double* capr = cap_.data() + j * s;
      for (std::size_t k = 0; k < live; ++k) {
        const double d = alpha_[k] * (dur[k] - avg_full_[k]);
        const double xj = xr[k];
        const double cp = capr[k];
        const bool pin = (xj <= kBoundaryTol && d < 0.0 && xj + d <= 0.0) ||
                         (xj >= cp - kBoundaryTol && d > 0.0 && xj + d >= cp);
        const bool vi = (d < 0.0 && xj + d < 0.0) || (d > 0.0 && xj + d > cp);
        pinc_[k] += pin ? 1u : 0u;
        viol_[k] += vi ? 1u : 0u;
      }
    }

    // Marginal-utility spread per lane (over all nodes == the full active
    // set). min/max must not see padding: vector region + scalar tail.
    std::fill(lo_.begin(), lo_.begin() + live, kInf);
    std::fill(hi_.begin(), hi_.begin() + live, -kInf);
    for (std::size_t j = 0; j < n_min_; ++j) {
      const double* dur = du_.data() + j * s;
      for (std::size_t k = 0; k < live; ++k) {
        lo_[k] = std::min(lo_[k], dur[k]);
        hi_[k] = std::max(hi_[k], dur[k]);
      }
    }
    for (std::size_t j = n_min_; j < n_max_; ++j) {
      const double* dur = du_.data() + j * s;
      for (std::size_t k = 0; k < live; ++k) {
        if (j < lane_n_[k]) {
          lo_[k] = std::min(lo_[k], dur[k]);
          hi_[k] = std::max(hi_[k], dur[k]);
        }
      }
    }

    // Classify lanes: full-active lanes resolve termination and θ here;
    // lanes with a pinned node take the gathered scalar path below.
    for (std::size_t k = 0; k < live; ++k) {
      theta_[k] = 1.0;
      term_[k] = 0;
      scalar_lane_[k] = 0;
      if (pinc_[k] != 0) {
        scalar_lane_[k] = 1;
        continue;
      }
      if (hi_[k] - lo_[k] < lane_eps_[k]) {
        term_[k] = 1;
        continue;
      }
      if (viol_[k] != 0) {
        scalar_theta(k);
      }
    }

    // Vectorized apply: xn = clamp(x + θ·α·(du - avg)). Runs for every
    // lane — terminal lanes harvest from x_ so their xn garbage is dead,
    // and scalar lanes overwrite their column immediately after.
    for (std::size_t j = 0; j < n_max_; ++j) {
      const double* xr = x_.data() + j * s;
      const double* dur = du_.data() + j * s;
      const double* capr = cap_.data() + j * s;
      double* xnr = xn_.data() + j * s;
      for (std::size_t k = 0; k < live; ++k) {
        const double d = alpha_[k] * (dur[k] - avg_full_[k]);
        double t = xr[k] + theta_[k] * d;
        t = t < 0.0 ? 0.0 : t;
        const double cp = capr[k];
        t = t > cp ? cp : t;
        xnr[k] = t;
      }
    }
    // Restore the x-plane padding invariant on the soon-to-be x plane.
    for (std::size_t j = n_min_; j < n_max_; ++j) {
      double* xnr = xn_.data() + j * s;
      for (std::size_t k = 0; k < live; ++k) {
        if (j >= lane_n_[k]) {
          xnr[k] = 0.0;
        }
      }
    }

    for (std::size_t k = 0; k < live; ++k) {
      if (scalar_lane_[k] != 0) {
        scalar_lane_step(k);
      }
    }

    // Retire: termination fires on the PRE-step allocation (serial run()
    // breaks before the swap), the iteration cap on the post-step one
    // (serial run() exits the loop after its last swap).
    bool changed = false;
    std::fill(retired.begin(), retired.begin() + live, 0);
    for (std::size_t k = 0; k < live; ++k) {
      if (term_[k] != 0) {
        harvest(k, x_, /*converged=*/true, results);
        retired[k] = 1;
        changed = true;
        continue;
      }
      ++lane_iter_[k];
      if (lane_iter_[k] >= lane_maxit_[k]) {
        harvest(k, xn_, /*converged=*/false, results);
        retired[k] = 1;
        changed = true;
      }
    }

    std::swap(x_, xn_);

    if (changed) {
      // Compact survivors left (full-column copies preserve the padding
      // zeros), then backfill the freed lanes from the pending queue.
      std::size_t dst = 0;
      for (std::size_t src = 0; src < live; ++src) {
        if (retired[src] != 0) {
          continue;
        }
        if (dst != src) {
          for (std::size_t j = 0; j < node_cap_; ++j) {
            x_[j * s + dst] = x_[j * s + src];
            c_[j * s + dst] = c_[j * s + src];
            mu_[j * s + dst] = mu_[j * s + src];
            cap_[j * s + dst] = cap_[j * s + src];
          }
          lane_inst_[dst] = lane_inst_[src];
          lane_n_[dst] = lane_n_[src];
          lane_maxit_[dst] = lane_maxit_[src];
          lane_iter_[dst] = lane_iter_[src];
          lane_tr_[dst] = lane_tr_[src];
          lane_k_[dst] = lane_k_[src];
          lane_alpha_opt_[dst] = lane_alpha_opt_[src];
          lane_eps_[dst] = lane_eps_[src];
          lane_safety_[dst] = lane_safety_[src];
          lane_scv_[dst] = lane_scv_[src];
          lane_rho_[dst] = lane_rho_[src];
          lane_dyn_[dst] = lane_dyn_[src];
          lane_single_[dst] = lane_single_[src];
          lane_delay_[dst] = lane_delay_[src];
        }
        ++dst;
      }
      while (dst < lanes_ && next_pending < pending_.size()) {
        load_lane(dst++, next_pending++);
      }
      live_ = dst;
      refresh_lane_summary();
    }
  }

  pending_.clear();
  return results;
}

}  // namespace fap::core
