// SoA lockstep driver. See batch_allocator.hpp for the contract and
// core/batch_kernels.hpp for the kernel table the dense passes dispatch
// through; the comments here focus on the padding invariants that let
// the row loops run dense (no per-element lane guards) without
// perturbing any lane's arithmetic:
//
//   rows j >= lane_n_[k] of column k hold  x = 0, mu = 1, imu = 1,
//   cap = +inf, du = 0  at every point where a dense loop reads them.
//
// Consequences, each load-bearing for bit-identity:
//   * the derivative row loop may evaluate padding cells (a = 0, mu = 1
//     is well inside every stability region — no traps, no NaNs); the
//     results are zeroed by a tail pass before anyone reads du;
//   * the lane sum Σ_j du[j][k] sees the real values first (rows are
//     ordered) and then adds +0.0 terms, which cannot change a partial
//     sum s except for s = -0.0 — and a -0.0 sum implies every du is
//     ±0.0, in which case the lane's spread is 0, it terminates without
//     stepping, and the sign never reaches an observable value;
//   * the pinned/violation row predicates are identically false on
//     padding cells (x = 0 with step d >= 0 against cap = +inf);
//   * min/max spread reductions CANNOT include padding (a 0.0 would
//     masquerade as the max of all-negative utilities), so the spread
//     kernels guard the [n_min, n_max) tail explicitly.
//
// Columns are another matter: the AVX2 kernels process whole 4-lane
// groups, so columns in [live, round_up4(live)) — initial zero-fill or a
// retired lane's stale values — are computed on but never read, and a
// backfilled lane has its whole column rewritten by load_lane before it
// goes live.

#include "core/batch_allocator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>

#include "core/simd_dispatch.hpp"
#include "util/contracts.hpp"

namespace fap::core {

namespace {

using detail::kBoundaryTol;

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

BatchAllocator::BatchAllocator(std::size_t width) : width_(width) {
  FAP_EXPECTS(width >= 1, "batch width must be at least 1");
}

std::size_t BatchAllocator::submit(const SingleFileModel& model,
                                   const AllocatorOptions& options,
                                   std::vector<double> start) {
  // Same validations as the ResourceDirectedAllocator constructor + run().
  FAP_EXPECTS(options.alpha > 0.0, "step size must be positive");
  FAP_EXPECTS(options.epsilon > 0.0, "epsilon must be positive");
  FAP_EXPECTS(options.max_iterations > 0, "need at least one iteration");
  FAP_EXPECTS(options.dynamic_safety > 0.0 && options.dynamic_safety <= 1.0,
              "dynamic_safety must be in (0, 1]");
  FAP_EXPECTS(!options.record_trace,
              "BatchAllocator does not record traces; use the serial "
              "ResourceDirectedAllocator for traced runs");
  FAP_EXPECTS(!options.use_reference_active_set,
              "BatchAllocator always uses the fast active set");
  model.check_feasible(start);

  Instance inst;
  inst.n = model.dimension();
  inst.alpha = options.alpha;
  inst.epsilon = options.epsilon;
  inst.dynamic_safety = options.dynamic_safety;
  inst.dynamic_rule = options.step_rule == StepRule::kDynamic;
  inst.max_iterations = options.max_iterations;
  inst.total_rate = model.total_rate();
  inst.k = model.problem().k;
  inst.delay = model.problem().delay;
  inst.access_cost = model.access_costs();
  inst.mu = model.problem().mu;
  inst.caps = model.problem().storage_capacity;
  inst.start = std::move(start);
  pending_.push_back(std::move(inst));
  return pending_.size() - 1;
}

std::size_t BatchAllocator::submit(const RawInstance& raw,
                                   const AllocatorOptions& options) {
  FAP_EXPECTS(options.alpha > 0.0, "step size must be positive");
  FAP_EXPECTS(options.epsilon > 0.0, "epsilon must be positive");
  FAP_EXPECTS(options.max_iterations > 0, "need at least one iteration");
  FAP_EXPECTS(options.dynamic_safety > 0.0 && options.dynamic_safety <= 1.0,
              "dynamic_safety must be in (0, 1]");
  FAP_EXPECTS(!options.record_trace,
              "BatchAllocator does not record traces; use the serial "
              "ResourceDirectedAllocator for traced runs");
  FAP_EXPECTS(!options.use_reference_active_set,
              "BatchAllocator always uses the fast active set");

  // Model-level validations, mirroring the SingleFileModel constructor.
  FAP_EXPECTS(raw.n >= 1, "problem needs at least one node");
  FAP_EXPECTS(raw.access_cost != nullptr && raw.mu != nullptr &&
                  raw.start != nullptr,
              "raw instance needs access costs, service rates and a start");
  FAP_EXPECTS(raw.total_rate > 0.0,
              "network-wide access rate must be positive");
  FAP_EXPECTS(raw.k >= 0.0, "k must be non-negative");
  for (std::size_t i = 0; i < raw.n; ++i) {
    FAP_EXPECTS(raw.mu[i] > 0.0, "service rates must be positive");
    if (raw.delay.rho_max() >= 1.0) {
      FAP_EXPECTS(raw.total_rate < raw.delay.capacity(raw.mu[i]),
                  "stability requires λ below every node's service "
                  "capacity (or a linearized delay model, see DelayModel "
                  "rho_max)");
    }
  }
  if (raw.caps != nullptr) {
    double capacity_total = 0.0;
    for (std::size_t i = 0; i < raw.n; ++i) {
      FAP_EXPECTS(raw.caps[i] >= 0.0, "storage capacities must be "
                                      "non-negative");
      capacity_total += raw.caps[i];
    }
    FAP_EXPECTS(capacity_total >= 1.0 - 1e-9,
                "total storage capacity must hold at least one whole file");
  }

  // Start feasibility, mirroring CostModel::check_feasible (tol 1e-9,
  // one Σ = 1 group).
  constexpr double kTol = 1e-9;
  double start_sum = 0.0;
  for (std::size_t i = 0; i < raw.n; ++i) {
    FAP_EXPECTS(raw.start[i] >= -kTol, "allocation must be non-negative");
    if (raw.caps != nullptr) {
      FAP_EXPECTS(raw.start[i] <= raw.caps[i] + kTol,
                  "allocation exceeds a storage capacity");
    }
    start_sum += raw.start[i];
  }
  FAP_EXPECTS(std::fabs(start_sum - 1.0) <= kTol,
              "allocation violates a resource-conservation constraint");

  Instance inst;
  inst.n = raw.n;
  inst.alpha = options.alpha;
  inst.epsilon = options.epsilon;
  inst.dynamic_safety = options.dynamic_safety;
  inst.dynamic_rule = options.step_rule == StepRule::kDynamic;
  inst.max_iterations = options.max_iterations;
  inst.total_rate = raw.total_rate;
  inst.k = raw.k;
  inst.delay = raw.delay;
  inst.access_cost.assign(raw.access_cost, raw.access_cost + raw.n);
  inst.mu.assign(raw.mu, raw.mu + raw.n);
  if (raw.caps != nullptr) {
    inst.caps.assign(raw.caps, raw.caps + raw.n);
  }
  inst.start.assign(raw.start, raw.start + raw.n);
  pending_.push_back(std::move(inst));
  return pending_.size() - 1;
}

void BatchAllocator::load_lane(std::size_t lane, std::size_t instance_id) {
  const Instance& inst = pending_[instance_id];
  const std::size_t s = soa_.stride;
  for (std::size_t j = 0; j < node_cap_; ++j) {
    const bool real = j < inst.n;
    const double m = real ? inst.mu[j] : 1.0;
    soa_.x[j * s + lane] = real ? inst.start[j] : 0.0;
    soa_.c[j * s + lane] = real ? inst.access_cost[j] : 0.0;
    soa_.mu[j * s + lane] = m;
    // Cached quotient: 1/μ divides the same operands the delay-law
    // expression would every iteration, so reusing it is bitwise
    // reevaluation (division is deterministic).
    soa_.imu[j * s + lane] = 1.0 / m;
    soa_.cap[j * s + lane] =
        (real && !inst.caps.empty()) ? inst.caps[j] : kInf;
  }
  lane_inst_[lane] = instance_id;
  lane_n_[lane] = inst.n;
  lane_maxit_[lane] = inst.max_iterations;
  lane_iter_[lane] = 0;
  lane_eps_[lane] = inst.epsilon;
  lane_dyn_[lane] = inst.dynamic_rule ? 1 : 0;
  lane_single_[lane] =
      inst.delay.discipline() != queueing::Discipline::kMMc ? 1 : 0;
  lane_delay_[lane] = inst.delay;
  soa_.lane_tr[lane] = inst.total_rate;
  soa_.lane_k[lane] = inst.k;
  soa_.lane_scv[lane] = inst.delay.scv();
  soa_.lane_rho[lane] = inst.delay.rho_max();
  soa_.lane_nd[lane] = static_cast<double>(inst.n);
  soa_.lane_dynd[lane] = inst.dynamic_rule ? 1.0 : 0.0;
  soa_.lane_alpha_opt[lane] = inst.alpha;
  soa_.lane_safety[lane] = inst.dynamic_safety;
}

void BatchAllocator::refresh_lane_summary() {
  std::size_t n_min = std::numeric_limits<std::size_t>::max();
  std::size_t n_max = 0;
  all_single_ = true;
  bool any_dyn = false;
  for (std::size_t k = 0; k < live_; ++k) {
    n_min = std::min(n_min, lane_n_[k]);
    n_max = std::max(n_max, lane_n_[k]);
    all_single_ = all_single_ && lane_single_[k] != 0;
    any_dyn = any_dyn || lane_dyn_[k] != 0;
  }
  if (live_ == 0) {
    n_min = n_max = 0;
  }
  soa_.live = live_;
  soa_.n_min = n_min;
  soa_.n_max = n_max;
  soa_.any_dyn = any_dyn;
}

void BatchAllocator::compute_derivatives() {
  if (all_single_) {
    kernels_->derivative_rows(soa_, soa_.any_dyn);
    return;
  }
  // A multi-server lane is present: evaluate per lane through the exact
  // scalar DelayModel entry points (Erlang C has a data-dependent
  // series; there is nothing to vectorize across lanes).
  const std::size_t s = soa_.stride;
  for (std::size_t k = 0; k < live_; ++k) {
    const queueing::DelayModel& delay = lane_delay_[k];
    const double tr = soa_.lane_tr[k];
    const double kk = soa_.lane_k[k];
    const bool dyn = lane_dyn_[k] != 0;
    for (std::size_t j = 0; j < lane_n_[k]; ++j) {
      const double a = tr * soa_.x[j * s + k];
      const double m = soa_.mu[j * s + k];
      const double T = delay.sojourn(a, m);
      const double dT = delay.d_sojourn(a, m);
      soa_.du[j * s + k] = -(soa_.c[j * s + k] + kk * (T + a * dT));
      if (dyn) {
        const double d2T = delay.d2_sojourn(a, m);
        soa_.d2c[j * s + k] = tr * kk * (2.0 * dT + a * d2T);
      }
    }
  }
  // Restore the du padding invariant (the per-lane path left stale
  // values on padding rows).
  kernels_->zero_du_padding(soa_);
}

void BatchAllocator::scalar_lane_step(std::size_t lane) {
  // A lane with a pinned node: gather it into contiguous scratch and run
  // the serial step verbatim — the SAME shared active-set fast path the
  // serial allocator calls, then the dynamic-α refinement, spread check
  // and θ-scaled apply, writing the stepped column into xn.
  const std::size_t s = soa_.stride;
  const std::size_t n = lane_n_[lane];
  gx_.resize(n);
  gdu_.resize(n);
  gcaps_.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    gx_[j] = soa_.x[j * s + lane];
    gdu_[j] = soa_.du[j * s + lane];
    gcaps_[j] = soa_.cap[j * s + lane];
  }
  ConstraintGroup& group = group_by_n_[n];
  if (group.indices.size() != n) {
    group.indices.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
      group.indices[j] = j;
    }
    group.total = 1.0;
  }

  double al = soa_.alpha[lane];
  detail::active_set_fast(group, gx_, gdu_, al, gcaps_, n, aset_);
  const std::vector<std::size_t>& active = aset_.active;

  if (lane_dyn_[lane] != 0) {
    // Refine α over the active set (dynamic_alpha_bound_cached).
    double sum = 0.0;
    for (const std::size_t i : active) {
      sum += gdu_[i];
    }
    const double avg = sum / static_cast<double>(active.size());
    double numerator = 0.0;
    double denominator = 0.0;
    for (const std::size_t i : active) {
      const double dev = gdu_[i] - avg;
      numerator += dev * dev;
      denominator += std::fabs(soa_.d2c[i * s + lane]) * dev * dev;
    }
    const double bound = denominator <= 0.0
                             ? soa_.lane_alpha_opt[lane]
                             : 2.0 * numerator / denominator;
    al = soa_.lane_safety[lane] * bound;
  }

  double lo = kInf;
  double hi = -kInf;
  for (const std::size_t i : active) {
    lo = std::min(lo, gdu_[i]);
    hi = std::max(hi, gdu_[i]);
  }
  if (hi - lo < lane_eps_[lane]) {
    term_[lane] = 1;
    return;
  }

  double sum = 0.0;
  for (const std::size_t i : active) {
    sum += gdu_[i];
  }
  const double avg = sum / static_cast<double>(active.size());
  deltas_.assign(active.size(), 0.0);
  double theta = 1.0;
  for (std::size_t idx = 0; idx < active.size(); ++idx) {
    const std::size_t i = active[idx];
    deltas_[idx] = al * (gdu_[i] - avg);
    if (deltas_[idx] < 0.0 && gx_[i] + deltas_[idx] < 0.0) {
      theta = std::min(theta, gx_[i] / -deltas_[idx]);
    }
    const double cp = gcaps_[i];
    if (deltas_[idx] > 0.0 && gx_[i] + deltas_[idx] > cp) {
      theta = std::min(theta, (cp - gx_[i]) / deltas_[idx]);
    }
  }
  theta = std::max(theta, 0.0);

  // x_out = x, then overwrite the active entries (serial order).
  for (std::size_t j = 0; j < n; ++j) {
    soa_.xn[j * s + lane] = gx_[j];
  }
  for (std::size_t idx = 0; idx < active.size(); ++idx) {
    const std::size_t i = active[idx];
    double t = gx_[i] + theta * deltas_[idx];
    if (t < 0.0) {
      t = 0.0;  // absorb floating-point dust
    }
    if (t > gcaps_[i]) {
      t = gcaps_[i];
    }
    soa_.xn[i * s + lane] = t;
  }
}

double BatchAllocator::column_cost(std::size_t lane,
                                   const util::AlignedVector& plane) const {
  // SingleFileModel::cost in node order over the lane's column.
  const std::size_t s = soa_.stride;
  const double tr = soa_.lane_tr[lane];
  const double kk = soa_.lane_k[lane];
  const queueing::DelayModel& delay = lane_delay_[lane];
  double total = 0.0;
  for (std::size_t j = 0; j < lane_n_[lane]; ++j) {
    const double xj = plane[j * s + lane];
    if (xj == 0.0) {
      continue;  // zero fragment contributes zero cost regardless of T_i
    }
    const double a = tr * xj;
    total += xj * (soa_.c[j * s + lane] +
                   kk * delay.sojourn(a, soa_.mu[j * s + lane]));
  }
  return total;
}

void BatchAllocator::harvest(std::size_t lane,
                             const util::AlignedVector& plane, bool converged,
                             std::vector<BatchRunResult>& results) const {
  const std::size_t s = soa_.stride;
  BatchRunResult& out = results[lane_inst_[lane]];
  out.x.resize(lane_n_[lane]);
  for (std::size_t j = 0; j < lane_n_[lane]; ++j) {
    out.x[j] = plane[j * s + lane];
  }
  out.converged = converged;
  out.iterations = lane_iter_[lane];
  out.cost = column_cost(lane, plane);
}

std::vector<BatchRunResult> BatchAllocator::run_all() {
  stats_ = Stats{};
  stats_.instances = pending_.size();
  // Dispatch is resolved once per run: override > env > CPUID (see
  // core/simd_dispatch.hpp). Every kernel set yields identical results.
  kernels_ = &detail::select_batch_kernels();
  stats_.kernels = kernels_->name;
  std::vector<BatchRunResult> results(pending_.size());
  if (pending_.empty()) {
    return results;
  }

  lanes_ = std::min(width_, pending_.size());
  node_cap_ = 0;
  for (const Instance& inst : pending_) {
    node_cap_ = std::max(node_cap_, inst.n);
  }
  const std::size_t stride = detail::round_up_stride(lanes_);
  soa_.stride = stride;
  soa_.node_cap = node_cap_;
  const std::size_t cells = node_cap_ * stride;
  soa_.x.assign(cells, 0.0);
  soa_.xn.assign(cells, 0.0);
  soa_.du.assign(cells, 0.0);
  soa_.d2c.assign(cells, 0.0);
  soa_.c.assign(cells, 0.0);
  soa_.mu.assign(cells, 1.0);
  soa_.imu.assign(cells, 1.0);
  soa_.cap.assign(cells, kInf);
  // Lane-indexed arrays are allocated at the full stride and
  // zero-initialized so the vector kernels' whole-group loads never see
  // uninitialized memory in the dead columns.
  for (util::AlignedVector* v :
       {&soa_.lane_tr, &soa_.lane_k, &soa_.lane_scv, &soa_.lane_rho,
        &soa_.lane_nd, &soa_.lane_dynd, &soa_.lane_alpha_opt,
        &soa_.lane_safety, &soa_.sum_full, &soa_.avg_full, &soa_.alpha,
        &soa_.lo, &soa_.hi, &soa_.theta}) {
    v->assign(stride, 0.0);
  }
  soa_.pinc.assign(stride, 0u);
  soa_.viol.assign(stride, 0u);
  lane_inst_.resize(lanes_);
  lane_n_.resize(lanes_);
  lane_maxit_.resize(lanes_);
  lane_iter_.resize(lanes_);
  lane_eps_.resize(lanes_);
  lane_dyn_.resize(lanes_);
  lane_single_.resize(lanes_);
  lane_delay_.resize(lanes_);
  term_.resize(lanes_);
  scalar_lane_.resize(lanes_);

  // The aligned-row geometry the vector kernels rely on: 64-byte plane
  // bases and a stride that keeps every row on a cache line.
  assert(stride % util::kDoublesPerCacheLine == 0);
  assert(reinterpret_cast<std::uintptr_t>(soa_.x.data()) %
             util::kCacheLineBytes ==
         0);
  assert(reinterpret_cast<std::uintptr_t>(soa_.du.data()) %
             util::kCacheLineBytes ==
         0);

  std::size_t next_pending = 0;
  live_ = 0;
  while (live_ < lanes_ && next_pending < pending_.size()) {
    load_lane(live_++, next_pending++);
  }
  refresh_lane_summary();

  std::vector<unsigned char> retired(lanes_, 0);
  const std::size_t s = stride;

  while (live_ > 0) {
    ++stats_.lockstep_iterations;
    const std::size_t live = live_;

    compute_derivatives();

    // Dense lockstep passes through the dispatched kernel table (each
    // documented in core/batch_kernels.hpp).
    kernels_->lane_sums(soa_);
    kernels_->step_sizes(soa_);
    kernels_->census_theta(soa_);
    kernels_->spread(soa_);

    // Classify lanes: full-active lanes resolve termination here (their
    // θ came out of census_theta); lanes with a pinned node take the
    // gathered scalar path below, which re-derives everything — the θ
    // the kernels computed for them is dead.
    for (std::size_t k = 0; k < live; ++k) {
      term_[k] = 0;
      scalar_lane_[k] = 0;
      if (soa_.pinc[k] != 0) {
        scalar_lane_[k] = 1;
        continue;
      }
      if (soa_.hi[k] - soa_.lo[k] < lane_eps_[k]) {
        term_[k] = 1;
      }
    }

    // Vectorized apply: xn = clamp(x + θ·α·(du - avg)). Runs for every
    // lane — terminal lanes harvest from x so their xn garbage is dead,
    // and scalar lanes overwrite their column immediately after.
    kernels_->apply_step(soa_);

    for (std::size_t k = 0; k < live; ++k) {
      if (scalar_lane_[k] != 0) {
        scalar_lane_step(k);
      }
    }

    // Retire: termination fires on the PRE-step allocation (serial run()
    // breaks before the swap), the iteration cap on the post-step one
    // (serial run() exits the loop after its last swap).
    bool changed = false;
    std::fill(retired.begin(), retired.begin() + live, 0);
    for (std::size_t k = 0; k < live; ++k) {
      if (term_[k] != 0) {
        harvest(k, soa_.x, /*converged=*/true, results);
        retired[k] = 1;
        changed = true;
        continue;
      }
      ++lane_iter_[k];
      if (lane_iter_[k] >= lane_maxit_[k]) {
        harvest(k, soa_.xn, /*converged=*/false, results);
        retired[k] = 1;
        changed = true;
      }
    }

    std::swap(soa_.x, soa_.xn);

    if (changed) {
      // Compact survivors left (full-column copies preserve the padding
      // zeros), then backfill the freed lanes from the pending queue.
      std::size_t dst = 0;
      for (std::size_t src = 0; src < live; ++src) {
        if (retired[src] != 0) {
          continue;
        }
        if (dst != src) {
          for (std::size_t j = 0; j < node_cap_; ++j) {
            soa_.x[j * s + dst] = soa_.x[j * s + src];
            soa_.c[j * s + dst] = soa_.c[j * s + src];
            soa_.mu[j * s + dst] = soa_.mu[j * s + src];
            soa_.imu[j * s + dst] = soa_.imu[j * s + src];
            soa_.cap[j * s + dst] = soa_.cap[j * s + src];
          }
          lane_inst_[dst] = lane_inst_[src];
          lane_n_[dst] = lane_n_[src];
          lane_maxit_[dst] = lane_maxit_[src];
          lane_iter_[dst] = lane_iter_[src];
          lane_eps_[dst] = lane_eps_[src];
          lane_dyn_[dst] = lane_dyn_[src];
          lane_single_[dst] = lane_single_[src];
          lane_delay_[dst] = lane_delay_[src];
          soa_.lane_tr[dst] = soa_.lane_tr[src];
          soa_.lane_k[dst] = soa_.lane_k[src];
          soa_.lane_scv[dst] = soa_.lane_scv[src];
          soa_.lane_rho[dst] = soa_.lane_rho[src];
          soa_.lane_nd[dst] = soa_.lane_nd[src];
          soa_.lane_dynd[dst] = soa_.lane_dynd[src];
          soa_.lane_alpha_opt[dst] = soa_.lane_alpha_opt[src];
          soa_.lane_safety[dst] = soa_.lane_safety[src];
        }
        ++dst;
      }
      while (dst < lanes_ && next_pending < pending_.size()) {
        load_lane(dst++, next_pending++);
      }
      live_ = dst;
      refresh_lane_summary();
    }
  }

  pending_.clear();
  return results;
}

}  // namespace fap::core
