#include "core/copy_count.hpp"

#include <limits>

#include "core/cost_model.hpp"
#include "util/contracts.hpp"

namespace fap::core {

CopyCountResult optimal_copy_count(const RingProblem& base,
                                   const CopyCountOptions& options) {
  FAP_EXPECTS(options.storage_cost_per_copy >= 0.0,
              "storage cost must be non-negative");
  const std::size_t n = base.ring.size();
  const std::size_t max_copies =
      options.max_copies == 0 ? n : std::min(options.max_copies, n);
  FAP_EXPECTS(max_copies >= 1, "need to consider at least one copy");

  CopyCountResult result;
  result.best_total_cost = std::numeric_limits<double>::infinity();
  for (std::size_t m = 1; m <= max_copies; ++m) {
    RingProblem problem = base;
    problem.copies = static_cast<double>(m);
    const RingModel model(problem);
    const MultiCopyAllocator allocator(model, options.inner);
    const MultiCopyResult run = allocator.run(uniform_allocation(model));

    CopyCountEntry entry;
    entry.copies = m;
    entry.access_cost = run.best_cost;
    entry.storage_cost =
        options.storage_cost_per_copy * static_cast<double>(m);
    entry.total_cost = entry.access_cost + entry.storage_cost;
    entry.allocation = run.best_x;
    if (entry.total_cost < result.best_total_cost) {
      result.best_total_cost = entry.total_cost;
      result.best_copies = m;
    }
    result.sweep.push_back(std::move(entry));
  }
  return result;
}

}  // namespace fap::core
