#include "core/multi_file.hpp"

#include <cmath>

#include "util/contracts.hpp"
#include "util/numeric.hpp"

namespace fap::core {

MultiFileModel::MultiFileModel(MultiFileProblem problem)
    : problem_(std::move(problem)) {
  node_count_ = problem_.comm.node_count();
  FAP_EXPECTS(!problem_.per_file_lambda.empty(), "need at least one file");
  FAP_EXPECTS(problem_.mu.size() == node_count_,
              "mu size must match node count");
  FAP_EXPECTS(problem_.k >= 0.0, "k must be non-negative");

  double total_rate = 0.0;
  file_rate_.reserve(file_count());
  access_cost_.reserve(file_count());
  for (const std::vector<double>& lambda_f : problem_.per_file_lambda) {
    FAP_EXPECTS(lambda_f.size() == node_count_,
                "per-file workload size must match node count");
    for (const double rate : lambda_f) {
      FAP_EXPECTS(rate >= 0.0, "access rates must be non-negative");
    }
    const double rate_f = util::sum(lambda_f);
    FAP_EXPECTS(rate_f > 0.0, "every file needs a positive access rate");
    file_rate_.push_back(rate_f);
    total_rate += rate_f;

    // Row-major accumulation through the unchecked row accessor: per
    // destination i the additions still happen in increasing j, so the
    // totals are bit-identical to the column-major double loop.
    std::vector<double> costs(node_count_, 0.0);
    for (std::size_t j = 0; j < node_count_; ++j) {
      const double rate = lambda_f[j];
      const double* row = problem_.comm.row(j);
      for (std::size_t i = 0; i < node_count_; ++i) {
        costs[i] += rate * row[i];
      }
    }
    for (double& c : costs) {
      c /= rate_f;
    }
    access_cost_.push_back(std::move(costs));
  }

  for (const double mu : problem_.mu) {
    FAP_EXPECTS(mu > 0.0, "service rates must be positive");
    if (problem_.delay.rho_max() >= 1.0) {
      // Worst case: every file fully concentrated at one node gives
      // arrival rate Σ_f λ^f there.
      FAP_EXPECTS(total_rate < problem_.delay.capacity(mu),
                  "stability requires Σ_f λ^f below every node's service "
                  "capacity (or a linearized delay model)");
    }
  }
}

std::size_t MultiFileModel::index(std::size_t file, std::size_t node) const {
  FAP_EXPECTS(file < file_count() && node < node_count_,
              "file or node out of range");
  return file * node_count_ + node;
}

std::vector<ConstraintGroup> MultiFileModel::constraint_groups() const {
  std::vector<ConstraintGroup> groups;
  groups.reserve(file_count());
  for (std::size_t f = 0; f < file_count(); ++f) {
    ConstraintGroup group;
    group.total = 1.0;
    group.indices.reserve(node_count_);
    for (std::size_t i = 0; i < node_count_; ++i) {
      group.indices.push_back(f * node_count_ + i);
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

double MultiFileModel::node_arrival_rate(const std::vector<double>& x,
                                         std::size_t node) const {
  FAP_EXPECTS(x.size() == dimension(), "allocation has wrong dimension");
  FAP_EXPECTS(node < node_count_, "node out of range");
  double a = 0.0;
  for (std::size_t f = 0; f < file_count(); ++f) {
    a += file_rate_[f] * x[f * node_count_ + node];
  }
  return a;
}

double MultiFileModel::cost(const std::vector<double>& x) const {
  FAP_EXPECTS(x.size() == dimension(), "allocation has wrong dimension");
  double total = 0.0;
  for (std::size_t i = 0; i < node_count_; ++i) {
    const double a = node_arrival_rate(x, i);
    double fraction_sum = 0.0;  // Σ_f x_i^f
    double comm = 0.0;
    for (std::size_t f = 0; f < file_count(); ++f) {
      const double xf = x[f * node_count_ + i];
      fraction_sum += xf;
      comm += xf * access_cost_[f][i];
    }
    total += comm;
    if (fraction_sum > 0.0) {
      total +=
          problem_.k * problem_.delay.sojourn(a, problem_.mu[i]) * fraction_sum;
    }
  }
  return total;
}

std::vector<double> MultiFileModel::gradient(
    const std::vector<double>& x) const {
  FAP_EXPECTS(x.size() == dimension(), "allocation has wrong dimension");
  std::vector<double> grad(dimension(), 0.0);
  for (std::size_t i = 0; i < node_count_; ++i) {
    const double a = node_arrival_rate(x, i);
    const double mu = problem_.mu[i];
    const double sojourn = problem_.delay.sojourn(a, mu);
    const double d_sojourn = problem_.delay.d_sojourn(a, mu);
    double fraction_sum = 0.0;
    for (std::size_t f = 0; f < file_count(); ++f) {
      fraction_sum += x[f * node_count_ + i];
    }
    for (std::size_t f = 0; f < file_count(); ++f) {
      // ∂C/∂x_i^f = C_i^f + k [ T(a) + (Σ_g x_i^g) λ^f T'(a) ]
      grad[f * node_count_ + i] =
          access_cost_[f][i] +
          problem_.k * (sojourn + fraction_sum * file_rate_[f] * d_sojourn);
    }
  }
  return grad;
}

std::vector<double> MultiFileModel::second_derivative(
    const std::vector<double>& x) const {
  FAP_EXPECTS(x.size() == dimension(), "allocation has wrong dimension");
  std::vector<double> hess(dimension(), 0.0);
  for (std::size_t i = 0; i < node_count_; ++i) {
    const double a = node_arrival_rate(x, i);
    const double mu = problem_.mu[i];
    const double d_sojourn = problem_.delay.d_sojourn(a, mu);
    const double d2_sojourn = problem_.delay.d2_sojourn(a, mu);
    double fraction_sum = 0.0;
    for (std::size_t f = 0; f < file_count(); ++f) {
      fraction_sum += x[f * node_count_ + i];
    }
    for (std::size_t f = 0; f < file_count(); ++f) {
      const double lf = file_rate_[f];
      // ∂²C/∂(x_i^f)² = k λ^f ( 2 T'(a) + (Σ_g x_i^g) λ^f T''(a) )
      hess[f * node_count_ + i] =
          problem_.k * lf *
          (2.0 * d_sojourn + fraction_sum * lf * d2_sojourn);
    }
  }
  return hess;
}

double MultiFileModel::file_rate(std::size_t file) const {
  FAP_EXPECTS(file < file_count(), "file out of range");
  return file_rate_[file];
}

double MultiFileModel::access_cost(std::size_t file, std::size_t node) const {
  FAP_EXPECTS(file < file_count() && node < node_count_,
              "file or node out of range");
  return access_cost_[file][node];
}

}  // namespace fap::core
