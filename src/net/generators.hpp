// Topology generators for the paper's experiments and beyond.
//
// Figures 3-5 use a 4-node ring with equal link costs; Figure 6 uses fully
// connected networks of 4..20 nodes with unit link costs; Figures 8-9 use a
// 4-node (virtual) ring with specified per-link costs. The random
// generators support the wider test/bench sweeps.
#pragma once

#include <cstddef>
#include <vector>

#include "net/topology.hpp"
#include "util/rng.hpp"

namespace fap::net {

/// Ring of n nodes (n >= 3); link i connects node i to node (i+1) mod n
/// with cost link_costs[i]. With a single-element vector the cost is shared
/// by all links.
Topology make_ring(std::size_t n, const std::vector<double>& link_costs);

/// Ring with every link cost equal to `cost`.
Topology make_ring(std::size_t n, double cost = 1.0);

/// Fully connected network of n nodes, all direct links of cost `cost`.
Topology make_complete(std::size_t n, double cost = 1.0);

/// Star: node 0 is the hub, spokes cost `cost`.
Topology make_star(std::size_t n, double cost = 1.0);

/// Line (path) network: node i - node i+1, cost `cost`.
Topology make_line(std::size_t n, double cost = 1.0);

/// rows x cols grid with unit-cost nearest-neighbor links. Throws
/// PreconditionError on degenerate shapes: zero dimensions, a 1x1 grid
/// (no links), a rows*cols product that overflows std::size_t, or a cost
/// that is not positive and finite.
Topology make_grid(std::size_t rows, std::size_t cols, double cost = 1.0);

/// Erdős–Rényi G(n, p) with link costs uniform in [cost_lo, cost_hi].
/// Retries until the sample is connected (and always succeeds eventually
/// because a random spanning tree is added when p is too sparse to connect
/// after `max_attempts` samples). Throws PreconditionError when p is not a
/// probability (NaN included), the cost range is empty/non-positive/
/// infinite, or max_attempts is zero.
Topology make_erdos_renyi(std::size_t n, double p, double cost_lo,
                          double cost_hi, util::Rng& rng,
                          std::size_t max_attempts = 64);

/// Random geometric-flavored metric network: nodes get uniform positions in
/// the unit square, each node links to its k nearest neighbors with cost
/// equal to Euclidean distance (plus a spanning chain to force
/// connectivity). Produces realistic non-uniform c_ij matrices.
Topology make_random_metric(std::size_t n, std::size_t k, util::Rng& rng);

}  // namespace fap::net
