// Virtual ring (Section 7.2): "a virtual ring is constructed from an
// arbitrary network by imposing an ordering on the nodes and establishing a
// protocol of communication that embeds this ordering". Communication for
// file access flows in one direction around the ring; the cost of the hop
// from ring position p to position p+1 is the least-cost route between the
// corresponding physical nodes.
#pragma once

#include <cstddef>
#include <vector>

#include "net/topology.hpp"

namespace fap::net {

class VirtualRing {
 public:
  /// Ring with the given forward hop costs; hop p connects position p to
  /// position (p+1) mod n. All costs must be positive.
  explicit VirtualRing(std::vector<double> forward_costs);

  /// Builds a virtual ring over `topology` visiting nodes in `order`
  /// (a permutation of all nodes); each forward hop costs the least-cost
  /// route between consecutive nodes in the order.
  static VirtualRing from_order(const Topology& topology,
                                const std::vector<NodeId>& order);

  std::size_t size() const noexcept { return forward_costs_.size(); }
  double forward_cost(std::size_t position) const;

  /// Total communication cost of going forward from ring position `from`
  /// to ring position `to` (0 when from == to; wraps around the ring).
  double forward_distance(std::size_t from, std::size_t to) const;

  /// Number of forward hops from `from` to `to`.
  std::size_t forward_hops(std::size_t from, std::size_t to) const;

  /// Position that is `steps` hops forward of `from`.
  std::size_t advance(std::size_t from, std::size_t steps) const;

 private:
  std::vector<double> forward_costs_;
  std::vector<double> prefix_;  // prefix_[p] = cost from position 0 to p
  double total_ = 0.0;
};

}  // namespace fap::net
