// Structured tier-tree topologies (fat-tree, geo-tiers) with an implicit
// cost form.
//
// Production networks are hierarchies — racks under datacenters under
// regions, or the client/ISP/datacenter tiers of the "Greening File
// Distribution" model (PAPERS.md) — and on a tree the least-cost route
// between two nodes is unique: up from i to the lowest common ancestor,
// down to j. With one shared link cost per tier the whole c_ij structure
// is a pure function of (tier depths, LCA), so no Dijkstra and no dense
// matrix are ever needed (see net::HierarchicalCostProvider).
//
// HierarchySpec is the implicit form; make_fat_tree / make_geo_tiers also
// build the explicit Topology (BFS node numbering: node 0 is the root,
// level t occupies one contiguous id range) so tests and the dense code
// paths can run on the exact same graph.
#pragma once

#include <cstddef>
#include <vector>

#include "net/topology.hpp"

namespace fap::net {

/// Rooted fixed-fanout tier tree. Level 0 is the single root; every
/// level-t node has fanout[t] children, reached over links of cost
/// tier_cost[t]. Node ids are BFS order: id(level, rank) =
/// level_offset(level) + rank, children of (t, r) are
/// (t+1, r*fanout[t] .. r*fanout[t]+fanout[t]-1).
struct HierarchySpec {
  std::vector<std::size_t> fanout;    ///< children per level-t node
  std::vector<double> tier_cost;      ///< level t -> t+1 link cost

  std::size_t depth() const noexcept { return fanout.size(); }

  /// 1 + fanout[0] + fanout[0]*fanout[1] + ... (the full tree).
  std::size_t node_count() const;

  /// First node id of each level, plus the total as a sentinel
  /// (depth()+2 entries).
  std::vector<std::size_t> level_offsets() const;

  /// Throws PreconditionError unless well-formed: at least one tier,
  /// matching fanout/tier_cost lengths, every fanout >= 1, every tier
  /// cost positive and finite, and a node count that fits std::size_t.
  void validate() const;
};

/// A structured network in both forms: the explicit link graph (for the
/// dense / Dijkstra paths) and the implicit tier spec (for
/// HierarchicalCostProvider). Both describe the identical graph.
struct TieredNetwork {
  Topology topology;
  HierarchySpec spec;
};

/// Builds the explicit Topology of `spec` (BFS numbering as documented on
/// HierarchySpec). O(node_count) nodes and node_count-1 edges.
Topology make_tier_topology(const HierarchySpec& spec);

/// Complete k-ary fat tree of `depth` link tiers (depth+1 node levels,
/// (k^(depth+1)-1)/(k-1) nodes). Links get cheaper toward the root —
/// tier_cost[t] = 2^(t+1-depth), i.e. leaf links cost 1 and each level up
/// halves — the fat-tree property that aggregate bandwidth (here: inverse
/// cost) grows toward the core. All costs are exact powers of two.
TieredNetwork make_fat_tree(std::size_t k, std::size_t depth = 3);

/// Per-tier link costs of the geo hierarchy: core <-> region crossings are
/// expensive, rack links nearly free. Defaults are round dyadic values.
struct GeoTierCosts {
  double region = 8.0;  ///< core -> region
  double dc = 2.0;      ///< region -> datacenter
  double rack = 0.5;    ///< datacenter -> rack
};

/// Geographic hierarchy: one core node, `regions` regions, `dcs`
/// datacenters per region, `racks` racks per datacenter —
/// 1 + R + R*D + R*D*K nodes in four levels.
TieredNetwork make_geo_tiers(std::size_t racks, std::size_t dcs,
                             std::size_t regions, GeoTierCosts costs = {});

}  // namespace fap::net
