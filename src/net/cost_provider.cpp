#include "net/cost_provider.hpp"

#include <utility>

#include "util/contracts.hpp"

namespace fap::net {

// ---------------------------------------------------------------------------
// DenseCostProvider

DenseCostProvider::DenseCostProvider(std::shared_ptr<const CostMatrix> matrix)
    : owned_(std::move(matrix)) {
  FAP_EXPECTS(owned_ != nullptr, "dense provider needs a matrix");
  matrix_ = owned_.get();
}

DenseCostProvider::DenseCostProvider(const CostMatrix& matrix)
    : matrix_(&matrix) {}

std::size_t DenseCostProvider::node_count() const noexcept {
  return matrix_->node_count();
}

CostRow DenseCostProvider::row(NodeId i) const {
  FAP_EXPECTS(i < matrix_->node_count(), "row source out of range");
  // owned_ is null for the view ctor: the handle then carries no
  // keepalive, matching that ctor's caller-managed-lifetime contract.
  return CostRow(matrix_->row(i), matrix_->node_count(), owned_);
}

double DenseCostProvider::cost(NodeId i, NodeId j) const {
  return matrix_->cost(i, j);
}

// ---------------------------------------------------------------------------
// detail::RowCache

namespace detail {

RowCache::RowCache(std::size_t node_count, std::size_t capacity,
                   std::function<void(NodeId, double*)> fill)
    : n_(node_count), capacity_(capacity), fill_(std::move(fill)) {
  FAP_EXPECTS(capacity_ >= 1, "row cache capacity must be at least 1");
  FAP_EXPECTS(fill_ != nullptr, "row cache needs a fill function");
}

CostRow RowCache::get(NodeId i) const {
  FAP_EXPECTS(i < n_, "row source out of range");
  for (;;) {
    std::shared_ptr<Slot> slot;
    bool owner = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      auto it = slots_.find(i);
      if (it != slots_.end()) {
        slot = it->second;
        if (slot->ready) {
          lru_.splice(lru_.begin(), lru_, slot->lru_it);
          hits_.fetch_add(1, std::memory_order_relaxed);
          return CostRow(slot->data->data(), n_, slot->data);
        }
        // In flight: fall through to wait below.
      } else {
        slot = std::make_shared<Slot>();
        slots_.emplace(i, slot);
        owner = true;
        misses_.fetch_add(1, std::memory_order_relaxed);
      }
    }

    if (owner) {
      auto data = std::make_shared<std::vector<double>>(n_);
      try {
        fill_(i, data->data());
      } catch (...) {
        // Publish the failure, detach the slot so later callers retry,
        // and rethrow to this caller. Waiters see `failed` and retry.
        std::lock_guard<std::mutex> lock(mutex_);
        slot->failed = true;
        slots_.erase(i);
        cv_.notify_all();
        throw;
      }
      std::lock_guard<std::mutex> lock(mutex_);
      slot->data = std::move(data);
      slot->ready = true;
      lru_.push_front(i);
      slot->lru_it = lru_.begin();
      while (lru_.size() > capacity_) {
        // Only ready slots live in the LRU list, so eviction never
        // touches an in-flight computation. Outstanding CostRow handles
        // keep the evicted storage alive via their shared_ptr.
        const NodeId victim = lru_.back();
        lru_.pop_back();
        slots_.erase(victim);
        evictions_.fetch_add(1, std::memory_order_relaxed);
      }
      cv_.notify_all();
      return CostRow(slot->data->data(), n_, slot->data);
    }

    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return slot->ready || slot->failed; });
    if (slot->ready) {
      // The slot may have been evicted while we waited; the shared_ptr
      // still owns the data, so the handle stays valid either way. Only
      // bump recency if the row is still resident.
      auto it = slots_.find(i);
      if (it != slots_.end() && it->second == slot) {
        lru_.splice(lru_.begin(), lru_, slot->lru_it);
      }
      hits_.fetch_add(1, std::memory_order_relaxed);
      return CostRow(slot->data->data(), n_, slot->data);
    }
    // The computing thread failed; loop around and try to become the
    // owner of a fresh attempt.
  }
}

RowCache::Stats RowCache::stats() const noexcept {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  return s;
}

std::size_t RowCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

}  // namespace detail

// ---------------------------------------------------------------------------
// RowCostProvider

namespace {

// One Dijkstra scratch per thread, shared by every RowCostProvider: the
// kernel sizes/reset its buffers per solve, so reuse across providers and
// node counts is safe and keeps repeat solves allocation-free.
SingleSourceDijkstra::Scratch& thread_scratch() {
  thread_local SingleSourceDijkstra::Scratch scratch;
  return scratch;
}

}  // namespace

RowCostProvider::RowCostProvider(const Topology& topology,
                                 std::size_t row_cache_capacity)
    : engine_(topology),
      cache_(topology.node_count(), row_cache_capacity,
             [this](NodeId source, double* out) {
               engine_.solve_into(source, out, thread_scratch());
             }) {}

std::size_t RowCostProvider::node_count() const noexcept {
  return engine_.node_count();
}

CostRow RowCostProvider::row(NodeId i) const { return cache_.get(i); }

// ---------------------------------------------------------------------------
// HierarchicalCostProvider

HierarchicalCostProvider::HierarchicalCostProvider(
    HierarchySpec spec, std::size_t row_cache_capacity)
    : spec_(std::move(spec)),
      level_offsets_(spec_.level_offsets()),  // validates spec_
      n_(level_offsets_.back()),
      cache_(n_, row_cache_capacity, [this](NodeId source, double* out) {
        fill_row(source, out);
      }) {}

std::size_t HierarchicalCostProvider::node_count() const noexcept {
  return n_;
}

double HierarchicalCostProvider::cost(NodeId i, NodeId j) const {
  FAP_EXPECTS(i < n_ && j < n_, "node id out of range");
  if (i == j) {
    return 0.0;
  }
  // Decompose both ids into (level, rank) under the BFS numbering.
  std::size_t li = 0;
  while (level_offsets_[li + 1] <= i) {
    ++li;
  }
  std::size_t lj = 0;
  while (level_offsets_[lj + 1] <= j) {
    ++lj;
  }
  std::size_t ri = i - level_offsets_[li];
  std::size_t rj = j - level_offsets_[lj];
  // Lift the deeper node until both sit on one level, then lift both to
  // the lowest common ancestor. rank(parent) = rank(child) / fanout.
  std::size_t ui = li;
  std::size_t uj = lj;
  while (ui > uj) {
    ri /= spec_.fanout[--ui];
  }
  while (uj > ui) {
    rj /= spec_.fanout[--uj];
  }
  while (ri != rj) {
    ri /= spec_.fanout[--ui];
    rj /= spec_.fanout[--uj];
  }
  const std::size_t lca = ui;
  // Accumulate link costs in path order — first i's up-links from deepest
  // to the LCA, then the down-links to j. On a tree Dijkstra relaxes each
  // node exactly once, from its unique path predecessor, so dist(j) is
  // this same left-to-right fold: the sum is bit-identical, not merely
  // mathematically equal.
  double acc = 0.0;
  for (std::size_t l = li; l > lca; --l) {
    acc += spec_.tier_cost[l - 1];
  }
  for (std::size_t l = lca; l < lj; ++l) {
    acc += spec_.tier_cost[l];
  }
  return acc;
}

void HierarchicalCostProvider::fill_row(NodeId i, double* out) const {
  FAP_EXPECTS(i < n_, "row source out of range");
  for (std::size_t j = 0; j < n_; ++j) {
    out[j] = cost(i, j);
  }
}

CostRow HierarchicalCostProvider::row(NodeId i) const { return cache_.get(i); }

}  // namespace fap::net
