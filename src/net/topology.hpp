// Physical network model: an undirected weighted graph of nodes.
//
// The paper assumes a logically fully connected network in which accesses
// are routed along the least-expensive (shortest) path; the communication
// cost matrix c_ij of the cost model is therefore the all-pairs shortest
// path distance over this graph (see shortest_paths.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fap::net {

using NodeId = std::size_t;

/// 128-bit incremental content fingerprint of a topology: a pure function
/// of (node_count, edge insertion sequence). Two topologies built by the
/// same construction produce the same fingerprint, so it can key caches in
/// O(1) instead of hashing/copying the full edge list. The two lanes are
/// mixed independently (FNV-1a and a hash_combine-style golden-ratio mix),
/// so an accidental 128-bit collision between distinct topologies is not a
/// realistic event — but callers that require correctness (not just
/// performance) on collision must still content-verify, as
/// CostMatrixCache does.
struct TopologyFingerprint {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const TopologyFingerprint&,
                         const TopologyFingerprint&) = default;
};

/// One undirected weighted link.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;
  double cost = 1.0;
};

/// Undirected weighted multigraph-free topology. Link costs model the cost
/// of sending one file access (request + response) across the link.
class Topology {
 public:
  /// Creates a topology with `node_count` isolated nodes.
  explicit Topology(std::size_t node_count);

  std::size_t node_count() const noexcept { return adjacency_.size(); }
  std::size_t edge_count() const noexcept { return edges_.size(); }

  /// Adds an undirected link of the given positive cost. Self-loops and
  /// duplicate edges are rejected (a duplicate would be ambiguous: the
  /// shortest-path layer would silently pick the cheaper one).
  void add_edge(NodeId u, NodeId v, double cost);

  /// True if an edge between u and v exists.
  bool has_edge(NodeId u, NodeId v) const;

  /// All edges, in insertion order.
  const std::vector<Edge>& edges() const noexcept { return edges_; }

  /// Neighbors of `u` with the connecting link cost.
  struct Neighbor {
    NodeId node = 0;
    double cost = 0.0;
  };
  const std::vector<Neighbor>& neighbors(NodeId u) const;

  /// True when every node can reach every other node.
  bool connected() const;

  /// Content fingerprint, maintained incrementally by the constructor and
  /// add_edge (O(1) per mutation, O(1) to read). Equal construction
  /// sequences — same node count, same edges in the same order with
  /// bit-equal costs — yield equal fingerprints.
  TopologyFingerprint fingerprint() const noexcept { return fingerprint_; }

 private:
  std::vector<std::vector<Neighbor>> adjacency_;
  std::vector<Edge> edges_;
  TopologyFingerprint fingerprint_;
};

}  // namespace fap::net
