// All-pairs least-cost routing over a Topology.
//
// The paper routes every file access "along the shortest (least expensive)
// path" between requester and fragment holder; the resulting all-pairs
// distance matrix is exactly the c_ij of the cost model (c_ii = 0).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "net/topology.hpp"

namespace fap::runtime {
class ThreadPool;
}  // namespace fap::runtime

namespace fap::net {

/// Dense communication-cost matrix: cost(i, j) is the cost of one access
/// from i serviced at j (request plus response over the least-cost route).
class CostMatrix {
 public:
  /// node_count 0 is allowed: an empty matrix is the "no routing
  /// information" placeholder of SingleFileProblem::access_cost_override
  /// and a default-constructed catalog::CatalogSpec.
  explicit CostMatrix(std::size_t node_count);

  std::size_t node_count() const noexcept { return n_; }
  double cost(NodeId i, NodeId j) const;
  void set_cost(NodeId i, NodeId j, double cost);

  /// Unchecked element access for validated inner loops (the checked
  /// cost() pays a bounds FAP_EXPECTS per element, which dominates O(n²)
  /// accumulations). Precondition: i < node_count() && j < node_count().
  double operator()(NodeId i, NodeId j) const noexcept {
    return data_[i * n_ + j];
  }

  /// Row i as a contiguous [node_count()]-length span (row-major storage):
  /// c_ij = row(i)[j]. Precondition: i < node_count().
  const double* row(NodeId i) const noexcept { return data_.data() + i * n_; }

  /// Mutable row access for bulk writers (the APSP kernel fills each
  /// source's row in place). Same precondition as row().
  double* mutable_row(NodeId i) noexcept { return data_.data() + i * n_; }

  /// Largest finite entry; used for α-bound computations.
  double max_cost() const noexcept;

 private:
  std::size_t n_;
  std::vector<double> data_;
};

/// Reusable single-source shortest-path engine over a frozen topology:
/// the CSR adjacency is built once (O(n + m)) and each solve_into() runs
/// the indexed 4-ary-heap Dijkstra that fills one row. This is the SAME
/// kernel all_pairs_shortest_paths runs per source (shared code path), so
/// a solved row is byte-identical to the corresponding row of the dense
/// matrix — the contract net::RowCostProvider builds on.
class SingleSourceDijkstra {
 public:
  /// Requires a connected topology, like all_pairs_shortest_paths (a
  /// disconnected pair would make file access impossible).
  explicit SingleSourceDijkstra(const Topology& topology);

  std::size_t node_count() const noexcept { return n_; }

  /// Scratch buffers for solve_into. The engine itself is read-only after
  /// construction; callers owning one Scratch per thread may run
  /// concurrent solves against the same engine.
  struct Scratch {
    std::vector<double> heap_dist;
    std::vector<NodeId> heap_node;
    std::vector<std::int32_t> pos;
  };

  /// Writes the least costs from `source` into dist[0 .. node_count()).
  void solve_into(NodeId source, double* dist, Scratch& scratch) const;

 private:
  std::size_t n_ = 0;
  std::vector<std::size_t> offsets_;
  std::vector<NodeId> targets_;
  std::vector<double> costs_;
};

/// Computes the all-pairs shortest-path cost matrix of `topology` by running
/// Dijkstra's algorithm from every source. Requires a connected topology
/// (disconnected pairs would make file access impossible).
CostMatrix all_pairs_shortest_paths(const Topology& topology);

/// Parallel variant: fans the per-source Dijkstra runs over the pool's
/// workers. Each source writes a disjoint row, so the result is
/// byte-identical to the serial overload for every topology.
CostMatrix all_pairs_shortest_paths(const Topology& topology,
                                    runtime::ThreadPool& pool);

/// Single-source Dijkstra; returns distances from `source` to every node
/// (infinity for unreachable nodes). Exposed separately for routing in the
/// discrete-event simulator.
std::vector<double> dijkstra(const Topology& topology, NodeId source);

/// Next-hop routing table entry for store-and-forward simulation: for each
/// destination, the neighbor to forward to on a least-cost path.
std::vector<NodeId> dijkstra_next_hops(const Topology& topology,
                                       NodeId source);

/// Number of links traversed by the least-cost route between every pair
/// (0 on the diagonal). Among equal-cost routes the fewest-hop one is
/// chosen. Used by the discrete-event simulator's store-and-forward
/// transport (per-hop latency).
std::vector<std::vector<std::size_t>> route_hop_counts(
    const Topology& topology);

/// Parallel variant of route_hop_counts; per-source rows are independent,
/// so the result is byte-identical to the serial overload.
std::vector<std::vector<std::size_t>> route_hop_counts(
    const Topology& topology, runtime::ThreadPool& pool);

inline constexpr double kInfiniteCost = std::numeric_limits<double>::infinity();

}  // namespace fap::net
