#include "net/generators.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contracts.hpp"

namespace fap::net {

Topology make_ring(std::size_t n, const std::vector<double>& link_costs) {
  FAP_EXPECTS(n >= 3, "a ring needs at least three nodes");
  FAP_EXPECTS(link_costs.size() == 1 || link_costs.size() == n,
              "provide one shared link cost or one per link");
  Topology topology(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double cost =
        link_costs.size() == 1 ? link_costs.front() : link_costs[i];
    topology.add_edge(i, (i + 1) % n, cost);
  }
  return topology;
}

Topology make_ring(std::size_t n, double cost) {
  return make_ring(n, std::vector<double>{cost});
}

Topology make_complete(std::size_t n, double cost) {
  FAP_EXPECTS(n >= 2, "a complete network needs at least two nodes");
  Topology topology(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      topology.add_edge(i, j, cost);
    }
  }
  return topology;
}

Topology make_star(std::size_t n, double cost) {
  FAP_EXPECTS(n >= 2, "a star needs at least two nodes");
  Topology topology(n);
  for (std::size_t spoke = 1; spoke < n; ++spoke) {
    topology.add_edge(0, spoke, cost);
  }
  return topology;
}

Topology make_line(std::size_t n, double cost) {
  FAP_EXPECTS(n >= 2, "a line needs at least two nodes");
  Topology topology(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    topology.add_edge(i, i + 1, cost);
  }
  return topology;
}

Topology make_grid(std::size_t rows, std::size_t cols, double cost) {
  FAP_EXPECTS(rows >= 1 && cols >= 1, "grid dimensions must be positive");
  FAP_EXPECTS(rows <= std::numeric_limits<std::size_t>::max() / cols,
              "grid node count overflows");
  FAP_EXPECTS(rows * cols >= 2, "grid needs at least two nodes");
  FAP_EXPECTS(std::isfinite(cost) && cost > 0.0,
              "link cost must be positive and finite");
  Topology topology(rows * cols);
  const auto id = [cols](std::size_t r, std::size_t c) { return r * cols + c; };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        topology.add_edge(id(r, c), id(r, c + 1), cost);
      }
      if (r + 1 < rows) {
        topology.add_edge(id(r, c), id(r + 1, c), cost);
      }
    }
  }
  return topology;
}

Topology make_erdos_renyi(std::size_t n, double p, double cost_lo,
                          double cost_hi, util::Rng& rng,
                          std::size_t max_attempts) {
  FAP_EXPECTS(n >= 2, "network needs at least two nodes");
  FAP_EXPECTS(p >= 0.0 && p <= 1.0, "p must be a probability");
  FAP_EXPECTS(cost_lo > 0.0 && std::isfinite(cost_hi) && cost_hi >= cost_lo,
              "bad cost range");
  FAP_EXPECTS(max_attempts >= 1,
              "need at least one sampling attempt before the fallback");
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    Topology topology(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (rng.uniform() < p) {
          topology.add_edge(i, j, rng.uniform(cost_lo, cost_hi));
        }
      }
    }
    if (topology.connected()) {
      return topology;
    }
  }
  // Too sparse to connect by luck: sample once more and force connectivity
  // with a random spanning chain.
  Topology topology(n);
  const std::vector<std::size_t> order = rng.permutation(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    topology.add_edge(order[i], order[i + 1], rng.uniform(cost_lo, cost_hi));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (!topology.has_edge(i, j) && rng.uniform() < p) {
        topology.add_edge(i, j, rng.uniform(cost_lo, cost_hi));
      }
    }
  }
  return topology;
}

Topology make_random_metric(std::size_t n, std::size_t k, util::Rng& rng) {
  FAP_EXPECTS(n >= 2, "network needs at least two nodes");
  FAP_EXPECTS(k >= 1, "each node needs at least one neighbor");
  struct Point {
    double x, y;
  };
  std::vector<Point> points(n);
  for (auto& pt : points) {
    pt = Point{rng.uniform(), rng.uniform()};
  }
  const auto distance = [&points](std::size_t a, std::size_t b) {
    const double dx = points[a].x - points[b].x;
    const double dy = points[a].y - points[b].y;
    // Small floor keeps coincident points from creating zero-cost links.
    return std::max(std::hypot(dx, dy), 1e-6);
  };

  Topology topology(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::size_t> others;
    others.reserve(n - 1);
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) {
        others.push_back(j);
      }
    }
    const std::size_t keep = std::min(k, others.size());
    std::partial_sort(others.begin(),
                      others.begin() + static_cast<std::ptrdiff_t>(keep),
                      others.end(), [&](std::size_t a, std::size_t b) {
                        return distance(i, a) < distance(i, b);
                      });
    for (std::size_t idx = 0; idx < keep; ++idx) {
      const std::size_t j = others[idx];
      if (!topology.has_edge(i, j)) {
        topology.add_edge(i, j, distance(i, j));
      }
    }
  }
  // Chain in node order guarantees connectivity regardless of k.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (!topology.has_edge(i, i + 1)) {
      topology.add_edge(i, i + 1, distance(i, i + 1));
    }
  }
  return topology;
}

}  // namespace fap::net
