#include "net/topology.hpp"

#include <algorithm>
#include <bit>

#include "util/contracts.hpp"

namespace fap::net {

namespace {

// Two independent 64-bit mixes make up the 128-bit fingerprint lanes.
// Lane lo: FNV-1a over the value's bytes as one 64-bit word. Lane hi:
// boost-style hash_combine with the 64-bit golden ratio. Neither is
// cryptographic; the point is that a SIMULTANEOUS collision in two
// unrelated mixes does not occur by accident, and the one cache keyed by
// this (CostMatrixCache) still content-verifies on hit.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void mix(TopologyFingerprint& fp, std::uint64_t value) {
  std::uint64_t lo = fp.lo;
  for (int byte = 0; byte < 8; ++byte) {
    lo ^= (value >> (8 * byte)) & 0xffu;
    lo *= kFnvPrime;
  }
  fp.lo = lo;
  fp.hi ^= value + 0x9e3779b97f4a7c15ull + (fp.hi << 6) + (fp.hi >> 2);
}

}  // namespace

Topology::Topology(std::size_t node_count) : adjacency_(node_count) {
  FAP_EXPECTS(node_count >= 1, "topology needs at least one node");
  fingerprint_.lo = kFnvOffset;
  mix(fingerprint_, static_cast<std::uint64_t>(node_count));
}

void Topology::add_edge(NodeId u, NodeId v, double cost) {
  FAP_EXPECTS(u < node_count() && v < node_count(), "node id out of range");
  FAP_EXPECTS(u != v, "self-loops are not allowed");
  FAP_EXPECTS(cost > 0.0, "link cost must be positive");
  FAP_EXPECTS(!has_edge(u, v), "duplicate edge");
  edges_.push_back(Edge{u, v, cost});
  adjacency_[u].push_back(Neighbor{v, cost});
  adjacency_[v].push_back(Neighbor{u, cost});
  mix(fingerprint_, static_cast<std::uint64_t>(u));
  mix(fingerprint_, static_cast<std::uint64_t>(v));
  mix(fingerprint_, std::bit_cast<std::uint64_t>(cost));
}

bool Topology::has_edge(NodeId u, NodeId v) const {
  FAP_EXPECTS(u < node_count() && v < node_count(), "node id out of range");
  return std::any_of(adjacency_[u].begin(), adjacency_[u].end(),
                     [v](const Neighbor& n) { return n.node == v; });
}

const std::vector<Topology::Neighbor>& Topology::neighbors(NodeId u) const {
  FAP_EXPECTS(u < node_count(), "node id out of range");
  return adjacency_[u];
}

bool Topology::connected() const {
  std::vector<bool> seen(node_count(), false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (const Neighbor& n : adjacency_[u]) {
      if (!seen[n.node]) {
        seen[n.node] = true;
        ++visited;
        stack.push_back(n.node);
      }
    }
  }
  return visited == node_count();
}

}  // namespace fap::net
