#include "net/topology.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace fap::net {

Topology::Topology(std::size_t node_count) : adjacency_(node_count) {
  FAP_EXPECTS(node_count >= 1, "topology needs at least one node");
}

void Topology::add_edge(NodeId u, NodeId v, double cost) {
  FAP_EXPECTS(u < node_count() && v < node_count(), "node id out of range");
  FAP_EXPECTS(u != v, "self-loops are not allowed");
  FAP_EXPECTS(cost > 0.0, "link cost must be positive");
  FAP_EXPECTS(!has_edge(u, v), "duplicate edge");
  edges_.push_back(Edge{u, v, cost});
  adjacency_[u].push_back(Neighbor{v, cost});
  adjacency_[v].push_back(Neighbor{u, cost});
}

bool Topology::has_edge(NodeId u, NodeId v) const {
  FAP_EXPECTS(u < node_count() && v < node_count(), "node id out of range");
  return std::any_of(adjacency_[u].begin(), adjacency_[u].end(),
                     [v](const Neighbor& n) { return n.node == v; });
}

const std::vector<Topology::Neighbor>& Topology::neighbors(NodeId u) const {
  FAP_EXPECTS(u < node_count(), "node id out of range");
  return adjacency_[u];
}

bool Topology::connected() const {
  std::vector<bool> seen(node_count(), false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (const Neighbor& n : adjacency_[u]) {
      if (!seen[n.node]) {
        seen[n.node] = true;
        ++visited;
        stack.push_back(n.node);
      }
    }
  }
  return visited == node_count();
}

}  // namespace fap::net
