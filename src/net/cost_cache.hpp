// Topology-keyed cache of all-pairs shortest-path cost matrices.
//
// Sweeps rebuild the SAME communication-cost matrix over and over: fig5
// solves 45 α points on one ring, the ablations re-run dozens of option
// combinations on one topology, and every task pays an O(n·(m + n log n))
// APSP it has already paid. CostMatrixCache keys the APSP result by the
// topology's CONTENT (node count + edge list with bit-exact costs), so
// any task — on any sweep worker thread — that asks for an
// already-computed topology gets the shared immutable matrix back
// instead of recomputing it.
//
// Concurrency: get() is thread-safe with single-flight semantics — when
// several workers miss on the same key simultaneously, exactly one runs
// the APSP while the rest block on the slot and then share its result
// (no duplicated work, no torn inserts). Matrices are handed out as
// shared_ptr<const CostMatrix>; they stay valid after the cache is
// cleared or destroyed.
//
// Determinism: a cache hit returns a matrix computed by the identical
// all_pairs_shortest_paths call the caller would have made. Lookup is
// keyed by Topology's O(1) incremental 128-bit content fingerprint (so a
// get() no longer copies the edge list), but every hit still verifies
// FULL content equality against the edges stored with the slot; in the
// (never expected) event of a fingerprint collision between different
// topologies, the matrix is computed uncached rather than aliased.
// Cached and uncached runs are therefore byte-identical.
//
// Observability: hits/misses are counted atomically and, when a
// runtime::sweep task is executing, mirrored into its --metrics record
// via add_task_metric("cost_cache_hit"/"cost_cache_miss").
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/shortest_paths.hpp"
#include "net/topology.hpp"

namespace fap::net {

class CostMatrixCache {
 public:
  CostMatrixCache() = default;
  CostMatrixCache(const CostMatrixCache&) = delete;
  CostMatrixCache& operator=(const CostMatrixCache&) = delete;

  /// Returns the APSP cost matrix of `topology`, computing it (once) on
  /// miss. Safe to call concurrently from sweep workers; concurrent
  /// misses on the same topology compute it exactly once. Propagates any
  /// exception from all_pairs_shortest_paths to every waiter and leaves
  /// the cache unchanged.
  std::shared_ptr<const CostMatrix> get(const Topology& topology);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  Stats stats() const noexcept {
    return Stats{hits_.load(std::memory_order_relaxed),
                 misses_.load(std::memory_order_relaxed)};
  }

  /// Number of distinct topologies currently cached.
  std::size_t size() const;

  /// Drops every cached matrix (outstanding shared_ptrs stay valid) and
  /// resets the hit/miss counters.
  void clear();

 private:
  /// O(1) lookup key: the topology's incremental 128-bit content
  /// fingerprint plus the two cheap structural counts. Building it copies
  /// nothing — the old key copied the whole edge vector on EVERY get(),
  /// an O(m) tax that dominated small-matrix hits.
  struct Key {
    TopologyFingerprint fingerprint;
    std::uint64_t node_count = 0;
    std::uint64_t edge_count = 0;

    friend bool operator==(const Key&, const Key&) = default;
  };

  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept;
  };

  /// Single-flight slot: the first missing thread inserts it and
  /// computes; later arrivals wait on `cv` until `ready`. The edge list
  /// is copied ONCE, at insert, so hits can content-verify the
  /// fingerprint match without trusting 128 bits alone.
  struct Slot {
    std::vector<Edge> edges;
    std::shared_ptr<const CostMatrix> value;
    bool ready = false;
    bool failed = false;
  };

  static Key make_key(const Topology& topology);
  /// Alloc-free full content comparison between a slot's stored edges and
  /// a candidate topology (bit-exact costs, insertion order).
  static bool same_content(const std::vector<Edge>& edges,
                           const Topology& topology);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::unordered_map<Key, std::shared_ptr<Slot>, KeyHash> slots_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace fap::net
