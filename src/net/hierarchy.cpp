#include "net/hierarchy.hpp"

#include <cmath>
#include <limits>

#include "util/contracts.hpp"

namespace fap::net {

void HierarchySpec::validate() const {
  FAP_EXPECTS(!fanout.empty(), "hierarchy needs at least one tier");
  FAP_EXPECTS(fanout.size() == tier_cost.size(),
              "one link cost per fanout tier");
  for (const std::size_t f : fanout) {
    FAP_EXPECTS(f >= 1, "tier fanout must be at least 1");
  }
  for (const double c : tier_cost) {
    FAP_EXPECTS(std::isfinite(c) && c > 0.0,
                "tier link cost must be positive and finite");
  }
  // Overflow guard: the running level width and the node total must both
  // fit std::size_t (a bad spec should throw here, not wrap silently).
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  std::size_t width = 1;
  std::size_t total = 1;
  for (const std::size_t f : fanout) {
    FAP_EXPECTS(width <= kMax / f, "hierarchy node count overflows");
    width *= f;
    FAP_EXPECTS(total <= kMax - width, "hierarchy node count overflows");
    total += width;
  }
}

std::size_t HierarchySpec::node_count() const {
  validate();
  std::size_t width = 1;
  std::size_t total = 1;
  for (const std::size_t f : fanout) {
    width *= f;
    total += width;
  }
  return total;
}

std::vector<std::size_t> HierarchySpec::level_offsets() const {
  validate();
  std::vector<std::size_t> offsets(depth() + 2, 0);
  std::size_t width = 1;
  for (std::size_t t = 0; t <= depth(); ++t) {
    offsets[t + 1] = offsets[t] + width;
    if (t < depth()) {
      width *= fanout[t];
    }
  }
  return offsets;
}

Topology make_tier_topology(const HierarchySpec& spec) {
  const std::vector<std::size_t> offsets = spec.level_offsets();
  Topology topology(offsets.back());
  for (std::size_t t = 0; t < spec.depth(); ++t) {
    const std::size_t parents = offsets[t + 1] - offsets[t];
    for (std::size_t r = 0; r < parents; ++r) {
      const NodeId parent = offsets[t] + r;
      for (std::size_t c = 0; c < spec.fanout[t]; ++c) {
        const NodeId child = offsets[t + 1] + r * spec.fanout[t] + c;
        topology.add_edge(parent, child, spec.tier_cost[t]);
      }
    }
  }
  return topology;
}

TieredNetwork make_fat_tree(std::size_t k, std::size_t depth) {
  FAP_EXPECTS(k >= 1, "fat tree needs fanout of at least 1");
  FAP_EXPECTS(depth >= 1, "fat tree needs at least one link tier");
  HierarchySpec spec;
  spec.fanout.assign(depth, k);
  spec.tier_cost.resize(depth);
  for (std::size_t t = 0; t < depth; ++t) {
    // 2^(t+1-depth): leaf links cost 1, each tier toward the root halves.
    // std::ldexp is exact for power-of-two scaling.
    spec.tier_cost[t] = std::ldexp(
        1.0, static_cast<int>(t) + 1 - static_cast<int>(depth));
  }
  spec.validate();
  return TieredNetwork{make_tier_topology(spec), std::move(spec)};
}

TieredNetwork make_geo_tiers(std::size_t racks, std::size_t dcs,
                             std::size_t regions, GeoTierCosts costs) {
  FAP_EXPECTS(racks >= 1 && dcs >= 1 && regions >= 1,
              "geo hierarchy needs at least one rack, dc and region");
  HierarchySpec spec;
  spec.fanout = {regions, dcs, racks};
  spec.tier_cost = {costs.region, costs.dc, costs.rack};
  spec.validate();
  return TieredNetwork{make_tier_topology(spec), std::move(spec)};
}

}  // namespace fap::net
