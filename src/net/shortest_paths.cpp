#include "net/shortest_paths.hpp"

#include <algorithm>
#include <queue>

#include "util/contracts.hpp"

namespace fap::net {

CostMatrix::CostMatrix(std::size_t node_count)
    : n_(node_count), data_(node_count * node_count, 0.0) {
  FAP_EXPECTS(node_count >= 1, "cost matrix needs at least one node");
}

double CostMatrix::cost(NodeId i, NodeId j) const {
  FAP_EXPECTS(i < n_ && j < n_, "node id out of range");
  return data_[i * n_ + j];
}

void CostMatrix::set_cost(NodeId i, NodeId j, double cost) {
  FAP_EXPECTS(i < n_ && j < n_, "node id out of range");
  FAP_EXPECTS(cost >= 0.0, "cost must be non-negative");
  data_[i * n_ + j] = cost;
}

double CostMatrix::max_cost() const noexcept {
  double mx = 0.0;
  for (const double c : data_) {
    if (c != kInfiniteCost) {
      mx = std::max(mx, c);
    }
  }
  return mx;
}

namespace {

struct QueueEntry {
  double dist;
  NodeId node;
  bool operator>(const QueueEntry& other) const noexcept {
    return dist > other.dist;
  }
};

// Dijkstra that also records, for each settled node, the first hop taken
// from the source (or the node itself for the source).
void dijkstra_impl(const Topology& topology, NodeId source,
                   std::vector<double>& dist, std::vector<NodeId>* first_hop) {
  const std::size_t n = topology.node_count();
  FAP_EXPECTS(source < n, "source out of range");
  dist.assign(n, kInfiniteCost);
  if (first_hop != nullptr) {
    first_hop->assign(n, source);
  }
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      frontier;
  dist[source] = 0.0;
  frontier.push(QueueEntry{0.0, source});
  while (!frontier.empty()) {
    const QueueEntry top = frontier.top();
    frontier.pop();
    if (top.dist > dist[top.node]) {
      continue;  // stale entry
    }
    for (const Topology::Neighbor& nb : topology.neighbors(top.node)) {
      const double candidate = top.dist + nb.cost;
      if (candidate < dist[nb.node]) {
        dist[nb.node] = candidate;
        if (first_hop != nullptr) {
          (*first_hop)[nb.node] =
              (top.node == source) ? nb.node : (*first_hop)[top.node];
        }
        frontier.push(QueueEntry{candidate, nb.node});
      }
    }
  }
}

}  // namespace

std::vector<double> dijkstra(const Topology& topology, NodeId source) {
  std::vector<double> dist;
  dijkstra_impl(topology, source, dist, nullptr);
  return dist;
}

std::vector<NodeId> dijkstra_next_hops(const Topology& topology,
                                       NodeId source) {
  std::vector<double> dist;
  std::vector<NodeId> hops;
  dijkstra_impl(topology, source, dist, &hops);
  return hops;
}

std::vector<std::vector<std::size_t>> route_hop_counts(
    const Topology& topology) {
  FAP_EXPECTS(topology.connected(), "topology must be connected");
  const std::size_t n = topology.node_count();
  std::vector<std::vector<std::size_t>> hops(
      n, std::vector<std::size_t>(n, 0));
  for (NodeId source = 0; source < n; ++source) {
    // Dijkstra on (cost, hops) lexicographically: cheapest route first,
    // fewest hops among ties.
    std::vector<double> dist(n, kInfiniteCost);
    std::vector<std::size_t> hop(n, 0);
    struct Entry {
      double dist;
      std::size_t hops;
      NodeId node;
      bool operator>(const Entry& other) const noexcept {
        if (dist != other.dist) {
          return dist > other.dist;
        }
        return hops > other.hops;
      }
    };
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        frontier;
    dist[source] = 0.0;
    frontier.push(Entry{0.0, 0, source});
    while (!frontier.empty()) {
      const Entry top = frontier.top();
      frontier.pop();
      if (top.dist > dist[top.node] ||
          (top.dist == dist[top.node] && top.hops > hop[top.node])) {
        continue;
      }
      for (const Topology::Neighbor& nb : topology.neighbors(top.node)) {
        const double candidate = top.dist + nb.cost;
        const std::size_t candidate_hops = top.hops + 1;
        if (candidate < dist[nb.node] ||
            (candidate == dist[nb.node] && candidate_hops < hop[nb.node])) {
          dist[nb.node] = candidate;
          hop[nb.node] = candidate_hops;
          frontier.push(Entry{candidate, candidate_hops, nb.node});
        }
      }
    }
    hops[source] = hop;
  }
  return hops;
}

CostMatrix all_pairs_shortest_paths(const Topology& topology) {
  FAP_EXPECTS(topology.connected(),
              "topology must be connected for file access to be possible");
  const std::size_t n = topology.node_count();
  CostMatrix matrix(n);
  for (NodeId source = 0; source < n; ++source) {
    const std::vector<double> dist = dijkstra(topology, source);
    for (NodeId target = 0; target < n; ++target) {
      matrix.set_cost(source, target, dist[target]);
    }
  }
  return matrix;
}

}  // namespace fap::net
