#include "net/shortest_paths.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>

#include "runtime/parallel_for.hpp"
#include "runtime/thread_pool.hpp"
#include "util/contracts.hpp"

namespace fap::net {

CostMatrix::CostMatrix(std::size_t node_count)
    : n_(node_count), data_(node_count * node_count, 0.0) {}

double CostMatrix::cost(NodeId i, NodeId j) const {
  FAP_EXPECTS(i < n_ && j < n_, "node id out of range");
  return data_[i * n_ + j];
}

void CostMatrix::set_cost(NodeId i, NodeId j, double cost) {
  FAP_EXPECTS(i < n_ && j < n_, "node id out of range");
  FAP_EXPECTS(cost >= 0.0, "cost must be non-negative");
  data_[i * n_ + j] = cost;
}

double CostMatrix::max_cost() const noexcept {
  double mx = 0.0;
  for (const double c : data_) {
    if (c != kInfiniteCost) {
      mx = std::max(mx, c);
    }
  }
  return mx;
}

namespace {

struct QueueEntry {
  double dist;
  NodeId node;
  bool operator>(const QueueEntry& other) const noexcept {
    return dist > other.dist;
  }
};

// Dijkstra that also records, for each settled node, the first hop taken
// from the source (or the node itself for the source).
void dijkstra_impl(const Topology& topology, NodeId source,
                   std::vector<double>& dist, std::vector<NodeId>* first_hop) {
  const std::size_t n = topology.node_count();
  FAP_EXPECTS(source < n, "source out of range");
  dist.assign(n, kInfiniteCost);
  if (first_hop != nullptr) {
    first_hop->assign(n, source);
  }
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      frontier;
  dist[source] = 0.0;
  frontier.push(QueueEntry{0.0, source});
  while (!frontier.empty()) {
    const QueueEntry top = frontier.top();
    frontier.pop();
    if (top.dist > dist[top.node]) {
      continue;  // stale entry
    }
    for (const Topology::Neighbor& nb : topology.neighbors(top.node)) {
      const double candidate = top.dist + nb.cost;
      if (candidate < dist[nb.node]) {
        dist[nb.node] = candidate;
        if (first_hop != nullptr) {
          (*first_hop)[nb.node] =
              (top.node == source) ? nb.node : (*first_hop)[top.node];
        }
        frontier.push(QueueEntry{candidate, nb.node});
      }
    }
  }
}

// Hand-rolled 4-ary min-heap primitives. The std::push_heap/std::pop_heap
// pair costs ~90ns per push+pop on the Dijkstra frontier (generic
// iterators, predicate indirection, binary fan-out); a flat 4-ary sift is
// ~3x cheaper — shallower tree, sequential child reads, hole-copy instead
// of swaps. Settle order among equal-priority entries differs from the
// std heap's, which is harmless: final Dijkstra labels are the unique
// fixed point min over predecessors, independent of settle order (the
// same argument that makes the pool-parallel overloads byte-identical).
// `before(a, b)` returns true when `a` must leave the heap before `b`.
template <typename Entry, typename Before>
inline void dary_push(std::vector<Entry>& heap, Entry entry,
                      const Before& before) {
  std::size_t hole = heap.size();
  heap.push_back(entry);
  while (hole > 0) {
    const std::size_t parent = (hole - 1) >> 2;
    if (!before(entry, heap[parent])) {
      break;
    }
    heap[hole] = heap[parent];
    hole = parent;
  }
  heap[hole] = entry;
}

template <typename Entry, typename Before>
inline Entry dary_pop(std::vector<Entry>& heap, const Before& before) {
  const Entry top = heap.front();
  const Entry last = heap.back();
  heap.pop_back();
  const std::size_t n = heap.size();
  if (n > 0) {
    std::size_t hole = 0;
    for (;;) {
      const std::size_t first_child = (hole << 2) + 1;
      if (first_child >= n) {
        break;
      }
      const std::size_t end = std::min(first_child + 4, n);
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < end; ++c) {
        if (before(heap[c], heap[best])) {
          best = c;
        }
      }
      if (!before(heap[best], last)) {
        break;
      }
      heap[hole] = heap[best];
      hole = best;
    }
    heap[hole] = last;
  }
  return top;
}

// Flattened adjacency (CSR layout). Topology stores one heap-allocated
// neighbor vector per node; walking that from n Dijkstra runs is pointer
// chasing on the hottest loop of the whole pipeline. Building the edge
// arrays once per all-pairs call makes every relaxation a contiguous read.
struct CsrAdjacency {
  std::vector<std::size_t> offsets;  // size n+1
  std::vector<NodeId> targets;
  std::vector<double> costs;

  explicit CsrAdjacency(const Topology& topology) {
    const std::size_t n = topology.node_count();
    offsets.assign(n + 1, 0);
    std::size_t edges = 0;
    for (NodeId u = 0; u < n; ++u) {
      edges += topology.neighbors(u).size();
      offsets[u + 1] = edges;
    }
    targets.reserve(edges);
    costs.reserve(edges);
    for (NodeId u = 0; u < n; ++u) {
      for (const Topology::Neighbor& nb : topology.neighbors(u)) {
        targets.push_back(nb.node);
        costs.push_back(nb.cost);
      }
    }
  }
};

// Single-source Dijkstra over the CSR adjacency writing distances into a
// caller-owned row. `heap_dist`/`heap_node`/`pos` are caller-provided
// scratch so the per-source loop of an all-pairs run performs no
// steady-state allocations. The heap is an indexed 4-ary min-heap with
// decrease-key: lazy deletion pushes one entry per successful relaxation
// (~1.7x the node count on the geometric graphs the experiments use) and
// pays a sift-down for every stale pop, while tracking each node's heap
// slot in `pos` keeps the heap no larger than the frontier and turns a
// re-relaxation into a sift-up from the existing slot — measured ~1.5x
// faster end to end. The heap is stored as parallel priority/node arrays
// rather than an array of {dist, node} pairs so the 4-child min scan in
// the sift-down reads four contiguous doubles (one cache line) instead
// of striding over 16-byte records — worth another ~1.4x. `pos[v]` is
// the heap slot of v, or -1 if never enqueued; a settled node's slot is
// stale but never consulted, because its final distance rejects every
// later candidate. Relaxations are the same as dijkstra_impl's (and
// final distances are minima over path sums, independent of settle
// order), so the output is byte-identical.
void dijkstra_csr(const std::size_t* offsets, const NodeId* targets,
                  const double* costs, std::size_t n, NodeId source,
                  double* dist, std::vector<double>& heap_dist,
                  std::vector<NodeId>& heap_node,
                  std::vector<std::int32_t>& pos) {
  std::fill_n(dist, n, kInfiniteCost);
  pos.assign(n, -1);
  heap_dist.clear();
  heap_node.clear();
  dist[source] = 0.0;
  heap_dist.push_back(0.0);
  heap_node.push_back(source);
  pos[source] = 0;
  const auto sift_up = [&](std::size_t hole, double d, NodeId v) {
    while (hole > 0) {
      const std::size_t parent = (hole - 1) >> 2;
      if (heap_dist[parent] <= d) {
        break;
      }
      heap_dist[hole] = heap_dist[parent];
      heap_node[hole] = heap_node[parent];
      pos[heap_node[hole]] = static_cast<std::int32_t>(hole);
      hole = parent;
    }
    heap_dist[hole] = d;
    heap_node[hole] = v;
    pos[v] = static_cast<std::int32_t>(hole);
  };
  while (!heap_dist.empty()) {
    const double top_dist = heap_dist.front();
    const NodeId top_node = heap_node.front();
    const double last_dist = heap_dist.back();
    const NodeId last_node = heap_node.back();
    heap_dist.pop_back();
    heap_node.pop_back();
    const std::size_t size = heap_dist.size();
    if (size > 0) {
      std::size_t hole = 0;
      for (;;) {
        const std::size_t first_child = (hole << 2) + 1;
        if (first_child >= size) {
          break;
        }
        const std::size_t end = std::min(first_child + 4, size);
        std::size_t best = first_child;
        double best_dist = heap_dist[first_child];
        for (std::size_t c = first_child + 1; c < end; ++c) {
          if (heap_dist[c] < best_dist) {
            best_dist = heap_dist[c];
            best = c;
          }
        }
        if (best_dist >= last_dist) {
          break;
        }
        heap_dist[hole] = best_dist;
        heap_node[hole] = heap_node[best];
        pos[heap_node[hole]] = static_cast<std::int32_t>(hole);
        hole = best;
      }
      heap_dist[hole] = last_dist;
      heap_node[hole] = last_node;
      pos[last_node] = static_cast<std::int32_t>(hole);
    }
    const std::size_t end = offsets[top_node + 1];
    for (std::size_t e = offsets[top_node]; e < end; ++e) {
      const double candidate = top_dist + costs[e];
      const NodeId v = targets[e];
      if (candidate < dist[v]) {
        dist[v] = candidate;
        const std::int32_t slot = pos[v];
        if (slot >= 0) {
          sift_up(static_cast<std::size_t>(slot), candidate, v);
        } else {
          heap_dist.push_back(candidate);
          heap_node.push_back(v);
          sift_up(heap_dist.size() - 1, candidate, v);
        }
      }
    }
  }
}

struct HopEntry {
  double dist;
  std::size_t hops;
  NodeId node;
  bool operator>(const HopEntry& other) const noexcept {
    if (dist != other.dist) {
      return dist > other.dist;
    }
    return hops > other.hops;
  }
};

// Dijkstra on (cost, hops) lexicographically: cheapest route first, fewest
// hops among ties. Writes the per-destination hop counts of `source` into
// `hop`; `dist` and `heap` are caller-provided scratch.
void hop_counts_csr(const CsrAdjacency& adj, std::size_t n, NodeId source,
                    std::vector<double>& dist, std::vector<std::size_t>& hop,
                    std::vector<HopEntry>& heap) {
  const auto before = [](const HopEntry& a, const HopEntry& b) {
    if (a.dist != b.dist) {
      return a.dist < b.dist;
    }
    return a.hops < b.hops;
  };
  dist.assign(n, kInfiniteCost);
  hop.assign(n, 0);
  heap.clear();
  dist[source] = 0.0;
  heap.push_back(HopEntry{0.0, 0, source});
  while (!heap.empty()) {
    const HopEntry top = dary_pop(heap, before);
    if (top.dist > dist[top.node] ||
        (top.dist == dist[top.node] && top.hops > hop[top.node])) {
      continue;
    }
    const std::size_t end = adj.offsets[top.node + 1];
    for (std::size_t e = adj.offsets[top.node]; e < end; ++e) {
      const double candidate = top.dist + adj.costs[e];
      const std::size_t candidate_hops = top.hops + 1;
      const NodeId v = adj.targets[e];
      if (candidate < dist[v] ||
          (candidate == dist[v] && candidate_hops < hop[v])) {
        dist[v] = candidate;
        hop[v] = candidate_hops;
        dary_push(heap, HopEntry{candidate, candidate_hops, v}, before);
      }
    }
  }
}

}  // namespace

std::vector<double> dijkstra(const Topology& topology, NodeId source) {
  std::vector<double> dist;
  dijkstra_impl(topology, source, dist, nullptr);
  return dist;
}

std::vector<NodeId> dijkstra_next_hops(const Topology& topology,
                                       NodeId source) {
  std::vector<double> dist;
  std::vector<NodeId> hops;
  dijkstra_impl(topology, source, dist, &hops);
  return hops;
}

std::vector<std::vector<std::size_t>> route_hop_counts(
    const Topology& topology) {
  FAP_EXPECTS(topology.connected(), "topology must be connected");
  const std::size_t n = topology.node_count();
  const CsrAdjacency adj(topology);
  std::vector<std::vector<std::size_t>> hops(n);
  std::vector<double> dist;
  std::vector<HopEntry> heap;
  for (NodeId source = 0; source < n; ++source) {
    hop_counts_csr(adj, n, source, dist, hops[source], heap);
  }
  return hops;
}

std::vector<std::vector<std::size_t>> route_hop_counts(
    const Topology& topology, runtime::ThreadPool& pool) {
  FAP_EXPECTS(topology.connected(), "topology must be connected");
  const std::size_t n = topology.node_count();
  const CsrAdjacency adj(topology);
  std::vector<std::vector<std::size_t>> hops(n);
  runtime::parallel_for(pool, n, [&](std::size_t source) {
    // Per-worker scratch: parallel_for runs contiguous index chunks on one
    // worker each, so the buffers warm up once per worker, not per source.
    thread_local std::vector<double> dist;
    thread_local std::vector<HopEntry> heap;
    hop_counts_csr(adj, n, source, dist, hops[source], heap);
  });
  return hops;
}

CostMatrix all_pairs_shortest_paths(const Topology& topology) {
  FAP_EXPECTS(topology.connected(),
              "topology must be connected for file access to be possible");
  const std::size_t n = topology.node_count();
  const CsrAdjacency adj(topology);
  CostMatrix matrix(n);
  std::vector<double> heap_dist;
  std::vector<NodeId> heap_node;
  std::vector<std::int32_t> pos;
  for (NodeId source = 0; source < n; ++source) {
    dijkstra_csr(adj.offsets.data(), adj.targets.data(), adj.costs.data(), n,
                 source, matrix.mutable_row(source), heap_dist, heap_node,
                 pos);
  }
  return matrix;
}

CostMatrix all_pairs_shortest_paths(const Topology& topology,
                                    runtime::ThreadPool& pool) {
  FAP_EXPECTS(topology.connected(),
              "topology must be connected for file access to be possible");
  const std::size_t n = topology.node_count();
  const CsrAdjacency adj(topology);
  CostMatrix matrix(n);
  runtime::parallel_for(pool, n, [&](std::size_t source) {
    thread_local std::vector<double> heap_dist;
    thread_local std::vector<NodeId> heap_node;
    thread_local std::vector<std::int32_t> pos;
    dijkstra_csr(adj.offsets.data(), adj.targets.data(), adj.costs.data(), n,
                 source, matrix.mutable_row(source), heap_dist, heap_node,
                 pos);
  });
  return matrix;
}

SingleSourceDijkstra::SingleSourceDijkstra(const Topology& topology) {
  FAP_EXPECTS(topology.connected(),
              "topology must be connected for file access to be possible");
  n_ = topology.node_count();
  CsrAdjacency adj(topology);
  offsets_ = std::move(adj.offsets);
  targets_ = std::move(adj.targets);
  costs_ = std::move(adj.costs);
}

void SingleSourceDijkstra::solve_into(NodeId source, double* dist,
                                      Scratch& scratch) const {
  FAP_EXPECTS(source < n_, "source out of range");
  dijkstra_csr(offsets_.data(), targets_.data(), costs_.data(), n_, source,
               dist, scratch.heap_dist, scratch.heap_node, scratch.pos);
}

}  // namespace fap::net
