#include "net/cost_cache.hpp"

#include <bit>
#include <utility>

#include "runtime/metrics.hpp"

namespace fap::net {

namespace {

// FNV-1a over the topology content. Costs are hashed by bit pattern
// (std::bit_cast), so any two costs that differ in any bit — including
// -0.0 vs +0.0 — hash (and compare, see operator==) as different, which
// errs on the side of a spurious miss, never a wrong hit.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_mix(std::uint64_t& h, std::uint64_t value) {
  h ^= value;
  h *= kFnvPrime;
}

}  // namespace

bool CostMatrixCache::Key::operator==(const Key& other) const {
  if (node_count != other.node_count || edges.size() != other.edges.size()) {
    return false;
  }
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (edges[i].u != other.edges[i].u || edges[i].v != other.edges[i].v ||
        std::bit_cast<std::uint64_t>(edges[i].cost) !=
            std::bit_cast<std::uint64_t>(other.edges[i].cost)) {
      return false;
    }
  }
  return true;
}

std::size_t CostMatrixCache::KeyHash::operator()(const Key& key) const noexcept {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, key.node_count);
  fnv_mix(h, key.edges.size());
  for (const Edge& edge : key.edges) {
    fnv_mix(h, edge.u);
    fnv_mix(h, edge.v);
    fnv_mix(h, std::bit_cast<std::uint64_t>(edge.cost));
  }
  return static_cast<std::size_t>(h);
}

CostMatrixCache::Key CostMatrixCache::make_key(const Topology& topology) {
  return Key{topology.node_count(), topology.edges()};
}

std::shared_ptr<const CostMatrix> CostMatrixCache::get(
    const Topology& topology) {
  Key key = make_key(topology);

  std::shared_ptr<Slot> slot;
  bool owner = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = slots_.find(key);
    if (it == slots_.end()) {
      slot = std::make_shared<Slot>();
      slots_.emplace(std::move(key), slot);
      owner = true;
    } else {
      slot = it->second;
      // Wait out an in-flight computation. A failed slot has already been
      // erased from the map under the lock, but a waiter holding the old
      // shared_ptr can still observe it: retry from scratch.
      while (!slot->ready && !slot->failed) {
        cv_.wait(lock);
      }
      if (slot->failed) {
        lock.unlock();
        return get(topology);
      }
    }
  }

  if (!owner) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    runtime::add_task_metric("cost_cache_hit", 1.0);
    return slot->value;
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  runtime::add_task_metric("cost_cache_miss", 1.0);
  try {
    auto matrix =
        std::make_shared<const CostMatrix>(all_pairs_shortest_paths(topology));
    {
      std::lock_guard<std::mutex> lock(mutex_);
      slot->value = std::move(matrix);
      slot->ready = true;
    }
    cv_.notify_all();
    return slot->value;
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      slot->failed = true;
      // Erase only OUR slot — a retrying waiter may already have
      // re-inserted a fresh one under the same key.
      auto it = slots_.find(make_key(topology));
      if (it != slots_.end() && it->second == slot) {
        slots_.erase(it);
      }
    }
    cv_.notify_all();
    throw;
  }
}

std::size_t CostMatrixCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

void CostMatrixCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  slots_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace fap::net
