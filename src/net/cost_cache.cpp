#include "net/cost_cache.hpp"

#include <bit>
#include <utility>

#include "runtime/metrics.hpp"

namespace fap::net {

std::size_t CostMatrixCache::KeyHash::operator()(const Key& key) const noexcept {
  // The fingerprint lanes are already well-mixed; fold them with the
  // counts so unordered_map bucketing sees all the entropy.
  std::uint64_t h = key.fingerprint.lo;
  h ^= key.fingerprint.hi + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h ^= key.node_count + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h ^= key.edge_count + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return static_cast<std::size_t>(h);
}

CostMatrixCache::Key CostMatrixCache::make_key(const Topology& topology) {
  return Key{topology.fingerprint(),
             static_cast<std::uint64_t>(topology.node_count()),
             static_cast<std::uint64_t>(topology.edge_count())};
}

bool CostMatrixCache::same_content(const std::vector<Edge>& edges,
                                   const Topology& topology) {
  const std::vector<Edge>& other = topology.edges();
  if (edges.size() != other.size()) {
    return false;
  }
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (edges[i].u != other[i].u || edges[i].v != other[i].v ||
        std::bit_cast<std::uint64_t>(edges[i].cost) !=
            std::bit_cast<std::uint64_t>(other[i].cost)) {
      return false;
    }
  }
  return true;
}

std::shared_ptr<const CostMatrix> CostMatrixCache::get(
    const Topology& topology) {
  const Key key = make_key(topology);

  std::shared_ptr<Slot> slot;
  bool owner = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = slots_.find(key);
    if (it == slots_.end()) {
      slot = std::make_shared<Slot>();
      slot->edges = topology.edges();  // the one copy, paid at insert
      slots_.emplace(key, slot);
      owner = true;
    } else {
      slot = it->second;
      // Wait out an in-flight computation. A failed slot has already been
      // erased from the map under the lock, but a waiter holding the old
      // shared_ptr can still observe it: retry from scratch.
      while (!slot->ready && !slot->failed) {
        cv_.wait(lock);
      }
      if (slot->failed) {
        lock.unlock();
        return get(topology);
      }
    }
  }

  if (!owner) {
    if (!same_content(slot->edges, topology)) {
      // True 128-bit fingerprint collision between different topologies.
      // Never alias: serve this caller an uncached exact computation.
      return std::make_shared<const CostMatrix>(
          all_pairs_shortest_paths(topology));
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    runtime::add_task_metric("cost_cache_hit", 1.0);
    return slot->value;
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  runtime::add_task_metric("cost_cache_miss", 1.0);
  try {
    auto matrix =
        std::make_shared<const CostMatrix>(all_pairs_shortest_paths(topology));
    {
      std::lock_guard<std::mutex> lock(mutex_);
      slot->value = std::move(matrix);
      slot->ready = true;
    }
    cv_.notify_all();
    return slot->value;
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      slot->failed = true;
      // Erase only OUR slot — a retrying waiter may already have
      // re-inserted a fresh one under the same key.
      auto it = slots_.find(key);
      if (it != slots_.end() && it->second == slot) {
        slots_.erase(it);
      }
    }
    cv_.notify_all();
    throw;
  }
}

std::size_t CostMatrixCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

void CostMatrixCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  slots_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace fap::net
