// Row-based access to the communication-cost structure c_ij.
//
// Every allocator path used to funnel through a dense n×n CostMatrix —
// O(n·m log n) to build and O(n²) to hold, fine at the paper's N = 4..20
// and fatal at the ROADMAP's N = 1k..10k. The consumers, however, only
// ever read c_ij one SOURCE ROW at a time (access-cost assembly streams
// rows j = 0..n-1 once; the catalog engine reads row(h_o) per object).
// CostProvider abstracts exactly that access pattern behind three
// implementations:
//
//   DenseCostProvider         wraps an existing CostMatrix; row() is a
//                             zero-copy pointer into it. Small-N default.
//   RowCostProvider           runs the CSR 4-ary-heap Dijkstra per
//                             requested source row (net::
//                             SingleSourceDijkstra — the SAME kernel the
//                             dense matrix is built with, so rows are
//                             byte-identical to dense rows) behind a
//                             bounded LRU row cache with single-flight
//                             per-row computation. Exact on any
//                             topology; memory O(n + m + capacity·n),
//                             never n×n.
//   HierarchicalCostProvider  computes c_ij in O(depth) per pair from a
//                             HierarchySpec — on a tier tree the route is
//                             unique (up to the LCA, then down) and the
//                             costs are accumulated in path order, the
//                             exact left-to-right fold Dijkstra performs,
//                             so values are bit-identical to running
//                             Dijkstra on the explicit tree. O(n) memory,
//                             no graph traversal at all.
//
// Determinism contract: for the same topology, row(i) returns the same
// bytes from every provider (pinned by net_cost_provider_test), so
// swapping providers cannot perturb any downstream result. Row HANDLES
// (CostRow) share ownership of their storage: a handle stays valid after
// the row is evicted from a provider's cache.
//
// Thread safety: all providers are safe for concurrent row()/cost() calls.
// The cached providers use the repo's single-flight slot pattern (see
// CostMatrixCache): concurrent misses on one row compute it exactly once.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/hierarchy.hpp"
#include "net/shortest_paths.hpp"
#include "net/topology.hpp"

namespace fap::net {

/// Shared-ownership view of one source row of c_ij: data()[j] = c(i, j).
/// Copyable and cheap; keeps the underlying storage alive (a dense
/// matrix or a cached row) even if the provider evicts or is destroyed.
class CostRow {
 public:
  CostRow() = default;
  CostRow(const double* data, std::size_t size,
          std::shared_ptr<const void> keepalive)
      : data_(data), size_(size), keepalive_(std::move(keepalive)) {}

  const double* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  double operator[](std::size_t j) const noexcept { return data_[j]; }
  explicit operator bool() const noexcept { return data_ != nullptr; }

 private:
  const double* data_ = nullptr;
  std::size_t size_ = 0;
  std::shared_ptr<const void> keepalive_;
};

/// Abstract source of c_ij rows. Implementations must be thread-safe and
/// deterministic: row(i) always returns the same bytes for the same
/// underlying network.
class CostProvider {
 public:
  virtual ~CostProvider() = default;

  virtual std::size_t node_count() const noexcept = 0;

  /// Source row i: row(i)[j] = c(i, j). The handle keeps the storage
  /// alive independently of the provider's cache.
  virtual CostRow row(NodeId i) const = 0;

  /// One entry. Providers with O(1) pair access override this; the
  /// default reads it out of row(i).
  virtual double cost(NodeId i, NodeId j) const { return row(i)[j]; }
};

/// Zero-copy adapter over a dense CostMatrix.
class DenseCostProvider final : public CostProvider {
 public:
  /// Shares ownership of the matrix.
  explicit DenseCostProvider(std::shared_ptr<const CostMatrix> matrix);
  /// Non-owning view; `matrix` must outlive the provider (used when the
  /// matrix already lives in a longer-lived spec).
  explicit DenseCostProvider(const CostMatrix& matrix);

  std::size_t node_count() const noexcept override;
  CostRow row(NodeId i) const override;
  double cost(NodeId i, NodeId j) const override;

 private:
  std::shared_ptr<const CostMatrix> owned_;   // null for the view ctor
  const CostMatrix* matrix_ = nullptr;
};

namespace detail {

/// Bounded LRU cache of materialized rows with single-flight fills —
/// the shared machinery of RowCostProvider and HierarchicalCostProvider.
/// `fill(i, out)` is invoked outside the lock, exactly once per cache
/// residency of row i (concurrent requests for an in-flight row wait and
/// share the result). Evicted rows stay alive while any CostRow handle
/// references them.
class RowCache {
 public:
  /// `capacity` >= 1 bounds the number of RESIDENT rows; in-flight
  /// computations may transiently exceed it.
  RowCache(std::size_t node_count, std::size_t capacity,
           std::function<void(NodeId, double*)> fill);

  CostRow get(NodeId i) const;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };
  Stats stats() const noexcept;

  std::size_t capacity() const noexcept { return capacity_; }
  /// Resident (ready) rows right now.
  std::size_t size() const;

 private:
  struct Slot {
    std::shared_ptr<std::vector<double>> data;
    bool ready = false;
    bool failed = false;
    std::list<NodeId>::iterator lru_it;  // valid only once ready
  };

  std::size_t n_;
  std::size_t capacity_;
  std::function<void(NodeId, double*)> fill_;
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  mutable std::unordered_map<NodeId, std::shared_ptr<Slot>> slots_;
  mutable std::list<NodeId> lru_;  // front = most recently used
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace detail

/// On-demand single-source provider: one CSR Dijkstra per requested row,
/// LRU-cached. Exact on any connected topology. Memory O(n + m +
/// capacity·n); build cost O(n + m); each cache miss costs one
/// O(m log n) Dijkstra.
class RowCostProvider final : public CostProvider {
 public:
  static constexpr std::size_t kDefaultCapacity = 64;

  /// Requires a connected topology (same contract as
  /// all_pairs_shortest_paths). The topology is flattened into the
  /// provider; it need not outlive it.
  explicit RowCostProvider(const Topology& topology,
                           std::size_t row_cache_capacity = kDefaultCapacity);

  std::size_t node_count() const noexcept override;
  CostRow row(NodeId i) const override;

  detail::RowCache::Stats cache_stats() const noexcept {
    return cache_.stats();
  }

 private:
  SingleSourceDijkstra engine_;
  detail::RowCache cache_;
};

/// Implicit provider over a HierarchySpec: cost(i, j) is computed in
/// O(depth) from the tier decomposition (no Dijkstra, no edges), with the
/// per-link costs accumulated in path order so the result is bit-identical
/// to Dijkstra on the explicit tree (make_tier_topology). row() serves
/// materialized rows (O(n·depth) to fill) through the same LRU +
/// single-flight cache as RowCostProvider. Memory O(n) + O(capacity·n).
class HierarchicalCostProvider final : public CostProvider {
 public:
  static constexpr std::size_t kDefaultCapacity = 64;

  explicit HierarchicalCostProvider(
      HierarchySpec spec, std::size_t row_cache_capacity = kDefaultCapacity);

  std::size_t node_count() const noexcept override;
  CostRow row(NodeId i) const override;
  double cost(NodeId i, NodeId j) const override;

  /// Writes row i into out[0 .. node_count()) without touching the cache.
  void fill_row(NodeId i, double* out) const;

  const HierarchySpec& spec() const noexcept { return spec_; }
  detail::RowCache::Stats cache_stats() const noexcept {
    return cache_.stats();
  }

 private:
  HierarchySpec spec_;
  std::vector<std::size_t> level_offsets_;
  std::size_t n_;
  detail::RowCache cache_;
};

}  // namespace fap::net
