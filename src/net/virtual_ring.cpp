#include "net/virtual_ring.hpp"

#include <algorithm>

#include "net/shortest_paths.hpp"
#include "util/contracts.hpp"

namespace fap::net {

VirtualRing::VirtualRing(std::vector<double> forward_costs)
    : forward_costs_(std::move(forward_costs)) {
  FAP_EXPECTS(forward_costs_.size() >= 3, "a ring needs at least three nodes");
  prefix_.assign(forward_costs_.size() + 1, 0.0);
  for (std::size_t p = 0; p < forward_costs_.size(); ++p) {
    FAP_EXPECTS(forward_costs_[p] > 0.0, "hop costs must be positive");
    prefix_[p + 1] = prefix_[p] + forward_costs_[p];
  }
  total_ = prefix_.back();
}

VirtualRing VirtualRing::from_order(const Topology& topology,
                                    const std::vector<NodeId>& order) {
  FAP_EXPECTS(order.size() == topology.node_count(),
              "order must list every node exactly once");
  std::vector<bool> seen(topology.node_count(), false);
  for (const NodeId node : order) {
    FAP_EXPECTS(node < topology.node_count(), "node id out of range");
    FAP_EXPECTS(!seen[node], "order must be a permutation");
    seen[node] = true;
  }
  const CostMatrix matrix = all_pairs_shortest_paths(topology);
  std::vector<double> costs(order.size(), 0.0);
  for (std::size_t p = 0; p < order.size(); ++p) {
    costs[p] = matrix.cost(order[p], order[(p + 1) % order.size()]);
  }
  return VirtualRing(std::move(costs));
}

double VirtualRing::forward_cost(std::size_t position) const {
  FAP_EXPECTS(position < size(), "position out of range");
  return forward_costs_[position];
}

double VirtualRing::forward_distance(std::size_t from, std::size_t to) const {
  FAP_EXPECTS(from < size() && to < size(), "position out of range");
  if (from <= to) {
    return prefix_[to] - prefix_[from];
  }
  return total_ - prefix_[from] + prefix_[to];
}

std::size_t VirtualRing::forward_hops(std::size_t from, std::size_t to) const {
  FAP_EXPECTS(from < size() && to < size(), "position out of range");
  return (to + size() - from) % size();
}

std::size_t VirtualRing::advance(std::size_t from, std::size_t steps) const {
  FAP_EXPECTS(from < size(), "position out of range");
  return (from + steps) % size();
}

}  // namespace fap::net
