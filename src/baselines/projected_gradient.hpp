// Centralized reference solver: projected gradient descent with Armijo
// backtracking over the product of (scaled) simplexes defined by the
// model's constraint groups.
//
// This is the "centralized optimization" the paper contrasts its algorithm
// against in Section 3 — a single agent with global information solving
// the whole problem. It serves two roles here: ground truth for the
// decentralized algorithm's optima in tests, and the comparison point for
// the per-iteration-cost discussion in the benches.
#pragma once

#include <cstddef>
#include <vector>

#include "core/cost_model.hpp"

namespace fap::baselines {

struct ProjectedGradientOptions {
  double initial_step = 1.0;
  double backtrack = 0.5;      ///< step shrink factor in the Armijo loop
  double armijo_c = 1e-4;      ///< sufficient-decrease constant
  double tol = 1e-10;          ///< stop when the iterate moves less than this
  std::size_t max_iterations = 20000;
};

struct ProjectedGradientResult {
  std::vector<double> x;
  double cost = 0.0;
  bool converged = false;
  std::size_t iterations = 0;
};

/// Euclidean projection of v onto the scaled simplex
/// { x >= 0, Σ x_i = total } (Duchi et al.'s sort-based algorithm).
std::vector<double> project_simplex(std::vector<double> v, double total);

/// Euclidean projection onto the capped simplex
/// { 0 <= x_i <= caps_i, Σ x_i = total }, by bisection on the shift τ in
/// x_i = clamp(v_i - τ, 0, caps_i) (Σ is non-increasing in τ). Requires
/// Σ caps >= total. Used when the model declares storage capacities.
std::vector<double> project_capped_simplex(const std::vector<double>& v,
                                           double total,
                                           const std::vector<double>& caps);

/// Minimizes model.cost over the feasible set from `initial` (projected
/// first, so any starting point is accepted).
ProjectedGradientResult projected_gradient_solve(
    const core::CostModel& model, std::vector<double> initial,
    const ProjectedGradientOptions& options = {});

}  // namespace fap::baselines
