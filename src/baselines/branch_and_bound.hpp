// Exact integral multi-file placement by branch and bound — the
// integer-programming lineage the paper situates itself against
// (Section 3: Chu's 0/1 formulation [8], later shown NP-complete [12]).
//
// best_integral_multi (integral.hpp) enumerates all N^M assignments and
// stalls beyond ~10^6 combinations. This solver searches the same space
// as a depth-first tree over files with an admissible lower bound:
//
//   bound(partial) = exact cost of the files already placed
//                  + Σ_{f unplaced} min_i standalone_cost(f at i),
//
// where standalone_cost ignores queue contention from other files. Both
// terms only grow as more files are added to a node's queue (T(a) is
// increasing in a), so the bound never overestimates and pruning is safe
// — the result provably equals the brute-force optimum (pinned by tests),
// while solving instances (say, 8 files × 12 nodes ≈ 4·10^8 assignments)
// that enumeration cannot touch.
#pragma once

#include <cstddef>
#include <vector>

#include "baselines/integral.hpp"
#include "core/multi_file.hpp"

namespace fap::baselines {

struct BranchAndBoundStats {
  std::size_t nodes_explored = 0;  ///< search-tree nodes visited
  std::size_t pruned = 0;          ///< subtrees cut by the bound
};

struct BranchAndBoundResult {
  IntegralResult best;
  BranchAndBoundStats stats;
};

/// Exact optimal assignment of every file wholly to one node. `node_cap`
/// bounds the search effort (tree nodes); the search throws if exceeded
/// (default is generous — pruning typically visits a tiny fraction of the
/// space).
BranchAndBoundResult best_integral_multi_bnb(
    const core::MultiFileModel& model, std::size_t node_cap = 50000000);

}  // namespace fap::baselines
