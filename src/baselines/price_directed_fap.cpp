#include "baselines/price_directed_fap.hpp"

#include "util/contracts.hpp"

namespace fap::baselines {

std::vector<econ::ConcaveUtility> fap_agent_utilities(
    const core::SingleFileModel& model) {
  std::vector<econ::ConcaveUtility> agents;
  agents.reserve(model.dimension());
  const double lambda = model.total_rate();
  const double k = model.problem().k;
  const queueing::DelayModel delay = model.problem().delay;
  for (std::size_t i = 0; i < model.dimension(); ++i) {
    const double ci = model.access_cost(i);
    const double mu = model.problem().mu[i];
    agents.push_back(econ::ConcaveUtility{
        [ci, k, lambda, mu, delay](double x) {
          return -(ci + k * delay.sojourn(lambda * x, mu)) * x;
        },
        [ci, k, lambda, mu, delay](double x) {
          const double a = lambda * x;
          return -(ci + k * (delay.sojourn(a, mu) +
                             a * delay.d_sojourn(a, mu)));
        },
        [k, lambda, mu, delay](double x) {
          const double a = lambda * x;
          return -lambda * k *
                 (2.0 * delay.d_sojourn(a, mu) + a * delay.d2_sojourn(a, mu));
        }});
  }
  return agents;
}

econ::TatonnementResult price_directed_fap(
    const core::SingleFileModel& model,
    const econ::TatonnementOptions& options) {
  econ::TatonnementOptions opts = options;
  opts.demand_cap = 1.0;  // a node never needs more than the whole file
  return econ::tatonnement(fap_agent_utilities(model), /*total=*/1.0, opts);
}

econ::Equilibrium price_directed_fap_equilibrium(
    const core::SingleFileModel& model) {
  // u' is negative here (holding file is costly, the "price" clears at a
  // negative value, i.e. nodes are paid to host); bisection in
  // walrasian_equilibrium assumes it can bracket with non-negative prices,
  // so shift utilities by a constant slope large enough to make marginals
  // positive at x = 0. Shifting u by +s·x shifts the clearing price by +s
  // and leaves the clearing allocation unchanged.
  std::vector<econ::ConcaveUtility> agents = fap_agent_utilities(model);
  double shift = 0.0;
  for (const econ::ConcaveUtility& agent : agents) {
    shift = std::max(shift, -agent.derivative(1.0) + 1.0);
  }
  std::vector<econ::ConcaveUtility> shifted;
  shifted.reserve(agents.size());
  for (econ::ConcaveUtility& agent : agents) {
    auto value = agent.value;
    auto derivative = agent.derivative;
    auto second = agent.second_derivative;
    shifted.push_back(econ::ConcaveUtility{
        [value, shift](double x) { return value(x) + shift * x; },
        [derivative, shift](double x) { return derivative(x) + shift; },
        second});
  }
  econ::Equilibrium eq =
      econ::walrasian_equilibrium(shifted, /*total=*/1.0, /*demand_cap=*/1.0);
  eq.price -= shift;
  return eq;
}

}  // namespace fap::baselines
