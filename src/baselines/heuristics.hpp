// Simple allocation heuristics used as comparison points in tests,
// examples and benches.
#pragma once

#include <cstddef>
#include <vector>

#include "core/cost_model.hpp"
#include "core/single_file.hpp"

namespace fap::baselines {

/// Concentrates the whole file at the node with the cheapest system-wide
/// communication cost C_i — the optimal strategy "if communication is the
/// sole cost" (Section 4).
std::vector<double> min_comm_cost_allocation(
    const core::SingleFileModel& model);

/// Allocates fragments proportionally to the locally generated access rate
/// λ_i — a natural "keep data where it is used" heuristic.
std::vector<double> proportional_to_demand_allocation(
    const core::SingleFileModel& model);

/// Greedy chunked allocation: splits each constraint group's total into
/// `chunks` equal pieces and assigns each piece to the variable with the
/// smallest marginal cost given everything assigned so far. Converges to
/// the continuous optimum as chunks grows; a coarse chunk count mimics a
/// record-granular assignment.
std::vector<double> greedy_chunk_allocation(const core::CostModel& model,
                                            std::size_t chunks);

/// Rounds a fractional allocation to multiples of 1/records per group
/// ("the divisions have to be based on the atomic elements of the file —
/// records", Section 5.1) using largest-remainder rounding, preserving
/// each group total exactly.
std::vector<double> round_to_records(const core::CostModel& model,
                                     const std::vector<double>& x,
                                     std::size_t records);

}  // namespace fap::baselines
