// Casey's classical file allocation model [4] (surveyed in the paper's
// Section 3): whole copies of a single file at a subset S of nodes, with
// queries served by the nearest copy, updates applied to every copy, and
// a storage cost per copy:
//
//   cost(S) = Σ_j q_j · min_{i∈S} c_ji          (queries)
//           + Σ_j u_j · Σ_{i∈S} c_ji            (updates hit all copies)
//           + σ · |S|                            (storage)
//
// Implemented as the classical integral baseline the paper's fragmented
// algorithm is contrasted with: an exact subset search (2^N - 1
// candidates, fine to ~20 nodes) plus an add/drop/swap local-search
// heuristic for larger networks, in the spirit of the heuristic FAP
// literature ([27], [5]). The comparison bench (ablation_casey) shows the
// classic query/update tension: more update traffic or dearer storage
// drives the optimal copy count down.
#pragma once

#include <cstddef>
#include <vector>

#include "net/shortest_paths.hpp"

namespace fap::baselines {

struct CaseyProblem {
  net::CostMatrix comm;             ///< c_ji, least-cost routes
  std::vector<double> query_rate;   ///< q_j per node
  std::vector<double> update_rate;  ///< u_j per node
  double storage_cost = 0.0;        ///< σ per copy
};

struct CaseyResult {
  std::vector<bool> hosts;  ///< hosts[i]: node i holds a copy
  std::size_t copies = 0;
  double cost = 0.0;
};

/// cost(S) for an explicit host set (at least one host required).
double casey_cost(const CaseyProblem& problem,
                  const std::vector<bool>& hosts);

/// Exact optimum by exhaustive subset enumeration; requires
/// node_count <= max_exhaustive_nodes (default 20 ⇒ ~10^6 subsets).
CaseyResult casey_optimal(const CaseyProblem& problem,
                          std::size_t max_exhaustive_nodes = 20);

/// Local search: start from the best single host, then greedily apply the
/// best improving add / drop / swap until none improves. Always returns a
/// feasible (non-empty) host set; typically optimal or near-optimal.
CaseyResult casey_local_search(const CaseyProblem& problem);

}  // namespace fap::baselines
