// Integral (0/1) allocation baselines, in the tradition of Chu [8]: a file
// (or copy) must reside wholly at one node. Figure 4 compares the paper's
// fragmented optimum against the best integral placement and reports a
// ~25% cost reduction; these exhaustive searches provide that comparison
// point (and the ground truth for heuristic tests).
#pragma once

#include <cstddef>
#include <vector>

#include "core/multi_file.hpp"
#include "core/ring_model.hpp"
#include "core/single_file.hpp"

namespace fap::baselines {

struct IntegralResult {
  std::vector<double> x;  ///< allocation in the model's variable layout
  double cost = 0.0;
  /// Chosen host node per file/copy.
  std::vector<std::size_t> hosts;
};

/// Best whole-file placement for the single-file problem: the node i
/// minimizing C_i + k·T(λ, μ_i). Exact by enumeration (N candidates).
IntegralResult best_integral_single(const core::SingleFileModel& model);

/// Best whole-file placement per file for the multi-file problem,
/// accounting for queue sharing between co-located files. Exact by
/// enumerating all N^M assignments; requires N^M <= enumeration_cap.
IntegralResult best_integral_multi(const core::MultiFileModel& model,
                                   std::size_t enumeration_cap = 2000000);

/// Best placement of m whole copies (m = model.problem().copies, which
/// must be integral) at m distinct ring nodes. Exact by enumerating all
/// C(n, m) node subsets.
IntegralResult best_integral_ring(const core::RingModel& model);

}  // namespace fap::baselines
