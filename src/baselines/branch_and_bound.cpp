#include "baselines/branch_and_bound.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/contracts.hpp"

namespace fap::baselines {

namespace {

// Depth-first search state shared across the recursion.
struct Search {
  const core::MultiFileModel& model;
  std::size_t node_cap;
  // Files in search order (descending rate — heavy files first makes the
  // bound bite early).
  std::vector<std::size_t> file_order;
  // standalone[f][i]: cost of file f alone at node i (admissible
  // ingredient: contention can only add to it).
  std::vector<std::vector<double>> standalone;
  // Per-file node order by ascending standalone cost (good incumbents
  // early).
  std::vector<std::vector<std::size_t>> node_order;
  // remaining[d]: Σ over files at depths >= d of their cheapest
  // standalone cost.
  std::vector<double> remaining;

  // Mutable DFS state.
  std::vector<double> arrival;        // a_i of placed files
  std::vector<std::size_t> count;     // files placed at node i
  std::vector<std::size_t> assigned;  // host per file (by original index)
  double partial_cost = 0.0;

  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> best_hosts;
  BranchAndBoundStats stats;

  double delta_cost(std::size_t file, std::size_t node) const {
    const auto& problem = model.problem();
    const double mu = problem.mu[node];
    const double rate = model.file_rate(file);
    const double before =
        count[node] == 0
            ? 0.0
            : static_cast<double>(count[node]) *
                  problem.k * problem.delay.sojourn(arrival[node], mu);
    const double after = static_cast<double>(count[node] + 1) * problem.k *
                         problem.delay.sojourn(arrival[node] + rate, mu);
    return model.access_cost(file, node) + (after - before);
  }

  void place(std::size_t file, std::size_t node, double delta) {
    arrival[node] += model.file_rate(file);
    ++count[node];
    assigned[file] = node;
    partial_cost += delta;
  }

  void unplace(std::size_t file, std::size_t node, double delta) {
    arrival[node] -= model.file_rate(file);
    --count[node];
    partial_cost -= delta;
  }

  void dfs(std::size_t depth) {
    FAP_ENSURES(stats.nodes_explored < node_cap,
                "branch-and-bound exceeded its search budget");
    ++stats.nodes_explored;
    if (depth == file_order.size()) {
      if (partial_cost < best_cost) {
        best_cost = partial_cost;
        best_hosts = assigned;
      }
      return;
    }
    const std::size_t file = file_order[depth];
    for (const std::size_t node : node_order[file]) {
      const double delta = delta_cost(file, node);
      // Admissible bound: exact partial + this move + cheapest standalone
      // completion of everything deeper.
      const double bound = partial_cost + delta + remaining[depth + 1];
      if (bound >= best_cost) {
        ++stats.pruned;
        continue;
      }
      place(file, node, delta);
      dfs(depth + 1);
      unplace(file, node, delta);
    }
  }
};

}  // namespace

BranchAndBoundResult best_integral_multi_bnb(
    const core::MultiFileModel& model, std::size_t node_cap) {
  const std::size_t files = model.file_count();
  const std::size_t nodes = model.node_count();
  FAP_EXPECTS(files >= 1 && nodes >= 1, "need files and nodes");

  Search search{model,
                node_cap,
                {},
                {},
                {},
                {},
                std::vector<double>(nodes, 0.0),
                std::vector<std::size_t>(nodes, 0),
                std::vector<std::size_t>(files, 0),
                0.0,
                std::numeric_limits<double>::infinity(),
                {},
                {}};

  // Standalone costs and per-file node orders.
  search.standalone.assign(files, std::vector<double>(nodes, 0.0));
  search.node_order.assign(files, {});
  const auto& problem = model.problem();
  for (std::size_t f = 0; f < files; ++f) {
    for (std::size_t i = 0; i < nodes; ++i) {
      search.standalone[f][i] =
          model.access_cost(f, i) +
          problem.k * problem.delay.sojourn(model.file_rate(f),
                                            problem.mu[i]);
    }
    search.node_order[f].resize(nodes);
    std::iota(search.node_order[f].begin(), search.node_order[f].end(),
              std::size_t{0});
    std::sort(search.node_order[f].begin(), search.node_order[f].end(),
              [&](std::size_t a, std::size_t b) {
                return search.standalone[f][a] < search.standalone[f][b];
              });
  }

  // File order: heaviest first.
  search.file_order.resize(files);
  std::iota(search.file_order.begin(), search.file_order.end(),
            std::size_t{0});
  std::sort(search.file_order.begin(), search.file_order.end(),
            [&model](std::size_t a, std::size_t b) {
              return model.file_rate(a) > model.file_rate(b);
            });

  // Suffix sums of cheapest standalone costs.
  search.remaining.assign(files + 1, 0.0);
  for (std::size_t d = files; d > 0; --d) {
    const std::size_t f = search.file_order[d - 1];
    const double cheapest = search.standalone[f][search.node_order[f][0]];
    search.remaining[d - 1] = search.remaining[d] + cheapest;
  }

  search.dfs(0);

  BranchAndBoundResult result;
  result.stats = search.stats;
  result.best.hosts = search.best_hosts;
  result.best.cost = search.best_cost;
  result.best.x.assign(model.dimension(), 0.0);
  for (std::size_t f = 0; f < files; ++f) {
    result.best.x[model.index(f, search.best_hosts[f])] = 1.0;
  }
  // Cross-check the incremental bookkeeping against the model.
  FAP_ENSURES(std::fabs(model.cost(result.best.x) - result.best.cost) <
                  1e-6 * (1.0 + result.best.cost),
              "incremental cost accounting diverged from the model");
  result.best.cost = model.cost(result.best.x);
  return result;
}

}  // namespace fap::baselines
