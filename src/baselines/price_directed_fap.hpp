// Adapter running the price-directed mechanism (Section 2's first class of
// decentralized procedures) on the file allocation problem — the
// comparison the paper draws but does not run; we run it (ablation A3).
//
// Each node is a selfish agent valuing its fragment at
//
//   u_i(x) = -( C_i + k · T(λ x, μ_i) ) · x ,
//
// the negative of node i's contribution to the system cost. At a posted
// price p per unit of file, agent i demands argmax u_i(x) - p x. Note the
// caveat the paper raises: the fixed point of this process is a Pareto
// optimum of the *individual* utilities, which for this separable social
// objective coincides with the system optimum — but the path to it lacks
// the feasibility and monotonicity guarantees of the resource-directed
// scheme, which is what the A3 bench quantifies.
#pragma once

#include <vector>

#include "core/single_file.hpp"
#include "econ/price_directed.hpp"
#include "econ/utility.hpp"

namespace fap::baselines {

/// Per-node selfish utilities u_i for the given FAP instance.
std::vector<econ::ConcaveUtility> fap_agent_utilities(
    const core::SingleFileModel& model);

/// Runs fixed-γ tâtonnement on the FAP instance; demand is capped at one
/// whole file per node.
econ::TatonnementResult price_directed_fap(
    const core::SingleFileModel& model,
    const econ::TatonnementOptions& options);

/// Exact market-clearing solution for the FAP instance (the mechanism's
/// fixed point, found by bisection).
econ::Equilibrium price_directed_fap_equilibrium(
    const core::SingleFileModel& model);

}  // namespace fap::baselines
