#include "baselines/integral.hpp"

#include <cmath>
#include <limits>

#include "util/contracts.hpp"

namespace fap::baselines {

IntegralResult best_integral_single(const core::SingleFileModel& model) {
  const std::size_t n = model.dimension();
  IntegralResult best;
  best.cost = std::numeric_limits<double>::infinity();
  std::vector<double> x(n, 0.0);
  for (std::size_t host = 0; host < n; ++host) {
    x.assign(n, 0.0);
    x[host] = 1.0;
    const double cost = model.cost(x);
    if (cost < best.cost) {
      best.cost = cost;
      best.x = x;
      best.hosts = {host};
    }
  }
  return best;
}

IntegralResult best_integral_multi(const core::MultiFileModel& model,
                                   std::size_t enumeration_cap) {
  const std::size_t n = model.node_count();
  const std::size_t m = model.file_count();
  // Total assignments = n^m; refuse combinatorial blowups.
  double combinations = 1.0;
  for (std::size_t f = 0; f < m; ++f) {
    combinations *= static_cast<double>(n);
  }
  FAP_EXPECTS(combinations <= static_cast<double>(enumeration_cap),
              "n^m exceeds the enumeration cap; use the decentralized "
              "algorithm or a heuristic instead");

  IntegralResult best;
  best.cost = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> hosts(m, 0);
  std::vector<double> x(model.dimension(), 0.0);
  for (;;) {
    x.assign(model.dimension(), 0.0);
    for (std::size_t f = 0; f < m; ++f) {
      x[model.index(f, hosts[f])] = 1.0;
    }
    const double cost = model.cost(x);
    if (cost < best.cost) {
      best.cost = cost;
      best.x = x;
      best.hosts = hosts;
    }
    // Odometer increment over hosts.
    std::size_t digit = 0;
    while (digit < m && ++hosts[digit] == n) {
      hosts[digit] = 0;
      ++digit;
    }
    if (digit == m) {
      break;
    }
  }
  return best;
}

namespace {

// Enumerate size-m subsets of {0..n-1} via lexicographic combination walk.
template <typename Visitor>
void for_each_subset(std::size_t n, std::size_t m, Visitor&& visit) {
  std::vector<std::size_t> subset(m);
  for (std::size_t i = 0; i < m; ++i) {
    subset[i] = i;
  }
  for (;;) {
    visit(subset);
    // Advance to the next combination.
    std::size_t i = m;
    while (i > 0) {
      --i;
      if (subset[i] != i + n - m) {
        ++subset[i];
        for (std::size_t j = i + 1; j < m; ++j) {
          subset[j] = subset[j - 1] + 1;
        }
        i = m + 1;  // sentinel: advanced successfully
        break;
      }
    }
    if (i != m + 1) {
      break;  // exhausted
    }
  }
}

}  // namespace

IntegralResult best_integral_ring(const core::RingModel& model) {
  const double copies = model.problem().copies;
  const auto m = static_cast<std::size_t>(std::llround(copies));
  FAP_EXPECTS(std::fabs(copies - static_cast<double>(m)) < 1e-12,
              "integral placement requires a whole number of copies");
  const std::size_t n = model.dimension();
  FAP_EXPECTS(m >= 1 && m <= n, "copy count must be in [1, n]");

  IntegralResult best;
  best.cost = std::numeric_limits<double>::infinity();
  std::vector<double> x(n, 0.0);
  for_each_subset(n, m, [&](const std::vector<std::size_t>& subset) {
    x.assign(n, 0.0);
    for (const std::size_t host : subset) {
      x[host] = 1.0;
    }
    const double cost = model.cost(x);
    if (cost < best.cost) {
      best.cost = cost;
      best.x = x;
      best.hosts = subset;
    }
  });
  return best;
}

}  // namespace fap::baselines
