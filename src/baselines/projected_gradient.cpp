#include "baselines/projected_gradient.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/contracts.hpp"

namespace fap::baselines {

std::vector<double> project_simplex(std::vector<double> v, double total) {
  FAP_EXPECTS(!v.empty(), "cannot project an empty vector");
  FAP_EXPECTS(total > 0.0, "simplex total must be positive");
  std::vector<double> sorted = v;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  double cumulative = 0.0;
  double tau = 0.0;
  std::size_t rho = 0;
  for (std::size_t j = 0; j < sorted.size(); ++j) {
    cumulative += sorted[j];
    const double candidate =
        (cumulative - total) / static_cast<double>(j + 1);
    if (sorted[j] - candidate > 0.0) {
      rho = j + 1;
      tau = candidate;
    }
  }
  FAP_ENSURES(rho > 0, "simplex projection found no support");
  for (double& x : v) {
    x = std::max(0.0, x - tau);
  }
  return v;
}

std::vector<double> project_capped_simplex(const std::vector<double>& v,
                                           double total,
                                           const std::vector<double>& caps) {
  FAP_EXPECTS(!v.empty(), "cannot project an empty vector");
  FAP_EXPECTS(total > 0.0, "simplex total must be positive");
  FAP_EXPECTS(caps.size() == v.size(), "one cap per coordinate");
  double cap_total = 0.0;
  for (const double cap : caps) {
    FAP_EXPECTS(cap >= 0.0, "caps must be non-negative");
    cap_total += cap;
  }
  FAP_EXPECTS(cap_total >= total - 1e-9,
              "caps must admit a feasible allocation");

  const auto sum_at = [&](double tau) {
    double sum = 0.0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      sum += std::clamp(v[i] - tau, 0.0, caps[i]);
    }
    return sum;
  };
  // Bracket τ: very negative -> everything at cap (>= total); at
  // max(v) -> everything at 0 (<= total).
  double lo = *std::min_element(v.begin(), v.end()) - total - 1.0;
  double hi = *std::max_element(v.begin(), v.end());
  for (int iter = 0; iter < 200 && hi - lo > 1e-14 * (1.0 + std::fabs(hi));
       ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (sum_at(mid) > total) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double tau = 0.5 * (lo + hi);
  std::vector<double> x(v.size(), 0.0);
  for (std::size_t i = 0; i < v.size(); ++i) {
    x[i] = std::clamp(v[i] - tau, 0.0, caps[i]);
  }
  // Exactness: distribute the tiny residual over unsaturated coordinates.
  double residual = total;
  for (const double xi : x) {
    residual -= xi;
  }
  for (std::size_t i = 0; i < x.size() && std::fabs(residual) > 1e-12;
       ++i) {
    const double room = residual > 0.0 ? caps[i] - x[i] : x[i];
    const double moved = std::copysign(
        std::min(std::fabs(residual), room), residual);
    x[i] += moved;
    residual -= moved;
  }
  return x;
}

namespace {

// Project each constraint group's coordinates onto its (possibly capped)
// scaled simplex.
std::vector<double> project_groups(const core::CostModel& model,
                                   std::vector<double> x) {
  const std::vector<double> caps = model.upper_bounds();
  for (const core::ConstraintGroup& group : model.constraint_groups()) {
    std::vector<double> sub(group.indices.size());
    for (std::size_t k = 0; k < group.indices.size(); ++k) {
      sub[k] = x[group.indices[k]];
    }
    if (caps.empty()) {
      sub = project_simplex(std::move(sub), group.total);
    } else {
      std::vector<double> group_caps(group.indices.size());
      for (std::size_t k = 0; k < group.indices.size(); ++k) {
        group_caps[k] = caps[group.indices[k]];
      }
      sub = project_capped_simplex(sub, group.total, group_caps);
    }
    for (std::size_t k = 0; k < group.indices.size(); ++k) {
      x[group.indices[k]] = sub[k];
    }
  }
  return x;
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  return std::inner_product(a.begin(), a.end(), b.begin(), 0.0);
}

double linf(const std::vector<double>& a, const std::vector<double>& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    d = std::max(d, std::fabs(a[i] - b[i]));
  }
  return d;
}

}  // namespace

ProjectedGradientResult projected_gradient_solve(
    const core::CostModel& model, std::vector<double> initial,
    const ProjectedGradientOptions& options) {
  FAP_EXPECTS(initial.size() == model.dimension(),
              "initial point has wrong dimension");
  FAP_EXPECTS(options.backtrack > 0.0 && options.backtrack < 1.0,
              "backtrack factor must be in (0, 1)");

  ProjectedGradientResult result;
  result.x = project_groups(model, std::move(initial));
  double cost = model.cost(result.x);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    const std::vector<double> grad = model.gradient(result.x);
    double step = options.initial_step;
    std::vector<double> candidate;
    double candidate_cost = cost;
    bool accepted = false;
    // Armijo backtracking on the projected step.
    for (int attempt = 0; attempt < 60; ++attempt) {
      std::vector<double> moved(result.x.size());
      for (std::size_t i = 0; i < moved.size(); ++i) {
        moved[i] = result.x[i] - step * grad[i];
      }
      candidate = project_groups(model, std::move(moved));
      candidate_cost = model.cost(candidate);
      std::vector<double> direction(candidate.size());
      for (std::size_t i = 0; i < direction.size(); ++i) {
        direction[i] = candidate[i] - result.x[i];
      }
      // Sufficient decrease relative to the directional derivative.
      if (candidate_cost <=
          cost + options.armijo_c * dot(grad, direction)) {
        accepted = true;
        break;
      }
      step *= options.backtrack;
    }
    if (!accepted) {
      // No descent step found: we are at a stationary point numerically.
      result.converged = true;
      break;
    }
    const double movement = linf(candidate, result.x);
    result.x = std::move(candidate);
    cost = candidate_cost;
    ++result.iterations;
    if (movement < options.tol) {
      result.converged = true;
      break;
    }
  }
  result.cost = cost;
  return result;
}

}  // namespace fap::baselines
