#include "baselines/casey.hpp"

#include <algorithm>
#include <limits>

#include "util/contracts.hpp"

namespace fap::baselines {

namespace {

void validate(const CaseyProblem& problem) {
  const std::size_t n = problem.comm.node_count();
  FAP_EXPECTS(problem.query_rate.size() == n, "query rate size mismatch");
  FAP_EXPECTS(problem.update_rate.size() == n, "update rate size mismatch");
  FAP_EXPECTS(problem.storage_cost >= 0.0,
              "storage cost must be non-negative");
  for (std::size_t j = 0; j < n; ++j) {
    FAP_EXPECTS(problem.query_rate[j] >= 0.0 &&
                    problem.update_rate[j] >= 0.0,
                "rates must be non-negative");
  }
}

}  // namespace

double casey_cost(const CaseyProblem& problem,
                  const std::vector<bool>& hosts) {
  validate(problem);
  const std::size_t n = problem.comm.node_count();
  FAP_EXPECTS(hosts.size() == n, "host vector size mismatch");
  std::size_t copies = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (hosts[i]) {
      ++copies;
    }
  }
  FAP_EXPECTS(copies >= 1, "at least one copy must exist");

  double cost = problem.storage_cost * static_cast<double>(copies);
  for (std::size_t j = 0; j < n; ++j) {
    double nearest = std::numeric_limits<double>::infinity();
    double all_copies = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (hosts[i]) {
        nearest = std::min(nearest, problem.comm.cost(j, i));
        all_copies += problem.comm.cost(j, i);
      }
    }
    cost += problem.query_rate[j] * nearest +
            problem.update_rate[j] * all_copies;
  }
  return cost;
}

CaseyResult casey_optimal(const CaseyProblem& problem,
                          std::size_t max_exhaustive_nodes) {
  validate(problem);
  const std::size_t n = problem.comm.node_count();
  FAP_EXPECTS(n <= max_exhaustive_nodes && n < 64,
              "too many nodes for exhaustive subset search; use "
              "casey_local_search");

  CaseyResult best;
  best.cost = std::numeric_limits<double>::infinity();
  std::vector<bool> hosts(n, false);
  const std::uint64_t subsets = (std::uint64_t{1} << n);
  for (std::uint64_t mask = 1; mask < subsets; ++mask) {
    for (std::size_t i = 0; i < n; ++i) {
      hosts[i] = ((mask >> i) & 1u) != 0;
    }
    const double cost = casey_cost(problem, hosts);
    if (cost < best.cost) {
      best.cost = cost;
      best.hosts = hosts;
    }
  }
  best.copies = static_cast<std::size_t>(
      std::count(best.hosts.begin(), best.hosts.end(), true));
  return best;
}

CaseyResult casey_local_search(const CaseyProblem& problem) {
  validate(problem);
  const std::size_t n = problem.comm.node_count();

  // Best single host as the start.
  std::vector<bool> hosts(n, false);
  hosts[0] = true;
  double cost = casey_cost(problem, hosts);
  for (std::size_t i = 1; i < n; ++i) {
    std::vector<bool> candidate(n, false);
    candidate[i] = true;
    const double c = casey_cost(problem, candidate);
    if (c < cost) {
      cost = c;
      hosts = candidate;
    }
  }

  // Steepest-descent add / drop / swap.
  bool improved = true;
  while (improved) {
    improved = false;
    std::vector<bool> best_move = hosts;
    double best_cost = cost;

    auto consider = [&](std::vector<bool> candidate) {
      if (std::none_of(candidate.begin(), candidate.end(),
                       [](bool h) { return h; })) {
        return;  // empty host set infeasible
      }
      const double c = casey_cost(problem, candidate);
      if (c < best_cost - 1e-12) {
        best_cost = c;
        best_move = std::move(candidate);
      }
    };

    for (std::size_t i = 0; i < n; ++i) {
      std::vector<bool> toggled = hosts;
      toggled[i] = !toggled[i];
      consider(std::move(toggled));  // add or drop
    }
    for (std::size_t out = 0; out < n; ++out) {
      if (!hosts[out]) {
        continue;
      }
      for (std::size_t in = 0; in < n; ++in) {
        if (hosts[in]) {
          continue;
        }
        std::vector<bool> swapped = hosts;
        swapped[out] = false;
        swapped[in] = true;
        consider(std::move(swapped));
      }
    }
    if (best_cost < cost - 1e-12) {
      hosts = best_move;
      cost = best_cost;
      improved = true;
    }
  }

  CaseyResult result;
  result.hosts = hosts;
  result.cost = cost;
  result.copies = static_cast<std::size_t>(
      std::count(hosts.begin(), hosts.end(), true));
  return result;
}

}  // namespace fap::baselines
