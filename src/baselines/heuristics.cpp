#include "baselines/heuristics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/contracts.hpp"

namespace fap::baselines {

std::vector<double> min_comm_cost_allocation(
    const core::SingleFileModel& model) {
  const std::vector<double>& costs = model.access_costs();
  const std::size_t best = static_cast<std::size_t>(
      std::min_element(costs.begin(), costs.end()) - costs.begin());
  std::vector<double> x(model.dimension(), 0.0);
  x[best] = 1.0;
  return x;
}

std::vector<double> proportional_to_demand_allocation(
    const core::SingleFileModel& model) {
  const std::vector<double>& lambda = model.problem().lambda;
  const double total = model.total_rate();
  std::vector<double> x(lambda.size(), 0.0);
  for (std::size_t i = 0; i < lambda.size(); ++i) {
    x[i] = lambda[i] / total;
  }
  return x;
}

std::vector<double> greedy_chunk_allocation(const core::CostModel& model,
                                            std::size_t chunks) {
  FAP_EXPECTS(chunks >= 1, "need at least one chunk");
  std::vector<double> x(model.dimension(), 0.0);
  for (const core::ConstraintGroup& group : model.constraint_groups()) {
    const double piece = group.total / static_cast<double>(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
      // Tentatively place the piece at the feasibility-preserving position
      // of least marginal cost. The gradient is evaluated on a feasible
      // completion: remaining mass spread uniformly. This keeps the model
      // usable even when it validates feasibility internally.
      std::vector<double> probe = x;
      const double remaining =
          piece * static_cast<double>(chunks - c);
      for (const std::size_t i : group.indices) {
        probe[i] += remaining / static_cast<double>(group.indices.size());
      }
      const std::vector<double> grad = model.gradient(probe);
      std::size_t best = group.indices.front();
      double best_grad = std::numeric_limits<double>::infinity();
      for (const std::size_t i : group.indices) {
        if (grad[i] < best_grad) {
          best_grad = grad[i];
          best = i;
        }
      }
      x[best] += piece;
    }
  }
  return x;
}

std::vector<double> round_to_records(const core::CostModel& model,
                                     const std::vector<double>& x,
                                     std::size_t records) {
  FAP_EXPECTS(records >= 1, "need at least one record");
  model.check_feasible(x);
  std::vector<double> rounded = x;
  for (const core::ConstraintGroup& group : model.constraint_groups()) {
    // Work in units of one record; distribute leftover records to the
    // largest fractional remainders (largest-remainder / Hamilton method).
    const double unit = group.total / static_cast<double>(records);
    std::vector<long long> whole(group.indices.size(), 0);
    std::vector<double> remainder(group.indices.size(), 0.0);
    long long assigned = 0;
    for (std::size_t k = 0; k < group.indices.size(); ++k) {
      const double in_units = x[group.indices[k]] / unit;
      whole[k] = static_cast<long long>(std::floor(in_units));
      remainder[k] = in_units - static_cast<double>(whole[k]);
      assigned += whole[k];
    }
    long long leftover = static_cast<long long>(records) - assigned;
    std::vector<std::size_t> order(group.indices.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return remainder[a] > remainder[b];
    });
    for (std::size_t k = 0; k < order.size() && leftover > 0; ++k, --leftover) {
      ++whole[order[k]];
    }
    FAP_ENSURES(leftover <= 0, "largest-remainder rounding lost records");
    for (std::size_t k = 0; k < group.indices.size(); ++k) {
      rounded[group.indices[k]] = static_cast<double>(whole[k]) * unit;
    }
  }
  return rounded;
}

}  // namespace fap::baselines
