#include "queueing/delay.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace fap::queueing {

double erlang_c(std::size_t servers, double offered_load) {
  FAP_EXPECTS(servers >= 1, "need at least one server");
  FAP_EXPECTS(offered_load >= 0.0 &&
                  offered_load < static_cast<double>(servers),
              "Erlang C requires offered load below the server count");
  if (offered_load == 0.0) {
    return 0.0;
  }
  // Iteratively: term_k = r^k / k!, accumulated in a numerically tame way.
  double term = 1.0;  // k = 0
  double partial_sum = 1.0;
  for (std::size_t k = 1; k < servers; ++k) {
    term *= offered_load / static_cast<double>(k);
    partial_sum += term;
  }
  const double top =
      term * offered_load / static_cast<double>(servers);  // r^c / c!
  const double c = static_cast<double>(servers);
  return top / ((1.0 - offered_load / c) * partial_sum + top);
}

DelayModel::DelayModel(Discipline discipline, double scv, double rho_max)
    : discipline_(discipline), scv_(scv), rho_max_(rho_max) {
  FAP_EXPECTS(rho_max > 0.0 && rho_max <= 1.0, "rho_max must be in (0, 1]");
  FAP_EXPECTS(scv >= 0.0, "squared coefficient of variation must be >= 0");
  switch (discipline) {
    case Discipline::kMM1:
      scv_ = 1.0;
      break;
    case Discipline::kMD1:
      scv_ = 0.0;
      break;
    case Discipline::kMG1:
      break;
    case Discipline::kMMc:
      scv_ = 1.0;
      break;
  }
}

DelayModel DelayModel::mm1(double rho_max) {
  return DelayModel(Discipline::kMM1, 1.0, rho_max);
}

DelayModel DelayModel::md1(double rho_max) {
  return DelayModel(Discipline::kMD1, 0.0, rho_max);
}

DelayModel DelayModel::mg1(double scv, double rho_max) {
  return DelayModel(Discipline::kMG1, scv, rho_max);
}

DelayModel DelayModel::mmc(std::size_t servers, double rho_max) {
  FAP_EXPECTS(servers >= 1, "need at least one server");
  DelayModel model(Discipline::kMMc, 1.0, rho_max);
  model.servers_ = servers;
  return model;
}

void DelayModel::check_args(double a, double mu) const {
  FAP_EXPECTS(a >= 0.0, "arrival rate must be non-negative");
  FAP_EXPECTS(mu > 0.0, "service rate must be positive");
  if (rho_max_ >= 1.0) {
    FAP_EXPECTS(a < capacity(mu),
                "arrival rate must be below the node's service capacity "
                "when the linear delay extension is disabled (rho_max == 1)");
  }
}

// Pollaczek–Khinchine: T(a) = 1/μ + a (1 + c²) / (2 μ (μ - a)); with
// c² = 1 this reduces to the M/M/1 sojourn 1/(μ - a). For M/M/c:
// T(a) = 1/μ + ErlangC(c, a/μ) / (cμ - a).
double DelayModel::pure_sojourn(double a, double mu) const {
  if (discipline_ == Discipline::kMMc) {
    return 1.0 / mu +
           erlang_c(servers_, a / mu) / (capacity(mu) - a);
  }
  return detail::pk_sojourn(a, mu, scv_);
}

double DelayModel::pure_d_sojourn(double a, double mu) const {
  if (discipline_ == Discipline::kMMc) {
    // Central (forward at the origin) difference of the exact formula;
    // step well inside the stability region.
    const double h = std::min(1e-6 * capacity(mu),
                              0.25 * (capacity(mu) - a));
    if (a < h) {
      return (pure_sojourn(a + h, mu) - pure_sojourn(a, mu)) / h;
    }
    return (pure_sojourn(a + h, mu) - pure_sojourn(a - h, mu)) / (2.0 * h);
  }
  return detail::pk_d_sojourn(a, mu, scv_);
}

double DelayModel::pure_d2_sojourn(double a, double mu) const {
  if (discipline_ == Discipline::kMMc) {
    const double h = std::min(1e-5 * capacity(mu),
                              0.25 * (capacity(mu) - a));
    if (a < h) {
      // One-sided second difference at the origin.
      return (pure_sojourn(a + 2.0 * h, mu) -
              2.0 * pure_sojourn(a + h, mu) + pure_sojourn(a, mu)) /
             (h * h);
    }
    return (pure_sojourn(a + h, mu) - 2.0 * pure_sojourn(a, mu) +
            pure_sojourn(a - h, mu)) /
           (h * h);
  }
  return detail::pk_d2_sojourn(a, mu, scv_);
}

double DelayModel::sojourn(double a, double mu) const {
  check_args(a, mu);
  const double knee = rho_max_ * capacity(mu);
  if (rho_max_ < 1.0 && a >= knee) {
    return pure_sojourn(knee, mu) + pure_d_sojourn(knee, mu) * (a - knee);
  }
  return pure_sojourn(a, mu);
}

double DelayModel::d_sojourn(double a, double mu) const {
  check_args(a, mu);
  const double knee = rho_max_ * capacity(mu);
  if (rho_max_ < 1.0 && a >= knee) {
    return pure_d_sojourn(knee, mu);
  }
  return pure_d_sojourn(a, mu);
}

double DelayModel::d2_sojourn(double a, double mu) const {
  check_args(a, mu);
  const double knee = rho_max_ * capacity(mu);
  if (rho_max_ < 1.0 && a >= knee) {
    return 0.0;
  }
  return pure_d2_sojourn(a, mu);
}

void DelayModel::sojourn_batch(const double* a, const double* mu, double* out,
                               std::size_t count) const {
  if (discipline_ == Discipline::kMMc) {
    // Erlang C has a data-dependent series; evaluate the exact scalar
    // formula (knee logic included) per element.
    for (std::size_t i = 0; i < count; ++i) {
      const double knee = rho_max_ * capacity(mu[i]);
      out[i] = (rho_max_ < 1.0 && a[i] >= knee)
                   ? pure_sojourn(knee, mu[i]) +
                         pure_d_sojourn(knee, mu[i]) * (a[i] - knee)
                   : pure_sojourn(a[i], mu[i]);
    }
    return;
  }
  const double scv = scv_;
  const double rho_max = rho_max_;
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = detail::lin_sojourn(a[i], mu[i], scv, rho_max);
  }
}

void DelayModel::d_sojourn_batch(const double* a, const double* mu,
                                 double* out, std::size_t count) const {
  if (discipline_ == Discipline::kMMc) {
    for (std::size_t i = 0; i < count; ++i) {
      const double knee = rho_max_ * capacity(mu[i]);
      out[i] = (rho_max_ < 1.0 && a[i] >= knee)
                   ? pure_d_sojourn(knee, mu[i])
                   : pure_d_sojourn(a[i], mu[i]);
    }
    return;
  }
  const double scv = scv_;
  const double rho_max = rho_max_;
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = detail::lin_d_sojourn(a[i], mu[i], scv, rho_max);
  }
}

void DelayModel::d2_sojourn_batch(const double* a, const double* mu,
                                  double* out, std::size_t count) const {
  if (discipline_ == Discipline::kMMc) {
    for (std::size_t i = 0; i < count; ++i) {
      const double knee = rho_max_ * capacity(mu[i]);
      out[i] = (rho_max_ < 1.0 && a[i] >= knee) ? 0.0
                                                : pure_d2_sojourn(a[i], mu[i]);
    }
    return;
  }
  const double scv = scv_;
  const double rho_max = rho_max_;
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = detail::lin_d2_sojourn(a[i], mu[i], scv, rho_max);
  }
}

double mm1_sojourn_time(double lambda, double mu) {
  FAP_EXPECTS(lambda >= 0.0 && lambda < mu, "M/M/1 requires 0 <= lambda < mu");
  return 1.0 / (mu - lambda);
}

double mm1_waiting_time(double lambda, double mu) {
  return mm1_sojourn_time(lambda, mu) - 1.0 / mu;
}

double mm1_mean_queue_length(double lambda, double mu) {
  FAP_EXPECTS(lambda >= 0.0 && lambda < mu, "M/M/1 requires 0 <= lambda < mu");
  const double rho = lambda / mu;
  return rho / (1.0 - rho);
}

double mm1_utilization(double lambda, double mu) {
  FAP_EXPECTS(mu > 0.0, "service rate must be positive");
  return lambda / mu;
}

}  // namespace fap::queueing
