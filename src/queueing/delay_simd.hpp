// AVX2 flavor of the single-server delay-law primitives.
//
// queueing/delay.hpp's detail::pk_* / lin_* inline expressions are the one
// scalar definition of the Pollaczek–Khinchine delay law; this header is
// their 4-lane AVX2 twin, used by the batched allocator's vector kernels
// (core/batch_kernels_avx2.cpp). Each function mirrors the scalar
// expression TREE operation for operation — same multiplies, same
// divides, same operand order, ternaries rendered as min/blend selections
// with identical tie behavior — and every AVX2 arithmetic instruction is
// exactly rounded per IEEE-754, so evaluating a lane here returns
// bitwise the scalar result. No FMA intrinsics appear anywhere in this
// header (fused rounding would break the equivalence); the TU including
// it is compiled with -ffp-contract=off so the compiler cannot introduce
// one either.
//
// The `stride`/width view of the batch planes lives in the kernels that
// include this header: they walk [node][lane] rows four lanes at a time
// and call these primitives on each 32-byte group.
#pragma once

#if defined(__AVX2__)

#include <immintrin.h>

namespace fap::queueing::detail::avx2 {

/// T(a) = 1/μ + a(1+c²) / (2μ(μ−a)), four lanes at once.
/// Matches pk_sojourn's tree: (1.0/mu) + ((a*(1+scv)) / ((2*mu)*(mu-a))).
inline __m256d pk_sojourn(__m256d a, __m256d mu, __m256d scv) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d num = _mm256_mul_pd(a, _mm256_add_pd(one, scv));
  const __m256d den =
      _mm256_mul_pd(_mm256_mul_pd(two, mu), _mm256_sub_pd(mu, a));
  return _mm256_add_pd(_mm256_div_pd(one, mu), _mm256_div_pd(num, den));
}

/// Same as pk_sojourn but with the leading 1/μ term supplied by the
/// caller. Division is deterministic, so a cached quotient computed once
/// (at lane load) is bitwise the quotient pk_sojourn would recompute —
/// this shaves one divide per cell per iteration off the hot row loops.
inline __m256d pk_sojourn_cached_imu(__m256d a, __m256d mu, __m256d inv_mu,
                                     __m256d scv) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d num = _mm256_mul_pd(a, _mm256_add_pd(one, scv));
  const __m256d den =
      _mm256_mul_pd(_mm256_mul_pd(two, mu), _mm256_sub_pd(mu, a));
  return _mm256_add_pd(inv_mu, _mm256_div_pd(num, den));
}

/// T'(a) = (1+c²) / (2(μ−a)²). Matches pk_d_sojourn's tree:
/// (1+scv) / ((2*gap)*gap) with gap = mu - a.
inline __m256d pk_d_sojourn(__m256d a, __m256d mu, __m256d scv) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d gap = _mm256_sub_pd(mu, a);
  return _mm256_div_pd(_mm256_add_pd(one, scv),
                       _mm256_mul_pd(_mm256_mul_pd(two, gap), gap));
}

/// T''(a) = (1+c²) / (μ−a)³. Matches pk_d2_sojourn's tree:
/// (1+scv) / ((gap*gap)*gap).
inline __m256d pk_d2_sojourn(__m256d a, __m256d mu, __m256d scv) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d gap = _mm256_sub_pd(mu, a);
  return _mm256_div_pd(_mm256_add_pd(one, scv),
                       _mm256_mul_pd(_mm256_mul_pd(gap, gap), gap));
}

/// The knee clamp ae = a < knee ? a : knee. VMINPD's semantics are
/// exactly this ternary (src2 returned when a >= knee or unordered), so
/// ties and signed zeros behave identically to the scalar expression.
inline __m256d knee_clamp(__m256d a, __m256d knee) {
  return _mm256_min_pd(a, knee);
}

/// lin_d2_sojourn's selection a < knee ? pk_d2(a) : 0.0. The masked AND
/// yields +0.0 on the extension side, bitwise the scalar literal.
inline __m256d lin_d2_select(__m256d a, __m256d knee, __m256d pk_d2_at_a) {
  const __m256d below = _mm256_cmp_pd(a, knee, _CMP_LT_OQ);
  return _mm256_and_pd(pk_d2_at_a, below);
}

}  // namespace fap::queueing::detail::avx2

#endif  // __AVX2__
