// Queueing-delay models for file-access service at a node.
//
// The paper models each node as an M/M/1 queue: Poisson access arrivals at
// rate a (= λ x_i for the single-copy model) and exponential service at
// rate μ, giving an expected sojourn time T = 1/(μ - a) (Eq. before Eq. 1).
// Section 5.4 notes that "alternate queueing models (e.g., such as M/G/1
// queues) can be directly used" — DelayModel covers M/M/1, M/D/1 and
// general M/G/1 via the Pollaczek–Khinchine formula, parameterized by the
// squared coefficient of variation (SCV) of service time.
//
// The paper also remarks (Section 4) that if λ is not restricted below μ,
// "some functional approximation can easily be made for T_i, as in [26]".
// DelayModel supports exactly that: an optional linearization threshold
// ρ_max extends T beyond ρ_max·μ by its tangent line, keeping T, T' and T''
// finite for any arrival rate (needed by the multiple-copy model of
// Section 7 where a node may transiently be assigned more than μ worth of
// traffic).
#pragma once

#include <cstddef>

namespace fap::queueing {

namespace detail {

// Single-server Pollaczek–Khinchine primitives. These inline expressions
// are the ONE definition of the single-server delay law: the scalar
// DelayModel entry points and the batch kernels (sojourn_batch and the
// core::BatchAllocator derivative rows) all evaluate exactly these
// operation sequences, which is what makes the batched paths bit-identical
// to the scalar ones (pinned by queueing_batch_test).
inline double pk_sojourn(double a, double mu, double scv) {
  return 1.0 / mu + a * (1.0 + scv) / (2.0 * mu * (mu - a));
}

inline double pk_d_sojourn(double a, double mu, double scv) {
  const double gap = mu - a;
  return (1.0 + scv) / (2.0 * gap * gap);
}

inline double pk_d2_sojourn(double a, double mu, double scv) {
  const double gap = mu - a;
  return (1.0 + scv) / (gap * gap * gap);
}

// Knee-clamped (tangent-extended) single-server evaluations, written
// branch-free so batch loops over lanes auto-vectorize:
//   ae = min(a, knee),  T(a) = T_pure(ae) + T_pure'(ae) · (a - ae).
// For a < knee the correction term is exactly +0.0 and T_pure(ae) > 0, so
// adding it reproduces the pure value bit-for-bit; for a >= knee this is
// literally the tangent extension DelayModel::sojourn computes. With
// rho_max == 1 the preconditions force a < mu = knee, so the pure branch
// is always taken, matching the scalar rho_max >= 1 fast path.
inline double lin_sojourn(double a, double mu, double scv, double rho_max) {
  const double knee = rho_max * mu;
  const double ae = a < knee ? a : knee;
  return pk_sojourn(ae, mu, scv) + pk_d_sojourn(ae, mu, scv) * (a - ae);
}

inline double lin_d_sojourn(double a, double mu, double scv, double rho_max) {
  const double knee = rho_max * mu;
  const double ae = a < knee ? a : knee;
  return pk_d_sojourn(ae, mu, scv);
}

inline double lin_d2_sojourn(double a, double mu, double scv, double rho_max) {
  const double knee = rho_max * mu;
  return a < knee ? pk_d2_sojourn(a, mu, scv) : 0.0;
}

}  // namespace detail

/// Queueing discipline for the per-node service model.
enum class Discipline {
  kMM1,  ///< exponential service (SCV = 1); T = 1/(μ - a)
  kMD1,  ///< deterministic service (SCV = 0)
  kMG1,  ///< general service with user-supplied SCV
  kMMc,  ///< c parallel exponential servers of rate μ each (Erlang C)
};

/// Expected sojourn time (queueing + service) and its first two derivatives
/// with respect to the arrival rate, for a single-server queue.
class DelayModel {
 public:
  /// M/M/1 with no linearization (pure model; infinite delay at a = μ).
  DelayModel() noexcept = default;

  /// `discipline` selects the service distribution. `scv` is the squared
  /// coefficient of variation of service time, used only for kMG1 (kMM1
  /// forces 1, kMD1 forces 0). `rho_max` in (0, 1] sets the utilization
  /// beyond which the delay curve is extended linearly; 1 disables the
  /// extension.
  DelayModel(Discipline discipline, double scv = 1.0, double rho_max = 1.0);

  /// Convenience factories.
  static DelayModel mm1(double rho_max = 1.0);
  static DelayModel md1(double rho_max = 1.0);
  static DelayModel mg1(double scv, double rho_max = 1.0);
  /// M/M/c: `servers` parallel exponential servers, each of rate μ (the
  /// μ passed to sojourn() is the per-server rate). Expected sojourn
  /// 1/μ + ErlangC(c, a/μ) / (cμ - a). First/second derivatives are
  /// computed by central differences of the exact formula (Erlang C has
  /// no tidy closed-form derivative); the sojourn is smooth and convex
  /// in a, so the numeric derivatives are well conditioned (pinned by
  /// tests).
  static DelayModel mmc(std::size_t servers, double rho_max = 1.0);

  Discipline discipline() const noexcept { return discipline_; }
  double scv() const noexcept { return scv_; }
  double rho_max() const noexcept { return rho_max_; }
  std::size_t servers() const noexcept { return servers_; }

  /// Total service capacity of a node whose per-server rate is μ: μ for
  /// the single-server disciplines, c·μ for M/M/c. Stability requires
  /// the arrival rate below this.
  double capacity(double mu) const noexcept {
    return static_cast<double>(servers_) * mu;
  }

  /// Expected sojourn time of an access arriving at rate `a` to a server of
  /// rate `mu`. Requires a >= 0 and mu > 0. For a >= ρ_max·μ the tangent
  /// extension is used; with rho_max == 1 the pure formula is used and `a`
  /// must be < μ.
  double sojourn(double a, double mu) const;

  /// d sojourn / d a at the same point.
  double d_sojourn(double a, double mu) const;

  /// d² sojourn / d a² at the same point (0 on the linear extension).
  double d2_sojourn(double a, double mu) const;

  /// Batch overloads: out[i] = sojourn(a[i], mu[i]) for i < count, with the
  /// single-server disciplines evaluated branch-free so the loop
  /// auto-vectorizes; kMMc falls back to the scalar formula per element.
  /// Bit-identical to calling the scalar entry point per element (pinned by
  /// queueing_batch_test). Preconditions (a >= 0, mu > 0 and, with
  /// rho_max == 1, a < capacity) are the caller's responsibility — the
  /// batch paths do not re-validate per element.
  void sojourn_batch(const double* a, const double* mu, double* out,
                     std::size_t count) const;
  void d_sojourn_batch(const double* a, const double* mu, double* out,
                       std::size_t count) const;
  void d2_sojourn_batch(const double* a, const double* mu, double* out,
                        std::size_t count) const;

  /// True when the (pure) queue is stable at this arrival rate, i.e. a < μ.
  static bool stable(double a, double mu) noexcept { return a < mu; }

 private:
  // Pure (non-linearized) formulas.
  double pure_sojourn(double a, double mu) const;
  double pure_d_sojourn(double a, double mu) const;
  double pure_d2_sojourn(double a, double mu) const;
  void check_args(double a, double mu) const;

  Discipline discipline_ = Discipline::kMM1;
  double scv_ = 1.0;
  double rho_max_ = 1.0;
  std::size_t servers_ = 1;
};

/// Erlang-C: the probability an arrival waits in an M/M/c queue with
/// offered load r = a/μ (requires r < c). Exposed for tests.
double erlang_c(std::size_t servers, double offered_load);

/// Classic M/M/1 quantities, exposed directly for the discrete-event
/// simulator's validation tests.
double mm1_sojourn_time(double lambda, double mu);
double mm1_waiting_time(double lambda, double mu);
double mm1_mean_queue_length(double lambda, double mu);
double mm1_utilization(double lambda, double mu);

}  // namespace fap::queueing
