#include "catalog/catalog_spec.hpp"

#include <algorithm>
#include <cmath>

#include "fs/popularity.hpp"
#include "net/generators.hpp"
#include "runtime/sweep.hpp"
#include "util/contracts.hpp"
#include "util/numeric.hpp"
#include "util/rng.hpp"

namespace fap::catalog {

void CatalogSpec::validate() const {
  const std::size_t n = node_count();
  const std::size_t count = object_count();
  FAP_EXPECTS(n >= 1, "catalog needs at least one node");
  FAP_EXPECTS(count >= 1, "catalog needs at least one object");
  if (comm_provider != nullptr && comm.node_count() == 0) {
    FAP_EXPECTS(comm_provider->node_count() == n,
                "cost provider size must match node count");
  } else {
    FAP_EXPECTS(comm.node_count() == n,
                "cost matrix size must match node count");
  }
  FAP_EXPECTS(node_capacity.size() == n,
              "one capacity budget per node");
  FAP_EXPECTS(origin_weight.size() == n, "one origin weight per node");
  FAP_EXPECTS(volume.size() == count && home.size() == count,
              "object arrays must have equal length");
  FAP_EXPECTS(k >= 0.0, "k must be non-negative");
  FAP_EXPECTS(locality >= 0.0 && locality <= 1.0,
              "locality must be in [0, 1]");

  double weight_total = 0.0;
  for (const double w : origin_weight) {
    FAP_EXPECTS(w >= 0.0, "origin weights must be non-negative");
    weight_total += w;
  }
  FAP_EXPECTS(std::fabs(weight_total - 1.0) < 1e-6,
              "origin weights must form a distribution");

  double capacity_min = node_capacity.empty() ? 0.0 : node_capacity[0];
  for (const double cap : node_capacity) {
    FAP_EXPECTS(cap >= 0.0, "capacity budgets must be non-negative");
    capacity_min = std::min(capacity_min, cap);
  }
  double mu_min = mu[0];
  for (const double m : mu) {
    FAP_EXPECTS(m > 0.0, "service rates must be positive");
    mu_min = std::min(mu_min, m);
  }

  double rate_max = 0.0;
  util::NeumaierSum volume_total;
  for (std::size_t o = 0; o < count; ++o) {
    FAP_EXPECTS(rate[o] > 0.0, "object rates must be positive");
    FAP_EXPECTS(volume[o] > 0.0, "object volumes must be positive");
    FAP_EXPECTS(home[o] < n, "home node out of range");
    rate_max = std::max(rate_max, rate[o]);
    volume_total.add(volume[o]);
  }
  if (delay.rho_max() >= 1.0) {
    // Pure delay model: an object can concentrate fully on any node, so
    // stability needs every object's whole rate below every node's
    // capacity (the SingleFileModel condition, per object).
    FAP_EXPECTS(rate_max < delay.capacity(mu_min),
                "stability requires every object rate below every node's "
                "service capacity (or a linearized delay model)");
  }
  FAP_EXPECTS(util::stable_sum(node_capacity) >=
                  volume_total.value() * (1.0 - 1e-12),
              "total capacity must hold the total catalog volume");
}

namespace {

CatalogSpec build_synthetic(
    const SyntheticCatalogOptions& options, std::uint64_t seed,
    net::CostMatrix comm,
    std::shared_ptr<const net::CostProvider> provider = nullptr) {
  FAP_EXPECTS(options.objects >= 1, "need at least one object");
  FAP_EXPECTS(options.nodes >= 1, "need at least one node");
  FAP_EXPECTS(options.headroom >= 0.0, "headroom must be non-negative");
  FAP_EXPECTS(options.hottest_utilization > 0.0 &&
                  options.hottest_utilization < 1.0,
              "hottest object utilization must be in (0, 1)");

  const std::size_t n = options.nodes;
  CatalogSpec spec;
  spec.comm = std::move(comm);
  spec.comm_provider = std::move(provider);
  spec.mu.assign(n, 1.0);
  spec.k = options.k;
  spec.locality = options.locality;

  // Origin mix: normalized uniform draws from the spec-level stream (the
  // same stream that placed the topology's nodes — both are "network
  // facts", distinct from the per-object streams below).
  util::Rng rng(seed);
  rng.split();  // skip the sub-stream make_synthetic_catalog handed to
                // make_random_metric (see callers)
  std::vector<double> weights(n);
  for (double& w : weights) {
    w = rng.uniform(0.5, 1.5);
  }
  spec.origin_weight = fs::normalized_popularity(std::move(weights));

  // Zipf rates scaled so the hottest object uses a bounded fraction of a
  // node's (unit) service rate — every per-object queue is stable even
  // when fully concentrated.
  spec.rate = fs::zipf_popularity(options.objects, options.zipf_s);
  const double total_rate = options.hottest_utilization / spec.rate[0];
  for (double& r : spec.rate) {
    r *= total_rate;
  }

  // Per-object volume (log-uniform over ~1.3 decades) and home node from
  // the object's OWN stream: task_seed(seed, o), the runtime::sweep
  // splitting contract, so object o's data does not depend on how many
  // objects precede it. Enumerated through TaskSeedSequence (one stream
  // walk, same values) — per-object task_seed calls are O(o) each.
  spec.volume.resize(options.objects);
  spec.home.resize(options.objects);
  runtime::TaskSeedSequence object_seeds(seed);
  util::NeumaierSum volume_total;
  for (std::size_t o = 0; o < options.objects; ++o) {
    util::Rng object_rng(object_seeds.next());
    spec.volume[o] =
        std::exp(object_rng.uniform(std::log(0.05), std::log(1.0)));
    spec.home[o] =
        static_cast<std::uint32_t>(object_rng.uniform_index(n));
    volume_total.add(spec.volume[o]);
  }

  const double capacity_each = (1.0 + options.headroom) *
                               volume_total.value() /
                               static_cast<double>(n);
  spec.node_capacity.assign(n, capacity_each);
  spec.validate();
  return spec;
}

net::Topology synthetic_topology(const SyntheticCatalogOptions& options,
                                 std::uint64_t seed) {
  // The topology draws from a split of the spec stream so that the
  // origin-weight draws in build_synthetic are independent of how many
  // variates the generator consumed.
  util::Rng rng(seed);
  util::Rng topo_rng = rng.split();
  const std::size_t neighbors = std::min<std::size_t>(
      3, options.nodes > 1 ? options.nodes - 1 : 1);
  return net::make_random_metric(options.nodes, neighbors, topo_rng);
}

}  // namespace

CatalogSpec make_synthetic_catalog(const SyntheticCatalogOptions& options,
                                   std::uint64_t seed) {
  return build_synthetic(
      options, seed,
      net::all_pairs_shortest_paths(synthetic_topology(options, seed)));
}

CatalogSpec make_synthetic_catalog(const SyntheticCatalogOptions& options,
                                   std::uint64_t seed,
                                   net::CostMatrixCache& cache) {
  return build_synthetic(options, seed,
                         *cache.get(synthetic_topology(options, seed)));
}

CatalogSpec make_synthetic_catalog(const SyntheticCatalogOptions& options,
                                   std::uint64_t seed, net::CostMatrix comm) {
  FAP_EXPECTS(comm.node_count() == options.nodes,
              "cost matrix size must match options.nodes");
  return build_synthetic(options, seed, std::move(comm));
}

CatalogSpec make_synthetic_catalog(
    const SyntheticCatalogOptions& options, std::uint64_t seed,
    std::shared_ptr<const net::CostProvider> comm) {
  FAP_EXPECTS(comm != nullptr, "provider overload needs a provider");
  FAP_EXPECTS(comm->node_count() == options.nodes,
              "cost provider size must match options.nodes");
  return build_synthetic(options, seed, net::CostMatrix(0), std::move(comm));
}

}  // namespace fap::catalog
