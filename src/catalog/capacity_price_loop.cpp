#include "catalog/capacity_price_loop.hpp"

#include <algorithm>

#include "econ/price_directed.hpp"
#include "util/contracts.hpp"

namespace fap::catalog {

namespace {

// Guards the relative-overload division on a zero-budget node: such a
// node's residual is measured against one volume unit instead.
constexpr double kMinBudget = 1e-12;

}  // namespace

CapacityPriceLoop::CapacityPriceLoop(std::vector<double> capacity,
                                     CapacityPriceLoopOptions options)
    : capacity_(std::move(capacity)), options_(options) {
  FAP_EXPECTS(!capacity_.empty(), "need at least one capacity budget");
  for (const double cap : capacity_) {
    FAP_EXPECTS(cap >= 0.0, "capacity budgets must be non-negative");
  }
  FAP_EXPECTS(options_.gamma > 0.0, "gamma must be positive");
  FAP_EXPECTS(options_.decay > 0.0 && options_.decay < 1.0,
              "decay must be in (0, 1)");
  FAP_EXPECTS(options_.tolerance >= 0.0, "tolerance must be non-negative");
  FAP_EXPECTS(options_.max_rounds >= 1, "need at least one round");
  FAP_EXPECTS(options_.price_scale > 0.0, "price scale must be positive");
  if (options_.initial_prices.empty()) {
    prices_.assign(capacity_.size(), 0.0);
  } else {
    FAP_EXPECTS(options_.initial_prices.size() == capacity_.size(),
                "initial prices must have one entry per node");
    for (const double price : options_.initial_prices) {
      FAP_EXPECTS(price >= 0.0, "initial prices must be non-negative");
    }
    prices_ = options_.initial_prices;
  }
  gamma_.resize(capacity_.size());
  diagnostics_.gamma = options_.gamma;
}

bool CapacityPriceLoop::update(const std::vector<double>& demand) {
  FAP_EXPECTS(demand.size() == capacity_.size(),
              "demand vector must match capacity vector");
  FAP_EXPECTS(active(), "price loop already finished");

  double residual = 0.0;
  for (std::size_t i = 0; i < demand.size(); ++i) {
    const double budget = std::max(capacity_[i], kMinBudget);
    residual = std::max(residual, (demand[i] - capacity_[i]) / budget);
  }

  const bool improved = diagnostics_.residual_history.empty() ||
                        residual < diagnostics_.residual_history.back();
  diagnostics_.residual_history.push_back(residual);

  if (residual <= options_.tolerance) {
    converged_ = true;
    return true;
  }

  if (!improved) {
    ++diagnostics_.oscillations;
    if (options_.step_rule == PriceStepRule::kAdaptive) {
      diagnostics_.gamma *= options_.decay;
    }
  }
  for (std::size_t i = 0; i < gamma_.size(); ++i) {
    gamma_[i] = diagnostics_.gamma * options_.price_scale /
                std::max(capacity_[i], kMinBudget);
  }
  econ::tatonnement_step(prices_, demand, capacity_, gamma_);
  ++diagnostics_.rounds;
  return false;
}

}  // namespace fap::catalog
