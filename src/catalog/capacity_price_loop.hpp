// Outer dual loop of the catalog engine: tâtonnement on per-node
// capacity prices.
//
// Lagrangian decomposition of the joint catalog problem: relaxing the
// coupling constraints Σ_o v_o x_i^o <= B_i with multipliers p_i >= 0
// adds v_o p_i to object o's access cost at node i and NOTHING else —
// the relaxed problem separates into K independent single-file FAPs,
// each solvable by the paper's resource-directed algorithm. The
// multipliers themselves follow the price-directed mechanism of
// Section 2 (econ::tatonnement_step), one resource per node:
//
//   p_i <- max(0, p_i + γ_i (demand_i - B_i)),   γ_i = γ · scale / B_i
//
// so a node overloaded by fraction f sees its price move by γ·scale·f
// regardless of its absolute budget. CapacityPriceLoop owns the price
// vector, the step rule (fixed or residual-adaptive γ), and the
// convergence/oscillation diagnostics; the CatalogSolver feeds it one
// demand vector per round of inner solves.
#pragma once

#include <cstddef>
#include <vector>

namespace fap::catalog {

/// How the normalized speed γ evolves across rounds.
enum class PriceStepRule {
  kFixed,     ///< γ stays at CapacityPriceLoopOptions::gamma
  kAdaptive,  ///< γ is multiplied by `decay` whenever a round fails to
              ///< reduce the overload residual (the demand response of a
              ///< mostly point-mass catalog is steppy; backing off the
              ///< speed damps the resulting price oscillation)
};

struct CapacityPriceLoopOptions {
  double gamma = 0.5;  ///< initial normalized adjustment speed
  PriceStepRule step_rule = PriceStepRule::kAdaptive;
  double decay = 0.5;  ///< kAdaptive: γ multiplier on a non-improving round
  /// Convergence: max relative overload max_i (d_i - B_i)/B_i at or
  /// below this. The deterministic repair pass (catalog_solver.cpp)
  /// closes the remaining gap to exactly feasible, so the dual loop only
  /// needs to get close, not exact.
  double tolerance = 0.01;
  std::size_t max_rounds = 16;  ///< price updates before giving up
  /// Price units per unit of relative overload; converts the
  /// dimensionless residual into the access-cost scale the inner solves
  /// compare prices against. CatalogSolver computes a problem-derived
  /// default (see CatalogOptions::auto_price_scale).
  double price_scale = 1.0;
  /// Warm start: initial capacity prices p_i (one per node). Empty means
  /// all-zero — the cold start, where every constraint is assumed slack
  /// until demand proves otherwise. Re-solving a perturbed spec from the
  /// previous solve's final prices skips the rounds the tâtonnement
  /// would spend re-discovering which nodes are scarce.
  std::vector<double> initial_prices;
};

class CapacityPriceLoop {
 public:
  /// Capacities are the supply side B_i; prices start at
  /// options.initial_prices, or 0 when that is empty (every constraint
  /// assumed slack until demand proves otherwise — the zero cold start
  /// is what keeps the slack-capacity path identical to the
  /// unconstrained single-file solve).
  CapacityPriceLoop(std::vector<double> capacity,
                    CapacityPriceLoopOptions options);

  const std::vector<double>& prices() const noexcept { return prices_; }
  const std::vector<double>& capacity() const noexcept { return capacity_; }

  /// Ingests one round's node demand (Σ_o v_o x_i^o per node). Computes
  /// the relative overload residual FIRST; when it is within tolerance
  /// the loop records convergence and returns true WITHOUT moving prices
  /// — the caller's last allocation is the one produced by the posted
  /// prices. Otherwise prices take one projected tâtonnement step (with
  /// γ adapted per the step rule) and false is returned. Calling update
  /// after convergence or after max_rounds price updates throws.
  bool update(const std::vector<double>& demand);

  bool converged() const noexcept { return converged_; }
  /// True while another update() call is admissible.
  bool active() const noexcept {
    return !converged_ && diagnostics_.rounds < options_.max_rounds;
  }
  /// Residual of the most recent update (max relative overload).
  double residual() const noexcept {
    return diagnostics_.residual_history.empty()
               ? 0.0
               : diagnostics_.residual_history.back();
  }

  struct Diagnostics {
    std::size_t rounds = 0;  ///< price updates taken
    /// Residual observed by every update() call, in order (one more
    /// entry than `rounds` once converged).
    std::vector<double> residual_history;
    /// Rounds whose residual was no better than the previous round's —
    /// the oscillation/stall count the adaptive rule reacts to.
    std::size_t oscillations = 0;
    double gamma = 0.0;  ///< current speed after adaptation
  };
  const Diagnostics& diagnostics() const noexcept { return diagnostics_; }

 private:
  std::vector<double> capacity_;
  std::vector<double> prices_;
  std::vector<double> gamma_;  ///< per-node γ_i, refreshed when γ adapts
  CapacityPriceLoopOptions options_;
  Diagnostics diagnostics_;
  bool converged_ = false;
};

}  // namespace fap::catalog
