// Catalog allocation problem description.
//
// The paper allocates ONE file; a production system serves a catalog of
// K objects (K up to ~1e6) whose fragments compete for finite storage at
// every node. CatalogSpec is the joint problem: the shared network side
// (cost matrix, per-node service rates and capacity budgets B_i) plus a
// structure-of-arrays object side (per-object access rate λ_o, volume
// v_o, home node h_o). Objects interact ONLY through the per-node
// capacity constraints
//
//   Σ_o v_o x_i^o <= B_i        for every node i,
//
// which is exactly the storage-budgeted setting of Sardari et al.
// (PAPERS.md) and the capacity-capped video catalog of the onlineJCCP
// exemplar (SNIPPETS.md §1). The per-object objective is the paper's
// Eq. 1 single-file cost with a structured workload: a fraction
// `locality` (β) of object o's accesses originate at its home node, the
// rest follow the shared origin mix w_j, so the object's access-cost
// vector is
//
//   C_i^o = (1-β) Σ_j w_j c_ji + β c(h_o, i)
//
// — assembled in O(N) per object from the O(N²) base term Σ_j w_j c_ji
// computed once, which is what makes million-object rounds affordable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/cost_cache.hpp"
#include "net/cost_provider.hpp"
#include "net/shortest_paths.hpp"
#include "queueing/delay.hpp"

namespace fap::catalog {

struct CatalogSpec {
  // --- shared network side.
  net::CostMatrix comm{0};            ///< c_ij: least-cost access i -> j
  /// Row-based alternative to `comm` for large N: when set (and `comm` is
  /// empty) the solver streams provider rows instead of indexing a dense
  /// matrix — same bytes out (providers return bit-equal rows by
  /// contract), O(n + cached rows) memory instead of n². A populated
  /// `comm` always wins (the dense fast path stays the small-N default).
  std::shared_ptr<const net::CostProvider> comm_provider;
  std::vector<double> node_capacity;  ///< B_i, in volume units
  std::vector<double> mu;             ///< per-node service rates
  double k = 1.0;                     ///< delay-vs-communication scaling
  queueing::DelayModel delay;         ///< per-object queueing discipline
  /// Shared access-origin mix w_j (Σ = 1): where the non-local share of
  /// every object's accesses originates.
  std::vector<double> origin_weight;
  /// β in [0, 1]: fraction of each object's accesses originating at its
  /// home node (the rest follow origin_weight).
  double locality = 0.0;

  // --- object side, structure-of-arrays, one entry per object.
  std::vector<double> rate;           ///< λ_o > 0
  std::vector<double> volume;         ///< v_o > 0, in capacity units
  std::vector<std::uint32_t> home;    ///< h_o < node_count()

  std::size_t node_count() const noexcept { return mu.size(); }
  std::size_t object_count() const noexcept { return rate.size(); }

  /// Throws PreconditionError unless the spec is well-formed: matching
  /// sizes, positive rates/volumes/μ, locality in [0, 1], origin weights
  /// a distribution, total capacity holding the total volume, and — for
  /// pure (non-linearized) delay models — every object's full rate below
  /// every node's service capacity.
  void validate() const;
};

/// Knobs of the synthetic catalog generator (the bench/test workload).
struct SyntheticCatalogOptions {
  std::size_t objects = 1000;
  std::size_t nodes = 16;
  /// Zipf popularity exponent; object o's rate is proportional to
  /// fs::zipf_popularity(objects, zipf_s)[o].
  double zipf_s = 0.8;
  /// Capacity headroom: Σ B_i = (1 + headroom) · Σ v_o, spread uniformly
  /// over nodes.
  double headroom = 0.25;
  /// Home-node share of each object's accesses (spec.locality).
  double locality = 0.5;
  /// The hottest object's rate as a fraction of the (uniform) service
  /// rate μ = 1 — keeps every per-object queue stable with margin.
  double hottest_utilization = 0.5;
  double k = 1.0;
};

/// Deterministic synthetic catalog: a random-metric topology and origin
/// mix drawn from Rng(seed), Zipf rates, and per-object volume/home drawn
/// from Rng(runtime::task_seed(seed, o)) — each object's data is a pure
/// function of (seed, o), the same splitting contract as runtime::sweep,
/// so regenerating any subset of objects is order-independent.
CatalogSpec make_synthetic_catalog(const SyntheticCatalogOptions& options,
                                   std::uint64_t seed);

/// Cache-aware variant: identical result (the cache returns the matrix
/// all_pairs_shortest_paths would compute), but repeated calls with the
/// same (nodes, seed) — e.g. the bench's K-ladder — pay the APSP once.
CatalogSpec make_synthetic_catalog(const SyntheticCatalogOptions& options,
                                   std::uint64_t seed,
                                   net::CostMatrixCache& cache);

/// Explicit-network variant: same synthetic object/origin data (the RNG
/// streams do not depend on the network), but the communication side is
/// the caller's matrix — e.g. the APSP of a structured fat-tree /
/// geo-tiers topology instead of the default random metric. The matrix
/// must be options.nodes × options.nodes.
CatalogSpec make_synthetic_catalog(const SyntheticCatalogOptions& options,
                                   std::uint64_t seed, net::CostMatrix comm);

/// Provider-backed variant for large N: no dense matrix is built — the
/// solver streams rows from `comm` (which must span options.nodes nodes).
/// With a provider and matrix describing the same network, the solved
/// results are byte-identical.
CatalogSpec make_synthetic_catalog(
    const SyntheticCatalogOptions& options, std::uint64_t seed,
    std::shared_ptr<const net::CostProvider> comm);

}  // namespace fap::catalog
