// Price-decomposed catalog allocation.
//
// CatalogSolver runs the dual decomposition end to end:
//
//   1. Post per-node capacity prices p (CapacityPriceLoop, starting at 0).
//   2. Solve K independent single-file subproblems, object o seeing the
//      priced access costs C_i^o + v_o p_i — fed in 64-lane batches
//      through core::BatchAllocator, sharded across runtime::ThreadPool
//      via runtime::batch_sweep.
//   3. Account the resulting node loads Σ_o v_o x_i^o (compensated
//      summation in canonical object order) and let the price loop step;
//      repeat from 2 until the relative overload is within tolerance or
//      the round budget is spent.
//   4. Deterministic repair: greedily move fragments off any node still
//      over budget (coldest objects first, cheapest slack receiver by
//      priced cost) until every capacity holds exactly — the returned
//      allocation is always feasible, with residual <= ~1e-9·B.
//
// Determinism contract (pinned by catalog_solver_test): the result is a
// pure function of (spec, options) — bit-identical across --jobs and
// batch-width choices. Every parallel stage flows through batch_sweep
// (results flattened in object order), inner subproblem assembly is a
// pure function of (object, prices), load accounting and price updates
// run serially in canonical order, and the repair pass is serial. With
// K = 1 and slack capacity the loop converges at round 0 with zero
// prices, so the single inner solve IS the paper's algorithm on that
// object's single-file problem — bit-identical to the serial
// ResourceDirectedAllocator by the BatchAllocator equivalence contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "catalog/capacity_price_loop.hpp"
#include "catalog/catalog_spec.hpp"
#include "core/allocator.hpp"
#include "core/batch_allocator.hpp"
#include "runtime/metrics.hpp"

namespace fap::catalog {

struct CatalogOptions {
  /// Sweep workers for the inner-solve rounds (0 = hardware); the result
  /// is bit-identical for every value.
  std::size_t jobs = 1;
  /// Base seed of the runtime::sweep seed-splitting scheme. The solver
  /// itself is deterministic given the spec; the seed is threaded through
  /// so per-task --metrics records carry the same identity as every
  /// other sweep in the repo.
  std::uint64_t base_seed = 1;
  /// Objects per BatchAllocator submission batch (one sweep task each).
  std::size_t batch_width = core::BatchAllocator::kDefaultWidth;
  /// Inner resource-directed solve controls. The defaults here override
  /// the AllocatorOptions defaults: a catalog round solves ~1e6 small
  /// problems from warm (point-mass) starts, so a moderate fixed step
  /// and a bounded iteration budget beat the single-run defaults.
  core::AllocatorOptions inner = [] {
    core::AllocatorOptions options;
    options.alpha = 0.3;
    options.epsilon = 1e-4;
    options.max_iterations = 2000;
    return options;
  }();
  CapacityPriceLoopOptions price;
  /// When true (default) price.price_scale is replaced by a spec-derived
  /// scale: (spread of the base access costs + k/μ_min) per mean object
  /// volume — a full-node overload then reprices a typical object by
  /// about γ × the cost spread it chooses placements by.
  bool auto_price_scale = true;
  /// Safety margin for the repair pass, relative to each node's budget:
  /// overloaded nodes are drained to B_i(1 - margin) so the recomputed
  /// compensated load cannot round back above B_i. ~1e3×eps of slack —
  /// far below the 1e-9 residual the result guarantees.
  double repair_margin = 1e-12;
  std::size_t max_repair_passes = 8;
  /// Optional observability sink (not owned), forwarded to batch_sweep.
  runtime::MetricsSink* metrics = nullptr;
  std::string run_id;
};

/// One fragment of one object: `fraction` of the object at `node`.
struct Placement {
  std::uint32_t node = 0;
  double fraction = 0.0;
};

struct CatalogResult {
  /// CSR layout: object o's placements are
  /// placements[offsets[o] .. offsets[o + 1]). Fractions are the solved
  /// x_i^o > 0 (each object's row sums to 1).
  std::vector<std::uint32_t> offsets;
  std::vector<Placement> placements;

  std::vector<double> prices;     ///< final capacity prices p_i
  std::vector<double> node_load;  ///< Σ_o v_o x_i^o after repair
  /// Max over nodes of (load - capacity) in volume units, after repair.
  /// The acceptance contract is <= 1e-9.
  double residual = 0.0;
  double pre_repair_residual = 0.0;  ///< same, before repair
  std::size_t rounds = 0;            ///< inner-solve rounds executed
  bool price_converged = false;
  std::size_t oscillations = 0;     ///< from the price loop diagnostics
  double gamma = 0.0;               ///< final adapted speed
  std::size_t repair_moves = 0;
  /// Inner resource-directed iterations summed over the FINAL round
  /// (the work a steady-state re-solve at the posted prices costs).
  std::uint64_t inner_iterations = 0;
  std::size_t unconverged_objects = 0;  ///< final-round iteration-cap hits

  // onlineJCCP-style workload metrics of the final allocation.
  /// Fraction of total access traffic served at its origin node.
  double hit_rate = 0.0;
  /// Communication cost per unit time: Σ_o λ_o Σ_i C_i^o x_i^o.
  double external_traffic = 0.0;
  /// Mean placements per object (1 = everything point-mass).
  double mean_fragments = 0.0;
};

class CatalogSolver {
 public:
  /// Validates the spec. The spec reference must outlive the solver.
  CatalogSolver(const CatalogSpec& spec, CatalogOptions options);

  CatalogResult solve() const;

  /// Object o's priced access-cost vector C_i^o + v_o p_i — the exact
  /// values (same expressions, same order) the inner solves see.
  /// Exposed so the serial-reference bit-identity test can hand the
  /// identical vector to a SingleFileModel via access_cost_override.
  std::vector<double> object_access_cost(
      std::size_t o, const std::vector<double>& prices) const;

  /// Object o's deterministic start: a point mass on the node minimizing
  /// the full-concentration cost C_i^o + v_o p_i + k·T(λ_o, μ_i), ties
  /// to the lowest index. A pure function of (object, prices), so
  /// sharding cannot perturb it.
  std::vector<double> object_start(std::size_t o,
                                   const std::vector<double>& prices) const;

  /// Σ_j w_j c_ji — the shared O(N²) part of every object's access cost.
  const std::vector<double>& base_access_cost() const noexcept {
    return base_cost_;
  }

  const CatalogOptions& options() const noexcept { return options_; }

 private:
  struct ObjectAllocation {
    std::vector<Placement> placements;
    std::uint32_t iterations = 0;
    bool converged = false;
  };

  std::vector<ObjectAllocation> solve_round(
      const std::vector<double>& prices) const;
  std::vector<double> node_loads(
      const std::vector<ObjectAllocation>& allocations) const;
  void repair(std::vector<ObjectAllocation>& allocations,
              std::vector<double>& loads, const std::vector<double>& prices,
              CatalogResult& result) const;
  void assemble_access(std::size_t o, const std::vector<double>& prices,
                       double* out) const;
  std::size_t start_node(std::size_t o, const double* access) const;

  /// Source row j of c_ij from whichever communication side the spec
  /// carries: a zero-copy view into the dense matrix (fast path) or a
  /// provider row handle. Both return the same bytes by the provider
  /// contract, so every consumer below is provider-agnostic.
  net::CostRow comm_row(std::size_t j) const;

  const CatalogSpec& spec_;
  CatalogOptions options_;
  /// &spec_.comm when the spec carries a dense matrix, else nullptr and
  /// rows stream from spec_.comm_provider.
  const net::CostMatrix* dense_ = nullptr;
  std::vector<double> base_cost_;  ///< Σ_j w_j c_ji
};

}  // namespace fap::catalog
