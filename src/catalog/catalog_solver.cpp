#include "catalog/catalog_solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "runtime/sweep.hpp"
#include "util/contracts.hpp"
#include "util/numeric.hpp"

namespace fap::catalog {

CatalogSolver::CatalogSolver(const CatalogSpec& spec, CatalogOptions options)
    : spec_(spec), options_(std::move(options)) {
  spec_.validate();
  FAP_EXPECTS(options_.batch_width >= 1, "batch width must be at least 1");
  FAP_EXPECTS(options_.repair_margin >= 0.0 && options_.repair_margin < 1.0,
              "repair margin must be in [0, 1)");
  FAP_EXPECTS(options_.max_repair_passes >= 1,
              "need at least one repair pass");

  // Cbar_i = Σ_j w_j c_ji: the shared part of every object's access-cost
  // vector. Same accumulation pattern as SingleFileModel (j outer over
  // contiguous rows); the provider branch streams the identical rows in
  // the identical order, so dense- and provider-backed specs assemble the
  // same bytes.
  const std::size_t n = spec_.node_count();
  dense_ = spec_.comm.node_count() == n ? &spec_.comm : nullptr;
  base_cost_.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    const double weight = spec_.origin_weight[j];
    const net::CostRow row = comm_row(j);
    for (std::size_t i = 0; i < n; ++i) {
      base_cost_[i] += weight * row[i];
    }
  }

  if (options_.auto_price_scale) {
    // A price must be comparable, through v_o·p_i, to the cost spread an
    // object chooses placements by: the base access-cost spread plus the
    // no-load delay term. Normalizing by the mean volume makes the
    // typical object see ~γ × that spread per unit of relative overload.
    const auto [lo, hi] =
        std::minmax_element(base_cost_.begin(), base_cost_.end());
    const double mu_min =
        *std::min_element(spec_.mu.begin(), spec_.mu.end());
    const double cost_span = (*hi - *lo) + spec_.k / mu_min;
    const double mean_volume =
        util::stable_sum(spec_.volume) /
        static_cast<double>(spec_.object_count());
    options_.price.price_scale =
        cost_span > 0.0 && mean_volume > 0.0 ? cost_span / mean_volume : 1.0;
  }
}

net::CostRow CatalogSolver::comm_row(std::size_t j) const {
  if (dense_ != nullptr) {
    // Zero-copy view; spec_ outlives the solver by the ctor contract, so
    // no keepalive is needed.
    return net::CostRow(dense_->row(j), dense_->node_count(), nullptr);
  }
  return spec_.comm_provider->row(j);
}

void CatalogSolver::assemble_access(std::size_t o,
                                    const std::vector<double>& prices,
                                    double* out) const {
  const double beta = spec_.locality;
  const double base_share = 1.0 - beta;
  const double v = spec_.volume[o];
  const net::CostRow row = comm_row(spec_.home[o]);
  const std::size_t n = spec_.node_count();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = (base_share * base_cost_[i] + beta * row[i]) + v * prices[i];
  }
}

std::size_t CatalogSolver::start_node(std::size_t o,
                                      const double* access) const {
  // Cheapest full concentration: argmin_i C_i^o + v_o p_i + k·T(λ_o, μ_i)
  // (the priced access vector already carries the first two terms).
  // Strict < keeps the lowest index on ties.
  const double rate = spec_.rate[o];
  std::size_t best = 0;
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < spec_.node_count(); ++i) {
    const double cost =
        access[i] + spec_.k * spec_.delay.sojourn(rate, spec_.mu[i]);
    if (cost < best_cost) {
      best_cost = cost;
      best = i;
    }
  }
  return best;
}

std::vector<double> CatalogSolver::object_access_cost(
    std::size_t o, const std::vector<double>& prices) const {
  FAP_EXPECTS(o < spec_.object_count(), "object index out of range");
  FAP_EXPECTS(prices.size() == spec_.node_count(),
              "one price per node");
  std::vector<double> access(spec_.node_count());
  assemble_access(o, prices, access.data());
  return access;
}

std::vector<double> CatalogSolver::object_start(
    std::size_t o, const std::vector<double>& prices) const {
  const std::vector<double> access = object_access_cost(o, prices);
  std::vector<double> start(spec_.node_count(), 0.0);
  start[start_node(o, access.data())] = 1.0;
  return start;
}

std::vector<CatalogSolver::ObjectAllocation> CatalogSolver::solve_round(
    const std::vector<double>& prices) const {
  const std::size_t n = spec_.node_count();
  runtime::SweepOptions sweep_options;
  sweep_options.jobs = options_.jobs;
  sweep_options.base_seed = options_.base_seed;
  sweep_options.metrics = options_.metrics;
  sweep_options.run_id = options_.run_id;
  // make() tags items with their object index; all per-object state is a
  // pure function of (index, prices), so the sweep seed is unused here —
  // it exists so --metrics records line up with the repo's other sweeps.
  return runtime::batch_sweep(
      spec_.object_count(), options_.batch_width, sweep_options,
      [](std::size_t o, std::uint64_t) {
        return static_cast<std::uint32_t>(o);
      },
      [this, n, &prices](std::size_t,
                         const std::vector<std::uint32_t>& items) {
        core::BatchAllocator batch(items.size());
        std::vector<double> access(n);
        std::vector<double> start(n);
        for (const std::uint32_t o : items) {
          assemble_access(o, prices, access.data());
          std::fill(start.begin(), start.end(), 0.0);
          start[start_node(o, access.data())] = 1.0;
          core::BatchAllocator::RawInstance raw;
          raw.n = n;
          raw.total_rate = spec_.rate[o];
          raw.k = spec_.k;
          raw.delay = spec_.delay;
          raw.access_cost = access.data();
          raw.mu = spec_.mu.data();
          raw.start = start.data();
          batch.submit(raw, options_.inner);
        }
        std::vector<core::BatchRunResult> solved = batch.run_all();
        std::vector<ObjectAllocation> out;
        out.reserve(solved.size());
        for (const core::BatchRunResult& run : solved) {
          ObjectAllocation alloc;
          alloc.iterations = static_cast<std::uint32_t>(run.iterations);
          alloc.converged = run.converged;
          for (std::size_t i = 0; i < n; ++i) {
            if (run.x[i] != 0.0) {
              alloc.placements.push_back(
                  Placement{static_cast<std::uint32_t>(i), run.x[i]});
            }
          }
          out.push_back(std::move(alloc));
        }
        return out;
      });
}

std::vector<double> CatalogSolver::node_loads(
    const std::vector<ObjectAllocation>& allocations) const {
  // Canonical accounting: objects in index order, Neumaier-compensated
  // per node, so the loads (and every residual decision made from them)
  // are independent of how the solve was sharded and accurate to O(eps)
  // at a million addends.
  std::vector<util::NeumaierSum> acc(spec_.node_count());
  for (std::size_t o = 0; o < allocations.size(); ++o) {
    const double v = spec_.volume[o];
    for (const Placement& placement : allocations[o].placements) {
      acc[placement.node].add(v * placement.fraction);
    }
  }
  std::vector<double> loads(spec_.node_count());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    loads[i] = acc[i].value();
  }
  return loads;
}

void CatalogSolver::repair(std::vector<ObjectAllocation>& allocations,
                           std::vector<double>& loads,
                           const std::vector<double>& prices,
                           CatalogResult& result) const {
  const std::size_t n = spec_.node_count();
  std::vector<double> access(n);
  // Drain targets sit `repair_margin` below each budget so the canonical
  // recompute cannot round a drained node back over B_i.
  std::vector<double> target(n);
  for (std::size_t i = 0; i < n; ++i) {
    target[i] = spec_.node_capacity[i] * (1.0 - options_.repair_margin);
  }

  for (std::size_t pass = 0; pass < options_.max_repair_passes; ++pass) {
    bool any_overloaded = false;
    for (std::size_t i = 0; i < n; ++i) {
      any_overloaded |= loads[i] > spec_.node_capacity[i];
    }
    if (!any_overloaded) {
      break;
    }

    // Holders of fragments on overloaded nodes, built in one pass over
    // the catalog (ascending object index, so back() is the coldest —
    // highest-index — object under the synthetic generator's
    // rate-descending ordering, and a deterministic choice regardless).
    std::vector<std::vector<std::uint32_t>> holders(n);
    for (std::size_t o = 0; o < allocations.size(); ++o) {
      for (const Placement& placement : allocations[o].placements) {
        if (placement.fraction > 0.0 &&
            loads[placement.node] > spec_.node_capacity[placement.node]) {
          holders[placement.node].push_back(static_cast<std::uint32_t>(o));
        }
      }
    }

    for (std::size_t i = 0; i < n; ++i) {
      while (loads[i] > target[i] && !holders[i].empty()) {
        const std::uint32_t o = holders[i].back();
        holders[i].pop_back();
        std::vector<Placement>& placements = allocations[o].placements;
        auto source = std::find_if(
            placements.begin(), placements.end(),
            [i](const Placement& p) { return p.node == i; });
        if (source == placements.end() || source->fraction <= 0.0) {
          continue;
        }
        const double v = spec_.volume[o];
        assemble_access(o, prices, access.data());

        while (loads[i] > target[i] && source->fraction > 0.0) {
          // Cheapest receiver with slack, by the same priced cost the
          // inner solves minimize.
          std::size_t best = n;
          double best_cost = std::numeric_limits<double>::infinity();
          for (std::size_t j = 0; j < n; ++j) {
            if (j == i || loads[j] >= target[j]) {
              continue;
            }
            if (access[j] < best_cost) {
              best_cost = access[j];
              best = j;
            }
          }
          if (best == n) {
            // No slack anywhere: nothing more this pass (or any later
            // one) can move. Settle the books and report what remains.
            loads = node_loads(allocations);
            return;
          }
          double move = std::min(source->fraction,
                                 (loads[i] - target[i]) / v);
          move = std::min(move, (target[best] - loads[best]) / v);
          if (move <= 0.0) {
            break;
          }
          if (move >= source->fraction) {
            move = source->fraction;
            source->fraction = 0.0;
          } else {
            source->fraction -= move;
          }
          auto sink = std::find_if(
              placements.begin(), placements.end(),
              [best](const Placement& p) { return p.node == best; });
          if (sink == placements.end()) {
            placements.push_back(
                Placement{static_cast<std::uint32_t>(best), move});
            source = std::find_if(
                placements.begin(), placements.end(),
                [i](const Placement& p) { return p.node == i; });
          } else {
            sink->fraction += move;
          }
          loads[i] -= v * move;
          loads[best] += v * move;
          ++result.repair_moves;
        }
      }
    }
    // Canonical recompute: the incremental adds above are bookkeeping;
    // decisions for the next pass use the compensated ground truth.
    loads = node_loads(allocations);
  }
}

CatalogResult CatalogSolver::solve() const {
  CapacityPriceLoop loop(spec_.node_capacity, options_.price);

  CatalogResult result;
  std::vector<ObjectAllocation> allocations;
  std::vector<double> loads;
  while (true) {
    allocations = solve_round(loop.prices());
    ++result.rounds;
    loads = node_loads(allocations);
    if (loop.update(loads) || !loop.active()) {
      break;
    }
  }
  result.price_converged = loop.converged();
  result.oscillations = loop.diagnostics().oscillations;
  result.gamma = loop.diagnostics().gamma;
  result.prices = loop.prices();

  const std::size_t n = spec_.node_count();
  double residual = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    residual = std::max(residual, loads[i] - spec_.node_capacity[i]);
  }
  result.pre_repair_residual = std::max(0.0, residual);

  repair(allocations, loads, result.prices, result);

  result.node_load = loads;
  residual = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    residual = std::max(residual, loads[i] - spec_.node_capacity[i]);
  }
  result.residual = std::max(0.0, residual);

  // Final CSR + the onlineJCCP-style workload metrics.
  const std::size_t count = spec_.object_count();
  const double beta = spec_.locality;
  const double base_share = 1.0 - beta;
  result.offsets.resize(count + 1);
  util::NeumaierSum rate_total;
  util::NeumaierSum hit_traffic;
  util::NeumaierSum comm_traffic;
  std::size_t fragment_total = 0;
  std::uint64_t iteration_total = 0;
  for (std::size_t o = 0; o < count; ++o) {
    result.offsets[o] =
        static_cast<std::uint32_t>(result.placements.size());
    const ObjectAllocation& alloc = allocations[o];
    iteration_total += alloc.iterations;
    if (!alloc.converged) {
      ++result.unconverged_objects;
    }
    const double rate = spec_.rate[o];
    const std::uint32_t home = spec_.home[o];
    const net::CostRow row = comm_row(home);
    double hit = 0.0;
    double comm_cost = 0.0;
    for (const Placement& placement : alloc.placements) {
      if (placement.fraction <= 0.0) {
        continue;  // entries drained to exactly 0 by the repair pass
      }
      result.placements.push_back(placement);
      ++fragment_total;
      const double unpriced = base_share * base_cost_[placement.node] +
                              beta * row[placement.node];
      comm_cost += placement.fraction * unpriced;
      // An access is a "hit" when it is served where it originated:
      // origin node j hosts share x_j, and object o's origins are the
      // (1-β) w_j mix plus the β home-node mass.
      hit += placement.fraction *
             (base_share * spec_.origin_weight[placement.node] +
              (placement.node == home ? beta : 0.0));
    }
    rate_total.add(rate);
    hit_traffic.add(rate * hit);
    comm_traffic.add(rate * comm_cost);
  }
  result.offsets[count] =
      static_cast<std::uint32_t>(result.placements.size());
  result.inner_iterations = iteration_total;
  result.hit_rate = hit_traffic.value() / rate_total.value();
  result.external_traffic = comm_traffic.value();
  result.mean_fragments =
      static_cast<double>(fragment_total) / static_cast<double>(count);
  return result;
}

}  // namespace fap::catalog
