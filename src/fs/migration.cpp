#include "fs/migration.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace fap::fs {

std::vector<Transfer> plan_migration(const FragmentMap& from,
                                     const FragmentMap& to) {
  FAP_EXPECTS(from.record_count() == to.record_count(),
              "layouts must describe the same file");
  FAP_EXPECTS(from.node_count() == to.node_count(),
              "layouts must cover the same nodes");

  // Sweep the record space once; each maximal run of records with the
  // same (old home, new home) pair where the homes differ becomes one
  // transfer.
  std::vector<Transfer> plan;
  const std::size_t records = from.record_count();
  std::size_t r = 0;
  while (r < records) {
    const net::NodeId old_home = from.node_of(r);
    const net::NodeId new_home = to.node_of(r);
    // End of the run: the smaller of the two containing ranges' ends.
    const std::size_t run_end =
        std::min(from.range_at(old_home).end, to.range_at(new_home).end);
    if (old_home != new_home) {
      plan.push_back(Transfer{RecordRange{r, run_end}, old_home, new_home});
    }
    r = run_end;
  }
  return plan;
}

std::vector<net::NodeId> apply_migration(const FragmentMap& from,
                                         const std::vector<Transfer>& plan) {
  std::vector<net::NodeId> homes(from.record_count());
  for (net::NodeId node = 0; node < from.node_count(); ++node) {
    const RecordRange& range = from.range_at(node);
    for (std::size_t r = range.begin; r < range.end; ++r) {
      homes[r] = node;
    }
  }
  for (const Transfer& transfer : plan) {
    FAP_EXPECTS(transfer.range.end <= from.record_count(),
                "transfer range outside the file");
    FAP_EXPECTS(transfer.source != transfer.target,
                "a transfer must change the record's home");
    for (std::size_t r = transfer.range.begin; r < transfer.range.end; ++r) {
      FAP_EXPECTS(homes[r] == transfer.source,
                  "transfer source does not hold the record");
      homes[r] = transfer.target;
    }
  }
  return homes;
}

std::size_t migration_volume(const std::vector<Transfer>& plan) {
  std::size_t volume = 0;
  for (const Transfer& transfer : plan) {
    volume += transfer.records();
  }
  return volume;
}

MigrationSchedule schedule_waves(const std::vector<Transfer>& plan,
                                 std::size_t node_count,
                                 std::size_t max_transfers_per_node) {
  FAP_EXPECTS(max_transfers_per_node >= 1,
              "each node must be allowed at least one transfer per wave");
  MigrationSchedule schedule;
  schedule.wave_of.assign(plan.size(), 0);

  // busy[w * node_count + i]: transfers node i participates in at wave w.
  std::vector<std::vector<std::size_t>> busy;  // per wave, per node
  for (std::size_t t = 0; t < plan.size(); ++t) {
    FAP_EXPECTS(plan[t].source < node_count && plan[t].target < node_count,
                "transfer references an unknown node");
    FAP_EXPECTS(plan[t].source != plan[t].target,
                "a transfer must change the record's home");
    std::size_t wave = 0;
    for (;; ++wave) {
      if (wave == busy.size()) {
        busy.emplace_back(node_count, 0);
        schedule.wave_volume.push_back(0);
      }
      if (busy[wave][plan[t].source] < max_transfers_per_node &&
          busy[wave][plan[t].target] < max_transfers_per_node) {
        break;
      }
    }
    ++busy[wave][plan[t].source];
    ++busy[wave][plan[t].target];
    schedule.wave_of[t] = wave;
    schedule.wave_volume[wave] += plan[t].records();
  }
  schedule.wave_count = busy.size();
  return schedule;
}

}  // namespace fap::fs
