#include "fs/popularity.hpp"

#include <cmath>

#include "util/contracts.hpp"
#include "util/numeric.hpp"

namespace fap::fs {

std::vector<double> uniform_popularity(std::size_t record_count) {
  FAP_EXPECTS(record_count >= 1, "need at least one record");
  return std::vector<double>(record_count,
                             1.0 / static_cast<double>(record_count));
}

std::vector<double> zipf_popularity(std::size_t record_count, double s) {
  FAP_EXPECTS(record_count >= 1, "need at least one record");
  FAP_EXPECTS(s >= 0.0, "Zipf exponent must be non-negative");
  std::vector<double> weights(record_count, 0.0);
  for (std::size_t r = 0; r < record_count; ++r) {
    weights[r] = std::pow(static_cast<double>(r + 1), -s);
  }
  return normalized_popularity(std::move(weights));
}

std::vector<double> normalized_popularity(std::vector<double> weights) {
  FAP_EXPECTS(!weights.empty(), "need at least one record");
  // Neumaier-compensated total: a naive sum of 1e6 same-sign weights
  // carries ~5e-11 relative error, and dividing by it would push Σp_r
  // that far from 1. With the compensated total the normalized masses
  // sum to 1 within a few eps (~1e-15 at R = 1e6, pinned by fs tests).
  util::NeumaierSum total;
  for (const double w : weights) {
    FAP_EXPECTS(w >= 0.0, "weights must be non-negative");
    total.add(w);
  }
  const double t = total.value();
  FAP_EXPECTS(t > 0.0, "total weight must be positive");
  for (double& w : weights) {
    w /= t;
  }
  return weights;
}

std::vector<double> node_access_shares(
    const FragmentMap& layout, const std::vector<double>& popularity) {
  FAP_EXPECTS(popularity.size() == layout.record_count(),
              "one popularity per record");
  std::vector<double> shares(layout.node_count(), 0.0);
  for (net::NodeId node = 0; node < layout.node_count(); ++node) {
    const RecordRange& range = layout.range_at(node);
    for (std::size_t r = range.begin; r < range.end; ++r) {
      shares[node] += popularity[r];
    }
  }
  return shares;
}

FragmentMap popularity_split(const std::vector<double>& popularity,
                             const std::vector<double>& shares) {
  FAP_EXPECTS(!popularity.empty(), "need at least one record");
  FAP_EXPECTS(!shares.empty(), "need at least one node");
  util::NeumaierSum pop_total;
  for (const double p : popularity) {
    FAP_EXPECTS(p >= 0.0, "popularity must be non-negative");
    pop_total.add(p);
  }
  util::NeumaierSum share_total;
  for (const double s : shares) {
    FAP_EXPECTS(s >= 0.0, "shares must be non-negative");
    share_total.add(s);
  }
  const double mass = pop_total.value();
  const double share_sum = share_total.value();
  FAP_EXPECTS(mass > 0.0, "total popularity must be positive");
  FAP_EXPECTS(share_sum > 0.0, "total share must be positive");

  // One pass over the record space: node i's range closes at the record
  // where the cumulative popularity is nearest the cumulative target
  // mass Σ_{j<=i} shares_j · mass. The last node takes the remainder, so
  // every record is assigned exactly once.
  const std::size_t n = shares.size();
  std::vector<std::size_t> counts(n, 0);
  util::NeumaierSum target_acc;
  util::NeumaierSum cum;
  std::size_t r = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    target_acc.add(shares[i] / share_sum * mass);
    const double target = target_acc.value();
    std::size_t taken = 0;
    while (r < popularity.size()) {
      const double before = cum.value();
      if (before >= target) {
        break;
      }
      // Take record r only if doing so lands the cumulative mass no
      // further from the target than stopping here would.
      const double after = before + popularity[r];
      if (after - target > target - before) {
        break;
      }
      cum.add(popularity[r]);
      ++r;
      ++taken;
    }
    counts[i] = taken;
  }
  counts[n - 1] = popularity.size() - r;
  return FragmentMap(std::move(counts));
}

RecordSampler::RecordSampler(const std::vector<double>& popularity)
    : alias_([&popularity] {
        // Keep the CDF-era contract strictly: every mass must be
        // non-negative (AliasSampler alone would clamp tiny negative
        // dust) and the masses must form a distribution. The
        // distribution-sum check is delegated to AliasSampler's own
        // total-within-1e-6 validation.
        FAP_EXPECTS(!popularity.empty(), "need at least one record");
        for (const double p : popularity) {
          FAP_EXPECTS(p >= 0.0, "popularity must be non-negative");
        }
        return popularity;
      }()) {}

}  // namespace fap::fs
