#include "fs/popularity.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace fap::fs {

std::vector<double> uniform_popularity(std::size_t record_count) {
  FAP_EXPECTS(record_count >= 1, "need at least one record");
  return std::vector<double>(record_count,
                             1.0 / static_cast<double>(record_count));
}

std::vector<double> zipf_popularity(std::size_t record_count, double s) {
  FAP_EXPECTS(record_count >= 1, "need at least one record");
  FAP_EXPECTS(s >= 0.0, "Zipf exponent must be non-negative");
  std::vector<double> weights(record_count, 0.0);
  for (std::size_t r = 0; r < record_count; ++r) {
    weights[r] = std::pow(static_cast<double>(r + 1), -s);
  }
  return normalized_popularity(std::move(weights));
}

std::vector<double> normalized_popularity(std::vector<double> weights) {
  FAP_EXPECTS(!weights.empty(), "need at least one record");
  double total = 0.0;
  for (const double w : weights) {
    FAP_EXPECTS(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  FAP_EXPECTS(total > 0.0, "total weight must be positive");
  for (double& w : weights) {
    w /= total;
  }
  return weights;
}

std::vector<double> node_access_shares(
    const FragmentMap& layout, const std::vector<double>& popularity) {
  FAP_EXPECTS(popularity.size() == layout.record_count(),
              "one popularity per record");
  std::vector<double> shares(layout.node_count(), 0.0);
  for (net::NodeId node = 0; node < layout.node_count(); ++node) {
    const RecordRange& range = layout.range_at(node);
    for (std::size_t r = range.begin; r < range.end; ++r) {
      shares[node] += popularity[r];
    }
  }
  return shares;
}

RecordSampler::RecordSampler(const std::vector<double>& popularity) {
  FAP_EXPECTS(!popularity.empty(), "need at least one record");
  cumulative_.reserve(popularity.size());
  double sum = 0.0;
  for (const double p : popularity) {
    FAP_EXPECTS(p >= 0.0, "popularity must be non-negative");
    sum += p;
    cumulative_.push_back(sum);
  }
  FAP_EXPECTS(std::fabs(sum - 1.0) < 1e-6,
              "popularity must be a distribution");
  cumulative_.back() = 1.0;
}

std::size_t RecordSampler::sample(util::Rng& rng) const {
  const double u = rng.uniform();
  const auto it =
      std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<std::size_t>(it - cumulative_.begin());
}

}  // namespace fap::fs
