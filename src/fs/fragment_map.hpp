// Record-granular realization of a fractional allocation.
//
// The paper: "a file is essentially a sequence of records. These records
// are the components of the file that reside entirely on a single node";
// after the algorithm converges, "the real-number fractions will have to
// be rounded or truncated in some suitable manner so that the file, when
// split according to these rounded-off fractions, will fragment at record
// boundaries" (Section 8.1). A FragmentMap is that rounded split: a
// partition of records 0..R-1 into contiguous ranges, one range per node
// (possibly empty), in node order.
#pragma once

#include <cstddef>
#include <vector>

#include "net/topology.hpp"

namespace fap::fs {

/// Half-open record range [begin, end).
struct RecordRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const noexcept { return end - begin; }
  bool contains(std::size_t record) const noexcept {
    return record >= begin && record < end;
  }
};

class FragmentMap {
 public:
  /// Builds the record split realizing fractional allocation `x` (which
  /// must be non-negative and sum to ~1) over `record_count` records,
  /// using largest-remainder rounding so record counts match fractions as
  /// closely as possible and every record is assigned exactly once.
  static FragmentMap from_allocation(std::size_t record_count,
                                     const std::vector<double>& x);

  /// Builds directly from per-node record counts (must sum to the file's
  /// record count).
  explicit FragmentMap(std::vector<std::size_t> records_per_node);

  std::size_t node_count() const noexcept { return ranges_.size(); }
  std::size_t record_count() const noexcept { return record_count_; }

  /// The node holding `record` (O(log N) search over range starts).
  net::NodeId node_of(std::size_t record) const;

  /// The contiguous range stored at `node` (empty range if none).
  const RecordRange& range_at(net::NodeId node) const;

  /// Records stored at `node`.
  std::size_t records_at(net::NodeId node) const;

  /// Fraction of the file stored at `node` (records_at / record_count).
  double fraction_at(net::NodeId node) const;

  /// Fractions for all nodes — the deployed allocation vector.
  std::vector<double> fractions() const;

 private:
  std::vector<RecordRange> ranges_;  // indexed by node, contiguous in order
  std::vector<std::size_t> starts_;  // range begins, for binary search
  std::size_t record_count_ = 0;
};

}  // namespace fap::fs
