// Non-uniform record access, end to end — the relaxation Section 4
// promises ("although this can be easily relaxed").
//
// With record popularities p_r, the quantity Eq. 1 actually depends on is
// each node's *access share* q_i = Σ_{r at i} p_r: the communication term
// weights routes by q_i and the arrival rate at node i is λ q_i. The
// optimization is therefore unchanged — run the Section 5 algorithm with
// q in place of x — and deployment becomes a packing problem: choose a
// record-to-node assignment whose realized shares match the optimal q*.
//
// pack_records() uses a greedy largest-first heuristic (records in
// decreasing popularity, each to the node with the largest remaining
// share deficit), which is within max_r p_r of the target on every node.
// The cost of the packed assignment is compared against the fractional
// optimum (a lower bound) in tests and in bench/ablation_zipf.
//
// A consequence worth noting: under skew, *storage* fractions and *access*
// shares diverge — a node can optimally hold 1% of the bytes (a few hot
// records) while serving 30% of the traffic.
#pragma once

#include <cstddef>
#include <vector>

#include "core/allocator.hpp"
#include "core/single_file.hpp"
#include "net/topology.hpp"

namespace fap::fs {

/// A (not necessarily contiguous) record-to-node assignment.
struct RecordAssignment {
  std::vector<net::NodeId> record_to_node;
  /// Realized access share per node: Σ p_r over its records.
  std::vector<double> achieved_shares;
  /// Fraction of records (storage) per node.
  std::vector<double> storage_fractions;
};

/// Greedy largest-first packing of records into `node_count` nodes so the
/// realized shares approximate `target_shares` (non-negative, summing to
/// ~1). Every record is assigned exactly once.
RecordAssignment pack_records(const std::vector<double>& popularity,
                              const std::vector<double>& target_shares);

struct WeightedPlacement {
  std::vector<double> target_shares;  ///< q* from the optimizer
  RecordAssignment assignment;
  double fractional_cost = 0.0;  ///< Eq. 1 at q* (lower bound)
  double achieved_cost = 0.0;    ///< Eq. 1 at the realized shares
};

/// Full pipeline: optimize access shares on `model` with the
/// resource-directed algorithm, then pack `popularity`-weighted records to
/// realize them.
WeightedPlacement optimize_record_placement(
    const core::SingleFileModel& model,
    const std::vector<double>& popularity,
    const core::AllocatorOptions& options);

}  // namespace fap::fs
