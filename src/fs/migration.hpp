// Migration planning: turning a re-optimization into an executable,
// bandwidth-limited transfer schedule.
//
// The paper's adaptive vision (Section 8) re-runs the algorithm as the
// workload drifts; each re-run produces a new record layout, and the
// delta between layouts is real data that must move over the network.
// Directory::migration_records counts the moved records; this module
// plans the move itself:
//
//   * plan_migration: the exact set of record ranges that change homes
//     (minimal for contiguous layouts: only the non-overlapping parts of
//     each node's old range move);
//   * schedule_waves: packs the transfers into waves such that no node
//     participates in more than `max_transfers_per_node` concurrent
//     transfers per wave (greedy graph-coloring of the transfer
//     conflict structure) — the knob that trades migration speed against
//     interference with foreground traffic.
#pragma once

#include <cstddef>
#include <vector>

#include "fs/fragment_map.hpp"
#include "net/topology.hpp"

namespace fap::fs {

/// One contiguous transfer: `range` moves from `source` to `target`.
struct Transfer {
  RecordRange range;
  net::NodeId source = 0;
  net::NodeId target = 0;
  std::size_t records() const noexcept { return range.size(); }
};

/// The ranges that change homes between two layouts of the same file,
/// in record order. Records whose node is unchanged do not appear.
std::vector<Transfer> plan_migration(const FragmentMap& from,
                                     const FragmentMap& to);

/// Total records moved by a plan (equals
/// Directory::migration_records(from -> to)).
std::size_t migration_volume(const std::vector<Transfer>& plan);

/// Replays a plan against `from` and returns the resulting per-record
/// home vector (index = record). Each transfer must move records that
/// actually live at its source — applying a plan to a layout it was not
/// planned from throws. The result of applying plan_migration(from, to)
/// matches `to` record for record (pinned by a property test); the
/// record-granular return type exists because intermediate states (a
/// partially executed plan) need not be contiguous.
std::vector<net::NodeId> apply_migration(const FragmentMap& from,
                                         const std::vector<Transfer>& plan);

/// Groups transfers into waves; within a wave every node appears as
/// source or target at most `max_transfers_per_node` times. Transfers
/// within a wave may run concurrently. Greedy first-fit over the plan
/// order; returns wave indices parallel to `plan`.
struct MigrationSchedule {
  /// wave_of[t]: wave index assigned to plan[t].
  std::vector<std::size_t> wave_of;
  std::size_t wave_count = 0;
  /// Records moved per wave (the per-wave network bill).
  std::vector<std::size_t> wave_volume;
};
MigrationSchedule schedule_waves(const std::vector<Transfer>& plan,
                                 std::size_t node_count,
                                 std::size_t max_transfers_per_node = 1);

}  // namespace fap::fs
