#include "fs/lock_manager.hpp"

#include <algorithm>
#include <functional>
#include <set>

#include "util/contracts.hpp"

namespace fap::fs {

bool LockManager::compatible(const RecordLock& lock, const Request& request) {
  if (lock.holders.empty()) {
    return true;
  }
  if (request.mode == LockMode::kExclusive) {
    return false;
  }
  // Shared request: compatible iff every holder is shared.
  return std::all_of(lock.holders.begin(), lock.holders.end(),
                     [](const Request& holder) {
                       return holder.mode == LockMode::kShared;
                     });
}

LockOutcome LockManager::acquire(TxnId txn, std::size_t record,
                                 LockMode mode) {
  RecordLock& lock = records_[record];

  // Re-entrant handling.
  const auto held = std::find_if(
      lock.holders.begin(), lock.holders.end(),
      [txn](const Request& holder) { return holder.txn == txn; });
  if (held != lock.holders.end()) {
    if (mode == LockMode::kShared || held->mode == LockMode::kExclusive) {
      return LockOutcome::kGranted;  // already sufficient
    }
    // Shared -> exclusive upgrade: only when sole holder.
    if (lock.holders.size() == 1) {
      held->mode = LockMode::kExclusive;
      return LockOutcome::kGranted;
    }
    lock.queue.push_back(Request{txn, mode});
    return LockOutcome::kQueued;
  }

  // FIFO fairness: jumpers are not allowed past an existing queue.
  if (lock.queue.empty() && compatible(lock, Request{txn, mode})) {
    lock.holders.push_back(Request{txn, mode});
    return LockOutcome::kGranted;
  }
  lock.queue.push_back(Request{txn, mode});
  return LockOutcome::kQueued;
}

void LockManager::grant_from_queue(RecordLock& lock) {
  while (!lock.queue.empty()) {
    const Request& head = lock.queue.front();
    // Upgrade request becoming grantable?
    const auto held = std::find_if(
        lock.holders.begin(), lock.holders.end(),
        [&head](const Request& holder) { return holder.txn == head.txn; });
    if (held != lock.holders.end()) {
      if (lock.holders.size() == 1) {
        held->mode = LockMode::kExclusive;
        lock.queue.erase(lock.queue.begin());
        continue;
      }
      break;
    }
    if (!compatible(lock, head)) {
      break;
    }
    lock.holders.push_back(head);
    lock.queue.erase(lock.queue.begin());
  }
}

void LockManager::release_all(TxnId txn) {
  for (auto it = records_.begin(); it != records_.end();) {
    RecordLock& lock = it->second;
    lock.holders.erase(
        std::remove_if(lock.holders.begin(), lock.holders.end(),
                       [txn](const Request& r) { return r.txn == txn; }),
        lock.holders.end());
    lock.queue.erase(
        std::remove_if(lock.queue.begin(), lock.queue.end(),
                       [txn](const Request& r) { return r.txn == txn; }),
        lock.queue.end());
    grant_from_queue(lock);
    if (lock.holders.empty() && lock.queue.empty()) {
      it = records_.erase(it);
    } else {
      ++it;
    }
  }
}

bool LockManager::holds(TxnId txn, std::size_t record) const {
  const auto it = records_.find(record);
  if (it == records_.end()) {
    return false;
  }
  return std::any_of(it->second.holders.begin(), it->second.holders.end(),
                     [txn](const Request& r) { return r.txn == txn; });
}

std::vector<TxnId> LockManager::holders(std::size_t record) const {
  std::vector<TxnId> result;
  const auto it = records_.find(record);
  if (it != records_.end()) {
    for (const Request& request : it->second.holders) {
      result.push_back(request.txn);
    }
  }
  return result;
}

std::vector<TxnId> LockManager::waiters(std::size_t record) const {
  std::vector<TxnId> result;
  const auto it = records_.find(record);
  if (it != records_.end()) {
    for (const Request& request : it->second.queue) {
      result.push_back(request.txn);
    }
  }
  return result;
}

std::size_t LockManager::held_count() const {
  std::size_t count = 0;
  for (const auto& [record, lock] : records_) {
    count += lock.holders.size();
  }
  return count;
}

std::vector<TxnId> LockManager::find_deadlock() const {
  // Waits-for edges: waiting txn -> every holder of the record it waits
  // on (and, for FIFO blocking, every earlier waiter too — they must
  // complete first).
  std::map<TxnId, std::set<TxnId>> waits_for;
  for (const auto& [record, lock] : records_) {
    for (std::size_t q = 0; q < lock.queue.size(); ++q) {
      const TxnId waiter = lock.queue[q].txn;
      for (const Request& holder : lock.holders) {
        if (holder.txn != waiter) {
          waits_for[waiter].insert(holder.txn);
        }
      }
      for (std::size_t earlier = 0; earlier < q; ++earlier) {
        if (lock.queue[earlier].txn != waiter) {
          waits_for[waiter].insert(lock.queue[earlier].txn);
        }
      }
    }
  }

  // Depth-first cycle search over the waits-for graph.
  enum class Color { kWhite, kGray, kBlack };
  std::map<TxnId, Color> color;
  std::vector<TxnId> stack;
  std::vector<TxnId> cycle;

  std::function<bool(TxnId)> visit = [&](TxnId txn) -> bool {
    color[txn] = Color::kGray;
    stack.push_back(txn);
    const auto edges = waits_for.find(txn);
    if (edges != waits_for.end()) {
      for (const TxnId next : edges->second) {
        const auto state = color.find(next);
        if (state != color.end() && state->second == Color::kGray) {
          // Found a cycle: extract it from the stack.
          const auto start =
              std::find(stack.begin(), stack.end(), next);
          cycle.assign(start, stack.end());
          return true;
        }
        if (state == color.end() || state->second == Color::kWhite) {
          if (visit(next)) {
            return true;
          }
        }
      }
    }
    color[txn] = Color::kBlack;
    stack.pop_back();
    return false;
  };

  for (const auto& [txn, edges] : waits_for) {
    const auto state = color.find(txn);
    if (state == color.end() || state->second == Color::kWhite) {
      if (visit(txn)) {
        return cycle;
      }
    }
  }
  return {};
}

}  // namespace fap::fs
