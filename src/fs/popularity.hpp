// Record popularity distributions.
//
// Section 4 assumes "the individual records with a file are accessed on a
// uniform basis (although this can be easily relaxed)". This header is
// the relaxation: popularity vectors (uniform, Zipf, custom), a sampler
// for workload generation, and helpers to aggregate record popularity
// into per-node access probabilities under a given fragment layout.
#pragma once

#include <cstddef>
#include <vector>

#include "fs/fragment_map.hpp"
#include "sim/alias_sampler.hpp"
#include "util/rng.hpp"

namespace fap::fs {

/// Revision of RecordSampler's draw implementation. The sampled
/// distribution is pinned across revisions (chi-squared + table mass
/// accounting in fs_record_sampler_test), but the map from a uniform draw
/// to a concrete record is not: bumping this constant re-routes
/// individual draws, so any fixed-seed record stream shifts within its
/// statistical tolerances.
///
/// Revision history:
///   1 — inverse-CDF binary search (O(log R) per draw over a prefix
///       array: cache-hostile at catalog scale, R ~ 1e6).
///   2 — Walker/Vose alias table (sim::AliasSampler): O(1) per draw,
///       same one-uniform-per-sample stream alignment.
inline constexpr int kRecordSamplerRevision = 2;

/// Uniform popularity: every record accessed with probability 1/R.
std::vector<double> uniform_popularity(std::size_t record_count);

/// Zipf popularity with exponent `s` (s = 0 is uniform): p_r ∝ 1/(r+1)^s,
/// normalized. Rank order = record order (record 0 hottest).
std::vector<double> zipf_popularity(std::size_t record_count, double s);

/// Normalizes an arbitrary non-negative weight vector into a popularity
/// distribution.
std::vector<double> normalized_popularity(std::vector<double> weights);

/// Per-node access probability under `layout`:
/// q_i = Σ_{r stored at i} p_r — the quantity that replaces x_i in Eq. 1
/// when record access is non-uniform.
std::vector<double> node_access_shares(const FragmentMap& layout,
                                       const std::vector<double>& popularity);

/// Inverse of node_access_shares for contiguous layouts: a FragmentMap
/// whose per-node POPULARITY MASS (not record count) approximates the
/// target shares — the rounding step that deploys an allocator solution
/// x when record access is non-uniform. FragmentMap::from_allocation
/// splits by record count, which under Zipf popularity hands the first
/// node nearly all the traffic regardless of x; this split walks the
/// record space once and closes each node's range at the record that
/// lands the cumulative mass nearest the cumulative target share.
/// `shares` must be non-negative with a positive sum (it is normalized
/// internally); a zero share is legal and yields an empty range.
FragmentMap popularity_split(const std::vector<double>& popularity,
                             const std::vector<double>& shares);

/// Draws records according to a popularity distribution. One uniform per
/// draw through a Walker/Vose alias table (kRecordSamplerRevision 2), so
/// sampling is O(1) regardless of the record count.
class RecordSampler {
 public:
  explicit RecordSampler(const std::vector<double>& popularity);
  std::size_t sample(util::Rng& rng) const {
    return alias_.sample(rng.uniform());
  }

  std::size_t record_count() const noexcept { return alias_.size(); }

  /// The underlying alias table, exposed for the mass-accounting tests
  /// (outcome i's table mass must equal popularity[i] exactly, see
  /// sim::AliasSampler::acceptance()).
  const sim::AliasSampler& table() const noexcept { return alias_; }

 private:
  sim::AliasSampler alias_;
};

}  // namespace fap::fs
