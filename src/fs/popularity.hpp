// Record popularity distributions.
//
// Section 4 assumes "the individual records with a file are accessed on a
// uniform basis (although this can be easily relaxed)". This header is
// the relaxation: popularity vectors (uniform, Zipf, custom), a sampler
// for workload generation, and helpers to aggregate record popularity
// into per-node access probabilities under a given fragment layout.
#pragma once

#include <cstddef>
#include <vector>

#include "fs/fragment_map.hpp"
#include "util/rng.hpp"

namespace fap::fs {

/// Uniform popularity: every record accessed with probability 1/R.
std::vector<double> uniform_popularity(std::size_t record_count);

/// Zipf popularity with exponent `s` (s = 0 is uniform): p_r ∝ 1/(r+1)^s,
/// normalized. Rank order = record order (record 0 hottest).
std::vector<double> zipf_popularity(std::size_t record_count, double s);

/// Normalizes an arbitrary non-negative weight vector into a popularity
/// distribution.
std::vector<double> normalized_popularity(std::vector<double> weights);

/// Per-node access probability under `layout`:
/// q_i = Σ_{r stored at i} p_r — the quantity that replaces x_i in Eq. 1
/// when record access is non-uniform.
std::vector<double> node_access_shares(const FragmentMap& layout,
                                       const std::vector<double>& popularity);

/// Draws records according to a popularity distribution (inverse-CDF).
class RecordSampler {
 public:
  explicit RecordSampler(const std::vector<double>& popularity);
  std::size_t sample(util::Rng& rng) const;

 private:
  std::vector<double> cumulative_;
};

}  // namespace fap::fs
