#include "fs/directory.hpp"

#include "util/contracts.hpp"

namespace fap::fs {

Directory::Directory(FragmentMap initial) : map_(std::move(initial)) {}

net::NodeId Directory::lookup(std::size_t record) const {
  return map_.node_of(record);
}

void Directory::install(FragmentMap next) {
  FAP_EXPECTS(next.record_count() == map_.record_count(),
              "new layout must describe the same file");
  FAP_EXPECTS(next.node_count() == map_.node_count(),
              "new layout must cover the same nodes");
  map_ = std::move(next);
  ++version_;
}

std::size_t Directory::migration_records(const FragmentMap& next) const {
  FAP_EXPECTS(next.record_count() == map_.record_count() &&
                  next.node_count() == map_.node_count(),
              "layouts must describe the same file and nodes");
  // Count per-node overlap of the two contiguous ranges; moved records are
  // everything else.
  std::size_t stationary = 0;
  for (net::NodeId node = 0; node < map_.node_count(); ++node) {
    const RecordRange& a = map_.range_at(node);
    const RecordRange& b = next.range_at(node);
    const std::size_t lo = std::max(a.begin, b.begin);
    const std::size_t hi = std::min(a.end, b.end);
    if (hi > lo) {
      stationary += hi - lo;
    }
  }
  return map_.record_count() - stationary;
}

}  // namespace fap::fs
