// The directory service of Section 4: "when a process needs to access
// certain records in a file, it would use some table look-up (directory)
// procedure in order to determine to which node it should address its
// file access."
//
// A Directory wraps the current FragmentMap behind a versioned lookup so
// a running system can atomically swap in a re-optimized layout (the
// nightly / adaptive scenarios): lookups against the old version keep
// resolving until the swap, and the version counter lets caches detect
// staleness.
#pragma once

#include <cstddef>

#include "fs/fragment_map.hpp"
#include "net/topology.hpp"

namespace fap::fs {

class Directory {
 public:
  explicit Directory(FragmentMap initial);

  /// Node currently responsible for `record`.
  net::NodeId lookup(std::size_t record) const;

  /// Atomically installs a new layout; the version counter advances.
  /// The new map must describe the same file (same record count) over the
  /// same set of nodes.
  void install(FragmentMap next);

  /// Monotone layout version, starting at 1.
  std::size_t version() const noexcept { return version_; }

  const FragmentMap& current() const noexcept { return map_; }

  /// Records whose home moves when migrating from the current layout to
  /// `next` — the data-migration bill of a re-optimization.
  std::size_t migration_records(const FragmentMap& next) const;

 private:
  FragmentMap map_;
  std::size_t version_ = 1;
};

}  // namespace fap::fs
