// Record-level locking for fragmented files — Section 8.1 made concrete.
//
// The paper argues fragmentation is compatible with atomicity and
// serializability "premised on the assumption that most of the locking is
// done on the records of the file", and walks through the failure mode of
// multi-node predicate locks: transactions C and D each send
// subtransactions to nodes A and B; if the network cannot guarantee a
// global message order, node A may see C before D while node B sees D
// before C, "This would create a deadlock."
//
// LockManager implements the machinery to study exactly that: per-record
// shared/exclusive locks with FIFO wait queues (so lock-acquisition order
// is the message-arrival order), plus waits-for-graph cycle detection.
// tests/fs_lock_test.cpp reproduces the paper's scenario verbatim, and
// also its counterpoint — "read operations can be executed in parallel at
// nodes A and B" — via concurrent shared locks.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

namespace fap::fs {

using TxnId = std::size_t;

enum class LockMode {
  kShared,     ///< read lock; compatible with other shared locks
  kExclusive,  ///< write lock; compatible with nothing
};

enum class LockOutcome {
  kGranted,  ///< the transaction now holds the lock
  kQueued,   ///< incompatible holder(s); the request waits FIFO
};

class LockManager {
 public:
  /// Requests a lock on `record` for `txn`. Re-requesting a lock the
  /// transaction already holds is granted (with shared->exclusive upgrade
  /// only when the transaction is the sole holder; otherwise queued).
  /// FIFO fairness: a request also queues when an earlier incompatible
  /// request is already waiting.
  LockOutcome acquire(TxnId txn, std::size_t record, LockMode mode);

  /// Releases everything `txn` holds or waits for, then grants whatever
  /// became available to the waiting queue heads.
  void release_all(TxnId txn);

  /// True when `txn` currently holds a lock on `record` (in any mode).
  bool holds(TxnId txn, std::size_t record) const;

  /// Transactions currently holding `record`.
  std::vector<TxnId> holders(std::size_t record) const;

  /// Transactions currently waiting on `record`, in queue order.
  std::vector<TxnId> waiters(std::size_t record) const;

  /// A cycle in the waits-for graph (each waiting transaction points to
  /// the holders blocking it), or empty if none. The returned cycle lists
  /// the deadlocked transactions in order.
  std::vector<TxnId> find_deadlock() const;

  /// Total locks currently held (for tests / introspection).
  std::size_t held_count() const;

 private:
  struct Request {
    TxnId txn = 0;
    LockMode mode = LockMode::kShared;
  };
  struct RecordLock {
    std::vector<Request> holders;  // all kShared, or one kExclusive
    std::vector<Request> queue;    // FIFO
  };
  std::map<std::size_t, RecordLock> records_;

  void grant_from_queue(RecordLock& lock);
  static bool compatible(const RecordLock& lock, const Request& request);
};

}  // namespace fap::fs
