#include "fs/weighted_assignment.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/cost_model.hpp"
#include "util/contracts.hpp"

namespace fap::fs {

RecordAssignment pack_records(const std::vector<double>& popularity,
                              const std::vector<double>& target_shares) {
  FAP_EXPECTS(!popularity.empty(), "need at least one record");
  FAP_EXPECTS(!target_shares.empty(), "need at least one node");
  double popularity_total = 0.0;
  for (const double p : popularity) {
    FAP_EXPECTS(p >= 0.0, "popularity must be non-negative");
    popularity_total += p;
  }
  FAP_EXPECTS(std::fabs(popularity_total - 1.0) < 1e-6,
              "popularity must be a distribution (see "
              "fs::normalized_popularity)");
  double share_total = 0.0;
  for (const double q : target_shares) {
    FAP_EXPECTS(q >= -1e-12, "target shares must be non-negative");
    share_total += q;
  }
  FAP_EXPECTS(std::fabs(share_total - 1.0) < 1e-6,
              "target shares must sum to 1");

  const std::size_t records = popularity.size();
  const std::size_t nodes = target_shares.size();

  // Records in decreasing popularity.
  std::vector<std::size_t> order(records);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return popularity[a] > popularity[b];
  });

  RecordAssignment assignment;
  assignment.record_to_node.assign(records, 0);
  assignment.achieved_shares.assign(nodes, 0.0);
  assignment.storage_fractions.assign(nodes, 0.0);

  for (const std::size_t record : order) {
    // Node with the largest remaining share deficit.
    std::size_t best = 0;
    double best_deficit = -std::numeric_limits<double>::infinity();
    for (std::size_t node = 0; node < nodes; ++node) {
      const double deficit =
          target_shares[node] - assignment.achieved_shares[node];
      if (deficit > best_deficit) {
        best_deficit = deficit;
        best = node;
      }
    }
    assignment.record_to_node[record] = best;
    assignment.achieved_shares[best] += popularity[record];
    assignment.storage_fractions[best] += 1.0;
  }
  for (double& fraction : assignment.storage_fractions) {
    fraction /= static_cast<double>(records);
  }
  return assignment;
}

WeightedPlacement optimize_record_placement(
    const core::SingleFileModel& model,
    const std::vector<double>& popularity,
    const core::AllocatorOptions& options) {
  FAP_EXPECTS(!popularity.empty(), "need at least one record");
  double total = 0.0;
  for (const double p : popularity) {
    FAP_EXPECTS(p >= 0.0, "popularity must be non-negative");
    total += p;
  }
  FAP_EXPECTS(std::fabs(total - 1.0) < 1e-6,
              "popularity must be a distribution");

  WeightedPlacement placement;
  // Optimize access shares: the model is Eq. 1 with q in place of x.
  const core::ResourceDirectedAllocator allocator(model, options);
  const core::AllocationResult optimum =
      allocator.run(core::uniform_allocation(model));
  placement.target_shares = optimum.x;
  placement.fractional_cost = optimum.cost;
  placement.assignment = pack_records(popularity, placement.target_shares);
  placement.achieved_cost = model.cost(placement.assignment.achieved_shares);
  return placement;
}

}  // namespace fap::fs
