#include "fs/fragment_map.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/contracts.hpp"

namespace fap::fs {

FragmentMap FragmentMap::from_allocation(std::size_t record_count,
                                         const std::vector<double>& x) {
  FAP_EXPECTS(record_count >= 1, "file needs at least one record");
  FAP_EXPECTS(!x.empty(), "allocation must cover at least one node");
  double total = 0.0;
  for (const double xi : x) {
    FAP_EXPECTS(xi >= -1e-12, "allocation must be non-negative");
    total += xi;
  }
  FAP_EXPECTS(std::fabs(total - 1.0) < 1e-6, "allocation must sum to 1");

  // Largest-remainder (Hamilton) rounding of record counts.
  const std::size_t n = x.size();
  std::vector<std::size_t> counts(n, 0);
  std::vector<double> remainders(n, 0.0);
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double exact = std::max(x[i], 0.0) *
                         static_cast<double>(record_count) / total;
    counts[i] = static_cast<std::size_t>(std::floor(exact));
    remainders[i] = exact - static_cast<double>(counts[i]);
    assigned += counts[i];
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return remainders[a] > remainders[b];
  });
  for (std::size_t k = 0; assigned < record_count; ++k, ++assigned) {
    ++counts[order[k % n]];
  }
  return FragmentMap(std::move(counts));
}

FragmentMap::FragmentMap(std::vector<std::size_t> records_per_node) {
  FAP_EXPECTS(!records_per_node.empty(), "need at least one node");
  ranges_.reserve(records_per_node.size());
  starts_.reserve(records_per_node.size());
  std::size_t cursor = 0;
  for (const std::size_t count : records_per_node) {
    ranges_.push_back(RecordRange{cursor, cursor + count});
    starts_.push_back(cursor);
    cursor += count;
  }
  record_count_ = cursor;
  FAP_EXPECTS(record_count_ >= 1, "file needs at least one record");
}

net::NodeId FragmentMap::node_of(std::size_t record) const {
  FAP_EXPECTS(record < record_count_, "record out of range");
  // Last node whose range starts at or before `record` and is non-empty.
  const auto it =
      std::upper_bound(starts_.begin(), starts_.end(), record);
  std::size_t node = static_cast<std::size_t>(it - starts_.begin()) - 1;
  // Skip back over empty ranges that share the same start.
  while (!ranges_[node].contains(record)) {
    FAP_ENSURES(node > 0, "fragment map lookup fell off the front");
    --node;
  }
  return node;
}

const RecordRange& FragmentMap::range_at(net::NodeId node) const {
  FAP_EXPECTS(node < ranges_.size(), "node out of range");
  return ranges_[node];
}

std::size_t FragmentMap::records_at(net::NodeId node) const {
  return range_at(node).size();
}

double FragmentMap::fraction_at(net::NodeId node) const {
  return static_cast<double>(records_at(node)) /
         static_cast<double>(record_count_);
}

std::vector<double> FragmentMap::fractions() const {
  std::vector<double> result(ranges_.size(), 0.0);
  for (std::size_t node = 0; node < ranges_.size(); ++node) {
    result[node] = fraction_at(node);
  }
  return result;
}

}  // namespace fap::fs
