// Ordered-result parallel map over an index range.
//
// parallel_map(pool, count, fn) evaluates fn(0) .. fn(count-1) on the
// pool's workers and returns the results in index order, so replacing a
// serial `for` loop that appends table rows changes nothing about the
// output — only the wall clock. Work is split by static chunking
// (static_chunks): contiguous index blocks, one per worker, computed up
// front. Static chunking keeps the execution plan a pure function of
// (count, jobs); combined with per-task RNG seeds derived from the task
// index (sweep.hpp) it makes parallel output bit-identical to serial.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace fap::runtime {

/// Half-open index range [begin, end).
struct IndexRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const noexcept { return end - begin; }
};

/// Splits [0, count) into at most `chunks` contiguous ranges whose sizes
/// differ by at most one (the first `count % chunks` ranges get the extra
/// element). Never returns empty ranges; returns fewer than `chunks`
/// ranges when count < chunks, and nothing when count == 0.
std::vector<IndexRange> static_chunks(std::size_t count, std::size_t chunks);

/// Runs body(i) for every i in [0, count) on the pool, blocking until all
/// complete. Exceptions from `body` propagate (first one wins). The body
/// must not submit to or wait on the same pool.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body);

/// Ordered parallel map: element i of the result is fn(i). `fn` must be
/// callable concurrently from multiple threads; results are written to
/// disjoint slots, so no synchronization is needed on the caller's side.
template <typename Fn>
auto parallel_map(ThreadPool& pool, std::size_t count, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using Result = decltype(fn(std::size_t{0}));
  std::vector<std::optional<Result>> slots(count);
  parallel_for(pool, count,
               [&](std::size_t i) { slots[i].emplace(fn(i)); });
  std::vector<Result> results;
  results.reserve(count);
  for (std::optional<Result>& slot : slots) {
    results.push_back(std::move(*slot));
  }
  return results;
}

/// Serial fallback with the identical contract, used by the sweep runner
/// when jobs == 1 so single-threaded runs pay no pool setup and behave
/// byte-for-byte like the parallel path.
template <typename Fn>
auto serial_map(std::size_t count, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using Result = decltype(fn(std::size_t{0}));
  std::vector<Result> results;
  results.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    results.push_back(fn(i));
  }
  return results;
}

}  // namespace fap::runtime
