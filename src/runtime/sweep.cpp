#include "runtime/sweep.hpp"

#include <chrono>

#include "util/rng.hpp"

namespace fap::runtime {

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

std::uint64_t task_seed(std::uint64_t base_seed, std::size_t task_index) {
  // Each Rng::split() consumes exactly one draw of the parent stream, so
  // the task_index-th split's seed is the task_index-th parent draw —
  // computable in O(task_index) without materializing the intermediate
  // generators. Fine for random access to a single index; anything
  // enumerating seeds in order must use TaskSeedSequence, which walks
  // the stream once (amortized O(1) per seed, same values).
  util::Rng root(base_seed);
  std::uint64_t seed = root();
  for (std::size_t i = 0; i < task_index; ++i) {
    seed = root();
  }
  return seed;
}

std::size_t resolve_jobs(std::size_t jobs) {
  return jobs == 0 ? ThreadPool::hardware_jobs() : jobs;
}

void run_sweep(std::size_t count, const SweepOptions& options,
               const std::function<void(std::size_t, std::uint64_t)>& body) {
  const std::size_t jobs = resolve_jobs(options.jobs);
  // Seeds come from one sequential walk of the root stream rather than a
  // per-task task_seed(base, i) call, whose O(i) rewind makes the whole
  // sweep quadratic in count. Same values, any schedule.
  std::vector<std::uint64_t> seeds(count);
  TaskSeedSequence sequence(options.base_seed);
  for (std::uint64_t& seed : seeds) {
    seed = sequence.next();
  }
  const auto run_task = [&](std::size_t i) {
    const std::uint64_t seed = seeds[i];
    // Scope the thread-local task-metric accumulator to this body: counters
    // added by any layer the task calls into (add_task_metric) land in this
    // task's record. Reset even without a sink so a previous non-sweep use
    // of the thread cannot leak counters into a later metered task.
    detail::reset_task_metrics();
    const auto started = std::chrono::steady_clock::now();
    body(i, seed);
    if (options.metrics != nullptr) {
      MetricsRecord record;
      record.run_id = options.run_id;
      record.task = "task " + std::to_string(i);
      record.task_index = i;
      record.seed = seed;
      record.wall_ms = elapsed_ms(started);
      record.values = detail::take_task_metrics();
      options.metrics->record(record);
    }
  };
  if (jobs == 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      run_task(i);
    }
    return;
  }
  ThreadPool pool(jobs);
  parallel_for(pool, count, run_task);
}

}  // namespace fap::runtime
