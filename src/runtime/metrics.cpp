#include "runtime/metrics.hpp"

#include <stdexcept>

#include "util/json.hpp"

namespace fap::runtime {

MetricsSink::MetricsSink(const std::string& path)
    : path_(path), out_(path, std::ios::out | std::ios::trunc) {
  if (!out_) {
    throw std::runtime_error("MetricsSink: cannot open '" + path +
                             "' for writing");
  }
}

void MetricsSink::record(const MetricsRecord& record) {
  const std::string line = to_json_line(record);
  std::lock_guard<std::mutex> lock(mutex_);
  out_ << line << '\n';
  out_.flush();
  ++records_;
}

std::size_t MetricsSink::records_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

std::string to_json_line(const MetricsRecord& record) {
  util::JsonWriter json;
  json.begin_object();
  json.key("run_id").value(record.run_id);
  json.key("task").value(record.task);
  json.key("task_index").value(record.task_index);
  json.key("seed").value(static_cast<std::size_t>(record.seed));
  json.key("wall_ms").value(record.wall_ms);
  if (!record.values.empty()) {
    json.key("values").begin_object();
    for (const auto& [name, value] : record.values) {
      json.key(name).value(value);
    }
    json.end_object();
  }
  if (!record.series.empty()) {
    json.key("series").value(record.series);
  }
  json.end_object();
  return json.str();
}

}  // namespace fap::runtime
