#include "runtime/metrics.hpp"

#include <stdexcept>

#include "util/json.hpp"

namespace fap::runtime {

MetricsSink::MetricsSink(const std::string& path)
    : path_(path), out_(path, std::ios::out | std::ios::trunc) {
  if (!out_) {
    throw std::runtime_error("MetricsSink: cannot open '" + path +
                             "' for writing");
  }
}

void MetricsSink::record(const MetricsRecord& record) {
  const std::string line = to_json_line(record);
  std::lock_guard<std::mutex> lock(mutex_);
  out_ << line << '\n';
  out_.flush();
  ++records_;
}

std::size_t MetricsSink::records_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

namespace {

// One accumulator per thread: sweep tasks never migrate threads
// mid-body, so thread-local storage is exactly the "current task" scope.
// Kept small (linear name lookup) — tasks record a handful of counters.
thread_local std::vector<std::pair<std::string, double>> task_metrics;

}  // namespace

void add_task_metric(const std::string& name, double value) {
  for (auto& [existing, total] : task_metrics) {
    if (existing == name) {
      total += value;
      return;
    }
  }
  task_metrics.emplace_back(name, value);
}

namespace detail {

void reset_task_metrics() { task_metrics.clear(); }

std::vector<std::pair<std::string, double>> take_task_metrics() {
  std::vector<std::pair<std::string, double>> out = std::move(task_metrics);
  task_metrics.clear();  // moved-from state is only "valid but unspecified"
  return out;
}

}  // namespace detail

std::string to_json_line(const MetricsRecord& record) {
  util::JsonWriter json;
  json.begin_object();
  json.key("run_id").value(record.run_id);
  json.key("task").value(record.task);
  json.key("task_index").value(record.task_index);
  json.key("seed").value(static_cast<std::size_t>(record.seed));
  json.key("wall_ms").value(record.wall_ms);
  if (!record.values.empty()) {
    json.key("values").begin_object();
    for (const auto& [name, value] : record.values) {
      json.key(name).value(value);
    }
    json.end_object();
  }
  if (!record.series.empty()) {
    json.key("series").value(record.series);
  }
  json.end_object();
  return json.str();
}

}  // namespace fap::runtime
