#include "runtime/parallel_for.hpp"

#include <algorithm>

namespace fap::runtime {

std::vector<IndexRange> static_chunks(std::size_t count, std::size_t chunks) {
  std::vector<IndexRange> ranges;
  if (count == 0) {
    return ranges;
  }
  const std::size_t parts = std::max<std::size_t>(1, std::min(chunks, count));
  const std::size_t base = count / parts;
  const std::size_t remainder = count % parts;
  ranges.reserve(parts);
  std::size_t begin = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t size = base + (p < remainder ? 1 : 0);
    ranges.push_back({begin, begin + size});
    begin += size;
  }
  return ranges;
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  // One task per chunk, not per index: a sweep point is usually orders of
  // magnitude heavier than the queue round-trip, but benches with dozens
  // of cheap points should not pay dozens of enqueues either.
  for (const IndexRange& range : static_chunks(count, pool.size())) {
    pool.submit([&body, range] {
      for (std::size_t i = range.begin; i < range.end; ++i) {
        body(i);
      }
    });
  }
  pool.wait();
}

}  // namespace fap::runtime
