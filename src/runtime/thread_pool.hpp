// Fixed-size worker pool with a shared task queue.
//
// The pool is the execution substrate of src/runtime/: parallel_for and
// the sweep runner submit closures here. Design constraints, in order:
//
//   1. Exceptions must not vanish. A task that throws stores the first
//      exception_ptr; wait() rethrows it on the submitting thread, so a
//      failing sweep point fails the bench/test exactly as it would
//      serially.
//   2. The pool must survive reuse: submit / wait / submit again is the
//      normal life cycle (one wait() per bench table), not a corner case.
//   3. Shutdown must be clean: the destructor drains nothing — it stops
//      accepting work, wakes every worker, and joins them all, so no task
//      outlives the pool's captures.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fap::runtime {

class ThreadPool {
 public:
  /// Spawns exactly `threads` workers (at least one). The pool never
  /// grows or shrinks afterwards.
  explicit ThreadPool(std::size_t threads);

  /// Joins all workers. Tasks still queued are discarded; tasks already
  /// running are completed. Call wait() first if you need the results.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task. Must not be called concurrently with the
  /// destructor; concurrent submit() from multiple threads is fine.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has completed, then rethrows the
  /// first exception any of them raised (clearing it, so the pool remains
  /// usable for the next batch).
  void wait();

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// permits it to report 0).
  static std::size_t hardware_jobs() noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable batch_done_;
  std::size_t in_flight_ = 0;  ///< queued + currently executing
  std::exception_ptr first_error_;
  bool stopping_ = false;
};

}  // namespace fap::runtime
