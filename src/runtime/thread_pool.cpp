#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace fap::runtime {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = std::max<std::size_t>(1, threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    // Discard queued-but-not-started work so workers exit promptly; each
    // discarded task still counts as "done" for any concurrent wait().
    in_flight_ -= queue_.size();
    queue_.clear();
  }
  work_available_.notify_all();
  batch_done_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  batch_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

std::size_t ThreadPool::hardware_jobs() noexcept {
  const unsigned reported = std::thread::hardware_concurrency();
  return reported == 0 ? 1 : static_cast<std::size_t>(reported);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and nothing left to run
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) {
        first_error_ = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) {
        batch_done_.notify_all();
      }
    }
  }
}

}  // namespace fap::runtime
