// Thread-safe JSONL metrics sink.
//
// Benches historically reported only stdout tables; once sweep points run
// concurrently, per-task observability (which point, which seed, how
// long, what series) needs a machine-readable channel that tolerates
// interleaved writers. MetricsSink appends one self-contained JSON object
// per record() call — the JSON Lines convention — using util::JsonWriter
// for escaping/number formatting, serialized by a mutex so lines are
// never torn. Analysis side: `jq`, pandas.read_json(lines=True), etc.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace fap::runtime {

/// One observation, typically a completed sweep task.
struct MetricsRecord {
  std::string run_id;  ///< experiment identity (e.g. "fig6_scaling")
  std::string task;    ///< task label within the run (e.g. "N=12")
  std::size_t task_index = 0;
  std::uint64_t seed = 0;        ///< RNG seed the task ran with
  double wall_ms = 0.0;          ///< task wall-clock, milliseconds
  /// Named scalar parameters/results of the task, in insertion order.
  std::vector<std::pair<std::string, double>> values;
  /// Optional series (e.g. per-iteration cost); emitted as a JSON array.
  std::vector<double> series;
};

class MetricsSink {
 public:
  /// Opens (truncating) the JSONL file. Throws std::runtime_error if the
  /// path cannot be opened for writing.
  explicit MetricsSink(const std::string& path);

  MetricsSink(const MetricsSink&) = delete;
  MetricsSink& operator=(const MetricsSink&) = delete;

  /// Appends one JSON line. Safe to call from any thread; lines are
  /// written atomically with respect to each other and flushed, so a
  /// crashed or interrupted run keeps every completed record.
  void record(const MetricsRecord& record);

  std::size_t records_written() const;
  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  mutable std::mutex mutex_;
  std::ofstream out_;
  std::size_t records_ = 0;
};

/// Renders a record as its single JSON line (no trailing newline).
/// Exposed for tests; record() is equivalent to writing this + '\n'.
std::string to_json_line(const MetricsRecord& record);

/// Accumulates a named scalar into the calling thread's *current sweep
/// task*: run_sweep clears the accumulator before each task body and
/// drains it into the task's MetricsRecord::values afterwards (a no-op
/// without an attached sink). Repeated calls with the same name sum, so
/// instrumented lower layers (e.g. the cost-matrix cache) can count
/// events without coordinating: `add_task_metric("cost_cache_hit", 1)`.
/// Calls outside a sweep task accumulate harmlessly into thread-local
/// state that the next task on the thread discards.
void add_task_metric(const std::string& name, double value);

namespace detail {
/// Clears the calling thread's pending task metrics (run_sweep, at task
/// start).
void reset_task_metrics();
/// Moves the calling thread's pending task metrics out (run_sweep, at
/// task end), leaving the accumulator empty.
std::vector<std::pair<std::string, double>> take_task_metrics();
}  // namespace detail

}  // namespace fap::runtime
