// Deterministic sweep / replication runner.
//
// The benches' outer loops — "for each N", "for each cap", "for each
// replication" — are embarrassingly parallel, but naive parallelization
// breaks reproducibility the moment tasks share an RNG: the interleaving
// decides who draws what. The sweep runner removes the sharing instead of
// the parallelism. Every task i receives its own seed, a pure function
// task_seed(base_seed, i) of the experiment's base seed and the task
// index computed via util::Rng's splitting, so
//
//     sweep(count, {.jobs = 1}, fn)  ==  sweep(count, {.jobs = 8}, fn)
//
// element for element, bit for bit — scheduling cannot be observed.
// Results come back in task order; per-replication statistics reduce
// through util::RunningStats::merge (parallel Welford), which is exact,
// not approximate. When a MetricsSink is attached, each completed task
// appends a JSONL record with its index, seed and wall-clock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "runtime/metrics.hpp"
#include "runtime/parallel_for.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace fap::runtime {

struct SweepOptions {
  /// Worker threads. 1 runs inline on the calling thread (no pool);
  /// 0 asks for ThreadPool::hardware_jobs().
  std::size_t jobs = 1;
  /// Master seed of the experiment; task i derives task_seed(base_seed, i).
  std::uint64_t base_seed = 1;
  /// Optional observability sink (not owned); null disables metrics.
  MetricsSink* metrics = nullptr;
  /// Run identity stamped on metrics records, e.g. the bench name.
  std::string run_id;
};

/// The per-task seed: the task_index-th draw of a util::Rng stream rooted
/// at base_seed, i.e. repeated stream splitting. Pure, so any task's seed
/// can be recomputed without running the others; distinct indices give
/// statistically independent xoshiro streams (Rng::split).
std::uint64_t task_seed(std::uint64_t base_seed, std::size_t task_index);

/// Sequential enumeration of the task seeds: the k-th next() returns
/// exactly task_seed(base_seed, k), but in amortized O(1) instead of
/// O(k) — task_seed(base, k) is the (k+1)-th draw of the root stream,
/// so walking the stream once enumerates every task's seed. Million-item
/// batch sweeps (catalog allocation) would otherwise spend O(K^2) draws
/// just deriving seeds.
class TaskSeedSequence {
 public:
  explicit TaskSeedSequence(std::uint64_t base_seed) : root_(base_seed) {}

  /// Seed of the next task index, starting from 0.
  std::uint64_t next() { return root_(); }

 private:
  util::Rng root_;
};

/// Resolves SweepOptions::jobs (0 -> hardware) and never returns 0.
std::size_t resolve_jobs(std::size_t jobs);

/// Type-erased core: runs body(i, task_seed(base_seed, i)) for all
/// i in [0, count), serially when resolve_jobs(options.jobs) == 1 and on
/// a fresh ThreadPool otherwise, recording metrics per task if attached.
/// Exceptions from `body` propagate to the caller (first one wins).
void run_sweep(std::size_t count, const SweepOptions& options,
               const std::function<void(std::size_t, std::uint64_t)>& body);

/// Ordered parallel sweep: element i of the result is
/// fn(i, task_seed(base_seed, i)). `fn` must not touch shared mutable
/// state — everything it needs beyond (index, seed) should be captured
/// by value or const reference.
template <typename Fn>
auto sweep(std::size_t count, const SweepOptions& options, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}, std::uint64_t{0}))> {
  using Result = decltype(fn(std::size_t{0}, std::uint64_t{0}));
  std::vector<std::optional<Result>> slots(count);
  run_sweep(count, options, [&](std::size_t i, std::uint64_t seed) {
    slots[i].emplace(fn(i, seed));
  });
  std::vector<Result> results;
  results.reserve(count);
  for (std::optional<Result>& slot : slots) {
    results.push_back(std::move(*slot));
  }
  return results;
}

/// Batch-submission sweep: packs `count` items into contiguous batches of
/// at most `width` and runs each batch as ONE sweep task (so --jobs
/// distributes whole batches and --metrics gets one record per batch,
/// automatically carrying a "batch_size" value). Designed for
/// core::BatchAllocator: `make(i, task_seed(base_seed, i))` builds item
/// i's submission; `run(first_index, items)` consumes one batch and
/// returns a vector of per-item results in item order, which batch_sweep
/// flattens back into global item order. Because every item's seed
/// derives from its global index and `run` must treat items
/// independently, the flattened result is byte-identical across jobs
/// AND width choices — partitioning cannot be observed.
template <typename Make, typename Run>
auto batch_sweep(std::size_t count, std::size_t width,
                 const SweepOptions& options, Make&& make, Run&& run)
    -> decltype(run(std::size_t{0},
                    std::declval<std::vector<std::decay_t<decltype(make(
                        std::size_t{0}, std::uint64_t{0}))>>>())) {
  using Item = std::decay_t<decltype(make(std::size_t{0}, std::uint64_t{0}))>;
  using Results = decltype(run(std::size_t{0}, std::declval<std::vector<Item>>()));
  if (width == 0) {
    width = 1;
  }
  if (count == 0) {
    return Results{};
  }
  const std::size_t batches = (count + width - 1) / width;
  // Item seeds enumerated up front in one O(count) stream walk — the
  // per-call task_seed(base, i) is O(i), which is quadratic over a
  // million-item catalog. Values are identical by construction.
  std::vector<std::uint64_t> item_seeds(count);
  TaskSeedSequence seeds(options.base_seed);
  for (std::uint64_t& s : item_seeds) {
    s = seeds.next();
  }
  std::vector<Results> parts(batches);
  run_sweep(batches, options, [&](std::size_t b, std::uint64_t) {
    const std::size_t first = b * width;
    const std::size_t last = std::min(count, first + width);
    std::vector<Item> items;
    items.reserve(last - first);
    for (std::size_t i = first; i < last; ++i) {
      items.push_back(make(i, item_seeds[i]));
    }
    add_task_metric("batch_size", static_cast<double>(last - first));
    parts[b] = run(first, std::move(items));
  });
  Results flat;
  flat.reserve(count);
  for (Results& part : parts) {
    for (auto& item : part) {
      flat.push_back(std::move(item));
    }
  }
  return flat;
}

/// Replication reduction: runs `replications` tasks, each producing a
/// RunningStats over its own observations, and merges them in index
/// order. Chan/Welford merging is exact, so the reduced statistics are
/// independent of the number of jobs.
template <typename Fn>
util::RunningStats replicate(std::size_t replications,
                             const SweepOptions& options, Fn&& fn) {
  const std::vector<util::RunningStats> parts =
      sweep(replications, options,
            [&fn](std::size_t i, std::uint64_t seed) { return fn(i, seed); });
  util::RunningStats merged;
  for (const util::RunningStats& part : parts) {
    merged.merge(part);
  }
  return merged;
}

}  // namespace fap::runtime
