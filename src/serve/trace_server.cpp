#include "serve/trace_server.hpp"

#include <algorithm>
#include <cmath>
#include <list>
#include <unordered_map>
#include <utility>

#include "fs/popularity.hpp"
#include "queueing/delay.hpp"
#include "sim/estimation.hpp"
#include "util/contracts.hpp"
#include "util/numeric.hpp"

namespace fap::serve {

namespace {

// Placement models are solved with the tangent-linearized delay so the
// cost and its gradient stay finite for ANY allocation — in particular
// for warm starts taken from a drifted system whose deployed shares
// overload some node (exactly the state that triggers a re-solve).
constexpr double kRhoMax = 0.95;

// Decorrelates the engine's service-time stream from the trace
// generator's draw stream (both are seeded from workload.seed).
constexpr std::uint64_t kEngineSeedSalt = 0x5bf03635dcd66d67ULL;

std::vector<double> normalized_origin_mix(const TraceWorkload& workload,
                                          std::size_t node_count) {
  if (workload.origin_mix.empty()) {
    return std::vector<double>(node_count,
                               1.0 / static_cast<double>(node_count));
  }
  FAP_EXPECTS(workload.origin_mix.size() == node_count,
              "origin mix must have one weight per node");
  return fs::normalized_popularity(workload.origin_mix);
}

}  // namespace

// ---------------------------------------------------------------------------
// TraceGenerator

TraceGenerator::TraceGenerator(TraceWorkload workload, std::size_t node_count)
    : workload_(std::move(workload)),
      nodes_(node_count),
      rng_(workload_.seed),
      base_(fs::zipf_popularity(workload_.records, workload_.zipf_s)),
      popularity_(workload_.records, 0.0),
      records_(base_),
      origins_(normalized_origin_mix(workload_, node_count)) {
  FAP_EXPECTS(nodes_ >= 1, "need at least one node");
  FAP_EXPECTS(workload_.total_rate > 0.0, "total rate must be positive");
  FAP_EXPECTS(workload_.drift_rate >= 0.0,
              "drift rate must be non-negative");
  FAP_EXPECTS(workload_.update_fraction >= 0.0 &&
                  workload_.update_fraction <= 1.0,
              "update fraction must be a probability");
  FAP_EXPECTS(workload_.epoch_requests >= 1,
              "epochs must hold at least one request");
  FAP_EXPECTS(workload_.flash_crowds.size() <= 64,
              "at most 64 flash crowds (activity bitmask)");
  for (const FlashCrowd& crowd : workload_.flash_crowds) {
    FAP_EXPECTS(crowd.start <= crowd.end, "crowd must start before it ends");
    FAP_EXPECTS(crowd.first_record <= crowd.last_record &&
                    crowd.last_record <= workload_.records,
                "crowd record range out of bounds");
    FAP_EXPECTS(crowd.boost > 0.0, "crowd boost must be positive");
  }
  popularity_current_ = false;
  refresh_popularity();  // the t = 0 distribution
}

void TraceGenerator::refresh_popularity() {
  const std::size_t record_count = workload_.records;
  const std::size_t shift =
      workload_.drift_rate > 0.0
          ? static_cast<std::size_t>(workload_.drift_rate * now_) %
                record_count
          : 0;
  std::uint64_t mask = 0;
  for (std::size_t c = 0; c < workload_.flash_crowds.size(); ++c) {
    const FlashCrowd& crowd = workload_.flash_crowds[c];
    if (now_ >= crowd.start && now_ < crowd.end) {
      mask |= std::uint64_t{1} << c;
    }
  }
  if (popularity_current_ && shift == shift_ && mask == crowd_mask_) {
    return;
  }
  shift_ = shift;
  crowd_mask_ = mask;
  for (std::size_t r = 0; r < record_count; ++r) {
    popularity_[r] = base_[(r + shift) % record_count];
  }
  if (mask != 0) {
    for (std::size_t c = 0; c < workload_.flash_crowds.size(); ++c) {
      if ((mask & (std::uint64_t{1} << c)) == 0) {
        continue;
      }
      const FlashCrowd& crowd = workload_.flash_crowds[c];
      for (std::size_t r = crowd.first_record; r < crowd.last_record; ++r) {
        popularity_[r] *= crowd.boost;
      }
    }
    popularity_ = fs::normalized_popularity(std::move(popularity_));
  }
  records_.rebuild(popularity_);
  popularity_current_ = true;
}

const std::vector<TraceRequest>& TraceGenerator::next_epoch(
    std::size_t max_requests) {
  const std::size_t count =
      std::min(workload_.epoch_requests, max_requests);
  buffer_.clear();
  buffer_.reserve(count);
  refresh_popularity();
  for (std::size_t i = 0; i < count; ++i) {
    now_ += rng_.exponential(workload_.total_rate);
    TraceRequest request;
    request.time = now_;
    request.origin =
        static_cast<std::uint32_t>(origins_.sample(rng_.uniform()));
    request.record =
        static_cast<std::uint32_t>(records_.sample(rng_.uniform()));
    request.update = rng_.uniform() < workload_.update_fraction;
    buffer_.push_back(request);
  }
  return buffer_;
}

// ---------------------------------------------------------------------------
// TraceServer internals

/// Per-node LRU cache: front of `order` is the most recently used record.
struct TraceServer::LruCache {
  std::list<std::uint32_t> order;
  std::unordered_map<std::uint32_t, std::list<std::uint32_t>::iterator>
      index;

  /// Moves `record` to the front if cached; returns whether it was.
  bool touch(std::uint32_t record) {
    const auto it = index.find(record);
    if (it == index.end()) {
      return false;
    }
    order.splice(order.begin(), order, it->second);
    return true;
  }

  /// Inserts an absent record, evicting the least recently used one when
  /// the cache is at `capacity`.
  void insert(std::uint32_t record, std::size_t capacity) {
    if (order.size() >= capacity) {
      index.erase(order.back());
      order.pop_back();
    }
    order.push_front(record);
    index.emplace(record, order.begin());
  }

  /// Drops `record` if cached (update invalidation); returns 1 if it was.
  std::size_t erase(std::uint32_t record) {
    const auto it = index.find(record);
    if (it == index.end()) {
      return 0;
    }
    order.erase(it->second);
    index.erase(it);
    return 1;
  }
};

/// An in-flight layout change: the plan, its wave schedule, and the wave
/// timeline implied by the migration bandwidth. Waves run sequentially;
/// `completed` is the count of waves whose end time has passed.
struct TraceServer::PendingMigration {
  std::vector<fs::Transfer> plan;  ///< sorted by range.begin
  fs::MigrationSchedule schedule;
  std::vector<double> wave_begin;
  std::vector<double> wave_end;
  fs::FragmentMap target;
  std::size_t completed = 0;
  std::size_t locked_wave = static_cast<std::size_t>(-1);

  /// Index of the transfer containing `record`, or npos.
  std::size_t find(std::size_t record) const {
    const auto it = std::upper_bound(
        plan.begin(), plan.end(), record,
        [](std::size_t r, const fs::Transfer& transfer) {
          return r < transfer.range.begin;
        });
    if (it == plan.begin()) {
      return static_cast<std::size_t>(-1);
    }
    const std::size_t t =
        static_cast<std::size_t>(it - plan.begin()) - 1;
    return record < plan[t].range.end ? t : static_cast<std::size_t>(-1);
  }
};

TraceServer::TraceServer(const net::Topology& topology,
                         TraceWorkload workload, TraceServeOptions options)
    : topology_(topology),
      workload_(std::move(workload)),
      options_(std::move(options)),
      n_(topology.node_count()),
      comm_(net::all_pairs_shortest_paths(topology)) {
  FAP_EXPECTS(options_.mu > 0.0, "service rate must be positive");
  FAP_EXPECTS(options_.k >= 0.0, "delay weight must be non-negative");
  FAP_EXPECTS(options_.hop_latency >= 0.0,
              "hop latency must be non-negative");
  FAP_EXPECTS(options_.estimation_epochs >= 1,
              "estimation windows span at least one epoch");
  FAP_EXPECTS(options_.hysteresis >= 0.0,
              "hysteresis must be non-negative");
  FAP_EXPECTS(options_.migration_bandwidth > 0.0,
              "migration bandwidth must be positive");
  FAP_EXPECTS(options_.max_transfers_per_node >= 1,
              "per-node transfer limit must be at least one");
  FAP_EXPECTS(options_.cache_fraction > 0.0 &&
                  options_.cache_fraction <= 1.0,
              "cache fraction must be in (0, 1]");
  if (options_.hop_latency > 0.0) {
    hops_ = net::route_hop_counts(topology);
  }
  const std::vector<double> mix = normalized_origin_mix(workload_, n_);
  lambda_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    lambda_[i] = workload_.total_rate * mix[i];
  }
}

TraceServer::~TraceServer() = default;

TraceServeResult TraceServer::serve(std::size_t total_requests) {
  FAP_EXPECTS(total_requests >= 1, "nothing to serve");
  TraceServeResult result;

  TraceGenerator generator(workload_, n_);

  // Initial placement: solve the paper's problem for the t = 0 popularity
  // and workload mix, then deploy it as a contiguous layout whose
  // per-node POPULARITY mass matches the solution shares.
  {
    core::SingleFileProblem problem{
        comm_, lambda_, std::vector<double>(n_, options_.mu), options_.k,
        queueing::DelayModel::mm1(kRhoMax)};
    const core::SingleFileModel model(problem);
    const core::ResourceDirectedAllocator allocator(model,
                                                    options_.allocator);
    const core::AllocationResult solution =
        allocator.run(std::vector<double>(
            n_, 1.0 / static_cast<double>(n_)));
    initial_ = std::make_unique<fs::FragmentMap>(
        fs::popularity_split(generator.popularity(), solution.x));
  }
  layout_ = std::make_unique<fs::FragmentMap>(*initial_);
  // The shares the deployed layout actually carries under the popularity
  // it was solved for (record-granular, so quantization is included) —
  // the baseline the per-window drift test compares against.
  solved_shares_ = fs::node_access_shares(*layout_, generator.popularity());
  window_counts_.assign(workload_.records, 0);
  // The first window is never cooldown-blocked.
  windows_since_realloc_ = options_.cooldown_windows;
  pending_.reset();
  locks_ = fs::LockManager();
  caches_.clear();
  if (options_.mode == ServeMode::kLru) {
    cache_capacity_ = std::max<std::size_t>(
        1, static_cast<std::size_t>(options_.cache_fraction *
                                    static_cast<double>(workload_.records)));
    caches_.resize(n_);
  }

  sim::DesConfig config;
  config.open_loop = true;
  config.lambda.assign(n_, 0.0);
  config.mu.assign(n_, options_.mu);
  // Identity routing: targets are chosen here, not by the engine.
  config.routing.assign(n_, std::vector<double>(n_, 0.0));
  for (std::size_t i = 0; i < n_; ++i) {
    config.routing[i][i] = 1.0;
  }
  config.comm_cost.assign(n_, std::vector<double>(n_, 0.0));
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      config.comm_cost[i][j] = comm_.cost(i, j);
    }
  }
  config.k = options_.k;
  config.service = options_.service;
  config.hop_latency = options_.hop_latency;
  config.route_hops = hops_;
  config.record_log = options_.mode == ServeMode::kOnline;
  // Completion-time window attribution: the union of the estimation
  // windows is an exact partition of all completions, so the cumulative
  // statistics cover every injected request even though kOnline resets
  // the window (to truncate the estimation log) while jobs are in flight.
  config.window_by_completion = true;
  config.seed = workload_.seed ^ kEngineSeedSalt;
  engine_ = std::make_unique<sim::DesSystem>(std::move(config));

  std::size_t injected = 0;
  std::size_t epochs_in_window = 0;
  while (injected < total_requests) {
    const std::vector<TraceRequest>& batch =
        generator.next_epoch(total_requests - injected);
    for (const TraceRequest& request : batch) {
      std::size_t target = 0;
      double comm = 0.0;
      double extra_latency = 0.0;
      route_request(request, target, comm, extra_latency, result);
      engine_->inject_access(request.time, request.origin, target, comm,
                             extra_latency);
      if (target == request.origin) {
        ++result.served_at_origin;
      }
      if (options_.mode == ServeMode::kOnline) {
        ++window_counts_[request.record];
      }
    }
    injected += batch.size();
    engine_->advance_until(generator.now());
    if (options_.mode == ServeMode::kOnline) {
      update_migration_state(generator.now(), result);
    }
    if (++epochs_in_window >= options_.estimation_epochs &&
        injected < total_requests) {
      // Only kOnline consumes windowed state — the access log feeds the
      // estimator, so the window must be truncated per period to bound
      // memory. The passive modes keep ONE window for the whole run.
      // Either way, completion-time attribution (window_by_completion)
      // makes the harvested union exact: no request is ever dropped from
      // the statistics by a reset.
      if (options_.mode == ServeMode::kOnline) {
        const sim::WindowStats& window = engine_->window();
        maybe_reallocate(window, generator.now(), result);
        harvest_window(window, result);
        engine_->reset_window();
        std::fill(window_counts_.begin(), window_counts_.end(), 0);
      }
      epochs_in_window = 0;
    }
  }
  result.requests_injected = injected;

  // Drain: every injected request is served to completion and the final
  // window is harvested afterwards, so nothing is dropped at the end of
  // the run.
  while (engine_->advance_completions(65536) > 0) {
  }
  if (options_.mode == ServeMode::kOnline) {
    update_migration_state(engine_->now(), result);
  }
  harvest_window(engine_->window(), result);
  return result;
}

void TraceServer::route_request(const TraceRequest& request,
                                std::size_t& target, double& comm,
                                double& extra_latency,
                                TraceServeResult& result) {
  const std::size_t record = request.record;
  const std::size_t origin = request.origin;
  target = layout_->node_of(record);
  extra_latency = 0.0;
  switch (options_.mode) {
    case ServeMode::kStatic:
      break;
    case ServeMode::kOnline:
      if (pending_) {
        const PendingMigration& pending = *pending_;
        const std::size_t t = pending.find(record);
        if (t != static_cast<std::size_t>(-1)) {
          const std::size_t wave = pending.schedule.wave_of[t];
          if (request.time >= pending.wave_end[wave]) {
            // Wave landed: the record serves from its new home (the
            // deployed FragmentMap flips only when the whole plan does).
            target = pending.plan[t].target;
          } else if (request.time >= pending.wave_begin[wave]) {
            // In the in-flight wave: the record is locked for transfer,
            // so the request stalls until the wave lands and is then
            // served at the new home.
            target = pending.plan[t].target;
            extra_latency = pending.wave_end[wave] - request.time;
            ++result.stalled_requests;
          }
          // Before its wave starts the record still serves from the old
          // home — which `target` already is.
        }
      }
      break;
    case ServeMode::kLru: {
      const std::size_t home = target;  // layout_ never moves in LRU mode
      if (request.update) {
        // Updates are applied at the home node and invalidate every
        // cached copy — what keeps a write-heavy hot set uncacheable.
        for (LruCache& cache : caches_) {
          result.cache_invalidations += cache.erase(request.record);
        }
      } else if (home != origin) {
        if (caches_[origin].touch(request.record)) {
          ++result.cache_hits;
          target = origin;
        } else {
          ++result.cache_misses;
          caches_[origin].insert(request.record, cache_capacity_);
        }
      }
      break;
    }
  }
  comm = comm_.cost(origin, target);
}

void TraceServer::maybe_reallocate(const sim::WindowStats& window, double now,
                                   TraceServeResult& result) {
  ++windows_since_realloc_;
  if (pending_) {
    // Never re-plan over an in-flight migration.
    ++result.suppressed_reallocations;
    return;
  }
  std::uint64_t total = 0;
  for (const std::uint64_t count : window_counts_) {
    total += count;
  }
  if (total == 0) {
    return;
  }
  std::vector<double> observed(window_counts_.size(), 0.0);
  for (std::size_t r = 0; r < window_counts_.size(); ++r) {
    observed[r] = static_cast<double>(window_counts_[r]) /
                  static_cast<double>(total);
  }
  // Drift statistic: TV distance between the node shares the deployed
  // layout served this window and the shares it was solved to carry.
  // Aggregating to nodes before comparing is deliberate — popularity
  // moving WITHIN a node's range needs no migration, and the n-value
  // statistic has a ~1/sqrt(window) noise floor independent of the
  // record count (per-record empirical TV is noise-dominated at
  // realistic record counts and window sizes).
  const std::vector<double> observed_shares =
      fs::node_access_shares(*layout_, observed);
  double tv = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    tv += std::abs(observed_shares[i] - solved_shares_[i]);
  }
  tv *= 0.5;
  if (tv < options_.hysteresis ||
      windows_since_realloc_ < options_.cooldown_windows) {
    ++result.suppressed_reallocations;
    return;
  }
  if (window.log.empty()) {
    ++result.failed_estimations;
    return;
  }
  try {
    const sim::EstimatedParameters estimates =
        sim::estimate_parameters(window.log, n_);
    core::SingleFileProblem problem = sim::problem_from_estimates(
        estimates, comm_, options_.k, options_.mu,
        queueing::DelayModel::mm1(kRhoMax));
    const core::SingleFileModel model(problem);
    const core::ResourceDirectedAllocator allocator(model,
                                                    options_.allocator);
    // Warm start from the shares the deployed layout serves under the
    // OBSERVED popularity — the allocator walks from the system's actual
    // operating point, not from scratch. Renormalized exactly so the
    // simplex feasibility check passes regardless of counting rounding.
    std::vector<double> warm = fs::node_access_shares(*layout_, observed);
    util::NeumaierSum warm_total;
    for (const double share : warm) {
      warm_total.add(share);
    }
    for (double& share : warm) {
      share /= warm_total.value();
    }
    const core::AllocationResult solution = allocator.run(std::move(warm));
    fs::FragmentMap next = fs::popularity_split(observed, solution.x);
    std::vector<fs::Transfer> plan = fs::plan_migration(*layout_, next);
    ++result.reallocations;
    solved_shares_ = fs::node_access_shares(next, observed);
    windows_since_realloc_ = 0;
    if (plan.empty()) {
      layout_ = std::make_unique<fs::FragmentMap>(std::move(next));
      return;
    }
    fs::MigrationSchedule schedule =
        fs::schedule_waves(plan, n_, options_.max_transfers_per_node);
    result.migrated_records += fs::migration_volume(plan);
    result.migration_waves += schedule.wave_count;
    std::vector<double> wave_begin(schedule.wave_count, 0.0);
    std::vector<double> wave_end(schedule.wave_count, 0.0);
    double t = now;
    for (std::size_t w = 0; w < schedule.wave_count; ++w) {
      wave_begin[w] = t;
      t += static_cast<double>(schedule.wave_volume[w]) /
           options_.migration_bandwidth;
      wave_end[w] = t;
    }
    pending_ = std::make_unique<PendingMigration>(PendingMigration{
        std::move(plan), std::move(schedule), std::move(wave_begin),
        std::move(wave_end), std::move(next)});
    update_migration_state(now, result);  // lock wave 0
  } catch (const std::exception&) {
    // Deterministic: the estimate (or the model built from it) was not
    // solvable this window; keep serving and try again next window.
    ++result.failed_estimations;
  }
}

void TraceServer::update_migration_state(double now,
                                         TraceServeResult& result) {
  (void)result;
  if (!pending_) {
    return;
  }
  PendingMigration& pending = *pending_;
  while (pending.completed < pending.schedule.wave_count &&
         now >= pending.wave_end[pending.completed]) {
    if (pending.locked_wave == pending.completed) {
      locks_.release_all(pending.completed);
      pending.locked_wave = static_cast<std::size_t>(-1);
    }
    ++pending.completed;
  }
  if (pending.completed < pending.schedule.wave_count &&
      now >= pending.wave_begin[pending.completed] &&
      pending.locked_wave != pending.completed) {
    // Waves are strictly sequential, so at most one holds locks — every
    // acquisition must be granted immediately and the waits-for graph
    // must stay empty. Locks are keyed by each transfer's first record
    // (transfer ranges are disjoint, so keys are unique).
    const std::size_t wave = pending.completed;
    for (std::size_t t = 0; t < pending.plan.size(); ++t) {
      if (pending.schedule.wave_of[t] != wave) {
        continue;
      }
      const fs::LockOutcome outcome = locks_.acquire(
          wave, pending.plan[t].range.begin, fs::LockMode::kExclusive);
      FAP_ENSURES(outcome == fs::LockOutcome::kGranted,
                  "sequential migration waves never contend");
    }
    FAP_ENSURES(locks_.find_deadlock().empty(),
                "migration locking must stay deadlock-free");
    pending.locked_wave = wave;
  }
  if (pending.completed == pending.schedule.wave_count) {
    // The whole plan landed: flip the deployed layout. apply_migration
    // is the record-granular proof that the plan reproduces the target.
    layout_ =
        std::make_unique<fs::FragmentMap>(std::move(pending.target));
    pending_.reset();
  }
}

void TraceServer::harvest_window(const sim::WindowStats& window,
                                 TraceServeResult& result) {
  result.delay.merge(window.response_time);
  result.delay_hist.merge(window.response_hist);
  result.comm.merge(window.comm_cost);
  result.completions += window.completions;
  result.failed += window.failed_accesses;
  result.span = engine_->now();
}

}  // namespace fap::serve
