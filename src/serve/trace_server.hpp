// Trace-driven serving: closing the loop between the allocator and the
// discrete-event engine.
//
// Everything before this module evaluates an allocation analytically or
// against the engine's own Poisson generators; nothing ever *serves* a
// workload against a deployed record layout. TraceServer does exactly
// that (ROADMAP item 3): an open-loop trace generator (seeded Zipf record
// popularity with rank-rotation drift and scripted flash crowds) drives
// DesSystem::inject_access against a FragmentMap produced by the paper's
// resource-directed allocator, under one of three serving policies:
//
//   * kStatic — the initial placement, never changed: the paper's "solve
//     once" reading. Under drift the hot records walk out of the node
//     ranges sized for them and queues build where the mass lands.
//   * kOnline — the Section 8 adaptive scheme made concrete: per
//     estimation window, the node-aggregated access shares the deployed
//     layout actually served are compared against the shares it was
//     solved to carry (total-variation distance, with hysteresis so
//     sampling noise does not trigger spurious re-solves); past the
//     threshold the window's
//     access log is turned into λ̂/μ̂ via sim/estimation, the allocator
//     re-runs warm-started from the currently deployed shares, and the
//     layout delta is applied through fs::plan_migration /
//     schedule_waves while traffic continues to flow — reads of records
//     in the in-flight wave stall until the wave lands (modeled as extra
//     response latency; fs::LockManager holds the corresponding
//     exclusive locks and the waits-for graph is asserted acyclic).
//   * kLru — the caching alternative (onlineJCCP-style baseline): record
//     homes stay at the initial placement, but every node keeps an LRU
//     cache of recently read records. Reads hit locally when cached;
//     updates are served at the home node and invalidate every cached
//     copy, which is what keeps a write-heavy hot set uncacheable.
//
// Determinism contract: serve() is a pure function of (topology,
// workload, options) — the trace stream depends only on the workload
// seed (identical across the three modes, so comparisons are paired),
// the engine is deterministic, and all bookkeeping is serial. Benches
// fan the modes out through runtime::sweep and stay byte-identical for
// any --jobs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/allocator.hpp"
#include "fs/fragment_map.hpp"
#include "fs/lock_manager.hpp"
#include "fs/migration.hpp"
#include "net/shortest_paths.hpp"
#include "net/topology.hpp"
#include "sim/alias_sampler.hpp"
#include "sim/des_system.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace fap::serve {

/// A scripted popularity surge: while active, records in
/// [first_record, last_record) have their popularity multiplied by
/// `boost` (the vector is then renormalized).
struct FlashCrowd {
  double start = 0.0;
  double end = 0.0;  ///< active over [start, end)
  std::size_t first_record = 0;
  std::size_t last_record = 0;  ///< [first_record, last_record)
  double boost = 10.0;
};

/// Open-loop trace description. The request stream is a Poisson process
/// of rate `total_rate`; each request draws an origin node from
/// `origin_mix` and a record from the popularity distribution in force,
/// and is an update with probability `update_fraction`.
struct TraceWorkload {
  std::size_t records = 10000;
  /// Aggregate request rate Λ (requests per unit time, all origins).
  double total_rate = 4.0;
  /// Zipf exponent of the base record popularity (rank order rotates
  /// under drift; record 0 is the rank-0 record at t = 0).
  double zipf_s = 0.9;
  /// Popularity drift: rank rotation speed in records per unit time.
  /// At time t record r holds rank (r + floor(drift_rate·t)) mod R, so
  /// the hot set walks through the record space — and through the node
  /// ranges of any layout that was solved for an earlier instant.
  double drift_rate = 0.0;
  /// Per-node origin weights (normalized internally); empty = uniform.
  std::vector<double> origin_mix;
  /// Probability that a request is an update (invalidates caches).
  double update_fraction = 0.0;
  std::vector<FlashCrowd> flash_crowds;
  /// Popularity (drift/flash state) is refreshed and the record sampler
  /// rebuilt every `epoch_requests` requests — the generator's batching
  /// granularity, and the serving loop's advance granularity.
  std::size_t epoch_requests = 65536;
  std::uint64_t seed = 1;
};

/// One generated request.
struct TraceRequest {
  double time = 0.0;
  std::uint32_t origin = 0;
  std::uint32_t record = 0;
  bool update = false;
};

/// Generates the trace in epochs. Popularity is frozen within an epoch
/// (the alias table is rebuilt only when the drift shift or flash-crowd
/// activity actually changes). Exactly four RNG draws per request
/// (inter-arrival, origin, record, update coin), so the stream is stable
/// against consumer behavior.
class TraceGenerator {
 public:
  TraceGenerator(TraceWorkload workload, std::size_t node_count);

  /// Generates the next epoch: min(epoch_requests, max_requests)
  /// requests, strictly increasing times. The returned reference is
  /// invalidated by the next call.
  const std::vector<TraceRequest>& next_epoch(std::size_t max_requests);

  /// The popularity distribution in force at the CURRENT time (for the
  /// epoch about to be generated; after construction, the t = 0
  /// distribution — the initial-placement input).
  const std::vector<double>& popularity() const noexcept {
    return popularity_;
  }

  /// Time of the most recently generated request (0 before the first).
  double now() const noexcept { return now_; }

 private:
  void refresh_popularity();

  TraceWorkload workload_;
  std::size_t nodes_;
  util::Rng rng_;
  std::vector<double> base_;        ///< Zipf mass by rank
  std::vector<double> popularity_;  ///< current mass by record
  sim::AliasSampler records_;
  sim::AliasSampler origins_;
  std::vector<TraceRequest> buffer_;
  double now_ = 0.0;
  std::size_t shift_ = 0;           ///< rank rotation applied
  std::uint64_t crowd_mask_ = 0;    ///< active flash crowds (bitmask)
  bool popularity_current_ = false;
};

enum class ServeMode {
  kStatic,  ///< initial placement, never re-optimized
  kOnline,  ///< hysteresis-gated re-optimization + live migration
  kLru,     ///< static homes + per-node LRU caches
};

struct TraceServeOptions {
  ServeMode mode = ServeMode::kStatic;

  /// Per-node service rate μ (uniform) and delay weight k of the
  /// placement objective.
  double mu = 1.0;
  double k = 1.0;
  /// Store-and-forward per-hop transit latency (and hop counts from the
  /// topology's least-cost routes); 0 = instantaneous transport.
  double hop_latency = 0.0;
  sim::ServiceDistribution service = sim::ServiceDistribution::kExponential;

  /// Inner allocator controls for the initial solve and the online
  /// re-solves (warm-started, so a bounded budget suffices). The
  /// Theorem-2 dynamic step rule is load-bearing here: re-solve problems
  /// carry the tangent-linearized delay evaluated at (or beyond) ρ_max,
  /// where the cost's curvature is enormous — a fixed α that is fine for
  /// lightly-loaded problems violates the Theorem-2 convergence bound
  /// there and the iteration diverges into overloaded corner solutions.
  core::AllocatorOptions allocator = [] {
    core::AllocatorOptions options;
    options.step_rule = core::StepRule::kDynamic;
    options.epsilon = 1e-4;
    options.max_iterations = 2000;
    return options;
  }();

  // --- kOnline ---
  /// Estimation window length in generator epochs: popularity counts,
  /// the access log and the drift test accumulate over this many epochs
  /// between re-solve decisions.
  std::size_t estimation_epochs = 4;
  /// Hysteresis: re-solve only when the total-variation distance between
  /// the window's observed PER-NODE access shares (under the deployed
  /// layout) and the shares the layout was solved to carry exceeds this.
  /// Node-aggregated shares are the right drift statistic: mass moving
  /// within a node needs no migration, only mass crossing node
  /// boundaries does — and with n values the sampling noise floor is
  /// ~0.01 regardless of the record count, whereas per-record empirical
  /// TV is noise-dominated (~0.2+) at realistic record counts.
  double hysteresis = 0.1;
  /// Windows that must elapse after a re-solve before the next one.
  std::size_t cooldown_windows = 1;
  /// Migration bandwidth in records per unit time: wave w of a plan
  /// completes wave_volume[w] / bandwidth after its start.
  double migration_bandwidth = 2000.0;
  /// schedule_waves per-node concurrency knob.
  std::size_t max_transfers_per_node = 2;

  // --- kLru ---
  /// Per-node cache capacity as a fraction of the record count.
  double cache_fraction = 0.05;
};

struct TraceServeResult {
  /// End-to-end response time per completed request (request transit +
  /// queueing + service + response transit + any migration stall).
  util::RunningStats delay;
  util::LogHistogram delay_hist{1e-4, 1e6, 512};
  /// Communication cost per completed request.
  util::RunningStats comm;

  std::size_t requests_injected = 0;
  /// Completions counted in the statistics — equals requests_injected
  /// (minus failures) in EVERY mode: the engine runs with
  /// completion-time window attribution, so kOnline's periodic window
  /// resets (which truncate the estimation log) never drop in-flight
  /// requests from the cumulative statistics.
  std::size_t completions = 0;
  std::size_t failed = 0;
  double span = 0.0;  ///< simulated time at the last completion

  /// Requests whose serving target was their origin node (free comm).
  std::size_t served_at_origin = 0;

  // kOnline bookkeeping.
  std::size_t reallocations = 0;
  /// Windows where the drift test or the cooldown suppressed a re-solve.
  std::size_t suppressed_reallocations = 0;
  /// Windows whose estimate could not be turned into a solvable problem.
  std::size_t failed_estimations = 0;
  std::size_t migrated_records = 0;
  std::size_t migration_waves = 0;
  /// Reads delayed because their record was in the in-flight wave.
  std::size_t stalled_requests = 0;

  // kLru bookkeeping.
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_invalidations = 0;

  double hit_rate() const noexcept {
    return requests_injected > 0 ? static_cast<double>(served_at_origin) /
                                       static_cast<double>(requests_injected)
                                 : 0.0;
  }
  /// Communication cost per unit time.
  double external_traffic() const noexcept {
    return span > 0.0 ? comm.sum() / span : 0.0;
  }
};

class TraceServer {
 public:
  /// The topology reference must outlive the server. Routing costs (and
  /// hop counts, when options.hop_latency > 0) are computed here once.
  TraceServer(const net::Topology& topology, TraceWorkload workload,
              TraceServeOptions options);
  ~TraceServer();
  TraceServer(const TraceServer&) = delete;
  TraceServer& operator=(const TraceServer&) = delete;

  /// Serves `total_requests` trace requests end to end and returns the
  /// accumulated statistics. Pure function of the constructor arguments.
  TraceServeResult serve(std::size_t total_requests);

  /// The initial layout (deployed at t = 0 in every mode; the permanent
  /// home map for kStatic/kLru). Exposed for tests.
  const fs::FragmentMap& initial_layout() const noexcept { return *initial_; }

  /// The currently deployed layout after serve() (kOnline moves it;
  /// other modes return the initial layout).
  const fs::FragmentMap& current_layout() const noexcept { return *layout_; }

 private:
  struct LruCache;
  struct PendingMigration;

  void route_request(const TraceRequest& request, std::size_t& target,
                     double& comm, double& extra_latency,
                     TraceServeResult& result);
  void maybe_reallocate(const sim::WindowStats& window, double now,
                        TraceServeResult& result);
  void update_migration_state(double now, TraceServeResult& result);
  void harvest_window(const sim::WindowStats& window, TraceServeResult& result);

  const net::Topology& topology_;
  TraceWorkload workload_;
  TraceServeOptions options_;
  std::size_t n_ = 0;
  net::CostMatrix comm_;
  std::vector<std::vector<std::size_t>> hops_;
  std::vector<double> lambda_;  ///< placement-model per-node rates

  std::unique_ptr<fs::FragmentMap> initial_;
  std::unique_ptr<fs::FragmentMap> layout_;
  std::vector<double> solved_shares_;  ///< node shares of the last solve
  std::vector<std::uint64_t> window_counts_;
  std::size_t windows_since_realloc_ = 0;

  std::unique_ptr<PendingMigration> pending_;
  fs::LockManager locks_;

  std::vector<LruCache> caches_;
  std::size_t cache_capacity_ = 0;

  std::unique_ptr<sim::DesSystem> engine_;
};

}  // namespace fap::serve
