// Deterministic fault-injecting virtual network.
//
// The protocol realization in protocol_sim.hpp historically assumed
// perfect delivery; Section 8 of the paper imagines much looser
// operation ("successive iterations of the algorithm can be run at
// freely spaced intervals", nodes that come and go). This module is the
// misbehaving medium for that regime: unicast datagrams between nodes
// suffer per-transmission loss, duplication, and bounded random delay
// (which yields reordering), and nodes crash and rejoin on a script.
//
// Every random decision draws from one seeded util::Rng owned by the
// network, and delivery order is a pure function of (deliver_tick,
// scheduling order), so a run is bit-reproducible from FaultConfig::seed
// alone — independent of wall clock, thread count, or address layout.
// The runtime sweeps hand each task its own seed, which keeps
// `--jobs N` byte-identical to `--jobs 1`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace fap::sim {

/// One scripted outage: `node` is down (sends refused, deliveries
/// dropped) for every tick in [down_tick, up_tick).
struct CrashEvent {
  std::size_t node = 0;
  std::uint64_t down_tick = 0;
  std::uint64_t up_tick = 0;
};

/// Fault-injection knobs. All probabilities are per transmission (a
/// duplicate copy draws its own delay but is never re-duplicated).
struct FaultConfig {
  double loss = 0.0;       ///< P(a transmission vanishes), in [0, 1]
  double duplicate = 0.0;  ///< P(a surviving transmission is delivered twice)
  /// Floor latency in ticks; must be >= 1 (delivery is never same-tick).
  std::uint64_t min_delay_ticks = 1;
  /// Extra delay drawn uniformly from {0, ..., jitter_ticks}; unequal
  /// draws reorder messages (reordering is bounded by this window).
  std::uint64_t jitter_ticks = 0;
  std::vector<CrashEvent> crashes;
  std::uint64_t seed = 1;
};

/// What the network carries. `kind` and `seq` belong to the transport
/// layer (reliable_transport.hpp); `tag` and `payload` to the
/// application. The network treats all of it as opaque cargo.
struct Datagram {
  std::size_t from = 0;
  std::size_t to = 0;
  std::uint32_t kind = 0;
  std::uint64_t seq = 0;
  std::uint64_t tag = 0;
  std::vector<double> payload;
};

struct NetworkStats {
  std::size_t sent = 0;       ///< send() calls accepted from an up node
  std::size_t delivered = 0;  ///< datagrams handed out by tick()
  std::size_t dropped_loss = 0;
  std::size_t dropped_crash = 0;  ///< sender down at send or receiver at delivery
  std::size_t duplicates_injected = 0;
  std::size_t payload_doubles_sent = 0;  ///< scalars in accepted sends
};

class LossyNetwork {
 public:
  /// Validates the config (probabilities in [0, 1], min delay >= 1,
  /// crash windows well-formed and in range).
  LossyNetwork(std::size_t nodes, FaultConfig config);

  std::size_t node_count() const noexcept { return nodes_; }
  std::uint64_t now() const noexcept { return now_; }

  /// True when `node` is not inside any scripted outage at `tick`.
  bool node_up(std::size_t node, std::uint64_t tick) const;
  bool node_up(std::size_t node) const { return node_up(node, now_); }

  /// Submits a datagram at the current tick. A down sender loses the
  /// datagram outright (counted in dropped_crash); otherwise the fault
  /// draws decide loss, delay, and duplication.
  void send(Datagram datagram);

  /// Advances the clock one tick and returns the datagrams due at the
  /// new time, in deterministic (deliver_tick, scheduling) order.
  /// Datagrams addressed to a node that is down at delivery time are
  /// dropped and counted in dropped_crash.
  std::vector<Datagram> tick();

  /// Datagrams scheduled but not yet delivered (for tests).
  std::size_t in_flight() const noexcept { return queue_.size(); }

  const NetworkStats& stats() const noexcept { return stats_; }

 private:
  struct InFlight {
    std::uint64_t deliver_tick = 0;
    std::uint64_t order = 0;  ///< tie-break: scheduling sequence number
    Datagram datagram;
  };

  void schedule(const Datagram& datagram);

  std::size_t nodes_;
  FaultConfig config_;
  util::Rng rng_;
  std::uint64_t now_ = 0;
  std::uint64_t next_order_ = 0;
  std::vector<InFlight> queue_;  ///< min-heap on (deliver_tick, order)
  NetworkStats stats_;
};

}  // namespace fap::sim
