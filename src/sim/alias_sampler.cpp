#include "sim/alias_sampler.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace fap::sim {

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  rebuild(weights);
}

void AliasSampler::rebuild(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  FAP_EXPECTS(n >= 1, "alias table needs at least one outcome");
  scaled_.resize(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    FAP_EXPECTS(weights[i] >= -1e-12, "routing weights must be non-negative");
    scaled_[i] = std::max(weights[i], 0.0);
    sum += scaled_[i];
  }
  FAP_EXPECTS(std::fabs(sum - 1.0) < 1e-6,
              "routing row must sum to 1 (every access must be served "
              "somewhere)");

  // Vose: scale each weight to mean 1, then repeatedly pair an
  // under-full bucket with an over-full one. Every bucket ends with its
  // own mass plus the top-up it donates to its alias.
  for (double& w : scaled_) {
    w *= static_cast<double>(n) / sum;
  }
  accept_.assign(n, 1.0);
  alias_.resize(n);
  small_.clear();
  large_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    alias_[i] = i;
    (scaled_[i] < 1.0 ? small_ : large_).push_back(i);
  }
  while (!small_.empty() && !large_.empty()) {
    const std::size_t s = small_.back();
    const std::size_t l = large_.back();
    small_.pop_back();
    large_.pop_back();
    accept_[s] = scaled_[s];
    alias_[s] = l;
    scaled_[l] = (scaled_[l] + scaled_[s]) - 1.0;
    (scaled_[l] < 1.0 ? small_ : large_).push_back(l);
  }
  // Leftovers (one side only, up to floating-point residue) are full
  // buckets.
  for (const std::size_t i : large_) {
    accept_[i] = 1.0;
  }
  for (const std::size_t i : small_) {
    accept_[i] = 1.0;
  }
}

}  // namespace fap::sim
