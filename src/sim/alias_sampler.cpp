#include "sim/alias_sampler.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace fap::sim {

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  FAP_EXPECTS(n >= 1, "alias table needs at least one outcome");
  std::vector<double> scaled(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    FAP_EXPECTS(weights[i] >= -1e-12, "routing weights must be non-negative");
    scaled[i] = std::max(weights[i], 0.0);
    sum += scaled[i];
  }
  FAP_EXPECTS(std::fabs(sum - 1.0) < 1e-6,
              "routing row must sum to 1 (every access must be served "
              "somewhere)");

  // Vose: scale each weight to mean 1, then repeatedly pair an
  // under-full bucket with an over-full one. Every bucket ends with its
  // own mass plus the top-up it donates to its alias.
  for (double& w : scaled) {
    w *= static_cast<double>(n) / sum;
  }
  accept_.assign(n, 1.0);
  alias_.resize(n);
  std::vector<std::size_t> small;
  std::vector<std::size_t> large;
  for (std::size_t i = 0; i < n; ++i) {
    alias_[i] = i;
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    const std::size_t l = large.back();
    small.pop_back();
    large.pop_back();
    accept_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers (one side only, up to floating-point residue) are full
  // buckets.
  for (const std::size_t i : large) {
    accept_[i] = 1.0;
  }
  for (const std::size_t i : small) {
    accept_[i] = 1.0;
  }
}

}  // namespace fap::sim
