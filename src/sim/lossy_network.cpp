#include "sim/lossy_network.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace fap::sim {

LossyNetwork::LossyNetwork(std::size_t nodes, FaultConfig config)
    : nodes_(nodes), config_(std::move(config)), rng_(config_.seed) {
  FAP_EXPECTS(nodes_ >= 1, "network needs at least one node");
  FAP_EXPECTS(config_.loss >= 0.0 && config_.loss <= 1.0,
              "loss probability must lie in [0, 1]");
  FAP_EXPECTS(config_.duplicate >= 0.0 && config_.duplicate <= 1.0,
              "duplication probability must lie in [0, 1]");
  FAP_EXPECTS(config_.min_delay_ticks >= 1,
              "delivery takes at least one tick");
  for (const CrashEvent& crash : config_.crashes) {
    FAP_EXPECTS(crash.node < nodes_, "crash script names an unknown node");
    FAP_EXPECTS(crash.down_tick < crash.up_tick,
                "crash window must be non-empty (down_tick < up_tick)");
  }
}

bool LossyNetwork::node_up(std::size_t node, std::uint64_t tick) const {
  FAP_EXPECTS(node < nodes_, "node id out of range");
  for (const CrashEvent& crash : config_.crashes) {
    if (crash.node == node && tick >= crash.down_tick &&
        tick < crash.up_tick) {
      return false;
    }
  }
  return true;
}

void LossyNetwork::schedule(const Datagram& datagram) {
  std::uint64_t delay = config_.min_delay_ticks;
  if (config_.jitter_ticks > 0) {
    delay += rng_.uniform_index(config_.jitter_ticks + 1);
  }
  queue_.push_back(InFlight{now_ + delay, next_order_++, datagram});
  std::push_heap(queue_.begin(), queue_.end(),
                 [](const InFlight& a, const InFlight& b) {
                   return a.deliver_tick > b.deliver_tick ||
                          (a.deliver_tick == b.deliver_tick &&
                           a.order > b.order);
                 });
}

void LossyNetwork::send(Datagram datagram) {
  FAP_EXPECTS(datagram.from < nodes_ && datagram.to < nodes_,
              "datagram endpoint out of range");
  FAP_EXPECTS(datagram.from != datagram.to,
              "the network carries no self-loops");
  if (!node_up(datagram.from)) {
    ++stats_.dropped_crash;
    return;
  }
  ++stats_.sent;
  stats_.payload_doubles_sent += datagram.payload.size();
  if (config_.loss > 0.0 && rng_.uniform() < config_.loss) {
    ++stats_.dropped_loss;
    return;
  }
  const bool duplicated =
      config_.duplicate > 0.0 && rng_.uniform() < config_.duplicate;
  schedule(datagram);
  if (duplicated) {
    ++stats_.duplicates_injected;
    schedule(datagram);
  }
}

std::vector<Datagram> LossyNetwork::tick() {
  ++now_;
  const auto later = [](const InFlight& a, const InFlight& b) {
    return a.deliver_tick > b.deliver_tick ||
           (a.deliver_tick == b.deliver_tick && a.order > b.order);
  };
  std::vector<Datagram> due;
  while (!queue_.empty() && queue_.front().deliver_tick <= now_) {
    std::pop_heap(queue_.begin(), queue_.end(), later);
    InFlight arrived = std::move(queue_.back());
    queue_.pop_back();
    if (!node_up(arrived.datagram.to)) {
      ++stats_.dropped_crash;
      continue;
    }
    ++stats_.delivered;
    due.push_back(std::move(arrived.datagram));
  }
  return due;
}

}  // namespace fap::sim
