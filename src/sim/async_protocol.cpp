#include "sim/async_protocol.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "util/contracts.hpp"
#include "util/numeric.hpp"

namespace fap::sim {

namespace {

// Validates the model is single-group and returns the group total.
double single_group_total(const core::CostModel& model) {
  const std::vector<core::ConstraintGroup> groups = model.constraint_groups();
  FAP_EXPECTS(groups.size() == 1 &&
                  groups.front().indices.size() == model.dimension(),
              "asynchronous simulation requires a single conservation "
              "constraint over all variables");
  return groups.front().total;
}

std::size_t validate_delays(const AsyncConfig& config, std::size_t n) {
  if (config.delay.empty()) {
    return 0;
  }
  FAP_EXPECTS(config.delay.size() == n, "delay matrix size mismatch");
  std::size_t max_delay = 0;
  for (std::size_t i = 0; i < n; ++i) {
    FAP_EXPECTS(config.delay[i].size() == n, "delay row size mismatch");
    FAP_EXPECTS(config.delay[i][i] == 0,
                "a node always knows its own current state");
    for (const std::size_t d : config.delay[i]) {
      max_delay = std::max(max_delay, d);
    }
  }
  return max_delay;
}

std::size_t delay_of(const AsyncConfig& config, std::size_t i,
                     std::size_t j) {
  return config.delay.empty() ? 0 : config.delay[i][j];
}

}  // namespace

AsyncResult run_async_averaging(const core::CostModel& model,
                                std::vector<double> initial,
                                const AsyncConfig& config) {
  model.check_feasible(initial);
  FAP_EXPECTS(config.alpha > 0.0, "step size must be positive");
  FAP_EXPECTS(config.rounds >= 1, "need at least one round");
  const std::size_t n = model.dimension();
  const double total = single_group_total(model);
  const std::size_t max_delay = validate_delays(config, n);

  AsyncResult result;
  result.x = std::move(initial);
  // history.front() is the oldest retained snapshot of marginal
  // utilities; history.back() is the current round's.
  std::deque<std::vector<double>> history;

  for (std::size_t round = 0; round < config.rounds; ++round) {
    history.push_back(model.marginal_utilities(result.x));
    if (history.size() > max_delay + 1) {
      history.pop_front();
    }

    std::vector<double> next = result.x;
    for (std::size_t i = 0; i < n; ++i) {
      // Node i averages the marginal utilities as it currently knows
      // them: node j's value from delay(i, j) rounds ago (clamped to the
      // oldest snapshot early in the run).
      double stale_sum = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        const std::size_t age =
            std::min(delay_of(config, i, j), history.size() - 1);
        stale_sum += history[history.size() - 1 - age][j];
      }
      const double avg = stale_sum / static_cast<double>(n);
      const double own = history.back()[i];
      next[i] = std::max(0.0, result.x[i] + config.alpha * (own - avg));
    }
    result.x = std::move(next);

    // Anti-entropy: an occasional synchronized renormalization.
    if (config.correction_interval > 0 &&
        (round + 1) % config.correction_interval == 0) {
      const double sum = fap::util::sum(result.x);
      if (sum > 0.0) {
        for (double& xi : result.x) {
          xi *= total / sum;
        }
      }
    }

    const double drift = std::fabs(fap::util::sum(result.x) - total);
    result.max_feasibility_drift =
        std::max(result.max_feasibility_drift, drift);
    result.drift_trace.push_back(drift);
    // Cost of the (possibly infeasible) state: evaluate on the
    // renormalized shadow so the model's preconditions hold.
    std::vector<double> shadow = result.x;
    const double sum = fap::util::sum(shadow);
    if (sum > 0.0) {
      for (double& xi : shadow) {
        xi *= total / sum;
      }
    }
    result.cost_trace.push_back(model.cost(shadow));
  }
  result.final_feasibility_drift =
      std::fabs(fap::util::sum(result.x) - total);
  std::vector<double> shadow = result.x;
  const double sum = fap::util::sum(shadow);
  if (sum > 0.0) {
    for (double& xi : shadow) {
      xi *= total / sum;
    }
  }
  result.cost = model.cost(shadow);
  return result;
}

AsyncResult run_async_gossip(const core::CostModel& model,
                             const net::Topology& graph,
                             std::vector<double> initial,
                             const AsyncConfig& config) {
  model.check_feasible(initial);
  FAP_EXPECTS(config.alpha > 0.0, "step size must be positive");
  FAP_EXPECTS(config.rounds >= 1, "need at least one round");
  const std::size_t n = model.dimension();
  FAP_EXPECTS(graph.node_count() == n, "graph size mismatch");
  const double total = single_group_total(model);
  const std::size_t max_delay = validate_delays(config, n);

  AsyncResult result;
  result.x = std::move(initial);
  std::deque<std::vector<double>> history;
  constexpr double kEmptyTol = 1e-12;

  for (std::size_t round = 0; round < config.rounds; ++round) {
    history.push_back(model.marginal_utilities(result.x));
    if (history.size() > max_delay + 1) {
      history.pop_front();
    }

    // Requested flows from stale views; Metropolis weights for hub
    // stability (see core::NeighborAllocator).
    struct Flow {
      std::size_t from, to;
      double amount;
    };
    std::vector<Flow> flows;
    std::vector<double> egress(n, 0.0);
    for (const net::Edge& edge : graph.edges()) {
      // Both endpoints act on the same (conservatively old) view of the
      // pair, aged by the edge's delay.
      const std::size_t age = std::min(
          std::max(delay_of(config, edge.u, edge.v),
                   delay_of(config, edge.v, edge.u)),
          history.size() - 1);
      const std::vector<double>& view = history[history.size() - 1 - age];
      const double gap = view[edge.v] - view[edge.u];
      const std::size_t from = gap >= 0.0 ? edge.u : edge.v;
      const std::size_t to = gap >= 0.0 ? edge.v : edge.u;
      if (std::fabs(gap) > 0.0 && result.x[from] > kEmptyTol) {
        const double weight =
            1.0 / (1.0 + static_cast<double>(
                             std::max(graph.neighbors(edge.u).size(),
                                      graph.neighbors(edge.v).size())));
        const double amount = config.alpha * weight * std::fabs(gap);
        flows.push_back(Flow{from, to, amount});
        egress[from] += amount;
      }
    }
    std::vector<double> scale(n, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
      if (egress[i] > result.x[i]) {
        scale[i] = result.x[i] / egress[i];
      }
    }
    for (const Flow& flow : flows) {
      const double moved = scale[flow.from] * flow.amount;
      result.x[flow.from] -= moved;
      result.x[flow.to] += moved;
    }
    for (double& xi : result.x) {
      xi = std::max(xi, 0.0);
    }

    const double drift = std::fabs(fap::util::sum(result.x) - total);
    result.max_feasibility_drift =
        std::max(result.max_feasibility_drift, drift);
    result.drift_trace.push_back(drift);
    result.cost_trace.push_back(model.cost(result.x));
  }
  result.final_feasibility_drift =
      std::fabs(fap::util::sum(result.x) - total);
  result.cost = model.cost(result.x);
  return result;
}

}  // namespace fap::sim
