// Asynchronous execution with stale information.
//
// The paper's algorithm is specified in synchronous rounds: every node
// sees this round's marginal utilities before anyone moves. Section 8
// imagines looser operation — "successive iterations of the algorithm can
// be run at freely spaced intervals" — and in a real system marginal
// utilities arrive late. This module simulates exactly that: node i sees
// node j's marginal utility (and fragment) as of `delay(i, j)` rounds
// ago, computes its own Δx_i from that stale view, and applies it to its
// own fragment only.
//
// The interesting failure is structural. In the synchronous algorithm
// feasibility (Σx = 1) is an identity because all nodes subtract the
// *same* average. With heterogeneous staleness the nodes average
// *different* snapshots, Σ Δx_i ≠ 0, and the total file mass drifts —
// the system literally loses or duplicates parts of the file's
// assignment. Two mitigations are provided and measured
// (bench/ablation_async):
//   * periodic anti-entropy: every `correction_interval` rounds the nodes
//     run one exact renormalization (Σx rescaled to 1), modeling an
//     occasional synchronized round;
//   * structural conservation: the neighbors-only gossip algorithm
//     (core::NeighborAllocator) moves mass in pairwise transfers, so it
//     cannot drift no matter how stale its inputs — simulate_gossip_async
//     runs it with per-edge delays and feasibility stays exact.
#pragma once

#include <cstddef>
#include <vector>

#include "core/cost_model.hpp"
#include "net/topology.hpp"

namespace fap::sim {

struct AsyncConfig {
  double alpha = 0.1;
  std::size_t rounds = 500;
  /// delay[i][j]: how many rounds old node j's report is when node i uses
  /// it (delay[i][i] must be 0 — a node always knows itself). Empty means
  /// fully synchronous.
  std::vector<std::vector<std::size_t>> delay;
  /// Every this many rounds, one synchronized renormalization restores
  /// Σx = total exactly (0 disables anti-entropy).
  std::size_t correction_interval = 0;
};

struct AsyncResult {
  std::vector<double> x;
  double cost = 0.0;
  /// max_t |Σ x(t) - total|: the worst feasibility drift observed.
  double max_feasibility_drift = 0.0;
  /// |Σ x(final) - total|.
  double final_feasibility_drift = 0.0;
  std::vector<double> cost_trace;
  std::vector<double> drift_trace;
};

/// Runs the averaging algorithm asynchronously on a single-group model.
/// Negative fragments are clamped at zero (contributing to drift like any
/// other asynchrony artifact).
AsyncResult run_async_averaging(const core::CostModel& model,
                                std::vector<double> initial,
                                const AsyncConfig& config);

/// Runs the neighbors-only gossip update with per-edge staleness: the
/// flow on edge (i, j) at round t uses marginal utilities from round
/// t - delay. Pairwise transfers conserve mass structurally, so
/// feasibility drift is identically zero; staleness costs only speed.
AsyncResult run_async_gossip(const core::CostModel& model,
                             const net::Topology& graph,
                             std::vector<double> initial,
                             const AsyncConfig& config);

}  // namespace fap::sim
