// Walker/Vose alias-table sampler over a discrete distribution.
//
// The discrete-event simulator draws one routed target per generated
// access. A CDF binary search costs O(log n) per draw and walks a
// cache-unfriendly prefix array; the alias table answers the same draw in
// O(1): one multiply, one table probe, one compare. Construction is O(n)
// (Vose's stack algorithm).
//
// The sampler consumes exactly ONE uniform draw per sample, like the CDF
// sampler it replaced, so swapping it in shifts which random bits route
// which access but leaves the RNG stream alignment — and every downstream
// exponential draw count — unchanged.
#pragma once

#include <cstddef>
#include <vector>

namespace fap::sim {

class AliasSampler {
 public:
  /// Builds the table for `weights` (same validation as the routing rows:
  /// entries >= -1e-12 with negatives clamped to 0, total within 1e-6 of
  /// 1). Throws PreconditionError otherwise.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Rebuilds the table for a new distribution in place, reusing the
  /// table and workspace storage — after the first build, a same-size
  /// rebuild performs no allocation. Produces a table bit-identical to
  /// constructing AliasSampler(weights). The engine rewires routing this
  /// way (DesSystem::set_routing), so deploying a new allocation
  /// mid-flight does not churn the allocator. On validation failure the
  /// sampler is left unusable until a successful rebuild.
  void rebuild(const std::vector<double>& weights);

  std::size_t size() const noexcept { return accept_.size(); }

  /// Maps one uniform draw u ∈ [0, 1) to an outcome index, distributed as
  /// the constructor's weights. The single draw is split into a bucket
  /// index (high part) and an acceptance coin (fractional part) — the
  /// classic one-uniform alias probe.
  std::size_t sample(double u) const noexcept {
    const double scaled = u * static_cast<double>(accept_.size());
    std::size_t bucket = static_cast<std::size_t>(scaled);
    if (bucket >= accept_.size()) {
      bucket = accept_.size() - 1;  // guards u rounding up to 1.0
    }
    const double coin = scaled - static_cast<double>(bucket);
    return coin < accept_[bucket] ? bucket : alias_[bucket];
  }

  /// Table introspection for the distribution-equivalence tests: outcome
  /// i's total probability mass is
  ///   (accept_[i] + Σ_{j : alias_[j] == i} (1 - accept_[j])) / n.
  const std::vector<double>& acceptance() const noexcept { return accept_; }
  const std::vector<std::size_t>& alias() const noexcept { return alias_; }

 private:
  std::vector<double> accept_;
  std::vector<std::size_t> alias_;
  // Vose construction workspace, kept so rebuild() is allocation-free.
  std::vector<double> scaled_;
  std::vector<std::size_t> small_;
  std::vector<std::size_t> large_;
};

}  // namespace fap::sim
