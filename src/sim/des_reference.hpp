// Reference discrete-event engine, kept as the equivalence oracle for
// DesSystem (the same pattern as core's active_set_reference).
//
// This is the pre-rewrite engine verbatim — fat Event structs through
// std::priority_queue, a std::deque FIFO and a per-job unordered_map at
// every server — with one normalization: active (in-service) jobs are
// iterated in ascending job-id order wherever their busy-time
// contributions are summed. The original engine iterated in
// unordered_map bucket order, which is observable only in the last bits
// of multi-server busy-time/utilization sums; the rewritten engine and
// this reference both use the canonical ascending order, so their traces
// can be compared bit for bit.
//
// Not used on any hot path: its only callers are the golden-trace
// equivalence tests, which drive both engines through identical
// scenario scripts and require every statistic, log entry and clock
// value to match exactly.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "sim/des_system.hpp"

namespace fap::sim {

/// Mirror of the DesSystem API backed by the reference event engine.
/// Behavior contract: for any sequence of calls, every observable —
/// now(), window() statistics, logs, completion counts — is bit-identical
/// to DesSystem's under the same DesConfig.
class DesReferenceSystem {
 public:
  explicit DesReferenceSystem(DesConfig config);
  ~DesReferenceSystem();
  DesReferenceSystem(DesReferenceSystem&&) noexcept;
  DesReferenceSystem& operator=(DesReferenceSystem&&) noexcept;

  double now() const noexcept { return now_; }
  void set_routing(const std::vector<std::vector<double>>& routing);
  void set_node_failed(std::size_t node, bool failed);
  void advance_until(double time);
  std::size_t advance_completions(std::size_t count);
  void reset_window();
  const WindowStats& window();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  double now_ = 0.0;
  WindowStats window_;

  void process_one_event();
};

}  // namespace fap::sim
