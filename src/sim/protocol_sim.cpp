#include "sim/protocol_sim.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"
#include "util/numeric.hpp"

namespace fap::sim {

namespace {

// One node of the protocol. An agent owns its fragment x_i and a mailbox;
// all knowledge of other fragments arrives through deliver().
class Agent {
 public:
  Agent(std::size_t id, std::size_t node_count, double fragment)
      : id_(id), view_(node_count, 0.0), marginal_view_(node_count, 0.0) {
    view_[id] = fragment;
  }

  std::size_t id() const noexcept { return id_; }
  double fragment() const noexcept { return view_[id_]; }

  /// Receive (x_j, ∂U/∂x_j) from node j.
  void deliver(std::size_t from, double fragment, double marginal) {
    view_[from] = fragment;
    marginal_view_[from] = marginal;
  }

  /// Record this agent's own marginal utility (computed in compute_round).
  void set_own_marginal(double marginal) { marginal_view_[id_] = marginal; }

  /// The agent's current view of the full allocation (own fragment always
  /// fresh; others as of the last delivery).
  const std::vector<double>& view() const noexcept { return view_; }
  const std::vector<double>& marginal_view() const noexcept {
    return marginal_view_;
  }

  /// Apply the agent's own component of the jointly computed update.
  void apply(double new_fragment) { view_[id_] = new_fragment; }

 private:
  std::size_t id_;
  std::vector<double> view_;           // x as known to this agent
  std::vector<double> marginal_view_;  // ∂U/∂x as known to this agent
};

}  // namespace

RoundMessageCost round_message_cost(std::size_t nodes,
                                    const ProtocolConfig& config) {
  FAP_EXPECTS(nodes >= 1, "need at least one node");
  RoundMessageCost cost;
  if (nodes == 1) {
    // A single node holds the whole file and never transmits: no
    // point-to-point messages, no broadcast-medium transmissions, no
    // payload — under either scheme.
    return cost;
  }
  // Payload of one node's report: its marginal utility, plus its fragment
  // when other nodes cannot derive routing without it.
  const std::size_t report_payload = config.needs_full_allocation ? 2 : 1;
  if (config.scheme == AggregationScheme::kBroadcast) {
    // Every node reports to every other node.
    cost.point_to_point = nodes * (nodes - 1);
    // On a broadcast medium one transmission reaches everyone.
    cost.broadcast_medium = nodes;
    cost.payload_doubles = nodes * (nodes - 1) * report_payload;
  } else {
    // N-1 uploads to the central agent plus N-1 replies.
    cost.point_to_point = 2 * (nodes - 1);
    cost.broadcast_medium = (nodes - 1) + 1;  // uploads + one broadcast reply
    // Reply carries the average marginal utility — and the full allocation
    // vector when fragments alone do not determine routing (Section 7.3).
    const std::size_t reply_payload =
        config.needs_full_allocation ? 1 + nodes : 1;
    cost.payload_doubles =
        (nodes - 1) * report_payload + (nodes - 1) * reply_payload;
  }
  return cost;
}

namespace {

// The ideal synchronous network: lossless, in-order delivery, every
// round completes. This is the historical run_protocol body, untouched
// so the fault-injection path cannot perturb it (the trajectory test
// pins it to the centralized driver bitwise).
ProtocolResult run_protocol_ideal(const core::CostModel& model,
                                  std::vector<double> initial,
                                  const ProtocolConfig& config) {
  model.check_feasible(initial);
  const std::size_t n = model.dimension();

  // Instantiate one agent per variable, seeded with only its own fragment.
  std::vector<Agent> agents;
  agents.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    agents.emplace_back(i, n, initial[i]);
  }

  const core::ResourceDirectedAllocator stepper(model, config.algorithm);
  const RoundMessageCost per_round = round_message_cost(n, config);

  ProtocolResult result;
  result.x = initial;

  for (std::size_t round = 0; round < config.algorithm.max_iterations;
       ++round) {
    // Phase (a): every agent evaluates its own marginal utility at the
    // current allocation. For the single-file objective this needs only
    // the agent's own fragment (C_i is static local knowledge); for the
    // ring objective it needs the allocation view exchanged in previous
    // rounds — both cases reduce to evaluating the model's gradient
    // component at the assembled allocation.
    std::vector<double> assembled(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      assembled[i] = agents[i].fragment();
    }
    const std::vector<double> marginals = model.marginal_utilities(assembled);
    for (std::size_t i = 0; i < n; ++i) {
      agents[i].set_own_marginal(marginals[i]);
    }

    // Phase (b): exchange. Both schemes result in every agent holding all
    // (x_j, ∂U/∂x_j); they differ only in message/payload cost, accounted
    // above. Delivery is lossless and in-order.
    for (std::size_t from = 0; from < n; ++from) {
      for (std::size_t to = 0; to < n; ++to) {
        if (from != to) {
          agents[to].deliver(from, agents[from].fragment(), marginals[from]);
        }
      }
    }
    result.point_to_point_messages += per_round.point_to_point;
    result.broadcast_medium_messages += per_round.broadcast_medium;
    result.payload_doubles += per_round.payload_doubles;

    // Phase (c): every agent independently runs the identical
    // deterministic update on its received view and keeps its own
    // component.
    std::vector<double> next(n, 0.0);
    bool terminal = false;
    for (std::size_t i = 0; i < n; ++i) {
      const core::ResourceDirectedAllocator::StepOutcome outcome =
          stepper.step(agents[i].view());
      if (i == 0) {
        terminal = outcome.terminal;
        next = outcome.x;
      } else {
        // Agreement invariant: identical inputs must give identical
        // decisions at every agent.
        FAP_ENSURES(outcome.terminal == terminal,
                    "protocol agents disagree on termination");
        FAP_ENSURES(outcome.x[i] == next[i],
                    "protocol agents disagree on the next allocation");
      }
    }
    ++result.rounds;
    if (terminal) {
      result.converged = true;
      break;
    }
    for (std::size_t i = 0; i < n; ++i) {
      agents[i].apply(next[i]);
    }
    result.x = next;
    if (config.record_cost_trace) {
      result.cost_trace.push_back(model.cost(result.x));
    }
  }

  result.cost = model.cost(result.x);
  return result;
}

// Fault-injected execution: reports travel through ReliableTransport
// over LossyNetwork, and a round is a fixed budget of transport ticks.
// Reports that miss the deadline leave receivers stepping from stale
// views (core::ResourceDirectedAllocator::step_with_drift), so Σx can
// drift exactly as in sim/async_protocol; optional anti-entropy
// renormalization restores it. With zero faults every report lands
// inside its round, all views equal the true allocation, and the
// trajectory is bitwise the ideal path's (pinned by test).
ProtocolResult run_protocol_unreliable(const core::CostModel& model,
                                       std::vector<double> initial,
                                       const ProtocolConfig& config) {
  model.check_feasible(initial);
  const std::size_t n = model.dimension();
  const std::vector<core::ConstraintGroup> groups = model.constraint_groups();
  FAP_EXPECTS(groups.size() == 1 &&
                  groups.front().indices.size() == n,
              "fault-injected protocol execution requires a single "
              "conservation constraint over all variables");
  const double total = groups.front().total;
  const UnreliableNetworkConfig& un = config.unreliable;
  FAP_EXPECTS(un.round_ticks >= 1, "a round needs at least one tick");
  FAP_EXPECTS(un.faults.min_delay_ticks <= un.round_ticks,
              "the delivery floor must fit inside one round");

  LossyNetwork network(n, un.faults);
  ReliableTransport transport(network, un.transport);
  const core::ResourceDirectedAllocator stepper(model, config.algorithm);
  const bool central = config.scheme == AggregationScheme::kCentralAgent;

  // Agent state. The starting allocation is globally known (exactly as
  // the centralized driver and the ideal path assume), so every view
  // begins at `initial`; view[i][i] is agent i's authoritative fragment.
  std::vector<std::vector<double>> view(n, initial);
  // Freshness of i's knowledge of j (last applied report tag; a report
  // sent in round r carries tag r + 1, so 0 means "initial knowledge").
  std::vector<std::vector<std::uint64_t>> report_tag(
      n, std::vector<std::uint64_t>(n, 0));
  std::vector<std::uint64_t> reply_tag(n, 0);  // kCentralAgent only

  ProtocolResult result;
  result.x = std::move(initial);

  // The true allocation is the concatenation of the agents' own
  // fragments — what an omniscient observer (and the drift accounting)
  // sees. Crashed agents hold their fragment frozen.
  std::vector<double> x_true(n, 0.0);
  const auto assemble_true = [&]() {
    for (std::size_t i = 0; i < n; ++i) {
      x_true[i] = view[i][i];
    }
  };
  // Model preconditions require feasibility; evaluate cost on the
  // renormalized shadow of a drifted allocation (async convention).
  std::vector<double> shadow(n, 0.0);
  const auto shadow_cost = [&]() {
    shadow = x_true;
    const double sum = util::sum(shadow);
    if (sum > 0.0) {
      for (double& xi : shadow) {
        xi *= total / sum;
      }
    }
    return model.cost(shadow);
  };

  std::vector<bool> up(n, true);
  std::vector<std::vector<bool>> got(n, std::vector<bool>(n, false));
  std::vector<bool> got_reply(n, false);
  // Whether anything at all advanced i's view this round (a current or
  // late report/reply). A node that hears nothing has no new basis to
  // update and holds its fragment — a total blackout (say, the central
  // agent down) stalls the protocol instead of diverging it.
  std::vector<bool> advanced(n, false);
  std::vector<double> next_own(n, 0.0);

  for (std::size_t round = 0; round < config.algorithm.max_iterations;
       ++round) {
    const std::uint64_t tag = static_cast<std::uint64_t>(round) + 1;
    for (std::size_t i = 0; i < n; ++i) {
      up[i] = network.node_up(i);
      std::fill(got[i].begin(), got[i].end(), false);
      got_reply[i] = false;
      advanced[i] = false;
    }

    // Phase (a) + (b): every live agent evaluates its own marginal
    // utility on its (possibly stale) view and reports (x_i, ∂U/∂x_i) —
    // to everyone (kBroadcast) or to the central agent (kCentralAgent).
    // A fresh report supersedes anything still in flight from earlier
    // rounds.
    for (std::size_t i = 0; i < n; ++i) {
      if (!up[i]) {
        continue;
      }
      transport.cancel_older(i, tag);
      const double marginal = model.marginal_utilities(view[i])[i];
      if (central) {
        if (i != 0) {
          transport.send(i, 0, tag, {view[i][i], marginal});
        }
      } else {
        for (std::size_t to = 0; to < n; ++to) {
          if (to != i) {
            transport.send(i, to, tag, {view[i][i], marginal});
          }
        }
      }
    }

    // The round: un.round_ticks transport ticks. Deliveries update the
    // receivers' views (late reports from earlier rounds still apply if
    // they are the newest word from that sender). The central agent
    // replies with its full allocation view once every live upload has
    // arrived — or at mid-round, whichever comes first — so replies can
    // still land before the deadline.
    bool replied = central && n == 1;
    const auto all_uploads_in = [&]() {
      for (std::size_t j = 1; j < n; ++j) {
        if (up[j] && !got[0][j]) {
          return false;
        }
      }
      return true;
    };
    for (std::uint64_t t = 0; t < un.round_ticks; ++t) {
      for (const Datagram& d : transport.tick()) {
        if (central && d.from == 0) {
          // Central reply: the full allocation as node 0 knows it.
          if (d.tag > reply_tag[d.to]) {
            reply_tag[d.to] = d.tag;
            for (std::size_t k = 0; k < n; ++k) {
              if (k != d.to) {
                view[d.to][k] = d.payload[k];
              }
            }
            got_reply[d.to] = d.tag == tag;
            advanced[d.to] = true;
          }
          continue;
        }
        // A report (x_j, ∂U/∂x_j) from d.from.
        if (d.tag > report_tag[d.to][d.from]) {
          report_tag[d.to][d.from] = d.tag;
          view[d.to][d.from] = d.payload[0];
          got[d.to][d.from] = d.tag == tag;
          advanced[d.to] = true;
        }
      }
      if (central && !replied && network.node_up(0) &&
          (all_uploads_in() || t + 1 >= un.round_ticks / 2)) {
        replied = true;
        for (std::size_t to = 1; to < n; ++to) {
          transport.send(0, to, tag, view[0]);
        }
      }
    }

    // Deadline accounting: a round is "missing reports" when any live
    // node lacks this round's word from any peer — a crashed sender's
    // silence counts, the expectation is the receiver's. For kBroadcast
    // that is a fresh report from every other node; for kCentralAgent
    // every upload at node 0 plus a fresh reply everywhere else.
    bool missing = false;
    if (central) {
      for (std::size_t j = 1; j < n && !missing; ++j) {
        missing = !got[0][j] || (up[j] && !got_reply[j]);
      }
    } else {
      for (std::size_t i = 0; i < n && !missing; ++i) {
        for (std::size_t j = 0; j < n && !missing; ++j) {
          missing = up[i] && i != j && !got[i][j];
        }
      }
    }
    if (missing) {
      ++result.robustness.rounds_with_missing_reports;
    }

    // Phase (c): termination is judged at the true allocation (the
    // omniscient-observer criterion the acceptance tests measure); each
    // live agent then steps from its own view and keeps its component.
    assemble_true();
    ++result.rounds;
    if (stepper.step_with_drift(x_true, un.max_view_drift).terminal) {
      result.converged = true;
      break;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const bool stalled = n > 1 && !advanced[i];
      next_own[i] =
          up[i] && !stalled
              ? stepper.step_with_drift(view[i], un.max_view_drift).x[i]
              : view[i][i];
    }
    for (std::size_t i = 0; i < n; ++i) {
      view[i][i] = next_own[i];
    }

    // Anti-entropy: an occasional synchronized renormalization over the
    // live nodes (crashed fragments are frozen and unreachable).
    if (un.correction_interval > 0 &&
        (round + 1) % un.correction_interval == 0) {
      double sum_up = 0.0;
      double sum_down = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        (up[i] ? sum_up : sum_down) += view[i][i];
      }
      const double target = total - sum_down;
      if (sum_up > 0.0 && target > 0.0) {
        for (std::size_t i = 0; i < n; ++i) {
          if (up[i]) {
            view[i][i] *= target / sum_up;
          }
        }
      }
    }

    assemble_true();
    const double drift = std::fabs(util::sum(x_true) - total);
    result.robustness.max_feasibility_drift =
        std::max(result.robustness.max_feasibility_drift, drift);
    if (config.record_cost_trace) {
      result.cost_trace.push_back(shadow_cost());
    }
  }

  assemble_true();
  result.x = x_true;
  result.robustness.final_feasibility_drift =
      std::fabs(util::sum(x_true) - total);
  result.cost = shadow_cost();

  // Message accounting over the faulty network counts what was actually
  // transmitted: every unicast the network accepted (first sends,
  // retransmissions, acks, central replies) and every scalar they
  // carried. No physical broadcast is modeled, so both message columns
  // coincide.
  const NetworkStats& net_stats = network.stats();
  const TransportStats& tx_stats = transport.stats();
  result.point_to_point_messages = net_stats.sent;
  result.broadcast_medium_messages = net_stats.sent;
  result.payload_doubles = net_stats.payload_doubles_sent;
  result.robustness.data_messages_sent = tx_stats.data_sent;
  result.robustness.retransmissions = tx_stats.retransmissions;
  result.robustness.duplicates_suppressed = tx_stats.duplicates_suppressed;
  result.robustness.messages_dropped =
      net_stats.dropped_loss + net_stats.dropped_crash;
  return result;
}

}  // namespace

ProtocolResult run_protocol(const core::CostModel& model,
                            std::vector<double> initial,
                            const ProtocolConfig& config) {
  if (config.unreliable.enabled) {
    return run_protocol_unreliable(model, std::move(initial), config);
  }
  return run_protocol_ideal(model, std::move(initial), config);
}

}  // namespace fap::sim
