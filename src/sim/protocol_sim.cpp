#include "sim/protocol_sim.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace fap::sim {

namespace {

// One node of the protocol. An agent owns its fragment x_i and a mailbox;
// all knowledge of other fragments arrives through deliver().
class Agent {
 public:
  Agent(std::size_t id, std::size_t node_count, double fragment)
      : id_(id), view_(node_count, 0.0), marginal_view_(node_count, 0.0) {
    view_[id] = fragment;
  }

  std::size_t id() const noexcept { return id_; }
  double fragment() const noexcept { return view_[id_]; }

  /// Receive (x_j, ∂U/∂x_j) from node j.
  void deliver(std::size_t from, double fragment, double marginal) {
    view_[from] = fragment;
    marginal_view_[from] = marginal;
  }

  /// Record this agent's own marginal utility (computed in compute_round).
  void set_own_marginal(double marginal) { marginal_view_[id_] = marginal; }

  /// The agent's current view of the full allocation (own fragment always
  /// fresh; others as of the last delivery).
  const std::vector<double>& view() const noexcept { return view_; }
  const std::vector<double>& marginal_view() const noexcept {
    return marginal_view_;
  }

  /// Apply the agent's own component of the jointly computed update.
  void apply(double new_fragment) { view_[id_] = new_fragment; }

 private:
  std::size_t id_;
  std::vector<double> view_;           // x as known to this agent
  std::vector<double> marginal_view_;  // ∂U/∂x as known to this agent
};

}  // namespace

RoundMessageCost round_message_cost(std::size_t nodes,
                                    const ProtocolConfig& config) {
  FAP_EXPECTS(nodes >= 1, "need at least one node");
  RoundMessageCost cost;
  // Payload of one node's report: its marginal utility, plus its fragment
  // when other nodes cannot derive routing without it.
  const std::size_t report_payload = config.needs_full_allocation ? 2 : 1;
  if (config.scheme == AggregationScheme::kBroadcast) {
    // Every node reports to every other node.
    cost.point_to_point = nodes * (nodes - 1);
    // On a broadcast medium one transmission reaches everyone.
    cost.broadcast_medium = nodes;
    cost.payload_doubles = nodes * (nodes - 1) * report_payload;
  } else {
    // N-1 uploads to the central agent plus N-1 replies.
    cost.point_to_point = 2 * (nodes - 1);
    cost.broadcast_medium = (nodes - 1) + 1;  // uploads + one broadcast reply
    // Reply carries the average marginal utility — and the full allocation
    // vector when fragments alone do not determine routing (Section 7.3).
    const std::size_t reply_payload =
        config.needs_full_allocation ? 1 + nodes : 1;
    cost.payload_doubles =
        (nodes - 1) * report_payload + (nodes - 1) * reply_payload;
  }
  return cost;
}

ProtocolResult run_protocol(const core::CostModel& model,
                            std::vector<double> initial,
                            const ProtocolConfig& config) {
  model.check_feasible(initial);
  const std::size_t n = model.dimension();

  // Instantiate one agent per variable, seeded with only its own fragment.
  std::vector<Agent> agents;
  agents.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    agents.emplace_back(i, n, initial[i]);
  }

  const core::ResourceDirectedAllocator stepper(model, config.algorithm);
  const RoundMessageCost per_round = round_message_cost(n, config);

  ProtocolResult result;
  result.x = initial;

  for (std::size_t round = 0; round < config.algorithm.max_iterations;
       ++round) {
    // Phase (a): every agent evaluates its own marginal utility at the
    // current allocation. For the single-file objective this needs only
    // the agent's own fragment (C_i is static local knowledge); for the
    // ring objective it needs the allocation view exchanged in previous
    // rounds — both cases reduce to evaluating the model's gradient
    // component at the assembled allocation.
    std::vector<double> assembled(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      assembled[i] = agents[i].fragment();
    }
    const std::vector<double> marginals = model.marginal_utilities(assembled);
    for (std::size_t i = 0; i < n; ++i) {
      agents[i].set_own_marginal(marginals[i]);
    }

    // Phase (b): exchange. Both schemes result in every agent holding all
    // (x_j, ∂U/∂x_j); they differ only in message/payload cost, accounted
    // above. Delivery is lossless and in-order.
    for (std::size_t from = 0; from < n; ++from) {
      for (std::size_t to = 0; to < n; ++to) {
        if (from != to) {
          agents[to].deliver(from, agents[from].fragment(), marginals[from]);
        }
      }
    }
    result.point_to_point_messages += per_round.point_to_point;
    result.broadcast_medium_messages += per_round.broadcast_medium;
    result.payload_doubles += per_round.payload_doubles;

    // Phase (c): every agent independently runs the identical
    // deterministic update on its received view and keeps its own
    // component.
    std::vector<double> next(n, 0.0);
    bool terminal = false;
    for (std::size_t i = 0; i < n; ++i) {
      const core::ResourceDirectedAllocator::StepOutcome outcome =
          stepper.step(agents[i].view());
      if (i == 0) {
        terminal = outcome.terminal;
        next = outcome.x;
      } else {
        // Agreement invariant: identical inputs must give identical
        // decisions at every agent.
        FAP_ENSURES(outcome.terminal == terminal,
                    "protocol agents disagree on termination");
        FAP_ENSURES(outcome.x[i] == next[i],
                    "protocol agents disagree on the next allocation");
      }
    }
    ++result.rounds;
    if (terminal) {
      result.converged = true;
      break;
    }
    for (std::size_t i = 0; i < n; ++i) {
      agents[i].apply(next[i]);
    }
    result.x = next;
    if (config.record_cost_trace) {
      result.cost_trace.push_back(model.cost(result.x));
    }
  }

  result.cost = model.cost(result.x);
  return result;
}

}  // namespace fap::sim
