// Incremental discrete-event simulation engine.
//
// run_des() (sim/des.hpp) answers "what does this fixed configuration
// measure?"; DesSystem exposes the same engine as a long-lived object so
// the configuration can change *while the system runs* — the routing mix
// can be rewired mid-flight (deploying a new file allocation without
// draining queues), and statistics are collected per observation window.
// This is what the Section 8 adaptive scenario actually needs: operate,
// measure a window, re-optimize, deploy, keep operating. Demonstrated in
// examples/live_adaptation.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "runtime/sweep.hpp"
#include "sim/des.hpp"

namespace fap::sim {

/// Revision of the routing-sampler implementation shared by run_des() and
/// DesSystem. The sampled distribution is pinned by tests across
/// revisions, but the map from a uniform draw to a concrete target is
/// not: changing it re-routes individual accesses, so per-seed event
/// sequences — and every concrete number a fixed-seed DES run produces
/// (e.g. the EXPERIMENTS.md §A4 error percentages) — shift within their
/// statistical tolerances whenever this constant is bumped.
///
/// Revision history:
///   1 — cumulative-distribution row sampler (binary search per draw).
///   2 — Walker/Vose alias table (alias_sampler.hpp): O(1) per draw, same
///       one-uniform-per-sample stream alignment.
inline constexpr int kDesRoutingSamplerRevision = 2;

/// Statistics for the current observation window. Only accesses that
/// *arrived* after the window opened are counted, so a freshly reset
/// window is not polluted by the tail of the previous regime.
struct WindowStats {
  util::RunningStats comm_cost;
  util::RunningStats sojourn;
  /// End-to-end response time as the requester sees it: request transit +
  /// queueing + service + response transit. Equals sojourn when
  /// hop_latency is 0.
  util::RunningStats response_time;
  util::Histogram sojourn_histogram{0.0, 50.0, 500};
  /// Response-time distribution on exponential buckets (same samples as
  /// response_time), so p99/p999 keep constant relative resolution under
  /// heavy-tailed delays. Same parameters as DesResult::response_hist.
  util::LogHistogram response_hist{1e-4, 1e6, 512};
  std::vector<NodeStats> node;
  std::vector<AccessObservation> log;  ///< when record_log is set
  double start_time = 0.0;
  double span = 0.0;          ///< time elapsed since the window opened
  std::size_t completions = 0;
  /// Accesses that targeted a failed node (lost, not serviced).
  std::size_t failed_accesses = 0;

  /// Fraction of accesses that were actually served in this window.
  double availability() const {
    const double total =
        static_cast<double>(completions + failed_accesses);
    return total > 0.0 ? static_cast<double>(completions) / total : 1.0;
  }

  /// Mean per-access cost in the window: comm + k * sojourn.
  double measured_cost(double k) const {
    return comm_cost.mean() + k * sojourn.mean();
  }
};

class DesSystem {
 public:
  /// `config.measured_accesses` and `config.warmup_time` are ignored —
  /// the caller decides when to advance and when to open windows.
  explicit DesSystem(DesConfig config);
  ~DesSystem();
  DesSystem(DesSystem&&) noexcept;
  DesSystem& operator=(DesSystem&&) noexcept;

  /// Re-initializes the engine for `config` exactly as constructing a
  /// fresh DesSystem(config) would — same RNG stream, same event
  /// sequence, bit-identical statistics — but reuses the already-grown
  /// event heap, job slab, queue rings, sampler tables and window
  /// buffers, so a warmed engine replays configuration after
  /// configuration with zero steady-state allocation (this is how
  /// run_des_replications recycles one engine per worker thread).
  /// now() returns 0 again afterwards. Throws on an invalid config, in
  /// which case the engine must be restarted again before further use.
  void restart(DesConfig config);

  double now() const noexcept { return now_; }

  /// Deploys a new routing mix (e.g. a freshly optimized allocation).
  /// Takes effect for accesses generated after the call; queued work is
  /// unaffected, exactly as in a real system.
  void set_routing(const std::vector<std::vector<double>>& routing);

  /// Fails (or repairs) a node. Accesses routed to a failed node are lost
  /// and counted in WindowStats::failed_accesses — the Section 4(a)
  /// graceful-degradation experiment: with a fragmented file, "failure of
  /// one or more nodes only means that the portions of the file stored at
  /// those nodes cannot be accessed". Work already queued at the node
  /// when it fails is lost as well.
  void set_node_failed(std::size_t node, bool failed);

  /// Injects one externally generated access (open-loop trace serving):
  /// an access from `source`, generated at `time` (>= now()), that will
  /// reach `target`'s queue after `extra_latency` plus the configured
  /// source->target transit, paying `comm` communication cost. The
  /// access then queues, receives service and is counted exactly like a
  /// generated one; its response time spans from `time` to service
  /// completion plus return transit, so `extra_latency` (e.g. a
  /// migration stall) shows up in the delay statistics. Injection does
  /// not advance the clock — call advance_until / advance_completions to
  /// process the scheduled work.
  void inject_access(double time, std::size_t source, std::size_t target,
                     double comm, double extra_latency = 0.0);

  /// Processes events until simulated time reaches `time`.
  void advance_until(double time);

  /// Processes events until `count` further accesses complete (measured
  /// from this call, regardless of windows). Returns completions made.
  std::size_t advance_completions(std::size_t count);

  /// Opens a fresh observation window at the current time.
  void reset_window();

  /// Finalizes window bookkeeping (utilization, rates) up to now() and
  /// returns the statistics.
  const WindowStats& window();

 private:
  struct Impl;  // engine state (event queue, servers, RNG), out of line
  std::unique_ptr<Impl> impl_;
  double now_ = 0.0;
  WindowStats window_;

  void process_one_event();
};

/// Result of running the same DES configuration over R independent
/// replications (distinct seeds). Pooled per-access statistics reduce via
/// util::RunningStats::merge, which is exact, so the numbers do not
/// depend on how many workers ran the replications.
struct ReplicatedDesResult {
  util::RunningStats comm_cost;      ///< pooled across all accesses
  util::RunningStats sojourn;        ///< pooled across all accesses
  util::RunningStats response_time;  ///< pooled across all accesses
  /// Distribution of the per-replication measured cost — the quantity a
  /// confidence interval on the mean cost should be built from (per-access
  /// observations within a replication are autocorrelated; replication
  /// means are independent).
  util::RunningStats cost_per_replication;
  std::size_t replications = 0;
  /// Pooled per-access cost: mean comm + k * mean sojourn.
  double measured_cost = 0.0;
};

/// Runs `replications` independent copies of the configuration, seeding
/// copy r with runtime::task_seed(options.base_seed, r) (config.seed is
/// ignored) and executing them through runtime::run_sweep — serial when
/// options.jobs == 1, on a worker pool otherwise, bit-identical either
/// way. `config.k` weights the pooled measured cost.
ReplicatedDesResult run_des_replications(const DesConfig& config,
                                         std::size_t replications,
                                         const runtime::SweepOptions& options);

}  // namespace fap::sim
