// Discrete-event simulation of a running file-access system.
//
// The paper's evaluation relies on an analytic cost (Eq. 1) whose delay
// term assumes each node behaves as an M/M/1 queue. This simulator
// validates that assumption end to end (experiment A4): every node
// generates accesses as a Poisson process, each access is routed to a
// fragment holder according to the allocation (uniform record-access
// assumption), pays the communication cost of the route, queues FIFO at
// the holder, and receives (exponential / deterministic / gamma) service.
// The measured per-access cost — mean communication cost plus k times the
// mean sojourn time — is compared against the analytic model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/multi_file.hpp"
#include "core/ring_model.hpp"
#include "core/single_file.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace fap::sim {

/// Service-time distribution at the nodes.
enum class ServiceDistribution {
  kExponential,    ///< M/M/1 (the paper's base model)
  kDeterministic,  ///< M/D/1
  kGamma,          ///< M/G/1 with configurable SCV (shape 1/scv)
};

struct DesConfig {
  std::vector<double> lambda;  ///< per-node access generation rates
  std::vector<double> mu;      ///< per-node service rates
  /// routing[j][i]: probability node j's access is served at node i
  /// (rows must sum to ~1).
  std::vector<std::vector<double>> routing;
  /// comm_cost[j][i]: communication cost of one access j -> i.
  std::vector<std::vector<double>> comm_cost;
  double k = 1.0;  ///< delay weight in the measured cost

  ServiceDistribution service = ServiceDistribution::kExponential;
  double service_scv = 1.0;  ///< used by kGamma only

  /// Parallel servers per node (M/M/c nodes, matching
  /// queueing::DelayModel::mmc; `mu` stays the per-server rate). Empty
  /// means one server everywhere.
  std::vector<std::size_t> servers_per_node;

  /// Store-and-forward transport (the paper's network is only "logically
  /// fully connected ... perhaps only indirectly, i.e., in a
  /// store-and-forward fashion"): each hop of the request's route adds
  /// `hop_latency` of transit time before the access reaches the holder's
  /// queue, and the response pays the same on the way back. 0 keeps
  /// transport instantaneous (cost-only, the analytic model's view).
  double hop_latency = 0.0;
  /// route_hops[j][i]: hops on the j->i route (see
  /// net::route_hop_counts). Empty with hop_latency > 0 means one hop
  /// between distinct nodes.
  std::vector<std::vector<std::size_t>> route_hops;

  /// Runaway guard for completion-driven advancement: generators never
  /// stop, so a system that can no longer complete anything (e.g. every
  /// routed target failed) would spin forever. advance_completions(count)
  /// throws InvariantError — it never silently truncates — once it has
  /// processed `event_budget_per_completion * count + event_budget_floor`
  /// events without reaching the requested completions. The defaults
  /// preserve the engine's historical hard-coded budget; raise them for
  /// workloads that legitimately process millions of events per
  /// completion (heavy store-and-forward fan-in, near-total failure).
  std::size_t event_budget_per_completion = 1000;
  std::size_t event_budget_floor = 1000000;

  /// Open-loop mode (trace serving): no node generates its own Poisson
  /// stream — all traffic enters through DesSystem::inject_access — so
  /// all-zero lambda is legal and restart() seeds no generate events.
  /// run_des() cannot be used with an open-loop config (it would wait
  /// forever for completions that nothing generates).
  bool open_loop = false;

  /// Accesses completing before this time are excluded from statistics.
  double warmup_time = 200.0;
  /// Number of measured (post-warmup) access completions to collect.
  std::size_t measured_accesses = 100000;
  std::uint64_t seed = 1;
  /// When true, every measured access is appended to DesResult::log —
  /// the raw material for measurement-driven parameter estimation
  /// (sim/estimation.hpp, the Section 8 adaptive scheme).
  bool record_log = false;

  /// Window attribution rule for DesSystem. Default (false): an access
  /// counts toward the window it ARRIVED in, so a freshly reset window
  /// is not polluted by the tail of the previous regime — the right
  /// semantics for steady-state measurement. When true, an access counts
  /// toward the window it COMPLETED in: the union of consecutive windows
  /// is then an exact partition of all completions (nothing in flight
  /// across a reset is ever dropped), which is what cumulative
  /// trace-serving statistics need.
  bool window_by_completion = false;
};

/// One completed access, as a monitoring system would log it.
struct AccessObservation {
  std::size_t source = 0;        ///< node that generated the access
  std::size_t target = 0;        ///< node that served it
  double arrival_time = 0.0;     ///< arrival at the target's queue
  double service_start = 0.0;    ///< moment service began
  double departure_time = 0.0;   ///< service completion
  double comm_cost = 0.0;        ///< communication cost paid
};

struct NodeStats {
  util::RunningStats sojourn;       ///< time in queue + service
  std::size_t arrivals = 0;         ///< post-warmup arrivals
  double busy_time = 0.0;           ///< post-warmup server busy time
  double observed_arrival_rate = 0.0;
  double utilization = 0.0;
};

struct DesResult {
  util::RunningStats comm_cost;  ///< per measured access
  util::RunningStats sojourn;    ///< per measured access
  /// End-to-end response time (request transit + sojourn + response
  /// transit); equals sojourn when hop_latency is 0.
  util::RunningStats response_time;
  util::Histogram sojourn_histogram{0.0, 1.0, 1};
  /// Response-time distribution on exponential buckets — the tail
  /// (p99/p999) source; the linear sojourn histogram would quantize it
  /// into one coarse bucket under heavy-tailed service.
  util::LogHistogram response_hist{1e-4, 1e6, 512};
  std::vector<NodeStats> node;
  double simulated_time = 0.0;  ///< post-warmup measurement span
  /// Measured per-access cost: mean comm + k * mean sojourn — directly
  /// comparable to Eq. 1 evaluated at the same allocation.
  double measured_cost = 0.0;
  /// Per-access log (only when DesConfig::record_log is set).
  std::vector<AccessObservation> log;
};

/// Runs the simulation until `measured_accesses` post-warmup completions.
DesResult run_des(const DesConfig& config);

class DesSystem;  // sim/des_system.hpp

/// Same measurement, but recycling a caller-owned engine: restarts
/// `engine` for `config` (bit-equivalent to fresh construction, see
/// DesSystem::restart) and runs the warmup + measurement loop on it.
/// Results are identical to run_des(config); what changes is that a
/// warmed engine's event heap, job slab and queue rings are reused
/// instead of reallocated — the batch-replication path.
DesResult run_des(DesSystem& engine, const DesConfig& config);

/// Builds a DES configuration that executes the single-file model's
/// allocation x: accesses route to node i with probability x_i and pay the
/// least-cost route cost. The analytic prediction for measured_cost is
/// model.cost(x).
DesConfig des_config_for(const core::SingleFileModel& model,
                         const std::vector<double>& x);

/// Same for the multicopy ring model: routing follows the access weights
/// w_ji(x) and communication uses forward ring distances. The analytic
/// prediction for measured_cost is model.cost(x) / λ (the ring model's
/// cost is a rate; the DES measures per access).
DesConfig des_config_for(const core::RingModel& model,
                         const std::vector<double>& x);

/// Multi-file system (Section 5.4): node j's combined access stream is
/// Poisson with rate Σ_f λ_j^f and its target distribution is the
/// rate-weighted mixture of the per-file allocations — exact, because
/// target choice is independent across accesses. Files share each node's
/// queue, exactly as MultiFileModel's delay term assumes. The analytic
/// prediction for measured_cost is multi_file_expected_access_cost.
DesConfig des_config_for(const core::MultiFileModel& model,
                         const std::vector<double>& x);

/// Expected per-access cost of the combined multi-file stream:
/// (1/λ_total) Σ_f λ^f · (file f's Eq. 1 cost) — the quantity the DES
/// measures. (MultiFileModel::cost sums per-file expectations without
/// rate-weighting, so it is not directly comparable to a per-access
/// measurement.)
double multi_file_expected_access_cost(const core::MultiFileModel& model,
                                       const std::vector<double>& x);

}  // namespace fap::sim
