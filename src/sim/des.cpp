#include "sim/des.hpp"

#include "sim/des_system.hpp"
#include "util/contracts.hpp"

namespace fap::sim {

namespace {

// The warm-up + measurement loop shared by both run_des overloads: the
// engine is already initialized for `config` and at time 0.
DesResult measure(DesSystem& system, const DesConfig& config) {
  FAP_EXPECTS(config.measured_accesses > 0, "need a measurement budget");
  system.advance_until(config.warmup_time);
  system.reset_window();

  // Completions counted by advance_completions include accesses that were
  // already queued when the window opened (excluded from window stats), so
  // loop until the *window* has the requested number of measured samples.
  std::size_t measured = system.window().completions;
  while (measured < config.measured_accesses) {
    const std::size_t missing = config.measured_accesses - measured;
    const std::size_t made = system.advance_completions(missing);
    FAP_ENSURES(made > 0, "simulation stopped making progress");
    measured = system.window().completions;
  }

  const WindowStats& window = system.window();
  DesResult result;
  result.comm_cost = window.comm_cost;
  result.sojourn = window.sojourn;
  result.response_time = window.response_time;
  result.sojourn_histogram = window.sojourn_histogram;
  result.response_hist = window.response_hist;
  result.node = window.node;
  result.simulated_time = window.span;
  result.measured_cost =
      window.comm_cost.mean() + config.k * window.sojourn.mean();
  result.log = window.log;
  return result;
}

}  // namespace

// run_des is a convenience wrapper over the incremental engine: warm up,
// open a measurement window, collect the requested number of completions.
DesResult run_des(const DesConfig& config) {
  DesSystem system(config);
  return measure(system, config);
}

DesResult run_des(DesSystem& engine, const DesConfig& config) {
  engine.restart(config);
  return measure(engine, config);
}

DesConfig des_config_for(const core::SingleFileModel& model,
                         const std::vector<double>& x) {
  model.check_feasible(x);
  const std::size_t n = model.dimension();
  DesConfig config;
  config.lambda = model.problem().lambda;
  config.mu = model.problem().mu;
  config.k = model.problem().k;
  config.routing.assign(n, x);  // every source routes ~ x
  config.comm_cost.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      config.comm_cost[j][i] = model.problem().comm.cost(j, i);
    }
  }
  return config;
}

DesConfig des_config_for(const core::RingModel& model,
                         const std::vector<double>& x) {
  model.check_feasible(x);
  const std::size_t n = model.dimension();
  DesConfig config;
  config.lambda = model.problem().lambda;
  config.mu = model.problem().mu;
  config.k = model.problem().k;
  config.routing = model.access_weights(x);
  config.comm_cost.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      config.comm_cost[j][i] = model.problem().ring.forward_distance(j, i);
    }
  }
  return config;
}

DesConfig des_config_for(const core::MultiFileModel& model,
                         const std::vector<double>& x) {
  model.check_feasible(x);
  const std::size_t n = model.node_count();
  const std::size_t files = model.file_count();
  DesConfig config;
  config.mu = model.problem().mu;
  config.k = model.problem().k;
  config.lambda.assign(n, 0.0);
  config.routing.assign(n, std::vector<double>(n, 0.0));
  config.comm_cost.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t f = 0; f < files; ++f) {
      config.lambda[j] += model.problem().per_file_lambda[f][j];
    }
    for (std::size_t i = 0; i < n; ++i) {
      config.comm_cost[j][i] = model.problem().comm.cost(j, i);
      // Rate-weighted mixture of per-file target distributions.
      double weighted = 0.0;
      for (std::size_t f = 0; f < files; ++f) {
        weighted +=
            model.problem().per_file_lambda[f][j] * x[model.index(f, i)];
      }
      config.routing[j][i] =
          config.lambda[j] > 0.0 ? weighted / config.lambda[j] : 0.0;
    }
    if (config.lambda[j] == 0.0) {
      config.routing[j][j] = 1.0;  // unused, but keep the row a distribution
    }
  }
  return config;
}

double multi_file_expected_access_cost(const core::MultiFileModel& model,
                                       const std::vector<double>& x) {
  model.check_feasible(x);
  const std::size_t n = model.node_count();
  const std::size_t files = model.file_count();
  double total_rate = 0.0;
  for (std::size_t f = 0; f < files; ++f) {
    total_rate += model.file_rate(f);
  }
  double expected = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = model.node_arrival_rate(x, i);
    const double sojourn =
        model.problem().delay.sojourn(a, model.problem().mu[i]);
    for (std::size_t f = 0; f < files; ++f) {
      const double xf = x[model.index(f, i)];
      if (xf > 0.0) {
        expected += model.file_rate(f) * xf *
                    (model.access_cost(f, i) + model.problem().k * sojourn);
      }
    }
  }
  return expected / total_rate;
}

}  // namespace fap::sim
