#include "sim/reliable_transport.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace fap::sim {

ReliableTransport::ReliableTransport(LossyNetwork& network,
                                     TransportConfig config)
    : network_(network),
      config_(config),
      links_(network.node_count() * network.node_count()) {
  FAP_EXPECTS(config_.retransmit_after_ticks >= 1,
              "retransmission timeout must be at least one tick");
  FAP_EXPECTS(config_.max_backoff_ticks >= config_.retransmit_after_ticks,
              "backoff cap must not undercut the initial timeout");
}

ReliableTransport::Link& ReliableTransport::link(std::size_t from,
                                                std::size_t to) {
  return links_[from * network_.node_count() + to];
}

void ReliableTransport::send(std::size_t from, std::size_t to,
                             std::uint64_t tag,
                             std::vector<double> payload) {
  FAP_EXPECTS(from < network_.node_count() && to < network_.node_count(),
              "transport endpoint out of range");
  FAP_EXPECTS(from != to, "a node does not message itself");
  Link& sender = link(from, to);
  Datagram datagram;
  datagram.from = from;
  datagram.to = to;
  datagram.kind = kData;
  datagram.seq = sender.next_seq++;
  datagram.tag = tag;
  datagram.payload = std::move(payload);
  ++stats_.data_sent;
  network_.send(datagram);
  sender.unacked.push_back(
      Pending{std::move(datagram), now() + config_.retransmit_after_ticks,
              config_.retransmit_after_ticks});
}

void ReliableTransport::cancel_older(std::size_t from,
                                     std::uint64_t older_than_tag) {
  FAP_EXPECTS(from < network_.node_count(), "transport endpoint out of range");
  for (std::size_t to = 0; to < network_.node_count(); ++to) {
    std::vector<Pending>& unacked = link(from, to).unacked;
    const auto stale = [older_than_tag](const Pending& pending) {
      return pending.datagram.tag < older_than_tag;
    };
    stats_.cancelled += static_cast<std::size_t>(
        std::count_if(unacked.begin(), unacked.end(), stale));
    unacked.erase(std::remove_if(unacked.begin(), unacked.end(), stale),
                  unacked.end());
  }
}

std::size_t ReliableTransport::pending() const {
  std::size_t total = 0;
  for (const Link& l : links_) {
    total += l.unacked.size();
  }
  return total;
}

std::vector<Datagram> ReliableTransport::tick() {
  std::vector<Datagram> fresh;
  for (Datagram& datagram : network_.tick()) {
    if (datagram.kind == kAck) {
      // Ack from datagram.from retires seq on the reverse link. A
      // duplicate or late ack (pending already gone) is a no-op.
      std::vector<Pending>& unacked =
          link(datagram.to, datagram.from).unacked;
      const std::uint64_t seq = datagram.seq;
      unacked.erase(std::remove_if(unacked.begin(), unacked.end(),
                                   [seq](const Pending& pending) {
                                     return pending.datagram.seq == seq;
                                   }),
                    unacked.end());
      continue;
    }
    // Data: ack unconditionally (a lost earlier ack means the sender is
    // still retransmitting — re-acking is what stops it), deliver once.
    Datagram ack;
    ack.from = datagram.to;
    ack.to = datagram.from;
    ack.kind = kAck;
    ack.seq = datagram.seq;
    ack.tag = datagram.tag;
    ++stats_.acks_sent;
    network_.send(ack);

    std::vector<bool>& seen = link(datagram.from, datagram.to).seen;
    if (datagram.seq >= seen.size()) {
      seen.resize(datagram.seq + 1, false);
    }
    if (seen[datagram.seq]) {
      ++stats_.duplicates_suppressed;
      continue;
    }
    seen[datagram.seq] = true;
    ++stats_.delivered;
    fresh.push_back(std::move(datagram));
  }

  // Retransmission pass, in deterministic link order. Down senders hold
  // their timers (state survives the outage; retry resumes at rejoin).
  for (std::size_t from = 0; from < network_.node_count(); ++from) {
    if (!network_.node_up(from)) {
      continue;
    }
    for (std::size_t to = 0; to < network_.node_count(); ++to) {
      for (Pending& pending : link(from, to).unacked) {
        if (pending.next_send_tick > now()) {
          continue;
        }
        ++stats_.retransmissions;
        network_.send(pending.datagram);
        pending.backoff =
            std::min(pending.backoff * 2, config_.max_backoff_ticks);
        pending.next_send_tick = now() + pending.backoff;
      }
    }
  }
  return fresh;
}

}  // namespace fap::sim
