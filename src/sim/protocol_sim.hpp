// Message-passing realization of the decentralized algorithm.
//
// Section 5.1 describes two aggregation schemes for the per-iteration
// exchange of marginal utilities: every node broadcasts to every other
// node (and each computes the average locally), or every node sends to a
// designated central agent which replies with the average. This module
// executes the algorithm *as that protocol*: each node is a separate
// Agent object holding only its own allocation fragment; each round the
// agents exchange messages through a lossless in-order virtual network,
// then every agent independently runs the identical deterministic update
// on the information it received. A run asserts the agreement invariant
// (all agents compute the same next allocation) and a test pins the
// protocol's trajectory to the centralized driver's, bitwise.
//
// The module also accounts for message and payload costs, reproducing two
// of the paper's observations:
//   * "in a broadcast environment, such as a local area network, these two
//     schemes require approximately the same number of messages" — we
//     report both point-to-point and broadcast-medium message counts;
//   * Section 7.3: with multiple copies "each node needs to know the
//     allocation at every other node in order to ... determine which nodes
//     are going [to] make an access there", so per-message payload grows
//     from one scalar (∂U/∂x_i) to the pair (∂U/∂x_i, x_i), and the
//     central agent's reply grows from one scalar to the full allocation
//     vector.
#pragma once

#include <cstddef>
#include <vector>

#include "core/allocator.hpp"
#include "core/cost_model.hpp"

namespace fap::sim {

enum class AggregationScheme {
  kBroadcast,     ///< all-to-all exchange; averages computed locally
  kCentralAgent,  ///< star exchange through node 0
};

struct ProtocolConfig {
  AggregationScheme scheme = AggregationScheme::kBroadcast;
  core::AllocatorOptions algorithm;
  /// True when nodes cannot evaluate their marginal utility from their own
  /// fragment alone and need the full allocation vector (the multicopy
  /// ring model); affects payload accounting.
  bool needs_full_allocation = false;
  bool record_cost_trace = false;
};

struct ProtocolResult {
  std::vector<double> x;
  double cost = 0.0;
  bool converged = false;
  std::size_t rounds = 0;
  /// Unicast messages if every transmission is point-to-point.
  std::size_t point_to_point_messages = 0;
  /// Transmissions if the medium supports physical broadcast (LAN).
  std::size_t broadcast_medium_messages = 0;
  /// Total scalars carried by all messages.
  std::size_t payload_doubles = 0;
  std::vector<double> cost_trace;  ///< cost after each round (if recorded)
};

/// Per-round message accounting for one iteration with n nodes under the
/// given configuration (exposed for tests and the A5 bench).
struct RoundMessageCost {
  std::size_t point_to_point = 0;
  std::size_t broadcast_medium = 0;
  std::size_t payload_doubles = 0;
};
RoundMessageCost round_message_cost(std::size_t nodes,
                                    const ProtocolConfig& config);

/// Executes the decentralized protocol on `model` from `initial`.
ProtocolResult run_protocol(const core::CostModel& model,
                            std::vector<double> initial,
                            const ProtocolConfig& config);

}  // namespace fap::sim
