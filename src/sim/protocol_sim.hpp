// Message-passing realization of the decentralized algorithm.
//
// Section 5.1 describes two aggregation schemes for the per-iteration
// exchange of marginal utilities: every node broadcasts to every other
// node (and each computes the average locally), or every node sends to a
// designated central agent which replies with the average. This module
// executes the algorithm *as that protocol*: each node is a separate
// Agent object holding only its own allocation fragment; each round the
// agents exchange messages through a virtual network, then every agent
// independently runs the identical deterministic update on the
// information it received.
//
// Two network regimes are supported:
//   * the default ideal network — lossless, in-order, synchronous. A run
//     asserts the agreement invariant (all agents compute the same next
//     allocation) and a test pins the protocol's trajectory to the
//     centralized driver's, bitwise;
//   * a fault-injected network (ProtocolConfig::unreliable): per-message
//     loss, duplication, and bounded reordering plus scripted node
//     crash/rejoin (sim/lossy_network.hpp), bridged by an
//     ack/retransmit transport (sim/reliable_transport.hpp). Reports
//     that miss a round's deadline leave the receivers stepping from
//     stale views — the Section-8 regime measured by sim/async_protocol
//     — so feasibility (Σx = total) drifts; optional anti-entropy
//     renormalization bounds the drift, and per-run robustness metrics
//     (retransmissions, drops, duplicates suppressed, rounds with
//     missing reports, drift) are reported in ProtocolResult. A node
//     that hears nothing at all in a round holds its fragment — a total
//     blackout (e.g. the central agent down) stalls the protocol
//     instead of diverging it.
//
// The module also accounts for message and payload costs, reproducing two
// of the paper's observations:
//   * "in a broadcast environment, such as a local area network, these two
//     schemes require approximately the same number of messages" — we
//     report both point-to-point and broadcast-medium message counts;
//   * Section 7.3: with multiple copies "each node needs to know the
//     allocation at every other node in order to ... determine which nodes
//     are going [to] make an access there", so per-message payload grows
//     from one scalar (∂U/∂x_i) to the pair (∂U/∂x_i, x_i), and the
//     central agent's reply grows from one scalar to the full allocation
//     vector.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/allocator.hpp"
#include "core/cost_model.hpp"
#include "sim/lossy_network.hpp"
#include "sim/reliable_transport.hpp"

namespace fap::sim {

enum class AggregationScheme {
  kBroadcast,     ///< all-to-all exchange; averages computed locally
  kCentralAgent,  ///< star exchange through node 0
};

/// Fault-injected execution mode. When `enabled`, run_protocol exchanges
/// reports through ReliableTransport over LossyNetwork instead of the
/// ideal synchronous network; `faults.seed` makes the run reproducible.
struct UnreliableNetworkConfig {
  bool enabled = false;
  FaultConfig faults;
  TransportConfig transport;
  /// Transport ticks per protocol round — the round deadline. Reports
  /// (and, for kCentralAgent, the reply) that are not delivered within
  /// the round leave the receivers on stale views for this update.
  std::uint64_t round_ticks = 16;
  /// Every this many rounds, one synchronized exact renormalization
  /// restores Σx = total over the live nodes (0 disables anti-entropy;
  /// same remedy as sim/async_protocol).
  std::size_t correction_interval = 0;
  /// How much conservation-sum drift an agent's stale view may carry
  /// into core::ResourceDirectedAllocator::step_with_drift before the
  /// run aborts (a guard against runaway divergence, not a tuning knob).
  double max_view_drift = 0.5;
};

struct ProtocolConfig {
  AggregationScheme scheme = AggregationScheme::kBroadcast;
  core::AllocatorOptions algorithm;
  /// True when nodes cannot evaluate their marginal utility from their own
  /// fragment alone and need the full allocation vector (the multicopy
  /// ring model); affects payload accounting.
  bool needs_full_allocation = false;
  bool record_cost_trace = false;
  /// Fault injection; default-disabled, which preserves the ideal
  /// network's behavior byte for byte.
  UnreliableNetworkConfig unreliable;
};

/// Per-run robustness accounting of a fault-injected execution (all zero
/// when fault injection is disabled).
struct RobustnessStats {
  std::size_t data_messages_sent = 0;   ///< first transmissions
  std::size_t retransmissions = 0;      ///< timer-driven re-sends
  std::size_t messages_dropped = 0;     ///< network loss + crash drops
  std::size_t duplicates_suppressed = 0;
  /// Rounds where some live node missed at least one expected fresh
  /// report (or reply) by the round deadline.
  std::size_t rounds_with_missing_reports = 0;
  double max_feasibility_drift = 0.0;    ///< max_t |Σx(t) - total|
  double final_feasibility_drift = 0.0;  ///< |Σx(final) - total|
};

struct ProtocolResult {
  std::vector<double> x;
  double cost = 0.0;
  bool converged = false;
  std::size_t rounds = 0;
  /// Unicast messages if every transmission is point-to-point.
  std::size_t point_to_point_messages = 0;
  /// Transmissions if the medium supports physical broadcast (LAN).
  std::size_t broadcast_medium_messages = 0;
  /// Total scalars carried by all messages.
  std::size_t payload_doubles = 0;
  std::vector<double> cost_trace;  ///< cost after each round (if recorded)
  RobustnessStats robustness;
};

/// Per-round message accounting for one iteration with n nodes under the
/// given configuration (exposed for tests and the A5 bench). A single
/// node exchanges nothing: every count is zero at n = 1.
struct RoundMessageCost {
  std::size_t point_to_point = 0;
  std::size_t broadcast_medium = 0;
  std::size_t payload_doubles = 0;
};
RoundMessageCost round_message_cost(std::size_t nodes,
                                    const ProtocolConfig& config);

/// Executes the decentralized protocol on `model` from `initial`.
/// With fault injection enabled the model must be single-group (one
/// conservation constraint over all variables), the regime where drift
/// accounting and anti-entropy renormalization are defined.
ProtocolResult run_protocol(const core::CostModel& model,
                            std::vector<double> initial,
                            const ProtocolConfig& config);

}  // namespace fap::sim
