#include "sim/des_reference.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <random>
#include <unordered_map>

#include "sim/alias_sampler.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace fap::sim {

namespace {

enum class EventKind { kGenerate, kArrive, kDeparture };

struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;  // tie-breaker for deterministic ordering
  EventKind kind = EventKind::kGenerate;
  std::size_t node = 0;
  /// Server epoch the event belongs to; a node failure bumps the server's
  /// epoch, voiding any in-flight departure event (the service it
  /// represented was lost with the node).
  std::uint64_t epoch = 0;
  // kArrive payload: the in-transit access.
  std::size_t source = 0;
  double comm_cost = 0.0;
  double generated_time = 0.0;
  // kDeparture payload: the completing job.
  std::uint64_t job = 0;
  bool operator>(const Event& other) const noexcept {
    if (time != other.time) {
      return time > other.time;
    }
    return seq > other.seq;
  }
};

struct Server {
  std::size_t capacity = 1;  // parallel servers (M/M/c node)
  std::uint64_t epoch = 0;   // bumped on failure; voids stale departures
  struct Pending {
    double arrival_time;
    double comm_cost;
    std::size_t source;
    double generated_time;
  };
  struct Active {
    Pending pending;
    double service_start;
  };
  std::deque<Pending> queue;
  std::unordered_map<std::uint64_t, Active> active;  // by job id

  /// Active job ids in ascending order — the canonical iteration order
  /// shared with the rewritten engine (see the header note).
  std::vector<std::uint64_t> sorted_active_jobs() const {
    std::vector<std::uint64_t> jobs;
    jobs.reserve(active.size());
    for (const auto& [job, record] : active) {
      jobs.push_back(job);
    }
    std::sort(jobs.begin(), jobs.end());
    return jobs;
  }
};

void validate_config(const DesConfig& config) {
  const std::size_t n = config.lambda.size();
  FAP_EXPECTS(n >= 1, "need at least one node");
  FAP_EXPECTS(config.mu.size() == n, "mu size mismatch");
  FAP_EXPECTS(config.routing.size() == n, "routing size mismatch");
  FAP_EXPECTS(config.comm_cost.size() == n, "comm cost size mismatch");
  for (std::size_t j = 0; j < n; ++j) {
    FAP_EXPECTS(config.lambda[j] >= 0.0, "rates must be non-negative");
    FAP_EXPECTS(config.mu[j] > 0.0, "service rates must be positive");
    FAP_EXPECTS(config.routing[j].size() == n, "routing row size mismatch");
    FAP_EXPECTS(config.comm_cost[j].size() == n, "comm row size mismatch");
  }
}

}  // namespace

struct DesReferenceSystem::Impl {
  DesConfig config;
  util::Rng rng;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  std::uint64_t seq = 0;
  std::vector<AliasSampler> samplers;
  std::vector<Server> servers;
  std::gamma_distribution<double> gamma;
  /// Per-node server busy time accumulated (on departures) since the
  /// window opened; window() adds the in-progress partials on top.
  std::vector<double> busy_accum;
  std::vector<bool> failed;
  std::size_t total_completions = 0;
  std::uint64_t next_job = 0;

  explicit Impl(DesConfig cfg)
      : config(std::move(cfg)), rng(config.seed),
        servers(config.lambda.size()),
        busy_accum(config.lambda.size(), 0.0),
        failed(config.lambda.size(), false) {
    validate_config(config);
    FAP_EXPECTS(config.hop_latency >= 0.0,
                "hop latency must be non-negative");
    if (!config.route_hops.empty()) {
      FAP_EXPECTS(config.route_hops.size() == config.lambda.size(),
                  "route hop matrix size mismatch");
      for (const auto& row : config.route_hops) {
        FAP_EXPECTS(row.size() == config.lambda.size(),
                    "route hop row size mismatch");
      }
    }
    rebuild_samplers(config.routing);
    if (config.service == ServiceDistribution::kGamma) {
      FAP_EXPECTS(config.service_scv > 0.0, "gamma service needs scv > 0");
      gamma = std::gamma_distribution<double>(1.0 / config.service_scv, 1.0);
    }
    if (!config.servers_per_node.empty()) {
      FAP_EXPECTS(config.servers_per_node.size() == config.lambda.size(),
                  "servers_per_node size mismatch");
      for (std::size_t i = 0; i < servers.size(); ++i) {
        FAP_EXPECTS(config.servers_per_node[i] >= 1,
                    "each node needs at least one server");
        servers[i].capacity = config.servers_per_node[i];
      }
    }
    for (std::size_t j = 0; j < config.lambda.size(); ++j) {
      if (config.lambda[j] > 0.0) {
        events.push(Event{rng.exponential(config.lambda[j]), seq++,
                          EventKind::kGenerate, j});
      }
    }
    FAP_EXPECTS(!events.empty(),
                "at least one node must generate accesses");
  }

  void rebuild_samplers(const std::vector<std::vector<double>>& routing) {
    FAP_EXPECTS(routing.size() == config.lambda.size(),
                "routing size mismatch");
    std::vector<AliasSampler> fresh;
    fresh.reserve(routing.size());
    for (const std::vector<double>& row : routing) {
      FAP_EXPECTS(row.size() == config.lambda.size(),
                  "routing row size mismatch");
      fresh.emplace_back(row);
    }
    samplers = std::move(fresh);
  }

  /// One-way transit time of the source->target route.
  double transit(std::size_t source, std::size_t target) const {
    if (config.hop_latency == 0.0 || source == target) {
      return 0.0;
    }
    const std::size_t hops = config.route_hops.empty()
                                 ? 1
                                 : config.route_hops[source][target];
    return config.hop_latency * static_cast<double>(hops);
  }

  double sample_service(std::size_t node) {
    switch (config.service) {
      case ServiceDistribution::kExponential:
        return rng.exponential(config.mu[node]);
      case ServiceDistribution::kDeterministic:
        return 1.0 / config.mu[node];
      case ServiceDistribution::kGamma:
        return gamma(rng) * config.service_scv / config.mu[node];
    }
    return 1.0 / config.mu[node];
  }

  // Moves queue heads into free servers, scheduling their departures.
  void dispatch(std::size_t node, double now) {
    Server& server = servers[node];
    while (server.active.size() < server.capacity &&
           !server.queue.empty()) {
      const std::uint64_t job = next_job++;
      server.active.emplace(job,
                            Server::Active{server.queue.front(), now});
      server.queue.pop_front();
      Event departure{now + sample_service(node), seq++,
                      EventKind::kDeparture, node, server.epoch};
      departure.job = job;
      events.push(departure);
    }
  }
};

DesReferenceSystem::DesReferenceSystem(DesConfig config)
    : impl_(std::make_unique<Impl>(std::move(config))) {
  window_.node.resize(impl_->config.lambda.size());
}

DesReferenceSystem::~DesReferenceSystem() = default;
DesReferenceSystem::DesReferenceSystem(DesReferenceSystem&&) noexcept =
    default;
DesReferenceSystem& DesReferenceSystem::operator=(
    DesReferenceSystem&&) noexcept = default;

void DesReferenceSystem::set_routing(
    const std::vector<std::vector<double>>& routing) {
  impl_->rebuild_samplers(routing);
  impl_->config.routing = routing;
}

void DesReferenceSystem::set_node_failed(std::size_t node, bool failed) {
  FAP_EXPECTS(node < impl_->config.lambda.size(), "node out of range");
  if (impl_->failed[node] == failed) {
    return;
  }
  impl_->failed[node] = failed;
  Server& server = impl_->servers[node];
  if (failed) {
    // All queued and in-service work at the node is lost.
    const std::size_t lost = server.queue.size() + server.active.size();
    for (const std::uint64_t job : server.sorted_active_jobs()) {
      const Server::Active& active = server.active.at(job);
      impl_->busy_accum[node] +=
          now_ - std::max(active.service_start, window_.start_time);
    }
    if (now_ >= window_.start_time) {
      window_.failed_accesses += lost;
    }
    server.queue.clear();
    server.active.clear();
    ++server.epoch;  // voids the in-flight departure events, if any
  }
  // Repair needs no special action: the node resumes idle and future
  // accesses routed to it are served normally.
}

void DesReferenceSystem::process_one_event() {
  Impl& impl = *impl_;
  FAP_ENSURES(!impl.events.empty(), "event queue drained unexpectedly");
  const Event event = impl.events.top();
  impl.events.pop();
  now_ = event.time;

  auto enqueue_access = [&](std::size_t source, std::size_t target,
                            double comm, double generated_time) {
    if (impl.failed[target]) {
      // The fragment at a failed node is unreachable; the access is lost.
      if (now_ >= window_.start_time) {
        ++window_.failed_accesses;
      }
      return;
    }
    Server& server = impl.servers[target];
    if (now_ >= window_.start_time) {
      ++window_.node[target].arrivals;
    }
    server.queue.push_back(
        Server::Pending{now_, comm, source, generated_time});
    impl.dispatch(target, now_);
  };

  if (event.kind == EventKind::kGenerate) {
    const std::size_t source = event.node;
    impl.events.push(Event{now_ + impl.rng.exponential(
                                      impl.config.lambda[source]),
                           impl.seq++, EventKind::kGenerate, source, 0});
    const std::size_t target = impl.samplers[source].sample(
        impl.rng.uniform());
    const double comm = impl.config.comm_cost[source][target];
    const double transit = impl.transit(source, target);
    if (transit > 0.0) {
      // Store-and-forward: the request is in flight for `transit`.
      Event arrival{now_ + transit, impl.seq++, EventKind::kArrive, target,
                    0,              source,     comm,               now_};
      impl.events.push(arrival);
    } else {
      enqueue_access(source, target, comm, now_);
    }
  } else if (event.kind == EventKind::kArrive) {
    enqueue_access(event.source, event.node, event.comm_cost,
                   event.generated_time);
  } else {
    const std::size_t node = event.node;
    Server& server = impl.servers[node];
    if (event.epoch != server.epoch) {
      return;  // the node failed after this service started; event is void
    }
    const auto it = server.active.find(event.job);
    FAP_ENSURES(it != server.active.end(),
                "departure event for an unknown job");
    const Server::Pending& pending = it->second.pending;
    const double service_start = it->second.service_start;
    const double sojourn = now_ - pending.arrival_time;
    ++impl.total_completions;
    if (pending.arrival_time >= window_.start_time) {
      window_.comm_cost.add(pending.comm_cost);
      window_.sojourn.add(sojourn);
      window_.sojourn_histogram.add(sojourn);
      window_.node[node].sojourn.add(sojourn);
      // Response reaches the requester after the return transit.
      const double response =
          now_ + impl.transit(pending.source, node) - pending.generated_time;
      window_.response_time.add(response);
      window_.response_hist.add(response);
      ++window_.completions;
      if (impl.config.record_log) {
        window_.log.push_back(AccessObservation{
            pending.source, node, pending.arrival_time, service_start,
            now_, pending.comm_cost});
      }
    }
    impl.busy_accum[node] +=
        now_ - std::max(service_start, window_.start_time);
    server.active.erase(it);
    impl.dispatch(node, now_);
  }
}

void DesReferenceSystem::advance_until(double time) {
  FAP_EXPECTS(time >= now_, "cannot advance backwards in time");
  while (!impl_->events.empty() && impl_->events.top().time <= time) {
    process_one_event();
  }
  now_ = time;
}

std::size_t DesReferenceSystem::advance_completions(std::size_t count) {
  const std::size_t start = impl_->total_completions;
  // Generators never stop, so guard against a system that can no longer
  // complete anything (e.g. every routing target failed).
  const std::size_t event_budget =
      impl_->config.event_budget_per_completion * count +
      impl_->config.event_budget_floor;
  std::size_t events_processed = 0;
  while (impl_->total_completions < start + count) {
    if (impl_->events.empty()) {
      break;
    }
    FAP_ENSURES(events_processed++ < event_budget,
                "no service completions are being made — are all routed "
                "nodes failed?");
    process_one_event();
  }
  return impl_->total_completions - start;
}

void DesReferenceSystem::reset_window() {
  const std::size_t n = impl_->config.lambda.size();
  WindowStats fresh;
  fresh.node.resize(n);
  fresh.start_time = now_;
  window_ = std::move(fresh);
  std::fill(impl_->busy_accum.begin(), impl_->busy_accum.end(), 0.0);
}

const WindowStats& DesReferenceSystem::window() {
  const std::size_t n = impl_->config.lambda.size();
  window_.span = std::max(now_ - window_.start_time, 1e-12);
  for (std::size_t i = 0; i < n; ++i) {
    double busy = impl_->busy_accum[i];
    const Server& server = impl_->servers[i];
    for (const std::uint64_t job : server.sorted_active_jobs()) {
      const Server::Active& active = server.active.at(job);
      busy += now_ - std::max(active.service_start, window_.start_time);
    }
    window_.node[i].busy_time = busy;
    // Utilization is per server: busy server-time over capacity·span.
    window_.node[i].utilization =
        busy / (window_.span * static_cast<double>(server.capacity));
    window_.node[i].observed_arrival_rate =
        static_cast<double>(window_.node[i].arrivals) / window_.span;
  }
  return window_;
}

}  // namespace fap::sim
