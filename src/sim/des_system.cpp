// The DES event engine. Hot-path layout (see DESIGN.md §4d):
//
//   * EventHeap — a flat 4-ary min-heap of 32-byte POD entries ordered by
//     (time, seq). seq is the same monotone schedule counter the previous
//     std::priority_queue<Event> engine used as its tie-breaker, and
//     (time, seq) is a strict total order, so the pop sequence — and with
//     it every statistic — is identical event for event.
//   * JobSlab — job state lives in dense indexed slots with an intrusive
//     LIFO free list. Events carry the slot index, so a departure is an
//     array access where the previous engine paid an unordered_map
//     find+erase (and a node allocation per job).
//   * SlotRing — each server's FIFO is a growable power-of-two ring of
//     slot indices instead of a std::deque of fat records.
//   * Epoch voiding is unchanged: a node failure bumps the server epoch,
//     frees the queued/active slots, and any in-flight departure event
//     carrying the stale epoch is discarded before it can touch the slab
//     (so slot reuse can never resurrect a lost job).
//
// Steady state allocates nothing: the heap, slab, rings and window
// buffers grow during warm-up and are reused thereafter — including
// across runs via restart(), which re-seeds the engine bit-equivalently
// to fresh construction without releasing storage.
//
// Equivalence to the previous engine is pinned by the golden-trace suite
// (tests/sim_des_engine_equiv_test.cpp) against DesReferenceSystem, the
// old engine kept verbatim in des_reference.cpp.
#include "sim/des_system.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <random>
#include <utility>

#include "sim/alias_sampler.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace fap::sim {

namespace {

enum class EventKind : std::uint32_t { kGenerate, kArrive, kDeparture };

inline constexpr std::uint32_t kNoSlot = 0xffffffffu;

/// One scheduled event. POD and 32 bytes so heap sifts move cache lines,
/// not constructors. kArrive and kDeparture events point at a JobSlab
/// slot; kGenerate carries only its node.
struct EventEntry {
  double time = 0.0;
  std::uint64_t seq = 0;  // tie-breaker for deterministic ordering
  EventKind kind = EventKind::kGenerate;
  std::uint32_t node = 0;
  std::uint32_t slot = kNoSlot;
  /// kDeparture: the server epoch at schedule time. A node failure bumps
  /// the server's epoch, voiding any in-flight departure event (the
  /// service it represented was lost with the node).
  std::uint32_t epoch = 0;
};

/// (time, seq) precedes — the exact ordering std::greater<Event> gave the
/// old priority queue, so pop order is preserved bit for bit.
inline bool precedes(const EventEntry& a, const EventEntry& b) noexcept {
  if (a.time != b.time) {
    return a.time < b.time;
  }
  return a.seq < b.seq;
}

/// Flat 4-ary min-heap over EventEntry. 4-ary halves the tree depth of a
/// binary heap and its four children share one 128-byte span, so the
/// dominant sift-down touches fewer cache lines per level. top()+pop()
/// replaces the old engine's top-then-pop double copy of a 72-byte Event
/// with one 32-byte read and one sift.
class EventHeap {
 public:
  bool empty() const noexcept { return entries_.empty(); }
  std::size_t size() const noexcept { return entries_.size(); }
  void clear() noexcept { entries_.clear(); }
  const EventEntry& top() const noexcept { return entries_.front(); }

  void push(const EventEntry& entry) {
    entries_.push_back(entry);
    std::size_t child = entries_.size() - 1;
    while (child > 0) {
      const std::size_t parent = (child - 1) / 4;
      if (!precedes(entries_[child], entries_[parent])) {
        break;
      }
      std::swap(entries_[child], entries_[parent]);
      child = parent;
    }
  }

  void pop() noexcept {
    const EventEntry last = entries_.back();
    entries_.pop_back();
    if (entries_.empty()) {
      return;
    }
    sift_down_from_root(last);
  }

  /// pop() immediately followed by push(entry), as one sift. The event
  /// loop almost always replaces the event it consumes (a generate event
  /// schedules the next generation; a departure usually starts the next
  /// queued service), so fusing halves the heap traffic. Equivalent to
  /// pop+push for ordering purposes: (time, seq) is a strict total
  /// order, so pop order never depends on internal layout.
  void replace_top(const EventEntry& entry) noexcept {
    sift_down_from_root(entry);
  }

 private:
  /// Hole-based sift-down: bubble the root hole to the resting position
  /// for `value`, moving entries instead of swapping them.
  void sift_down_from_root(const EventEntry& value) noexcept {
    std::size_t hole = 0;
    const std::size_t count = entries_.size();
    for (;;) {
      const std::size_t first_child = 4 * hole + 1;
      if (first_child >= count) {
        break;
      }
      const std::size_t last_child = std::min(first_child + 4, count);
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (precedes(entries_[c], entries_[best])) {
          best = c;
        }
      }
      if (!precedes(entries_[best], value)) {
        break;
      }
      entries_[hole] = entries_[best];
      hole = best;
    }
    entries_[hole] = value;
  }

  std::vector<EventEntry> entries_;
};

/// Dense job storage. A slot is live from allocate() to free(); freed
/// slots chain through next_free (LIFO) and are reused before the slab
/// grows, so the slab's high-water mark is the maximum number of
/// concurrently in-system jobs — after warm-up, allocate() never touches
/// the heap allocator again.
struct JobRecord {
  double arrival_time = 0.0;
  double comm_cost = 0.0;
  double generated_time = 0.0;
  double service_start = 0.0;
  std::uint32_t source = 0;
  std::uint32_t next_free = kNoSlot;
};

class JobSlab {
 public:
  std::uint32_t allocate() {
    if (free_head_ != kNoSlot) {
      const std::uint32_t slot = free_head_;
      free_head_ = records_[slot].next_free;
      records_[slot].next_free = kNoSlot;
      return slot;
    }
    records_.emplace_back();
    return static_cast<std::uint32_t>(records_.size() - 1);
  }

  void free(std::uint32_t slot) noexcept {
    records_[slot].next_free = free_head_;
    free_head_ = slot;
  }

  JobRecord& operator[](std::uint32_t slot) noexcept {
    return records_[slot];
  }
  const JobRecord& operator[](std::uint32_t slot) const noexcept {
    return records_[slot];
  }

  void clear() noexcept {
    records_.clear();  // keeps capacity
    free_head_ = kNoSlot;
  }

 private:
  std::vector<JobRecord> records_;
  std::uint32_t free_head_ = kNoSlot;
};

/// Growable power-of-two ring buffer of job slots — each server's FIFO.
/// push/pop are an index mask each; growth (amortized, warm-up only)
/// unwraps the ring into the doubled storage.
class SlotRing {
 public:
  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }
  void clear() noexcept { head_ = size_ = 0; }

  void push_back(std::uint32_t slot) {
    if (size_ == buffer_.size()) {
      grow();
    }
    buffer_[(head_ + size_) & (buffer_.size() - 1)] = slot;
    ++size_;
  }

  std::uint32_t pop_front() noexcept {
    const std::uint32_t slot = buffer_[head_];
    head_ = (head_ + 1) & (buffer_.size() - 1);
    --size_;
    return slot;
  }

  /// FIFO-order element access (0 = front); used only by failure
  /// handling to release the queued slots.
  std::uint32_t at(std::size_t i) const noexcept {
    return buffer_[(head_ + i) & (buffer_.size() - 1)];
  }

 private:
  void grow() {
    const std::size_t capacity = std::max<std::size_t>(buffer_.size() * 2, 16);
    std::vector<std::uint32_t> bigger(capacity);
    for (std::size_t i = 0; i < size_; ++i) {
      bigger[i] = buffer_[(head_ + i) & (buffer_.size() - 1)];
    }
    buffer_ = std::move(bigger);
    head_ = 0;
  }

  std::vector<std::uint32_t> buffer_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

struct Server {
  std::size_t capacity = 1;  // parallel servers (M/M/c node)
  std::uint32_t epoch = 0;   // bumped on failure; voids stale departures
  SlotRing queue;            // waiting jobs, FIFO
  /// In-service job slots in dispatch order. Dispatch order is ascending
  /// job-creation order, so iterating this vector reproduces the
  /// canonical ascending-job-id busy-time summation order shared with
  /// DesReferenceSystem. At most `capacity` entries, so the ordered
  /// erase on departure is O(capacity) — single-digit in practice.
  std::vector<std::uint32_t> active;
};

void validate_config(const DesConfig& config) {
  const std::size_t n = config.lambda.size();
  FAP_EXPECTS(n >= 1, "need at least one node");
  FAP_EXPECTS(config.mu.size() == n, "mu size mismatch");
  FAP_EXPECTS(config.routing.size() == n, "routing size mismatch");
  FAP_EXPECTS(config.comm_cost.size() == n, "comm cost size mismatch");
  for (std::size_t j = 0; j < n; ++j) {
    FAP_EXPECTS(config.lambda[j] >= 0.0, "rates must be non-negative");
    FAP_EXPECTS(config.mu[j] > 0.0, "service rates must be positive");
    FAP_EXPECTS(config.routing[j].size() == n, "routing row size mismatch");
    FAP_EXPECTS(config.comm_cost[j].size() == n, "comm row size mismatch");
  }
}

}  // namespace

struct DesSystem::Impl {
  DesConfig config;
  util::Rng rng{0};
  EventHeap events;
  std::uint64_t seq = 0;
  std::vector<AliasSampler> samplers;
  std::vector<Server> servers;
  JobSlab jobs;
  std::gamma_distribution<double> gamma;
  /// Per-node server busy time accumulated (on departures) since the
  /// window opened; window() adds the in-progress partials on top.
  std::vector<double> busy_accum;
  std::vector<bool> failed;
  std::size_t total_completions = 0;

  /// One alias-table bucket of the flattened routing tables: acceptance
  /// threshold, alias target, and the communication costs of BOTH
  /// possible outcomes side by side, so one generate event resolves its
  /// routing draw and its comm cost with a single 32-byte probe instead
  /// of three scattered ones (sampler accept array, sampler alias array,
  /// nested comm-cost row).
  struct AliasCell {
    double accept = 1.0;
    double comm_bucket = 0.0;  ///< comm_cost[source][bucket]
    double comm_alias = 0.0;   ///< comm_cost[source][alias]
    std::uint32_t alias = 0;
    std::uint32_t pad = 0;
  };
  /// Row-major n*n flattened mirror of the per-source alias tables and
  /// comm costs. The nested config matrices scatter every row behind its
  /// own allocation; the event loop probes this contiguous copy instead
  /// (refreshed by restart / set_routing).
  std::vector<AliasCell> alias_cells;

  explicit Impl(DesConfig cfg) { restart(std::move(cfg)); }

  /// Full deterministic re-initialization: after restart(cfg) the engine
  /// is in exactly the state Impl(cfg) would produce — same RNG stream,
  /// same seeded generate events — but the heap, slab, rings and sampler
  /// tables keep their grown capacity. Throws (without leaking) on an
  /// invalid config; the engine must then be restarted again before use.
  void restart(DesConfig cfg) {
    validate_config(cfg);
    FAP_EXPECTS(cfg.hop_latency >= 0.0, "hop latency must be non-negative");
    if (!cfg.route_hops.empty()) {
      FAP_EXPECTS(cfg.route_hops.size() == cfg.lambda.size(),
                  "route hop matrix size mismatch");
      for (const auto& row : cfg.route_hops) {
        FAP_EXPECTS(row.size() == cfg.lambda.size(),
                    "route hop row size mismatch");
      }
    }
    if (!cfg.servers_per_node.empty()) {
      FAP_EXPECTS(cfg.servers_per_node.size() == cfg.lambda.size(),
                  "servers_per_node size mismatch");
      for (const std::size_t servers_at_node : cfg.servers_per_node) {
        FAP_EXPECTS(servers_at_node >= 1,
                    "each node needs at least one server");
      }
    }

    config = std::move(cfg);
    const std::size_t n = config.lambda.size();
    rng = util::Rng(config.seed);
    events.clear();
    seq = 0;
    total_completions = 0;
    jobs.clear();
    rebuild_samplers(config.routing);
    servers.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      servers[i].capacity =
          config.servers_per_node.empty() ? 1 : config.servers_per_node[i];
      servers[i].epoch = 0;
      servers[i].queue.clear();
      servers[i].active.clear();
      servers[i].active.reserve(servers[i].capacity);
    }
    busy_accum.assign(n, 0.0);
    failed.assign(n, false);
    if (config.service == ServiceDistribution::kGamma) {
      FAP_EXPECTS(config.service_scv > 0.0, "gamma service needs scv > 0");
      gamma = std::gamma_distribution<double>(1.0 / config.service_scv, 1.0);
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (config.lambda[j] > 0.0) {
        EventEntry generate;
        generate.time = rng.exponential(config.lambda[j]);
        generate.seq = seq++;
        generate.kind = EventKind::kGenerate;
        generate.node = static_cast<std::uint32_t>(j);
        events.push(generate);
      }
    }
    FAP_EXPECTS(config.open_loop || !events.empty(),
                "at least one node must generate accesses");
  }

  void rebuild_samplers(const std::vector<std::vector<double>>& routing) {
    FAP_EXPECTS(routing.size() == config.lambda.size(),
                "routing size mismatch");
    // Rebuild each sampler's tables in place (no vector churn); trim or
    // grow only when the node count itself changed.
    if (samplers.size() > routing.size()) {
      samplers.erase(samplers.begin() +
                         static_cast<std::ptrdiff_t>(routing.size()),
                     samplers.end());
    }
    for (std::size_t j = 0; j < routing.size(); ++j) {
      FAP_EXPECTS(routing[j].size() == config.lambda.size(),
                  "routing row size mismatch");
      if (j < samplers.size()) {
        samplers[j].rebuild(routing[j]);
      } else {
        samplers.emplace_back(routing[j]);
      }
    }
    // Mirror the rebuilt tables into the flattened probe copy. The comm
    // costs come along so the generate handler never touches the nested
    // config matrix (comm_cost never changes outside restart()).
    const std::size_t n = routing.size();
    alias_cells.resize(n * n);
    for (std::size_t j = 0; j < n; ++j) {
      const std::vector<double>& accept = samplers[j].acceptance();
      const std::vector<std::size_t>& alias = samplers[j].alias();
      for (std::size_t b = 0; b < n; ++b) {
        AliasCell& cell = alias_cells[j * n + b];
        cell.accept = accept[b];
        cell.alias = static_cast<std::uint32_t>(alias[b]);
        cell.comm_bucket = config.comm_cost[j][b];
        cell.comm_alias = config.comm_cost[j][alias[b]];
      }
    }
  }

  /// One routing draw — bit-identical to AliasSampler::sample on the
  /// same uniform, but probing the flattened single-line cells. Also
  /// yields the access's communication cost from the same probe.
  std::size_t sample_target(std::size_t source, double& comm) {
    const std::size_t n = config.lambda.size();
    const double scaled = rng.uniform() * static_cast<double>(n);
    std::size_t bucket = static_cast<std::size_t>(scaled);
    if (bucket >= n) {
      bucket = n - 1;  // guards u rounding up to 1.0
    }
    const double coin = scaled - static_cast<double>(bucket);
    const AliasCell& cell = alias_cells[source * n + bucket];
    if (coin < cell.accept) {
      comm = cell.comm_bucket;
      return bucket;
    }
    comm = cell.comm_alias;
    return cell.alias;
  }

  /// One-way transit time of the source->target route.
  double transit(std::size_t source, std::size_t target) const {
    if (config.hop_latency == 0.0 || source == target) {
      return 0.0;
    }
    const std::size_t hops = config.route_hops.empty()
                                 ? 1
                                 : config.route_hops[source][target];
    return config.hop_latency * static_cast<double>(hops);
  }

  double sample_service(std::size_t node) {
    switch (config.service) {
      case ServiceDistribution::kExponential:
        return rng.exponential(config.mu[node]);
      case ServiceDistribution::kDeterministic:
        return 1.0 / config.mu[node];
      case ServiceDistribution::kGamma:
        return gamma(rng) * config.service_scv / config.mu[node];
    }
    return 1.0 / config.mu[node];
  }

  // Moves queue heads into free servers, scheduling their departures
  // through `emit` (the event loop's fused replace-top-or-push sink; the
  // plain heap push during restart()).
  template <typename Emit>
  void dispatch(std::size_t node, double now, Emit&& emit) {
    Server& server = servers[node];
    while (server.active.size() < server.capacity &&
           !server.queue.empty()) {
      const std::uint32_t slot = server.queue.pop_front();
      jobs[slot].service_start = now;
      server.active.push_back(slot);
      EventEntry departure;
      departure.time = now + sample_service(node);
      departure.seq = seq++;
      departure.kind = EventKind::kDeparture;
      departure.node = static_cast<std::uint32_t>(node);
      departure.slot = slot;
      departure.epoch = server.epoch;
      emit(departure);
    }
  }
};

DesSystem::DesSystem(DesConfig config)
    : impl_(std::make_unique<Impl>(std::move(config))) {
  window_.node.resize(impl_->config.lambda.size());
}

DesSystem::~DesSystem() = default;
DesSystem::DesSystem(DesSystem&&) noexcept = default;
DesSystem& DesSystem::operator=(DesSystem&&) noexcept = default;

void DesSystem::restart(DesConfig config) {
  impl_->restart(std::move(config));
  now_ = 0.0;
  reset_window();
}

void DesSystem::set_routing(const std::vector<std::vector<double>>& routing) {
  impl_->rebuild_samplers(routing);
  impl_->config.routing = routing;
}

void DesSystem::inject_access(double time, std::size_t source,
                              std::size_t target, double comm,
                              double extra_latency) {
  Impl& impl = *impl_;
  const std::size_t n = impl.config.lambda.size();
  FAP_EXPECTS(time >= now_, "cannot inject an access in the past");
  FAP_EXPECTS(source < n && target < n, "node out of range");
  FAP_EXPECTS(extra_latency >= 0.0, "extra latency must be non-negative");
  const std::uint32_t slot = impl.jobs.allocate();
  JobRecord& job = impl.jobs[slot];
  job.comm_cost = comm;
  job.generated_time = time;
  job.source = static_cast<std::uint32_t>(source);
  // Reuse the store-and-forward arrival path: the access is "in flight"
  // until generation time + stall + transit, then queues at the target
  // through the same kArrive handler generated traffic uses (including
  // the failed-node drop and the window arrival accounting).
  EventEntry arrival;
  arrival.time = time + extra_latency + impl.transit(source, target);
  arrival.seq = impl.seq++;
  arrival.kind = EventKind::kArrive;
  arrival.node = static_cast<std::uint32_t>(target);
  arrival.slot = slot;
  impl.events.push(arrival);
}

void DesSystem::set_node_failed(std::size_t node, bool failed) {
  FAP_EXPECTS(node < impl_->config.lambda.size(), "node out of range");
  if (impl_->failed[node] == failed) {
    return;
  }
  impl_->failed[node] = failed;
  Server& server = impl_->servers[node];
  if (failed) {
    // All queued and in-service work at the node is lost.
    const std::size_t lost = server.queue.size() + server.active.size();
    for (std::size_t i = 0; i < server.queue.size(); ++i) {
      impl_->jobs.free(server.queue.at(i));
    }
    for (const std::uint32_t slot : server.active) {
      impl_->busy_accum[node] +=
          now_ -
          std::max(impl_->jobs[slot].service_start, window_.start_time);
      impl_->jobs.free(slot);
    }
    if (now_ >= window_.start_time) {
      window_.failed_accesses += lost;
    }
    server.queue.clear();
    server.active.clear();
    ++server.epoch;  // voids the in-flight departure events, if any
  }
  // Repair needs no special action: the node resumes idle and future
  // accesses routed to it are served normally.
}

void DesSystem::process_one_event() {
  Impl& impl = *impl_;
  FAP_ENSURES(!impl.events.empty(), "event queue drained unexpectedly");
  const EventEntry event = impl.events.top();
  now_ = event.time;

  // Deferred pop: the consumed top entry stays in the heap until either
  // the first scheduled event overwrites it in place (replace_top — one
  // sift instead of a pop's sift-down plus a push's sift-up) or the
  // handler finishes without scheduling anything.
  bool top_replaced = false;
  const auto emit = [&](const EventEntry& entry) {
    if (top_replaced) {
      impl.events.push(entry);
    } else {
      impl.events.replace_top(entry);
      top_replaced = true;
    }
  };

  // Queues the slot's job at its target, or drops it if the target is
  // down. The slot must already carry comm_cost/source/generated_time.
  const auto enqueue_access = [&](std::uint32_t slot, std::size_t target) {
    if (impl.failed[target]) {
      // The fragment at a failed node is unreachable; the access is lost.
      impl.jobs.free(slot);
      if (now_ >= window_.start_time) {
        ++window_.failed_accesses;
      }
      return;
    }
    if (now_ >= window_.start_time) {
      ++window_.node[target].arrivals;
    }
    impl.jobs[slot].arrival_time = now_;
    impl.servers[target].queue.push_back(slot);
    impl.dispatch(target, now_, emit);
  };

  if (event.kind == EventKind::kGenerate) {
    const std::size_t source = event.node;
    EventEntry next;
    next.time = now_ + impl.rng.exponential(impl.config.lambda[source]);
    next.seq = impl.seq++;
    next.kind = EventKind::kGenerate;
    next.node = event.node;
    emit(next);
    double comm = 0.0;
    const std::size_t target = impl.sample_target(source, comm);
    const std::uint32_t slot = impl.jobs.allocate();
    JobRecord& job = impl.jobs[slot];
    job.comm_cost = comm;
    job.generated_time = now_;
    job.source = event.node;
    const double transit = impl.transit(source, target);
    if (transit > 0.0) {
      // Store-and-forward: the request is in flight for `transit`.
      EventEntry arrival;
      arrival.time = now_ + transit;
      arrival.seq = impl.seq++;
      arrival.kind = EventKind::kArrive;
      arrival.node = static_cast<std::uint32_t>(target);
      arrival.slot = slot;
      emit(arrival);
    } else {
      enqueue_access(slot, target);
    }
  } else if (event.kind == EventKind::kArrive) {
    enqueue_access(event.slot, event.node);
  } else {
    const std::size_t node = event.node;
    Server& server = impl.servers[node];
    if (event.epoch != server.epoch) {
      // The node failed after this service started; the event is void and
      // its slot was already released (and possibly reused) by the
      // failure handler — it must not be touched here.
      impl.events.pop();
      return;
    }
    const std::uint32_t slot = event.slot;
    const auto it =
        std::find(server.active.begin(), server.active.end(), slot);
    FAP_ENSURES(it != server.active.end(),
                "departure event for an unknown job");
    const JobRecord& job = impl.jobs[slot];
    const double service_start = job.service_start;
    const double sojourn = now_ - job.arrival_time;
    ++impl.total_completions;
    if (impl.config.window_by_completion ||
        job.arrival_time >= window_.start_time) {
      window_.comm_cost.add(job.comm_cost);
      window_.sojourn.add(sojourn);
      window_.sojourn_histogram.add(sojourn);
      window_.node[node].sojourn.add(sojourn);
      // Response reaches the requester after the return transit.
      const double response =
          now_ + impl.transit(job.source, node) - job.generated_time;
      window_.response_time.add(response);
      window_.response_hist.add(response);
      ++window_.completions;
      if (impl.config.record_log) {
        window_.log.push_back(AccessObservation{
            job.source, node, job.arrival_time, service_start, now_,
            job.comm_cost});
      }
    }
    impl.busy_accum[node] +=
        now_ - std::max(service_start, window_.start_time);
    server.active.erase(it);  // ordered erase keeps dispatch order
    impl.jobs.free(slot);
    impl.dispatch(node, now_, emit);
  }
  if (!top_replaced) {
    impl.events.pop();
  }
}

void DesSystem::advance_until(double time) {
  FAP_EXPECTS(time >= now_, "cannot advance backwards in time");
  while (!impl_->events.empty() && impl_->events.top().time <= time) {
    process_one_event();
  }
  now_ = time;
}

std::size_t DesSystem::advance_completions(std::size_t count) {
  const std::size_t start = impl_->total_completions;
  // Generators never stop, so guard against a system that can no longer
  // complete anything (e.g. every routing target failed).
  const std::size_t event_budget =
      impl_->config.event_budget_per_completion * count +
      impl_->config.event_budget_floor;
  std::size_t events_processed = 0;
  while (impl_->total_completions < start + count) {
    if (impl_->events.empty()) {
      break;
    }
    FAP_ENSURES(events_processed++ < event_budget,
                "no service completions are being made — are all routed "
                "nodes failed?");
    process_one_event();
  }
  return impl_->total_completions - start;
}

void DesSystem::reset_window() {
  // In-place equivalent of assigning a fresh WindowStats: every counter
  // and accumulator returns to its default, but the node vector, log and
  // histogram keep their capacity (zero steady-state allocation even for
  // windowed workloads that reset every epoch).
  const std::size_t n = impl_->config.lambda.size();
  window_.comm_cost = util::RunningStats();
  window_.sojourn = util::RunningStats();
  window_.response_time = util::RunningStats();
  window_.sojourn_histogram.clear();
  window_.response_hist.clear();
  window_.node.assign(n, NodeStats());
  window_.log.clear();
  window_.start_time = now_;
  window_.span = 0.0;
  window_.completions = 0;
  window_.failed_accesses = 0;
  std::fill(impl_->busy_accum.begin(), impl_->busy_accum.end(), 0.0);
}

const WindowStats& DesSystem::window() {
  const std::size_t n = impl_->config.lambda.size();
  window_.span = std::max(now_ - window_.start_time, 1e-12);
  for (std::size_t i = 0; i < n; ++i) {
    double busy = impl_->busy_accum[i];
    const Server& server = impl_->servers[i];
    for (const std::uint32_t slot : server.active) {
      busy += now_ -
              std::max(impl_->jobs[slot].service_start, window_.start_time);
    }
    window_.node[i].busy_time = busy;
    // Utilization is per server: busy server-time over capacity·span.
    window_.node[i].utilization =
        busy / (window_.span * static_cast<double>(server.capacity));
    window_.node[i].observed_arrival_rate =
        static_cast<double>(window_.node[i].arrivals) / window_.span;
  }
  return window_;
}

ReplicatedDesResult run_des_replications(const DesConfig& config,
                                         std::size_t replications,
                                         const runtime::SweepOptions& options) {
  // Each replication is a complete independent run_des with its own
  // derived seed; the per-replication DesResults come back in index order
  // and reduce deterministically left to right.
  const std::vector<DesResult> runs = runtime::sweep(
      replications, options, [&config](std::size_t, std::uint64_t seed) {
        DesConfig replication = config;
        replication.seed = seed;
        // One engine per worker thread, reused across every replication
        // that lands on it — and across run_des_replications calls from
        // the same thread. restart() is bit-equivalent to constructing a
        // fresh engine, so which worker runs which replication (and
        // whether an engine is fresh or recycled) cannot be observed in
        // the results; it only removes the per-replication heap/slab
        // reallocation.
        thread_local std::optional<DesSystem> engine;
        if (!engine.has_value()) {
          engine.emplace(replication);
        }
        return run_des(*engine, replication);
      });
  ReplicatedDesResult result;
  result.replications = runs.size();
  for (const DesResult& run : runs) {
    result.comm_cost.merge(run.comm_cost);
    result.sojourn.merge(run.sojourn);
    result.response_time.merge(run.response_time);
    result.cost_per_replication.add(run.measured_cost);
  }
  result.measured_cost =
      result.comm_cost.mean() + config.k * result.sojourn.mean();
  return result;
}

}  // namespace fap::sim
