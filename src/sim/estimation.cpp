#include "sim/estimation.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace fap::sim {

EstimatedParameters estimate_parameters(
    const std::vector<AccessObservation>& log, std::size_t node_count,
    const EstimationOptions& options) {
  FAP_EXPECTS(node_count >= 1, "need at least one node");
  FAP_EXPECTS(!log.empty(), "cannot estimate from an empty log");

  double first_arrival = log.front().arrival_time;
  double last_departure = log.front().departure_time;
  std::vector<std::size_t> generated(node_count, 0);
  std::vector<std::size_t> served(node_count, 0);
  std::vector<double> service_time(node_count, 0.0);
  double comm_total = 0.0;

  for (const AccessObservation& obs : log) {
    FAP_EXPECTS(obs.source < node_count && obs.target < node_count,
                "observation references an unknown node");
    FAP_EXPECTS(obs.departure_time >= obs.service_start &&
                    obs.service_start >= obs.arrival_time,
                "observation timestamps out of order");
    first_arrival = std::min(first_arrival, obs.arrival_time);
    last_departure = std::max(last_departure, obs.departure_time);
    ++generated[obs.source];
    ++served[obs.target];
    service_time[obs.target] += obs.departure_time - obs.service_start;
    comm_total += obs.comm_cost;
  }

  EstimatedParameters estimates;
  estimates.samples = log.size();
  estimates.window = std::max(last_departure - first_arrival, 1e-12);
  estimates.mean_comm_cost = comm_total / static_cast<double>(log.size());
  estimates.lambda.assign(node_count, 0.0);
  estimates.mu.assign(node_count, 0.0);
  estimates.mu_observed.assign(node_count, false);
  estimates.service_mix.assign(node_count, 0.0);
  for (std::size_t i = 0; i < node_count; ++i) {
    estimates.lambda[i] =
        static_cast<double>(generated[i]) / estimates.window;
    estimates.service_mix[i] =
        static_cast<double>(served[i]) / static_cast<double>(log.size());
    if (served[i] >= options.min_service_samples && service_time[i] > 0.0) {
      // MLE for exponential service: completions per unit busy time.
      estimates.mu[i] = static_cast<double>(served[i]) / service_time[i];
      estimates.mu_observed[i] = true;
    }
  }
  return estimates;
}

core::SingleFileProblem problem_from_estimates(
    const EstimatedParameters& estimates, const net::CostMatrix& comm,
    double k, double fallback_mu, queueing::DelayModel delay) {
  FAP_EXPECTS(estimates.lambda.size() == comm.node_count(),
              "estimate / cost-matrix size mismatch");
  FAP_EXPECTS(fallback_mu > 0.0, "fallback service rate must be positive");
  core::SingleFileProblem problem{comm, estimates.lambda, estimates.mu, k,
                                  delay,
                                  {},
                                  {},
                                  {}};
  for (std::size_t i = 0; i < problem.mu.size(); ++i) {
    if (!estimates.mu_observed[i] || problem.mu[i] <= 0.0) {
      problem.mu[i] = fallback_mu;
    }
  }
  return problem;
}

}  // namespace fap::sim
