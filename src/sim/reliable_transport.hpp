// Ack/retransmit transport over the fault-injecting network.
//
// LossyNetwork loses, duplicates, and reorders datagrams; this layer
// restores exactly-once delivery on top of it with the classic
// machinery: per-(sender, receiver) sequence numbers, a per-message
// retransmission timer in network ticks with capped exponential
// backoff, cumulative receiver-side duplicate suppression, and explicit
// acks (themselves unreliable — a lost ack costs one suppressed
// duplicate, never a double delivery).
//
// One ReliableTransport instance simulates the endpoint state of every
// node (the simulation is single-threaded and deterministic); crash
// semantics follow the network's script. A down node neither
// retransmits nor acks; its pending outbound state survives the outage
// — modeling stable storage — so retransmission resumes at rejoin.
// Sequence counters are never reused, so dedup state stays correct
// across crashes. Senders can abandon superseded traffic with
// cancel_older(): the protocol layer re-reports every round, and a
// newer report subsumes anything still in flight from older rounds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/lossy_network.hpp"

namespace fap::sim {

struct TransportConfig {
  /// Ticks to wait for an ack before the first retransmission.
  std::uint64_t retransmit_after_ticks = 2;
  /// Cap for the doubled retransmission interval.
  std::uint64_t max_backoff_ticks = 16;
};

struct TransportStats {
  std::size_t data_sent = 0;        ///< first transmissions (send() calls)
  std::size_t retransmissions = 0;  ///< timer-driven re-sends
  std::size_t acks_sent = 0;
  std::size_t delivered = 0;  ///< fresh datagrams handed to the application
  std::size_t duplicates_suppressed = 0;
  std::size_t cancelled = 0;  ///< pending sends abandoned via cancel_older
};

class ReliableTransport {
 public:
  /// The network must outlive the transport.
  ReliableTransport(LossyNetwork& network, TransportConfig config);

  /// Queues `payload` for reliable delivery from `from` to `to` and
  /// transmits it once immediately. `tag` is application metadata
  /// (the protocol round) carried verbatim.
  void send(std::size_t from, std::size_t to, std::uint64_t tag,
            std::vector<double> payload);

  /// Abandons every pending (unacked) datagram from `from` whose tag is
  /// strictly below `older_than_tag`. The receiver may or may not have
  /// seen them; the caller declares it no longer cares.
  void cancel_older(std::size_t from, std::uint64_t older_than_tag);

  /// Runs one network tick: delivers due datagrams (acking fresh data,
  /// suppressing duplicates, retiring acked sends) and then retransmits
  /// overdue unacked datagrams from up senders. Returns the fresh
  /// application datagrams delivered this tick, in arrival order.
  std::vector<Datagram> tick();

  std::uint64_t now() const noexcept { return network_.now(); }

  /// Unacked datagrams currently owed a retransmission timer.
  std::size_t pending() const;

  const TransportStats& stats() const noexcept { return stats_; }

 private:
  static constexpr std::uint32_t kData = 0;
  static constexpr std::uint32_t kAck = 1;

  struct Pending {
    Datagram datagram;
    std::uint64_t next_send_tick = 0;
    std::uint64_t backoff = 0;
  };

  /// Directed-link state, indexed [from * nodes + to].
  struct Link {
    std::uint64_t next_seq = 0;        ///< sender side
    std::vector<Pending> unacked;      ///< sender side, seq-ascending
    std::vector<bool> seen;            ///< receiver side, indexed by seq
  };

  Link& link(std::size_t from, std::size_t to);

  LossyNetwork& network_;
  TransportConfig config_;
  std::vector<Link> links_;
  TransportStats stats_;
};

}  // namespace fap::sim
