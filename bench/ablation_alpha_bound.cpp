// Ablation A1: step-size regimes. The Theorem-2 bound guarantees
// convergence but is "too small to be of any real significance" in
// practice (Section 8.2); the dynamic per-iteration bound (appendix
// remark) is competitive with the empirically best fixed α.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/allocator.hpp"
#include "core/batch_allocator.hpp"
#include "core/single_file.hpp"
#include "net/generators.hpp"
#include "runtime/sweep.hpp"
#include "util/numeric.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

struct Regime {
  std::string name;
  fap::core::AllocationResult result;
};

}  // namespace

int main(int argc, char** argv) {
  fap::bench::init(argc, argv);
  using namespace fap;
  bench::print_header("Ablation A1",
                      "theoretical vs empirical vs dynamic step sizes");

  const core::SingleFileModel model(core::make_paper_ring_problem());
  const std::vector<double> start{0.8, 0.1, 0.1, 0.0};
  const double epsilon = 1e-3;
  const double theorem2 = model.theorem2_alpha_bound(epsilon);
  std::cout << "Theorem-2 guaranteed bound on alpha (eps = 0.001): "
            << theorem2 << "\n\n";

  auto run_fixed = [&](double alpha, std::size_t cap) {
    core::AllocatorOptions options;
    options.alpha = alpha;
    options.epsilon = epsilon;
    options.max_iterations = cap;
    options.record_trace = true;
    return core::ResourceDirectedAllocator(model, options).run(start);
  };

  // Empirically fastest fixed α via grid search. The 60 probes are
  // independent runs on the same model, so they step as one SoA batch —
  // trace-free, which does not perturb the score (iteration counts are
  // unaffected by tracing); the winning α is re-run serially with its
  // trace for the table below.
  const std::vector<double> grid_alphas = util::grid_points(0.02, 1.2, 60);
  std::vector<double> grid_scores;
  {
    core::BatchAllocator batch;
    for (const double alpha : grid_alphas) {
      core::AllocatorOptions options;
      options.alpha = alpha;
      options.epsilon = epsilon;
      options.max_iterations = 20000;
      batch.submit(model, options, start);
    }
    for (const core::BatchRunResult& result : batch.run_all()) {
      grid_scores.push_back(
          result.converged ? static_cast<double>(result.iterations) : 1e9);
    }
  }
  const util::GridMinimum best_alpha =
      util::grid_select(grid_alphas, grid_scores);

  core::AllocatorOptions dynamic_options;
  dynamic_options.alpha = 0.1;
  dynamic_options.step_rule = core::StepRule::kDynamic;
  dynamic_options.epsilon = epsilon;
  dynamic_options.record_trace = true;
  const auto dynamic_result =
      core::ResourceDirectedAllocator(model, dynamic_options).run(start);

  // The theorem-2 α converges monotonically but glacially; cap the run and
  // report cost progress instead of waiting for full convergence.
  const auto theorem_result = run_fixed(theorem2, 2000);

  util::Table table({"regime", "alpha", "iterations", "converged",
                     "final cost", "monotone"},
                    6);
  auto monotone = [](const core::AllocationResult& result) {
    for (std::size_t t = 1; t < result.trace.size(); ++t) {
      if (result.trace[t].cost > result.trace[t - 1].cost + 1e-12) {
        return 0LL;
      }
    }
    return 1LL;
  };
  const auto fixed_best = run_fixed(best_alpha.x, 20000);
  table.add_row({std::string("theorem-2 bound (2000-iter cap)"), theorem2,
                 static_cast<long long>(theorem_result.iterations),
                 static_cast<long long>(theorem_result.converged ? 1 : 0),
                 theorem_result.cost, monotone(theorem_result)});
  table.add_row({std::string("best fixed alpha (grid search)"), best_alpha.x,
                 static_cast<long long>(fixed_best.iterations),
                 static_cast<long long>(fixed_best.converged ? 1 : 0),
                 fixed_best.cost, monotone(fixed_best)});
  table.add_row({std::string("dynamic alpha (appendix remark)"), 0.0,
                 static_cast<long long>(dynamic_result.iterations),
                 static_cast<long long>(dynamic_result.converged ? 1 : 0),
                 dynamic_result.cost, monotone(dynamic_result)});
  std::cout << bench::render(table) << '\n';

  // Dynamic rule across random problems: always converges, competitive
  // iteration counts without any tuning.
  util::Table random_table({"seed", "nodes", "dynamic iters", "fixed-0.1 iters",
                            "same optimum"},
                           4);
  // Each seed is an independent experiment: fan out through the runtime
  // (order and output independent of --jobs). The generator seed stays the
  // historical 1..6 sequence — derived from the item index, not the task
  // seed — so the table is byte-identical to the serial original.
  struct RandomRow {
    std::size_t nodes = 0;
    core::AllocationResult dynamic_run;
    core::AllocationResult fixed_run;
  };
  const std::vector<RandomRow> rows = runtime::sweep(
      6, bench::sweep_options("ablation_alpha_bound"),
      [&](std::size_t index, std::uint64_t /*task_seed*/) {
        const std::uint64_t seed = index + 1;
        util::Rng rng(seed);
        const net::Topology topology =
            net::make_erdos_renyi(6 + seed % 5, 0.5, 0.5, 2.0, rng);
        const std::size_t n = topology.node_count();
        const core::SingleFileModel random_model(core::make_problem(
            topology, core::Workload::uniform(n, 1.0), /*mu=*/1.6,
            /*k=*/1.0));
        std::vector<double> x0(n, 0.0);
        x0[0] = 1.0;

        core::AllocatorOptions dyn;
        dyn.step_rule = core::StepRule::kDynamic;
        dyn.epsilon = 1e-4;
        dyn.max_iterations = 50000;
        core::AllocationResult dynamic_run =
            core::ResourceDirectedAllocator(random_model, dyn).run(x0);

        core::AllocatorOptions fixed;
        fixed.alpha = 0.1;
        fixed.epsilon = 1e-4;
        fixed.max_iterations = 50000;
        core::AllocationResult fixed_run =
            core::ResourceDirectedAllocator(random_model, fixed).run(x0);
        return RandomRow{n, std::move(dynamic_run), std::move(fixed_run)};
      });
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const RandomRow& row = rows[seed - 1];
    random_table.add_row(
        {static_cast<long long>(seed), static_cast<long long>(row.nodes),
         static_cast<long long>(row.dynamic_run.iterations),
         static_cast<long long>(row.fixed_run.iterations),
         static_cast<long long>(
             std::fabs(row.dynamic_run.cost - row.fixed_run.cost) < 1e-3
                 ? 1
                 : 0)});
  }
  std::cout << bench::render(random_table);
  return 0;
}
