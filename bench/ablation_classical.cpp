// Ablation A11: the classical integral FAP lineage the paper's Section 3
// surveys, run head to head with this library's machinery.
//
//  (a) Chu-style exact multi-file integral placement: brute enumeration vs
//      branch-and-bound (pruning power and reach).
//  (b) Casey's variable-copy-count model: optimal copies vs update traffic
//      and storage cost, exact vs add/drop/swap local search.
#include <iostream>

#include "baselines/branch_and_bound.hpp"
#include "baselines/casey.hpp"
#include "baselines/integral.hpp"
#include "bench_common.hpp"
#include "net/generators.hpp"
#include "net/shortest_paths.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

fap::core::MultiFileProblem random_multi(std::uint64_t seed,
                                         std::size_t nodes,
                                         std::size_t files) {
  fap::util::Rng rng(seed);
  const fap::net::Topology topology =
      fap::net::make_random_metric(nodes, 2, rng);
  fap::core::MultiFileProblem problem{
      fap::net::all_pairs_shortest_paths(topology), {}, {}, 1.0,
      fap::queueing::DelayModel()};
  double total = 0.0;
  for (std::size_t f = 0; f < files; ++f) {
    std::vector<double> lambda(nodes, 0.0);
    for (double& rate : lambda) {
      rate = rng.uniform(0.01, 0.06);
      total += rate;
    }
    problem.per_file_lambda.push_back(std::move(lambda));
  }
  problem.mu.assign(nodes, total * 1.5);
  return problem;
}

}  // namespace

int main(int argc, char** argv) {
  fap::bench::init(argc, argv);
  using namespace fap;
  bench::print_header("Ablation A11",
                      "classical integral searches: Chu B&B and Casey");

  std::cout << "-- (a) exact multi-file integral placement --\n";
  util::Table bnb_table({"nodes", "files", "search space", "tree explored",
                         "pruned", "optimal cost"},
                        4);
  for (const auto& [nodes, files] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {5, 4}, {8, 6}, {10, 8}, {12, 10}}) {
    const core::MultiFileModel model(
        random_multi(nodes * 17 + files, nodes, files));
    const baselines::BranchAndBoundResult result =
        baselines::best_integral_multi_bnb(model);
    double space = 1.0;
    for (std::size_t f = 0; f < files; ++f) {
      space *= static_cast<double>(nodes);
    }
    bnb_table.add_row({static_cast<long long>(nodes),
                       static_cast<long long>(files), space,
                       static_cast<long long>(result.stats.nodes_explored),
                       static_cast<long long>(result.stats.pruned),
                       result.best.cost});
  }
  std::cout << bench::render(bnb_table)
            << "(the admissible contention-free bound visits a vanishing "
               "fraction of N^M)\n\n";

  std::cout << "-- (b) Casey: optimal copy count vs update share --\n";
  const net::Topology ring = net::make_ring(8, 1.0);
  const net::CostMatrix comm = net::all_pairs_shortest_paths(ring);
  util::Table casey_table({"update:query ratio", "storage cost",
                           "optimal copies", "optimal cost",
                           "local-search copies", "local-search cost"},
                          4);
  for (const double ratio : {0.0, 0.1, 0.3, 1.0, 3.0}) {
    for (const double storage : {0.1, 1.0}) {
      baselines::CaseyProblem problem{comm, std::vector<double>(8, 1.0),
                                      std::vector<double>(8, ratio),
                                      storage};
      const baselines::CaseyResult exact = baselines::casey_optimal(problem);
      const baselines::CaseyResult local =
          baselines::casey_local_search(problem);
      casey_table.add_row({ratio, storage,
                           static_cast<long long>(exact.copies), exact.cost,
                           static_cast<long long>(local.copies),
                           local.cost});
    }
  }
  std::cout << bench::render(casey_table)
            << "(read-mostly workloads replicate widely; update-heavy or "
               "storage-expensive\nsettings collapse toward one copy — the "
               "classical tension the paper's\nfragmented single-copy model "
               "sidesteps)\n";
  return 0;
}
