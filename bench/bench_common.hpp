// Shared helpers for the figure-reproduction bench binaries.
//
// Every bench accepts:
//   --csv            emit tables as CSV (for plotting) instead of ASCII
//   --jobs N         worker threads for parallel sweeps (0 = hardware)
//   --seed S         master seed for stochastic sweep points
//   --metrics PATH   append per-task JSONL records (runtime::MetricsSink)
//   --help           print usage and exit
// Unknown flags are an error (usage + exit 2), so a typo like `--cvs`
// cannot silently produce a serial/ASCII run that looks plausible.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/allocator.hpp"
#include "runtime/sweep.hpp"
#include "util/numeric.hpp"
#include "util/table.hpp"

namespace fap::bench {

namespace detail {
inline bool& csv_mode() {
  static bool mode = false;
  return mode;
}

inline std::size_t& jobs_setting() {
  static std::size_t jobs = 1;
  return jobs;
}

inline bool& seed_overridden() {
  static bool overridden = false;
  return overridden;
}

inline std::uint64_t& seed_setting() {
  static std::uint64_t seed = 0;
  return seed;
}

inline std::unique_ptr<runtime::MetricsSink>& metrics_sink() {
  static std::unique_ptr<runtime::MetricsSink> sink;
  return sink;
}

/// A bench-specific `--flag N` registered before init() (see
/// register_numeric_flag below).
struct ExtraNumericFlag {
  std::string name;
  std::string help;
  std::uint64_t* value = nullptr;
};

inline std::vector<ExtraNumericFlag>& extra_numeric_flags() {
  static std::vector<ExtraNumericFlag> flags;
  return flags;
}

/// A bench-specific `--flag WORD` registered before init() (see
/// register_string_flag below).
struct ExtraStringFlag {
  std::string name;
  std::string help;
  std::string* value = nullptr;
};

inline std::vector<ExtraStringFlag>& extra_string_flags() {
  static std::vector<ExtraStringFlag> flags;
  return flags;
}

[[noreturn]] inline void usage(const char* binary, int exit_code) {
  std::ostream& out = (exit_code == 0 ? std::cout : std::cerr);
  out << "usage: " << binary << " [options]\n"
      << "  --csv            emit tables as CSV instead of aligned ASCII\n"
      << "  --jobs N         worker threads for parallel sweeps "
         "(default 1, 0 = all cores)\n"
      << "  --seed S         master seed for stochastic sweep points\n"
      << "  --metrics PATH   write per-task JSONL metrics to PATH\n";
  for (const ExtraNumericFlag& flag : extra_numeric_flags()) {
    out << "  " << flag.name << " N"
        << std::string(flag.name.size() + 2 < 15 ? 15 - flag.name.size() - 2
                                                 : 1,
                       ' ')
        << flag.help << "\n";
  }
  for (const ExtraStringFlag& flag : extra_string_flags()) {
    out << "  " << flag.name << " WORD"
        << std::string(flag.name.size() + 5 < 15 ? 15 - flag.name.size() - 5
                                                 : 1,
                       ' ')
        << flag.help << "\n";
  }
  out << "  --help           show this message\n";
  std::exit(exit_code);
}

/// Parses the value of a `--flag VALUE` pair, erroring out on a missing,
/// non-numeric, negative, or out-of-range value (util::parse_uint64 is
/// strict where std::strtoull silently wraps "-3" and ERANGE overflow).
inline std::uint64_t numeric_flag_value(int argc, char** argv, int& i) {
  if (i + 1 >= argc) {
    std::cerr << argv[0] << ": " << argv[i] << " requires a value\n";
    usage(argv[0], 2);
  }
  const char* text = argv[++i];
  std::uint64_t value = 0;
  if (!util::parse_uint64(text, value)) {
    std::cerr << argv[0] << ": invalid number '" << text << "' for "
              << argv[i - 1] << "\n";
    usage(argv[0], 2);
  }
  return value;
}
}  // namespace detail

/// Registers a bench-specific `--flag N` option ahead of init(), keeping
/// the strict unknown-flag rejection: the flag is parsed like the shared
/// numeric flags, listed by --help, and written through `value` when
/// given. `name` and `help` must outlive init() (string literals do).
inline void register_numeric_flag(const char* name, const char* help,
                                  std::uint64_t* value) {
  detail::extra_numeric_flags().push_back(
      detail::ExtraNumericFlag{name, help, value});
}

/// String-valued sibling of register_numeric_flag for enumerated choices
/// like `--topology fat-tree`. The VALUE is taken verbatim; the bench
/// validates it (and errors via usage) after init().
inline void register_string_flag(const char* name, const char* help,
                                 std::string* value) {
  detail::extra_string_flags().push_back(
      detail::ExtraStringFlag{name, help, value});
}

/// Parses bench command-line flags. Rejects anything it does not know.
inline void init(int argc, char** argv) {
  const auto match_extra = [&](int& i) {
    for (detail::ExtraNumericFlag& flag : detail::extra_numeric_flags()) {
      if (std::strcmp(argv[i], flag.name.c_str()) == 0) {
        *flag.value = detail::numeric_flag_value(argc, argv, i);
        return true;
      }
    }
    for (detail::ExtraStringFlag& flag : detail::extra_string_flags()) {
      if (std::strcmp(argv[i], flag.name.c_str()) == 0) {
        if (i + 1 >= argc) {
          std::cerr << argv[0] << ": " << argv[i] << " requires a value\n";
          detail::usage(argv[0], 2);
        }
        *flag.value = argv[++i];
        return true;
      }
    }
    return false;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      detail::csv_mode() = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      detail::jobs_setting() =
          static_cast<std::size_t>(detail::numeric_flag_value(argc, argv, i));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      detail::seed_setting() = detail::numeric_flag_value(argc, argv, i);
      detail::seed_overridden() = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": --metrics requires a path\n";
        detail::usage(argv[0], 2);
      }
      try {
        detail::metrics_sink() =
            std::make_unique<runtime::MetricsSink>(argv[++i]);
      } catch (const std::exception& error) {
        std::cerr << argv[0] << ": " << error.what() << "\n";
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--help") == 0) {
      detail::usage(argv[0], 0);
    } else if (!match_extra(i)) {
      std::cerr << argv[0] << ": unknown flag '" << argv[i] << "'\n";
      detail::usage(argv[0], 2);
    }
  }
}

/// Worker threads requested via --jobs (default 1 = serial).
inline std::size_t jobs() { return detail::jobs_setting(); }

/// Master seed: the --seed value if given, else the bench's default.
inline std::uint64_t seed(std::uint64_t default_seed) {
  return detail::seed_overridden() ? detail::seed_setting() : default_seed;
}

/// The --metrics sink, or nullptr when none was requested.
inline runtime::MetricsSink* metrics() {
  return detail::metrics_sink().get();
}

/// Sweep options wired to the bench flags: --jobs, --seed (with the
/// bench's default master seed) and --metrics, stamped with `run_id`.
inline runtime::SweepOptions sweep_options(const std::string& run_id,
                                           std::uint64_t default_seed = 1) {
  runtime::SweepOptions options;
  options.jobs = jobs();
  options.base_seed = seed(default_seed);
  options.metrics = metrics();
  options.run_id = run_id;
  return options;
}

/// Renders a table per the selected output mode.
inline std::string render(const util::Table& table) {
  return detail::csv_mode() ? table.to_csv() : table.to_string();
}

inline void print_header(const std::string& experiment_id,
                         const std::string& description) {
  if (detail::csv_mode()) {
    std::cout << "# " << experiment_id << " — " << description << "\n";
    return;
  }
  std::cout << "==========================================================\n"
            << experiment_id << " — " << description << "\n"
            << "Reproduction of Kurose & Simha, \"A Microeconomic Approach\n"
            << "to Optimal File Allocation\", ICDCS 1986.\n"
            << "==========================================================\n";
}

/// Extracts the cost series from a trace.
inline std::vector<double> cost_series(
    const std::vector<core::IterationRecord>& trace) {
  std::vector<double> series;
  series.reserve(trace.size());
  for (const core::IterationRecord& rec : trace) {
    series.push_back(rec.cost);
  }
  return series;
}

}  // namespace fap::bench
