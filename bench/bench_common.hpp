// Shared helpers for the figure-reproduction bench binaries.
//
// Every bench accepts `--csv`: tables are then emitted as CSV (for
// plotting) instead of aligned ASCII. Invoke as `bench_binary --csv`.
#pragma once

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/allocator.hpp"
#include "util/table.hpp"

namespace fap::bench {

namespace detail {
inline bool& csv_mode() {
  static bool mode = false;
  return mode;
}
}  // namespace detail

/// Parses bench command-line flags (currently `--csv`).
inline void init(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      detail::csv_mode() = true;
    }
  }
}

/// Renders a table per the selected output mode.
inline std::string render(const util::Table& table) {
  return detail::csv_mode() ? table.to_csv() : table.to_string();
}

inline void print_header(const std::string& experiment_id,
                         const std::string& description) {
  if (detail::csv_mode()) {
    std::cout << "# " << experiment_id << " — " << description << "\n";
    return;
  }
  std::cout << "==========================================================\n"
            << experiment_id << " — " << description << "\n"
            << "Reproduction of Kurose & Simha, \"A Microeconomic Approach\n"
            << "to Optimal File Allocation\", ICDCS 1986.\n"
            << "==========================================================\n";
}

/// Extracts the cost series from a trace.
inline std::vector<double> cost_series(
    const std::vector<core::IterationRecord>& trace) {
  std::vector<double> series;
  series.reserve(trace.size());
  for (const core::IterationRecord& rec : trace) {
    series.push_back(rec.cost);
  }
  return series;
}

}  // namespace fap::bench
