// Ablation A10: record-popularity skew. How far does record-granular
// packing stay from the fractional Eq. 1 optimum as the Zipf exponent and
// the record count vary? (The Section 4 uniform-records assumption,
// relaxed and stress-tested.)
#include <iostream>

#include "bench_common.hpp"
#include "core/allocator.hpp"
#include "core/single_file.hpp"
#include "fs/fragment_map.hpp"
#include "fs/popularity.hpp"
#include "fs/weighted_assignment.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  fap::bench::init(argc, argv);
  using namespace fap;
  bench::print_header("Ablation A10",
                      "record packing vs fractional optimum under Zipf skew");

  // Homogeneous ring: the optimal shares are 0.25 each, so a head record
  // heavier than 25% makes the packing problem genuinely infeasible to
  // solve exactly — the interesting regime.
  const core::SingleFileModel model(core::make_paper_ring_problem());

  core::AllocatorOptions options;
  options.alpha = 0.2;
  options.epsilon = 1e-6;
  options.max_iterations = 100000;

  std::cout << "-- skew sweep (2000 records) --\n";
  util::Table skew_table({"zipf s", "head record share %",
                          "fractional cost", "packed cost", "gap %",
                          "naive even-split cost"},
                         4);
  for (const double s : {0.0, 0.5, 0.9, 1.1, 1.3, 1.6, 2.0}) {
    const std::vector<double> popularity = fs::zipf_popularity(2000, s);
    const fs::WeightedPlacement placement =
        fs::optimize_record_placement(model, popularity, options);
    const fs::FragmentMap naive =
        fs::FragmentMap::from_allocation(2000, {0.25, 0.25, 0.25, 0.25});
    const double naive_cost =
        model.cost(fs::node_access_shares(naive, popularity));
    skew_table.add_row(
        {s, 100.0 * popularity.front(), placement.fractional_cost,
         placement.achieved_cost,
         100.0 * (placement.achieved_cost / placement.fractional_cost - 1.0),
         naive_cost});
  }
  std::cout << bench::render(skew_table) << '\n';

  std::cout << "-- granularity sweep (zipf s = 1.1) --\n";
  util::Table size_table({"records", "fractional cost", "packed cost",
                          "gap %"},
                         6);
  for (const std::size_t records : {20u, 100u, 500u, 2000u, 10000u}) {
    const fs::WeightedPlacement placement = fs::optimize_record_placement(
        model, fs::zipf_popularity(records, 1.1), options);
    size_table.add_row(
        {static_cast<long long>(records), placement.fractional_cost,
         placement.achieved_cost,
         100.0 *
             (placement.achieved_cost / placement.fractional_cost - 1.0)});
  }
  std::cout << bench::render(size_table) << '\n';
  std::cout << "More records => finer granularity => the packed cost "
               "approaches the\nfractional bound (the Section 8.1 remark, "
               "under skew). Only at extreme\nskew does the indivisible hot "
               "head keep a residual gap.\n";
  return 0;
}
