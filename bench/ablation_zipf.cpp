// Ablation A10: record-popularity skew. How far does record-granular
// packing stay from the fractional Eq. 1 optimum as the Zipf exponent and
// the record count vary? (The Section 4 uniform-records assumption,
// relaxed and stress-tested.)
#include <iostream>

#include "bench_common.hpp"
#include "core/allocator.hpp"
#include "core/single_file.hpp"
#include "fs/fragment_map.hpp"
#include "fs/popularity.hpp"
#include "fs/weighted_assignment.hpp"
#include "runtime/sweep.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  fap::bench::init(argc, argv);
  using namespace fap;
  bench::print_header("Ablation A10",
                      "record packing vs fractional optimum under Zipf skew");

  // Homogeneous ring: the optimal shares are 0.25 each, so a head record
  // heavier than 25% makes the packing problem genuinely infeasible to
  // solve exactly — the interesting regime.
  const core::SingleFileModel model(core::make_paper_ring_problem());

  core::AllocatorOptions options;
  options.alpha = 0.2;
  options.epsilon = 1e-6;
  options.max_iterations = 100000;

  std::cout << "-- skew sweep (2000 records) --\n";
  util::Table skew_table({"zipf s", "head record share %",
                          "fractional cost", "packed cost", "gap %",
                          "naive even-split cost"},
                         4);
  // Both sweeps below fan out through the runtime: every point builds its
  // own popularity vector and placement, nothing is shared.
  struct SkewRow {
    double head_share = 0.0;
    fs::WeightedPlacement placement;
    double naive_cost = 0.0;
  };
  const std::vector<double> skews{0.0, 0.5, 0.9, 1.1, 1.3, 1.6, 2.0};
  const std::vector<SkewRow> skew_rows = runtime::sweep(
      skews.size(), bench::sweep_options("ablation_zipf.skew"),
      [&](std::size_t index, std::uint64_t /*seed*/) {
        const std::vector<double> popularity =
            fs::zipf_popularity(2000, skews[index]);
        const fs::FragmentMap naive =
            fs::FragmentMap::from_allocation(2000, {0.25, 0.25, 0.25, 0.25});
        return SkewRow{
            popularity.front(),
            fs::optimize_record_placement(model, popularity, options),
            model.cost(fs::node_access_shares(naive, popularity))};
      });
  for (std::size_t i = 0; i < skews.size(); ++i) {
    const SkewRow& row = skew_rows[i];
    skew_table.add_row(
        {skews[i], 100.0 * row.head_share, row.placement.fractional_cost,
         row.placement.achieved_cost,
         100.0 * (row.placement.achieved_cost /
                      row.placement.fractional_cost -
                  1.0),
         row.naive_cost});
  }
  std::cout << bench::render(skew_table) << '\n';

  std::cout << "-- granularity sweep (zipf s = 1.1) --\n";
  util::Table size_table({"records", "fractional cost", "packed cost",
                          "gap %"},
                         6);
  const std::vector<std::size_t> record_counts{20, 100, 500, 2000, 10000};
  const std::vector<fs::WeightedPlacement> placements = runtime::sweep(
      record_counts.size(), bench::sweep_options("ablation_zipf.records"),
      [&](std::size_t index, std::uint64_t /*seed*/) {
        return fs::optimize_record_placement(
            model, fs::zipf_popularity(record_counts[index], 1.1), options);
      });
  for (std::size_t i = 0; i < record_counts.size(); ++i) {
    const fs::WeightedPlacement& placement = placements[i];
    size_table.add_row(
        {static_cast<long long>(record_counts[i]),
         placement.fractional_cost, placement.achieved_cost,
         100.0 *
             (placement.achieved_cost / placement.fractional_cost - 1.0)});
  }
  std::cout << bench::render(size_table) << '\n';
  std::cout << "More records => finer granularity => the packed cost "
               "approaches the\nfractional bound (the Section 8.1 remark, "
               "under skew). Only at extreme\nskew does the indivisible hot "
               "head keep a residual gap.\n";
  return 0;
}
