// Ablation A9: graceful degradation under node failure (Section 4's first
// argument for fragmentation). A running system loses one node; measured
// availability and surviving-traffic delay for the fragmented optimum vs
// the best integral placement.
#include <iostream>

#include "baselines/integral.hpp"
#include "bench_common.hpp"
#include "core/allocator.hpp"
#include "core/single_file.hpp"
#include "runtime/sweep.hpp"
#include "sim/des.hpp"
#include "sim/des_system.hpp"
#include "util/table.hpp"

namespace {

struct Outcome {
  double availability = 0.0;
  double survivor_cost = 0.0;  ///< per served access, post-failure
};

Outcome measure_failure(const fap::core::SingleFileModel& model,
                        const std::vector<double>& x, std::size_t victim,
                        std::uint64_t seed) {
  fap::sim::DesConfig config = fap::sim::des_config_for(model, x);
  config.seed = seed;
  fap::sim::DesSystem system(config);
  system.advance_until(300.0);
  system.set_node_failed(victim, true);
  system.reset_window();
  system.advance_until(system.now() + 20000.0);
  Outcome outcome;
  outcome.availability = system.window().availability();
  outcome.survivor_cost = system.window().measured_cost(model.problem().k);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  fap::bench::init(argc, argv);
  using namespace fap;
  bench::print_header("Ablation A9",
                      "graceful degradation: fragmented vs integral");

  const core::SingleFileModel model(core::make_paper_ring_problem());

  core::AllocatorOptions options;
  options.alpha = 0.3;
  options.epsilon = 1e-5;
  const core::ResourceDirectedAllocator allocator(model, options);
  const core::AllocationResult fragmented =
      allocator.run({0.8, 0.1, 0.1, 0.0});
  const baselines::IntegralResult integral =
      baselines::best_integral_single(model);
  const std::size_t victim = integral.hosts.front();

  // Every (allocation, victim) pair is an isolated 20000-time-unit DES
  // run with a fixed seed — the dominant cost of this bench, fanned out
  // through runtime::sweep. Default seed 2718 preserves the historical
  // numbers; --seed moves all runs together.
  const std::uint64_t des_seed = bench::seed(2718);

  util::Table table({"allocation", "failed node", "availability",
                     "survivor cost/access"},
                    4);
  const std::vector<Outcome> head_outcomes = runtime::sweep(
      2, bench::sweep_options("ablation_degradation.head"),
      [&](std::size_t index, std::uint64_t /*seed*/) {
        return measure_failure(model,
                               index == 0 ? fragmented.x : integral.x,
                               victim, des_seed);
      });
  table.add_row({std::string("fragmented optimum (0.25 each)"),
                 static_cast<long long>(victim),
                 head_outcomes[0].availability,
                 head_outcomes[0].survivor_cost});
  table.add_row({std::string("integral placement (whole file)"),
                 static_cast<long long>(victim),
                 head_outcomes[1].availability,
                 head_outcomes[1].survivor_cost});
  std::cout << bench::render(table) << '\n';

  // Availability under each possible single failure, fragmented case.
  util::Table sweep({"failed node", "availability (fragmented)",
                     "availability (integral @ node 0)"},
                    4);
  const std::vector<double> integral_at_zero{1.0, 0.0, 0.0, 0.0};
  struct FailurePoint {
    double fragmented_availability = 0.0;
    double integral_availability = 0.0;
  };
  const std::vector<FailurePoint> points = runtime::sweep(
      4, bench::sweep_options("ablation_degradation.by_node"),
      [&](std::size_t node, std::uint64_t /*seed*/) {
        return FailurePoint{
            measure_failure(model, fragmented.x, node, des_seed)
                .availability,
            measure_failure(model, integral_at_zero, node, des_seed)
                .availability};
      });
  for (std::size_t node = 0; node < points.size(); ++node) {
    sweep.add_row({static_cast<long long>(node),
                   points[node].fragmented_availability,
                   points[node].integral_availability});
  }
  std::cout << bench::render(sweep) << '\n';
  std::cout << "Fragmentation keeps ~75% of accesses servable under any\n"
               "single failure; whole-file placement is all-or-nothing —\n"
               "Section 4(a), measured.\n";
  return 0;
}
