// Figure 8: multicopy convergence profiles on a four-node virtual ring
// with m = 2 copies.
//
// Paper: the ring with link costs (4,1,1,1) — communication cost dominates
// — shows pronounced oscillation; the unit-cost ring — delay dominates —
// converges smoothly with at most small ripples.
#include <iostream>

#include "bench_common.hpp"
#include "core/multicopy_allocator.hpp"
#include "core/ring_model.hpp"
#include "runtime/sweep.hpp"
#include "util/table.hpp"

namespace {

fap::core::MultiCopyResult run_profile(const fap::core::RingModel& model) {
  fap::core::MultiCopyOptions options;
  options.alpha = 0.1;
  options.decay_interval = 1000000;  // raw profile: no decay, like Figure 8
  options.cost_epsilon = 1e-12;
  options.max_iterations = 120;
  options.record_trace = true;
  const fap::core::MultiCopyAllocator allocator(model, options);
  return allocator.run({0.9, 0.5, 0.35, 0.25});
}

double tail_amplitude(const fap::core::MultiCopyResult& result) {
  double lo = 1e300;
  double hi = -1e300;
  for (std::size_t t = result.trace.size() / 2; t < result.trace.size();
       ++t) {
    lo = std::min(lo, result.trace[t].cost);
    hi = std::max(hi, result.trace[t].cost);
  }
  return hi - lo;
}

}  // namespace

int main(int argc, char** argv) {
  fap::bench::init(argc, argv);
  using namespace fap;
  bench::print_header("Figure 8",
                      "multicopy (m=2) profiles: comm- vs delay-dominated");

  const core::RingModel comm_ring{
      core::make_paper_ring_problem({4.0, 1.0, 1.0, 1.0})};
  const core::RingModel unit_ring{
      core::make_paper_ring_problem({1.0, 1.0, 1.0, 1.0})};

  // The two profiles are independent runs: sweep them (`--jobs 2` runs
  // them concurrently, byte-identical output to `--jobs 1`).
  const core::RingModel* rings[] = {&comm_ring, &unit_ring};
  const std::vector<core::MultiCopyResult> profiles = runtime::sweep(
      2, bench::sweep_options("fig8_multicopy"),
      [&rings](std::size_t index, std::uint64_t /*seed*/) {
        return run_profile(*rings[index]);
      });
  const core::MultiCopyResult& comm = profiles[0];
  const core::MultiCopyResult& unit = profiles[1];

  util::Table series({"iter", "cost links=(4,1,1,1)", "cost links=(1,1,1,1)"},
                     6);
  const std::size_t longest =
      std::max(comm.trace.size(), unit.trace.size());
  for (std::size_t t = 0; t < longest; ++t) {
    series.add_row(
        {static_cast<long long>(t),
         comm.trace[std::min(t, comm.trace.size() - 1)].cost,
         unit.trace[std::min(t, unit.trace.size() - 1)].cost});
  }
  std::cout << bench::render(series) << '\n';

  std::cout << util::ascii_chart(bench::cost_series(comm.trace), 60, 10,
                                 "cost, links (4,1,1,1) — oscillates")
            << '\n';
  std::cout << util::ascii_chart(bench::cost_series(unit.trace), 60, 10,
                                 "cost, links (1,1,1,1) — smooth")
            << '\n';

  // Dominance decomposition at the initial allocation.
  const std::vector<double> start{0.9, 0.5, 0.35, 0.25};
  util::Table split({"ring", "comm cost", "delay cost", "tail oscillation",
                     "cost increases"},
                    4);
  split.add_row({std::string("(4,1,1,1)"),
                 comm_ring.communication_cost(start),
                 comm_ring.delay_cost(start), tail_amplitude(comm),
                 static_cast<long long>(comm.oscillation_count)});
  split.add_row({std::string("(1,1,1,1)"),
                 unit_ring.communication_cost(start),
                 unit_ring.delay_cost(start), tail_amplitude(unit),
                 static_cast<long long>(unit.oscillation_count)});
  std::cout << bench::render(split);
  return 0;
}
