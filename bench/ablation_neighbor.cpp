// Ablation A6: neighbors-only (gossip) communication vs the Section 5.1
// broadcast — the Section 8.2 research question: can a marginal-utility
// algorithm keep feasibility, monotonicity and rapid convergence while
// each node talks only to its neighbors? Measured: iterations and total
// point-to-point messages to converge, across topologies of different
// diameters.
#include <iostream>

#include "bench_common.hpp"
#include "core/allocator.hpp"
#include "core/neighbor_allocator.hpp"
#include "core/single_file.hpp"
#include "net/generators.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  fap::bench::init(argc, argv);
  using namespace fap;
  bench::print_header("Ablation A6",
                      "broadcast vs neighbors-only communication");

  util::Table table({"topology", "N", "|E|", "scheme", "iterations",
                     "msgs/iter", "total msgs", "final cost"},
                    4);

  struct Case {
    std::string name;
    net::Topology topology;
  };
  const std::size_t n = 12;
  std::vector<Case> cases;
  cases.push_back({"ring (diam 6)", net::make_ring(n, 1.0)});
  cases.push_back({"grid 3x4", net::make_grid(3, 4, 1.0)});
  cases.push_back({"star", net::make_star(n, 1.0)});
  cases.push_back({"complete", net::make_complete(n, 1.0)});

  for (const Case& c : cases) {
    const core::SingleFileModel model(core::make_problem(
        c.topology, core::Workload::uniform(n, 1.0), /*mu=*/1.5, /*k=*/1.0));
    std::vector<double> start(n, 0.0);
    start[0] = 1.0;

    core::AllocatorOptions broadcast;
    broadcast.alpha = 0.3;
    broadcast.epsilon = 1e-3;
    broadcast.max_iterations = 100000;
    const auto broadcast_run =
        core::ResourceDirectedAllocator(model, broadcast).run(start);
    const std::size_t broadcast_msgs_per_iter = n * (n - 1);
    // +1 round: the exchange that detects termination.
    const std::size_t broadcast_rounds = broadcast_run.iterations + 1;

    core::NeighborAllocatorOptions gossip;
    gossip.alpha = 0.1;
    gossip.epsilon = 1e-3;
    gossip.max_iterations = 200000;
    const core::NeighborAllocator neighbor(model, c.topology, gossip);
    const auto gossip_run = neighbor.run(start);
    const std::size_t gossip_rounds = gossip_run.iterations + 1;

    table.add_row({c.name, static_cast<long long>(n),
                   static_cast<long long>(c.topology.edge_count()),
                   std::string("broadcast"),
                   static_cast<long long>(broadcast_run.iterations),
                   static_cast<long long>(broadcast_msgs_per_iter),
                   static_cast<long long>(broadcast_rounds *
                                          broadcast_msgs_per_iter),
                   broadcast_run.cost});
    table.add_row({c.name, static_cast<long long>(n),
                   static_cast<long long>(c.topology.edge_count()),
                   std::string("neighbors-only"),
                   static_cast<long long>(gossip_run.iterations),
                   static_cast<long long>(neighbor.messages_per_iteration()),
                   static_cast<long long>(gossip_rounds *
                                          neighbor.messages_per_iteration()),
                   gossip_run.cost});
  }
  std::cout << bench::render(table) << '\n';
  std::cout
      << "Gossip preserves feasibility and monotonicity (tests pin this),\n"
         "converges to the same optimum when the optimum is interior, needs\n"
         "more iterations as graph diameter grows, and pays 2|E| instead of\n"
         "N(N-1) messages per iteration — on sparse graphs the total message\n"
         "bill can be competitive despite the extra iterations.\n";
  return 0;
}
