// Ablation A14: storage-capacity constraints (the Suri [33]
// generalization the paper's Section 3 survey points at). Sweep the cap
// on one node of the paper's ring to watch the optimum spill over, and
// compare the Section 7.2 one-copy cap enforced in-algorithm vs the
// paper's post-hoc trim.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "core/allocator.hpp"
#include "core/batch_allocator.hpp"
#include "core/multicopy_allocator.hpp"
#include "core/ring_model.hpp"
#include "core/single_file.hpp"
#include "net/cost_cache.hpp"
#include "runtime/sweep.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  fap::bench::init(argc, argv);
  using namespace fap;
  bench::print_header("Ablation A14", "storage-capacity constraints");

  std::cout << "-- cap sweep on node 0 of the paper ring --\n";
  util::Table sweep({"cap s_0", "x_0*", "x_others*", "capped cost",
                     "uncapped cost", "penalty %"},
                    4);
  const core::SingleFileModel uncapped(core::make_paper_ring_problem());
  core::AllocatorOptions options;
  options.alpha = 0.2;
  options.epsilon = 1e-7;
  options.max_iterations = 200000;
  const double base_cost =
      core::ResourceDirectedAllocator(uncapped, options)
          .run({0.8, 0.1, 0.1, 0.0})
          .cost;
  // Every cap is an independent constrained problem: pack them into one
  // SoA batch through batch_sweep (order and output independent of
  // --jobs AND batch width; lanes are bit-identical to serial runs). The
  // per-cap models share the ring's APSP through the cost cache.
  const std::vector<double> caps{0.25, 0.2, 0.15, 0.1, 0.05, 0.01};
  net::CostMatrixCache cache;
  struct Submission {
    core::SingleFileModel model;
    std::vector<double> start;
  };
  const std::vector<core::BatchRunResult> capped_results =
      runtime::batch_sweep(
          caps.size(), core::BatchAllocator::kDefaultWidth,
          bench::sweep_options("ablation_capacity"),
          [&](std::size_t index, std::uint64_t /*seed*/) {
            core::SingleFileProblem problem =
                core::make_paper_ring_problem(cache);
            problem.storage_capacity = {caps[index], 1.0, 1.0, 1.0};
            core::SingleFileModel model(std::move(problem));
            std::vector<double> start = core::uniform_allocation(model);
            return Submission{std::move(model), std::move(start)};
          },
          [&](std::size_t /*first*/, std::vector<Submission> items) {
            core::BatchAllocator batch;
            for (const Submission& item : items) {
              batch.submit(item.model, options, item.start);
            }
            return batch.run_all();
          });
  for (std::size_t i = 0; i < caps.size(); ++i) {
    const core::BatchRunResult& result = capped_results[i];
    sweep.add_row({caps[i], result.x[0], result.x[1], result.cost, base_cost,
                   100.0 * (result.cost / base_cost - 1.0)});
  }
  std::cout << bench::render(sweep)
            << "(below the unconstrained share 0.25 the cap binds; the "
               "spill raises cost smoothly)\n\n";

  std::cout << "-- ring: one-copy cap in-algorithm vs post-hoc trim --\n";
  core::RingProblem ring_uncapped =
      core::make_paper_ring_problem({4.0, 1.0, 1.0, 1.0});
  core::RingProblem ring_capped = ring_uncapped;
  ring_capped.max_per_node = 1.0;
  core::MultiCopyOptions ring_options;
  ring_options.alpha = 0.08;
  ring_options.max_iterations = 3000;

  const core::RingModel model_uncapped(ring_uncapped);
  const core::MultiCopyResult raw =
      core::MultiCopyAllocator(model_uncapped, ring_options)
          .run({0.9, 0.5, 0.35, 0.25});
  const std::vector<double> trimmed =
      core::trim_to_whole_copy(model_uncapped, raw.best_x);
  const core::RingModel model_capped(ring_capped);
  const core::MultiCopyResult capped =
      core::MultiCopyAllocator(model_capped, ring_options)
          .run({0.9, 0.5, 0.35, 0.25});

  util::Table ring_table({"approach", "cost", "max x_i",
                          "feasible at every iterate"},
                         4);
  ring_table.add_row({std::string("optimize uncapped, trim after (§7.2)"),
                      model_uncapped.cost(trimmed),
                      *std::max_element(trimmed.begin(), trimmed.end()),
                      std::string("no")});
  ring_table.add_row({std::string("cap x_i <= 1 inside the algorithm"),
                      model_capped.cost(capped.best_x),
                      *std::max_element(capped.best_x.begin(),
                                        capped.best_x.end()),
                      std::string("yes")});
  std::cout << bench::render(ring_table)
            << "(equal cost to within oscillation noise; the in-algorithm "
               "cap additionally\nkeeps every intermediate allocation "
               "deployable)\n";
  return 0;
}
