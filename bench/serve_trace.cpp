// Experiment A18: trace-driven serving at scale — the allocator↔DES loop
// closed end to end. An open-loop Zipf trace with popularity drift and
// scripted flash crowds (10M+ requests at the default size) is served
// under three policies over the same trace stream: the static t = 0
// placement, hysteresis-gated online reallocation with live migration,
// and an LRU cache baseline over static homes. The table reports mean
// and tail (p50/p99/p999) end-to-end delay, communication cost, and the
// adaptation bookkeeping.
//
// The three modes fan out through runtime::sweep — `--jobs N`
// parallelizes them, stdout stays byte-identical to a serial run (the
// determinism contract; CI diffs --jobs 1 against --jobs 8). Timings go
// to stderr only.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "net/generators.hpp"
#include "runtime/sweep.hpp"
#include "serve/trace_server.hpp"
#include "util/table.hpp"

namespace {

// Drift is parameterized as rank shift per ESTIMATION WINDOW, not per
// time unit: the per-window popularity displacement is what the online
// hysteresis has to detect and out-migrate, and a per-window knob keeps
// that displacement invariant when --records/--epoch/--load-pct change
// the wall-clock window length.
std::uint64_t flag_requests = 10000000;
std::uint64_t flag_records = 200000;
std::uint64_t flag_nodes = 16;
std::uint64_t flag_load_pct = 60;
std::uint64_t flag_zipf_milli = 900;
std::uint64_t flag_drift_per_window = 2;
std::uint64_t flag_flash_crowds = 2;
std::uint64_t flag_flash_boost = 10;
std::uint64_t flag_update_pct = 15;
std::uint64_t flag_cache_pct = 5;
std::uint64_t flag_hysteresis_milli = 50;
std::uint64_t flag_cooldown = 1;
std::uint64_t flag_bandwidth = 2000;
std::uint64_t flag_max_transfers = 2;
std::uint64_t flag_epoch = 65536;
std::uint64_t flag_est_epochs = 4;
std::uint64_t flag_hop_latency_milli = 0;

const char* mode_name(fap::serve::ServeMode mode) {
  switch (mode) {
    case fap::serve::ServeMode::kStatic:
      return "static";
    case fap::serve::ServeMode::kOnline:
      return "online";
    case fap::serve::ServeMode::kLru:
      return "lru";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  fap::bench::register_numeric_flag("--requests", "trace requests to serve",
                                    &flag_requests);
  fap::bench::register_numeric_flag("--records", "records in the file",
                                    &flag_records);
  fap::bench::register_numeric_flag("--nodes", "nodes in the ring topology",
                                    &flag_nodes);
  fap::bench::register_numeric_flag(
      "--load-pct", "offered load as % of total service capacity",
      &flag_load_pct);
  fap::bench::register_numeric_flag("--zipf-milli",
                                    "Zipf exponent x1000 of record popularity",
                                    &flag_zipf_milli);
  fap::bench::register_numeric_flag(
      "--drift-per-window",
      "popularity rank rotation in records per estimation window",
      &flag_drift_per_window);
  fap::bench::register_numeric_flag("--flash-crowds",
                                    "scripted flash crowds over the run",
                                    &flag_flash_crowds);
  fap::bench::register_numeric_flag("--flash-boost",
                                    "popularity multiplier while a crowd is on",
                                    &flag_flash_boost);
  fap::bench::register_numeric_flag("--update-pct",
                                    "percent of requests that are updates",
                                    &flag_update_pct);
  fap::bench::register_numeric_flag(
      "--cache-pct", "LRU capacity per node as % of the record count",
      &flag_cache_pct);
  fap::bench::register_numeric_flag(
      "--hysteresis-milli",
      "re-solve threshold x1000: TV of observed vs solved node shares",
      &flag_hysteresis_milli);
  fap::bench::register_numeric_flag(
      "--cooldown", "windows between re-solves (online mode)", &flag_cooldown);
  fap::bench::register_numeric_flag(
      "--bandwidth", "migration bandwidth in records per unit time",
      &flag_bandwidth);
  fap::bench::register_numeric_flag("--max-transfers",
                                    "per-node concurrent transfers per wave",
                                    &flag_max_transfers);
  fap::bench::register_numeric_flag("--epoch", "trace requests per epoch",
                                    &flag_epoch);
  fap::bench::register_numeric_flag(
      "--est-epochs", "epochs per estimation window", &flag_est_epochs);
  fap::bench::register_numeric_flag("--hop-latency-milli",
                                    "store-and-forward per-hop latency x1000",
                                    &flag_hop_latency_milli);
  fap::bench::init(argc, argv);
  using namespace fap;

  bench::print_header(
      "Experiment A18",
      "trace-driven serving: static vs online reallocation vs LRU");

  const std::size_t nodes = flag_nodes;
  const double mu = 1.0;
  const double total_rate = static_cast<double>(nodes) * mu *
                            static_cast<double>(flag_load_pct) / 100.0;
  const double window_time =
      static_cast<double>(flag_est_epochs * flag_epoch) / total_rate;
  const double run_time = static_cast<double>(flag_requests) / total_rate;

  serve::TraceWorkload workload;
  workload.records = flag_records;
  workload.total_rate = total_rate;
  workload.zipf_s = static_cast<double>(flag_zipf_milli) / 1000.0;
  workload.drift_rate =
      static_cast<double>(flag_drift_per_window) / window_time;
  workload.update_fraction = static_cast<double>(flag_update_pct) / 100.0;
  workload.epoch_requests = flag_epoch;
  workload.seed = bench::seed(20260809);
  // Scripted flash crowds, evenly spaced over the run, each boosting a
  // 0.5%-of-the-record-space slice for a tenth of the run.
  for (std::uint64_t c = 0; c < flag_flash_crowds; ++c) {
    serve::FlashCrowd crowd;
    crowd.start = run_time * static_cast<double>(c + 1) /
                  static_cast<double>(flag_flash_crowds + 1);
    crowd.end = crowd.start + run_time / 10.0;
    crowd.first_record =
        (flag_records * (2 * c + 1)) / (2 * flag_flash_crowds);
    crowd.last_record =
        std::min<std::size_t>(flag_records,
                              crowd.first_record + flag_records / 200 + 1);
    crowd.boost = static_cast<double>(flag_flash_boost);
    workload.flash_crowds.push_back(crowd);
  }

  const net::Topology topology = net::make_ring(nodes);
  const std::vector<serve::ServeMode> modes{serve::ServeMode::kStatic,
                                            serve::ServeMode::kOnline,
                                            serve::ServeMode::kLru};

  const auto wall_start = std::chrono::steady_clock::now();
  const std::vector<serve::TraceServeResult> results = runtime::sweep(
      modes.size(), bench::sweep_options("serve_trace"),
      [&](std::size_t index, std::uint64_t /*seed*/) {
        serve::TraceServeOptions options;
        options.mode = modes[index];
        options.mu = mu;
        options.hop_latency =
            static_cast<double>(flag_hop_latency_milli) / 1000.0;
        options.estimation_epochs = flag_est_epochs;
        options.hysteresis =
            static_cast<double>(flag_hysteresis_milli) / 1000.0;
        options.cooldown_windows = flag_cooldown;
        options.migration_bandwidth = static_cast<double>(flag_bandwidth);
        options.max_transfers_per_node = flag_max_transfers;
        options.cache_fraction = static_cast<double>(flag_cache_pct) / 100.0;
        return serve::TraceServer(topology, workload, options)
            .serve(flag_requests);
      });
  const auto wall_end = std::chrono::steady_clock::now();

  util::Table table(
      {"mode", "completions", "mean delay", "p50", "p99", "p999",
       "mean comm", "hit %", "reallocs", "migrated", "stalls", "cache hit %"},
      4);
  for (std::size_t m = 0; m < modes.size(); ++m) {
    const serve::TraceServeResult& r = results[m];
    const double cache_total =
        static_cast<double>(r.cache_hits + r.cache_misses);
    table.add_row(
        {mode_name(modes[m]), static_cast<double>(r.completions),
         r.delay.mean(), r.delay_hist.quantile(0.5),
         r.delay_hist.quantile(0.99), r.delay_hist.quantile(0.999),
         r.comm.mean(), 100.0 * r.hit_rate(),
         static_cast<double>(r.reallocations),
         static_cast<double>(r.migrated_records),
         static_cast<double>(r.stalled_requests),
         cache_total > 0.0
             ? 100.0 * static_cast<double>(r.cache_hits) / cache_total
             : 0.0});
  }
  std::cout << bench::render(table) << '\n';

  std::cerr << "serve_trace: " << flag_requests << " requests x "
            << modes.size() << " modes in "
            << std::chrono::duration<double>(wall_end - wall_start).count()
            << " s\n";
  return 0;
}
