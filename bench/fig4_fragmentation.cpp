// Figure 4: the case for fragmenting the file. Start with the entire file
// at one node — the optimal allocation under the integral (0/1)
// constraint — and let the algorithm fragment it.
//
// Paper: "the algorithm results in a significant (25%) reduction in cost
// at the optimal allocation (0.25, 0.25, 0.25, 0.25)". With the documented
// parameters (μ = 1.5, k = 1, λ = 1) the exact Eq. 1 values are 3.0 for
// the integral placement and 1.8 at the fragmented optimum — a 40%
// reduction; see EXPERIMENTS.md for the discrepancy note.
#include <iostream>

#include "baselines/heuristics.hpp"
#include "baselines/integral.hpp"
#include "bench_common.hpp"
#include "core/allocator.hpp"
#include "core/single_file.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  fap::bench::init(argc, argv);
  using namespace fap;
  bench::print_header("Figure 4", "starting with the entire file at one node");

  const core::SingleFileModel model(core::make_paper_ring_problem());
  const std::vector<double> integral_start{0.0, 0.0, 0.0, 1.0};

  // Confirm the start is the *best* integral allocation (by symmetry any
  // node is equally optimal).
  const baselines::IntegralResult integral =
      baselines::best_integral_single(model);

  core::AllocatorOptions options;
  options.alpha = 0.3;
  options.epsilon = 1e-3;
  options.record_trace = true;
  const core::ResourceDirectedAllocator allocator(model, options);
  const core::AllocationResult result = allocator.run(integral_start);

  util::Table series({"iter", "cost"}, 6);
  for (const core::IterationRecord& rec : result.trace) {
    series.add_row({static_cast<long long>(rec.iteration), rec.cost});
  }
  std::cout << bench::render(series) << '\n';
  std::cout << util::ascii_chart(bench::cost_series(result.trace), 60, 10,
                                 "cost")
            << '\n';

  const double start_cost = model.cost(integral_start);
  util::Table summary({"quantity", "value"}, 4);
  summary.add_row({std::string("best integral cost (Chu-style)"),
                   integral.cost});
  summary.add_row({std::string("cost at start (file wholly at node 4)"),
                   start_cost});
  summary.add_row({std::string("cost at fragmented optimum"), result.cost});
  summary.add_row({std::string("reduction vs integral (%)"),
                   100.0 * (1.0 - result.cost / start_cost)});
  summary.add_row({std::string("paper-reported reduction (%)"), 25.0});
  summary.add_row({std::string("iterations"),
                   static_cast<long long>(result.iterations)});
  std::cout << bench::render(summary);
  return 0;
}
