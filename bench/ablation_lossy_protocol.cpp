// Ablation A15: the protocol over an unreliable network. Sweeps packet
// loss x aggregation scheme x crash script on the Figure-3 ring and
// reports what the retransmitting transport pays (retransmissions,
// suppressed duplicates, extra rounds past the lossless baseline) to
// keep landing on the lossless optimum.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/single_file.hpp"
#include "sim/protocol_sim.hpp"
#include "util/table.hpp"

namespace {

struct SweepPoint {
  fap::sim::AggregationScheme scheme;
  double loss = 0.0;
  bool crash = false;
};

struct SweepRow {
  SweepPoint point;
  fap::sim::ProtocolResult result;
};

const char* scheme_name(fap::sim::AggregationScheme scheme) {
  return scheme == fap::sim::AggregationScheme::kBroadcast ? "broadcast"
                                                           : "central";
}

}  // namespace

int main(int argc, char** argv) {
  fap::bench::init(argc, argv);
  using namespace fap;
  bench::print_header("Ablation A15",
                      "protocol robustness under loss, duplication and "
                      "crashes");

  const core::SingleFileModel model(core::make_paper_ring_problem());
  const std::vector<double> start{0.8, 0.1, 0.1, 0.0};

  const auto make_config = [](const SweepPoint& point, std::uint64_t seed) {
    sim::ProtocolConfig config;
    config.scheme = point.scheme;
    config.algorithm.alpha = 0.3;
    config.algorithm.epsilon = 1e-5;
    config.algorithm.max_iterations = 5000;
    config.unreliable.enabled = true;
    config.unreliable.faults.loss = point.loss;
    config.unreliable.faults.duplicate = 0.05;
    config.unreliable.faults.jitter_ticks = 2;
    config.unreliable.faults.seed = seed;
    if (point.crash) {
      // Node 2 drops out during rounds ~2..8 and rejoins.
      config.unreliable.faults.crashes = {{2, 32, 128}};
    }
    config.unreliable.round_ticks = 16;
    config.unreliable.correction_interval = 4;
    return config;
  };

  // Lossless baselines, one per scheme: the cost and round count the
  // faulty runs are measured against.
  sim::ProtocolResult baseline[2];
  for (const auto scheme : {sim::AggregationScheme::kBroadcast,
                            sim::AggregationScheme::kCentralAgent}) {
    sim::ProtocolConfig config;
    config.scheme = scheme;
    config.algorithm.alpha = 0.3;
    config.algorithm.epsilon = 1e-5;
    config.algorithm.max_iterations = 5000;
    baseline[static_cast<std::size_t>(scheme)] =
        sim::run_protocol(model, start, config);
  }

  std::vector<SweepPoint> points;
  for (const auto scheme : {sim::AggregationScheme::kBroadcast,
                            sim::AggregationScheme::kCentralAgent}) {
    for (const double loss : {0.0, 0.05, 0.1, 0.2, 0.3}) {
      for (const bool crash : {false, true}) {
        points.push_back({scheme, loss, crash});
      }
    }
  }

  const std::vector<SweepRow> rows = runtime::sweep(
      points.size(), bench::sweep_options("ablation_lossy_protocol", 404),
      [&](std::size_t i, std::uint64_t seed) {
        const SweepPoint& point = points[i];
        SweepRow row{point,
                     sim::run_protocol(model, start,
                                       make_config(point, seed))};
        const sim::RobustnessStats& rob = row.result.robustness;
        runtime::add_task_metric("loss", point.loss);
        runtime::add_task_metric("crash", point.crash ? 1.0 : 0.0);
        runtime::add_task_metric("rounds",
                                 static_cast<double>(row.result.rounds));
        runtime::add_task_metric("cost", row.result.cost);
        runtime::add_task_metric(
            "retransmissions", static_cast<double>(rob.retransmissions));
        runtime::add_task_metric(
            "messages_dropped", static_cast<double>(rob.messages_dropped));
        runtime::add_task_metric(
            "duplicates_suppressed",
            static_cast<double>(rob.duplicates_suppressed));
        runtime::add_task_metric(
            "rounds_with_missing_reports",
            static_cast<double>(rob.rounds_with_missing_reports));
        runtime::add_task_metric("max_feasibility_drift",
                                 rob.max_feasibility_drift);
        runtime::add_task_metric("final_feasibility_drift",
                                 rob.final_feasibility_drift);
        return row;
      });

  util::Table table({"scheme", "loss", "crash", "rounds", "extra rounds",
                     "final cost", "retransmit", "dropped", "dup suppressed",
                     "missing rounds", "max |sum x - 1|"},
                    6);
  for (const SweepRow& row : rows) {
    const sim::ProtocolResult& base =
        baseline[static_cast<std::size_t>(row.point.scheme)];
    const long long extra = static_cast<long long>(row.result.rounds) -
                            static_cast<long long>(base.rounds);
    const sim::RobustnessStats& rob = row.result.robustness;
    table.add_row({std::string(scheme_name(row.point.scheme)), row.point.loss,
                   std::string(row.point.crash ? "2 down [32,128)" : "none"),
                   static_cast<long long>(row.result.rounds), extra,
                   row.result.cost,
                   static_cast<long long>(rob.retransmissions),
                   static_cast<long long>(rob.messages_dropped),
                   static_cast<long long>(rob.duplicates_suppressed),
                   static_cast<long long>(rob.rounds_with_missing_reports),
                   rob.max_feasibility_drift});
  }
  std::cout << bench::render(table) << '\n';
  std::cout
      << "The transport converts an unreliable network back into the\n"
         "paper's synchronous-rounds model: every sweep point lands on the\n"
         "lossless optimum, paying only retransmissions and extra rounds.\n"
         "Loss stretches rounds (reports miss deadlines, views go stale);\n"
         "a crash freezes the victim's fragment until rejoin; anti-entropy\n"
         "renormalization keeps the feasibility drift bounded throughout.\n";
  return 0;
}
