// Ablation A7: volume-dependent transfer costs (Section 8.2's pass-by-
// value model). Sweeping the volume factor v shows the optimum migrating
// from "concentrate at the cheapest node" (linear comm, k small) to broad
// fragmentation — volume penalties alone justify fragmenting.
#include <algorithm>
#include <iostream>

#include "baselines/projected_gradient.hpp"
#include "bench_common.hpp"
#include "core/allocator.hpp"
#include "core/single_file.hpp"
#include "core/volume_model.hpp"
#include "runtime/sweep.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  fap::bench::init(argc, argv);
  using namespace fap;
  bench::print_header("Ablation A7",
                      "volume-dependent transfer costs (pass-by-value)");

  // Asymmetric workload, weak delay term: the Section 4 model wants to
  // concentrate; the volume term resists.
  core::SingleFileProblem problem = core::make_paper_ring_problem();
  problem.lambda = {0.5, 0.25, 0.15, 0.1};
  problem.k = 0.1;

  util::Table table({"volume factor v", "optimal max x_i",
                     "optimal cost", "cost at concentration",
                     "fragmentation gain %", "algo iterations"},
                    4);
  // Each volume factor optimizes an unrelated model instance — a natural
  // runtime::sweep (200k-iteration runs dominate; --jobs N divides them).
  struct VolumeRow {
    core::AllocationResult result;
    double concentrated_cost = 0.0;
  };
  const std::vector<double> volumes{0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0};
  const std::vector<VolumeRow> rows = runtime::sweep(
      volumes.size(), bench::sweep_options("ablation_volume"),
      [&](std::size_t index, std::uint64_t /*seed*/) {
        const core::VolumeTransferModel model(problem, /*base_volume=*/1.0,
                                              volumes[index]);

        core::AllocatorOptions options;
        options.step_rule = core::StepRule::kDynamic;  // v-independent tuning
        options.epsilon = 1e-6;
        options.max_iterations = 200000;
        const core::ResourceDirectedAllocator allocator(model, options);

        std::vector<double> concentrated(4, 0.0);
        concentrated[0] = 1.0;  // the cheapest node for this workload
        return VolumeRow{allocator.run(core::uniform_allocation(model)),
                         model.cost(concentrated)};
      });
  for (std::size_t i = 0; i < volumes.size(); ++i) {
    const core::AllocationResult& result = rows[i].result;
    const double concentrated_cost = rows[i].concentrated_cost;
    table.add_row(
        {volumes[i], *std::max_element(result.x.begin(), result.x.end()),
         result.cost, concentrated_cost,
         100.0 * (1.0 - result.cost / concentrated_cost),
         static_cast<long long>(result.iterations)});
  }
  std::cout << bench::render(table) << '\n';
  std::cout << "As v grows the optimal allocation spreads (max x_i falls\n"
               "toward 1/N) and the gain over whole-file shipping grows —\n"
               "the Section 8.2 intuition, quantified.\n";
  return 0;
}
