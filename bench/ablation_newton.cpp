// Ablation A2: first- vs second-derivative algorithm (Section 8.2). The
// second-derivative variant is claimed to be (a) resilient to rescaling
// the problem (link costs, service rates) and (b) tolerant to the choice
// of the step-size parameter. Both claims are measured here.
#include <iostream>

#include "bench_common.hpp"
#include "core/allocator.hpp"
#include "core/newton_allocator.hpp"
#include "core/single_file.hpp"
#include "util/table.hpp"

namespace {

fap::core::SingleFileProblem scaled_problem(double cost_scale) {
  fap::core::SingleFileProblem problem = fap::core::make_paper_ring_problem();
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      problem.comm.set_cost(i, j, problem.comm.cost(i, j) * cost_scale);
    }
  }
  problem.k *= cost_scale;
  return problem;
}

}  // namespace

int main(int argc, char** argv) {
  fap::bench::init(argc, argv);
  using namespace fap;
  bench::print_header("Ablation A2",
                      "first- vs second-derivative algorithm");

  const std::vector<double> start{0.8, 0.1, 0.1, 0.0};

  // (a) Scale resilience: same fixed step, problem costs scaled by
  // 0.01x .. 100x. ε scales with the problem (it is a marginal-utility
  // spread).
  std::cout << "-- scale resilience (fixed step, costs scaled) --\n";
  util::Table scale_table(
      {"cost scale", "first-order iters", "second-order iters"}, 4);
  for (const double scale : {0.01, 0.1, 1.0, 10.0, 100.0}) {
    const core::SingleFileModel model(scaled_problem(scale));

    core::AllocatorOptions first;
    first.alpha = 0.3;
    first.epsilon = 1e-3 * scale;
    first.max_iterations = 200000;
    const auto first_result =
        core::ResourceDirectedAllocator(model, first).run(start);

    core::NewtonAllocatorOptions second;
    second.alpha = 0.5;
    second.epsilon = 1e-3 * scale;
    second.max_iterations = 200000;
    const auto second_result =
        core::NewtonAllocator(model, second).run(start);

    scale_table.add_row(
        {scale,
         static_cast<long long>(first_result.converged
                                    ? first_result.iterations
                                    : -1),
         static_cast<long long>(second_result.converged
                                    ? second_result.iterations
                                    : -1)});
  }
  std::cout << bench::render(scale_table)
            << "(second-order column is flat; first-order varies by orders "
               "of magnitude)\n\n";

  // (b) Step-size tolerance on the unscaled problem.
  std::cout << "-- step-size tolerance --\n";
  util::Table alpha_table(
      {"alpha", "first-order iters", "second-order iters"}, 4);
  const core::SingleFileModel model(core::make_paper_ring_problem());
  for (const double alpha : {0.05, 0.1, 0.3, 0.5, 0.8, 1.0}) {
    core::AllocatorOptions first;
    first.alpha = alpha;
    first.epsilon = 1e-3;
    first.max_iterations = 50000;
    const auto first_result =
        core::ResourceDirectedAllocator(model, first).run(start);

    core::NewtonAllocatorOptions second;
    second.alpha = alpha;
    second.epsilon = 1e-3;
    second.max_iterations = 50000;
    const auto second_result =
        core::NewtonAllocator(model, second).run(start);

    alpha_table.add_row(
        {alpha,
         static_cast<long long>(
             first_result.converged ? first_result.iterations : -1),
         static_cast<long long>(
             second_result.converged ? second_result.iterations : -1)});
  }
  std::cout << bench::render(alpha_table)
            << "(-1 = did not converge within the cap)\n";
  return 0;
}
