// Ablation A2: first- vs second-derivative algorithm (Section 8.2). The
// second-derivative variant is claimed to be (a) resilient to rescaling
// the problem (link costs, service rates) and (b) tolerant to the choice
// of the step-size parameter. Both claims are measured here.
#include <iostream>

#include "bench_common.hpp"
#include "core/allocator.hpp"
#include "core/batch_allocator.hpp"
#include "core/newton_allocator.hpp"
#include "core/single_file.hpp"
#include "runtime/sweep.hpp"
#include "util/table.hpp"

namespace {

fap::core::SingleFileProblem scaled_problem(double cost_scale) {
  fap::core::SingleFileProblem problem = fap::core::make_paper_ring_problem();
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      problem.comm.set_cost(i, j, problem.comm.cost(i, j) * cost_scale);
    }
  }
  problem.k *= cost_scale;
  return problem;
}

}  // namespace

int main(int argc, char** argv) {
  fap::bench::init(argc, argv);
  using namespace fap;
  bench::print_header("Ablation A2",
                      "first- vs second-derivative algorithm");

  const std::vector<double> start{0.8, 0.1, 0.1, 0.0};

  // (a) Scale resilience: same fixed step, problem costs scaled by
  // 0.01x .. 100x. ε scales with the problem (it is a marginal-utility
  // spread).
  std::cout << "-- scale resilience (fixed step, costs scaled) --\n";
  util::Table scale_table(
      {"cost scale", "first-order iters", "second-order iters"}, 4);
  const std::vector<double> scales{0.01, 0.1, 1.0, 10.0, 100.0};
  std::vector<core::SingleFileModel> scale_models;
  scale_models.reserve(scales.size());
  for (const double scale : scales) {
    scale_models.emplace_back(scaled_problem(scale));
  }

  // The first-order runs are independent gradient descents (one model per
  // lane — the batch kernel supports heterogeneous lanes), so they step as
  // one SoA batch, bit-identical to the serial loop they replace.
  core::BatchAllocator scale_batch;
  for (std::size_t i = 0; i < scales.size(); ++i) {
    core::AllocatorOptions first;
    first.alpha = 0.3;
    first.epsilon = 1e-3 * scales[i];
    first.max_iterations = 200000;
    scale_batch.submit(scale_models[i], first, start);
  }
  const std::vector<core::BatchRunResult> scale_first =
      scale_batch.run_all();

  // The Newton runs have no batched kernel; fan them out through the
  // runtime instead (order and output independent of --jobs).
  const std::vector<core::AllocationResult> scale_second = runtime::sweep(
      scales.size(), bench::sweep_options("ablation_newton"),
      [&](std::size_t i, std::uint64_t /*seed*/) {
        core::NewtonAllocatorOptions second;
        second.alpha = 0.5;
        second.epsilon = 1e-3 * scales[i];
        second.max_iterations = 200000;
        return core::NewtonAllocator(scale_models[i], second).run(start);
      });

  for (std::size_t i = 0; i < scales.size(); ++i) {
    scale_table.add_row(
        {scales[i],
         static_cast<long long>(scale_first[i].converged
                                    ? scale_first[i].iterations
                                    : -1),
         static_cast<long long>(scale_second[i].converged
                                    ? scale_second[i].iterations
                                    : -1)});
  }
  std::cout << bench::render(scale_table)
            << "(second-order column is flat; first-order varies by orders "
               "of magnitude)\n\n";

  // (b) Step-size tolerance on the unscaled problem.
  std::cout << "-- step-size tolerance --\n";
  util::Table alpha_table(
      {"alpha", "first-order iters", "second-order iters"}, 4);
  const core::SingleFileModel model(core::make_paper_ring_problem());
  const std::vector<double> alphas{0.05, 0.1, 0.3, 0.5, 0.8, 1.0};

  core::BatchAllocator alpha_batch;
  for (const double alpha : alphas) {
    core::AllocatorOptions first;
    first.alpha = alpha;
    first.epsilon = 1e-3;
    first.max_iterations = 50000;
    alpha_batch.submit(model, first, start);
  }
  const std::vector<core::BatchRunResult> alpha_first =
      alpha_batch.run_all();

  const std::vector<core::AllocationResult> alpha_second = runtime::sweep(
      alphas.size(), bench::sweep_options("ablation_newton"),
      [&](std::size_t i, std::uint64_t /*seed*/) {
        core::NewtonAllocatorOptions second;
        second.alpha = alphas[i];
        second.epsilon = 1e-3;
        second.max_iterations = 50000;
        return core::NewtonAllocator(model, second).run(start);
      });

  for (std::size_t i = 0; i < alphas.size(); ++i) {
    alpha_table.add_row(
        {alphas[i],
         static_cast<long long>(
             alpha_first[i].converged ? alpha_first[i].iterations : -1),
         static_cast<long long>(
             alpha_second[i].converged ? alpha_second[i].iterations : -1)});
  }
  std::cout << bench::render(alpha_table)
            << "(-1 = did not converge within the cap)\n";
  return 0;
}
