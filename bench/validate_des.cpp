// Experiment A4: the analytic cost model (Eq. 1) vs the discrete-event
// simulator, across allocations on the paper's four-node ring and on the
// multicopy virtual ring. The paper evaluates everything through the
// analytic model; this bench substantiates that choice by running the
// actual queueing system.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/ring_model.hpp"
#include "core/single_file.hpp"
#include "sim/des.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  fap::bench::init(argc, argv);
  using namespace fap;
  bench::print_header("Validation A4",
                      "analytic Eq. 1 cost vs discrete-event measurement");

  const core::SingleFileModel model(core::make_paper_ring_problem());
  const std::vector<std::vector<double>> allocations{
      {0.25, 0.25, 0.25, 0.25}, {0.40, 0.30, 0.20, 0.10},
      {0.80, 0.10, 0.10, 0.00}, {0.00, 0.00, 0.00, 1.00},
      {0.50, 0.50, 0.00, 0.00}};

  util::Table table({"allocation", "analytic cost", "measured cost",
                     "error %", "mean sojourn", "mean comm"},
                    4);
  for (const auto& x : allocations) {
    sim::DesConfig config = sim::des_config_for(model, x);
    config.measured_accesses = 150000;
    config.seed = 20260705;
    const sim::DesResult result = sim::run_des(config);
    const double analytic = model.cost(x);
    std::string label = "(";
    for (std::size_t i = 0; i < x.size(); ++i) {
      label += util::format_double(x[i], 2);
      label += (i + 1 < x.size() ? "," : ")");
    }
    table.add_row({label, analytic, result.measured_cost,
                   100.0 * std::fabs(result.measured_cost - analytic) /
                       analytic,
                   result.sojourn.mean(), result.comm_cost.mean()});
  }
  std::cout << bench::render(table) << '\n';

  // Multicopy ring validation (per-access = rate cost / λ_total = 1).
  const core::RingModel ring{
      core::make_paper_ring_problem({4.0, 1.0, 1.0, 1.0})};
  util::Table ring_table(
      {"ring allocation", "analytic (per access)", "measured", "error %"}, 4);
  for (const auto& x : {std::vector<double>{0.5, 0.5, 0.5, 0.5},
                        std::vector<double>{0.9, 0.5, 0.35, 0.25},
                        std::vector<double>{1.0, 0.0, 1.0, 0.0}}) {
    sim::DesConfig config = sim::des_config_for(ring, x);
    config.measured_accesses = 150000;
    config.seed = 4242;
    const sim::DesResult result = sim::run_des(config);
    const double analytic = ring.cost(x);
    std::string label = "(";
    for (std::size_t i = 0; i < x.size(); ++i) {
      label += util::format_double(x[i], 2);
      label += (i + 1 < x.size() ? "," : ")");
    }
    ring_table.add_row(
        {label, analytic, result.measured_cost,
         100.0 * std::fabs(result.measured_cost - analytic) / analytic});
  }
  std::cout << bench::render(ring_table) << '\n';

  // M/G/1 generalization check: deterministic service measured against the
  // Pollaczek-Khinchine-based model (Section 5.4).
  core::SingleFileProblem md1_problem = core::make_paper_ring_problem();
  md1_problem.delay = queueing::DelayModel::md1();
  const core::SingleFileModel md1_model(std::move(md1_problem));
  sim::DesConfig config =
      sim::des_config_for(md1_model, {0.25, 0.25, 0.25, 0.25});
  config.service = sim::ServiceDistribution::kDeterministic;
  config.measured_accesses = 150000;
  const sim::DesResult md1_result = sim::run_des(config);
  std::cout << "M/D/1 uniform allocation: analytic "
            << util::format_double(md1_model.cost({0.25, 0.25, 0.25, 0.25}), 4)
            << " vs measured "
            << util::format_double(md1_result.measured_cost, 4) << "\n";

  // M/M/c generalization: two servers per node at half the rate — the
  // Erlang-C model against a real multi-server system.
  core::SingleFileProblem mmc_problem = core::make_paper_ring_problem();
  mmc_problem.delay = queueing::DelayModel::mmc(2);
  mmc_problem.mu.assign(4, 0.75);  // per-server; capacity 1.5 as before
  const core::SingleFileModel mmc_model(std::move(mmc_problem));
  sim::DesConfig mmc_config =
      sim::des_config_for(mmc_model, {0.25, 0.25, 0.25, 0.25});
  mmc_config.servers_per_node.assign(4, 2);
  mmc_config.measured_accesses = 150000;
  const sim::DesResult mmc_result = sim::run_des(mmc_config);
  std::cout << "M/M/2 (0.75/server) uniform allocation: analytic "
            << util::format_double(mmc_model.cost({0.25, 0.25, 0.25, 0.25}),
                                   4)
            << " vs measured "
            << util::format_double(mmc_result.measured_cost, 4) << "\n";
  return 0;
}
