// Experiment A4: the analytic cost model (Eq. 1) vs the discrete-event
// simulator, across allocations on the paper's four-node ring and on the
// multicopy virtual ring. The paper evaluates everything through the
// analytic model; this bench substantiates that choice by running the
// actual queueing system.
//
// Every allocation is simulated independently (fixed per-point seed), so
// both tables fan their points out through runtime::sweep — `--jobs N`
// parallelizes, output stays byte-identical to a serial run.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/ring_model.hpp"
#include "core/single_file.hpp"
#include "runtime/sweep.hpp"
#include "sim/des.hpp"
#include "sim/des_system.hpp"
#include "util/table.hpp"

namespace {

std::string allocation_label(const std::vector<double>& x) {
  std::string label = "(";
  for (std::size_t i = 0; i < x.size(); ++i) {
    label += fap::util::format_double(x[i], 2);
    label += (i + 1 < x.size() ? "," : ")");
  }
  return label;
}

}  // namespace

int main(int argc, char** argv) {
  fap::bench::init(argc, argv);
  using namespace fap;
  bench::print_header("Validation A4",
                      "analytic Eq. 1 cost vs discrete-event measurement");

  const core::SingleFileModel model(core::make_paper_ring_problem());
  const std::vector<std::vector<double>> allocations{
      {0.25, 0.25, 0.25, 0.25}, {0.40, 0.30, 0.20, 0.10},
      {0.80, 0.10, 0.10, 0.00}, {0.00, 0.00, 0.00, 1.00},
      {0.50, 0.50, 0.00, 0.00}};

  struct SingleFileRow {
    std::string label;
    double analytic = 0.0;
    double measured = 0.0;
    double sojourn = 0.0;
    double comm = 0.0;
  };
  // The historical per-point seed is kept as the default so the reference
  // numbers in EXPERIMENTS.md still reproduce; --seed shifts every point.
  const std::uint64_t single_seed = bench::seed(20260705);
  const std::vector<SingleFileRow> rows = runtime::sweep(
      allocations.size(), bench::sweep_options("validate_des.single_file"),
      [&](std::size_t index, std::uint64_t /*seed*/) {
        const std::vector<double>& x = allocations[index];
        sim::DesConfig config = sim::des_config_for(model, x);
        config.measured_accesses = 150000;
        config.seed = single_seed;
        const sim::DesResult result = sim::run_des(config);
        return SingleFileRow{allocation_label(x), model.cost(x),
                             result.measured_cost, result.sojourn.mean(),
                             result.comm_cost.mean()};
      });

  util::Table table({"allocation", "analytic cost", "measured cost",
                     "error %", "mean sojourn", "mean comm"},
                    4);
  for (const SingleFileRow& row : rows) {
    table.add_row({row.label, row.analytic, row.measured,
                   100.0 * std::fabs(row.measured - row.analytic) /
                       row.analytic,
                   row.sojourn, row.comm});
  }
  std::cout << bench::render(table) << '\n';

  // Multicopy ring validation (per-access = rate cost / λ_total = 1).
  const core::RingModel ring{
      core::make_paper_ring_problem({4.0, 1.0, 1.0, 1.0})};
  const std::vector<std::vector<double>> ring_allocations{
      {0.5, 0.5, 0.5, 0.5}, {0.9, 0.5, 0.35, 0.25}, {1.0, 0.0, 1.0, 0.0}};

  struct RingRow {
    std::string label;
    double analytic = 0.0;
    double measured = 0.0;
  };
  const std::uint64_t ring_seed = bench::seed(4242);
  const std::vector<RingRow> ring_rows = runtime::sweep(
      ring_allocations.size(), bench::sweep_options("validate_des.ring"),
      [&](std::size_t index, std::uint64_t /*seed*/) {
        const std::vector<double>& x = ring_allocations[index];
        sim::DesConfig config = sim::des_config_for(ring, x);
        config.measured_accesses = 150000;
        config.seed = ring_seed;
        const sim::DesResult result = sim::run_des(config);
        return RingRow{allocation_label(x), ring.cost(x),
                       result.measured_cost};
      });

  util::Table ring_table(
      {"ring allocation", "analytic (per access)", "measured", "error %"}, 4);
  for (const RingRow& row : ring_rows) {
    ring_table.add_row(
        {row.label, row.analytic, row.measured,
         100.0 * std::fabs(row.measured - row.analytic) / row.analytic});
  }
  std::cout << bench::render(ring_table) << '\n';

  // M/G/1 generalization check: deterministic service measured against the
  // Pollaczek-Khinchine-based model (Section 5.4).
  core::SingleFileProblem md1_problem = core::make_paper_ring_problem();
  md1_problem.delay = queueing::DelayModel::md1();
  const core::SingleFileModel md1_model(std::move(md1_problem));
  sim::DesConfig config =
      sim::des_config_for(md1_model, {0.25, 0.25, 0.25, 0.25});
  config.service = sim::ServiceDistribution::kDeterministic;
  config.measured_accesses = 150000;
  const sim::DesResult md1_result = sim::run_des(config);
  std::cout << "M/D/1 uniform allocation: analytic "
            << util::format_double(md1_model.cost({0.25, 0.25, 0.25, 0.25}), 4)
            << " vs measured "
            << util::format_double(md1_result.measured_cost, 4) << "\n";

  // M/M/c generalization: two servers per node at half the rate — the
  // Erlang-C model against a real multi-server system.
  core::SingleFileProblem mmc_problem = core::make_paper_ring_problem();
  mmc_problem.delay = queueing::DelayModel::mmc(2);
  mmc_problem.mu.assign(4, 0.75);  // per-server; capacity 1.5 as before
  const core::SingleFileModel mmc_model(std::move(mmc_problem));
  sim::DesConfig mmc_config =
      sim::des_config_for(mmc_model, {0.25, 0.25, 0.25, 0.25});
  mmc_config.servers_per_node.assign(4, 2);
  mmc_config.measured_accesses = 150000;
  const sim::DesResult mmc_result = sim::run_des(mmc_config);
  std::cout << "M/M/2 (0.75/server) uniform allocation: analytic "
            << util::format_double(mmc_model.cost({0.25, 0.25, 0.25, 0.25}),
                                   4)
            << " vs measured "
            << util::format_double(mmc_result.measured_cost, 4) << "\n";

  // Replicated measurement (runtime::sweep + RunningStats::merge inside
  // run_des_replications): the pooled estimate with a CI from independent
  // replication means — the statistically honest version of the single
  // long run above.
  sim::DesConfig replicated = sim::des_config_for(model, {0.25, 0.25, 0.25,
                                                          0.25});
  replicated.measured_accesses = 30000;
  runtime::SweepOptions replication_options =
      bench::sweep_options("validate_des.replications", 20260705);
  const sim::ReplicatedDesResult pooled =
      sim::run_des_replications(replicated, 5, replication_options);
  std::cout << "Uniform allocation, 5 replications x 30k accesses: measured "
            << util::format_double(pooled.measured_cost, 4) << " +- "
            << util::format_double(
                   pooled.cost_per_replication.ci95_halfwidth(), 4)
            << " (95% CI over replications; analytic "
            << util::format_double(model.cost({0.25, 0.25, 0.25, 0.25}), 4)
            << ")\n";
  return 0;
}
