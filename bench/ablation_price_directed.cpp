// Ablation A3: resource-directed vs price-directed mechanisms on the same
// FAP instance — quantifying the Section 2 comparison. The paper lists the
// price-directed drawbacks: infeasible intermediate allocations,
// non-monotone utility along the path, and a local optimization per agent
// per iteration. All three are measured here.
#include <cmath>
#include <iostream>

#include "baselines/price_directed_fap.hpp"
#include "bench_common.hpp"
#include "core/allocator.hpp"
#include "core/single_file.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  fap::bench::init(argc, argv);
  using namespace fap;
  bench::print_header("Ablation A3",
                      "resource-directed vs price-directed (tatonnement)");

  const core::SingleFileModel model(core::make_paper_ring_problem());
  const std::vector<double> start{0.8, 0.1, 0.1, 0.0};

  // Resource-directed run.
  core::AllocatorOptions rd_options;
  rd_options.alpha = 0.3;
  rd_options.epsilon = 1e-3;
  rd_options.record_trace = true;
  const auto rd =
      core::ResourceDirectedAllocator(model, rd_options).run(start);

  // Price-directed tâtonnement.
  econ::TatonnementOptions pd_options;
  pd_options.gamma = 0.2;
  pd_options.initial_price = -5.0;  // prices clear negative for this model
  pd_options.tol = 1e-4;
  pd_options.record_trace = true;
  pd_options.max_iterations = 100000;
  const auto pd = baselines::price_directed_fap(model, pd_options);

  // Path diagnostics.
  double rd_max_infeasibility = 0.0;
  bool rd_monotone = true;
  for (std::size_t t = 0; t < rd.trace.size(); ++t) {
    double sum = 0.0;
    for (const double xi : rd.trace[t].x) {
      sum += xi;
    }
    rd_max_infeasibility =
        std::max(rd_max_infeasibility, std::fabs(sum - 1.0));
    if (t > 0 && rd.trace[t].cost > rd.trace[t - 1].cost + 1e-12) {
      rd_monotone = false;
    }
  }
  double pd_max_infeasibility = 0.0;
  bool pd_monotone = true;
  double previous_utility = -1e300;
  for (const auto& rec : pd.trace) {
    pd_max_infeasibility =
        std::max(pd_max_infeasibility, std::fabs(rec.excess_demand));
    if (rec.social_utility < previous_utility - 1e-12) {
      pd_monotone = false;
    }
    previous_utility = rec.social_utility;
  }

  util::Table table({"property", "resource-directed", "price-directed"}, 6);
  table.add_row({std::string("iterations"),
                 static_cast<long long>(rd.iterations),
                 static_cast<long long>(pd.iterations)});
  table.add_row({std::string("converged"),
                 static_cast<long long>(rd.converged ? 1 : 0),
                 static_cast<long long>(pd.converged ? 1 : 0)});
  table.add_row({std::string("final cost"), rd.cost, model.cost(pd.x)});
  table.add_row({std::string("max |sum x - 1| along path"),
                 rd_max_infeasibility, pd_max_infeasibility});
  table.add_row({std::string("monotone along path (1=yes)"),
                 static_cast<long long>(rd_monotone ? 1 : 0),
                 static_cast<long long>(pd_monotone ? 1 : 0)});
  table.add_row({std::string("per-agent work per iteration"),
                 std::string("1 derivative eval"),
                 std::string("1 local optimization (bisection)")});
  std::cout << bench::render(table) << '\n';

  const econ::Equilibrium eq =
      baselines::price_directed_fap_equilibrium(model);
  std::cout << "exact clearing price: " << eq.price
            << "  (= common marginal utility at the optimum)\n"
            << "equilibrium cost: " << model.cost(eq.x)
            << "  — both mechanisms share the fixed point; only the path "
               "differs.\n";
  return 0;
}
