// Experiment A16: catalog allocation at scale. One price-decomposed
// solve per rung of a K-ladder (object count grows to --objects) over a
// fixed synthetic network, reporting the dual-loop diagnostics and the
// onlineJCCP-style workload metrics of the final allocation.
//
// The stdout table is a pure function of (flags, seed): no timing column,
// so `catalog_scale --jobs 1 --csv` and `--jobs 8 --csv` must be
// byte-identical — CI diffs the two. Wall-clock timings go to stderr.
//
// The acceptance configuration is the default one: 1e6 objects over 100
// nodes, capacity-violation residual <= 1e-9, solved in seconds.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "catalog/catalog_solver.hpp"
#include "catalog/catalog_spec.hpp"
#include "net/cost_cache.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fap;
  std::uint64_t objects = 1000000;
  std::uint64_t nodes = 100;
  std::uint64_t headroom_pct = 25;
  std::uint64_t zipf_milli = 900;
  std::uint64_t locality_pct = 50;
  bench::register_numeric_flag("--objects", "catalog size (ladder top)",
                               &objects);
  bench::register_numeric_flag("--nodes", "network size", &nodes);
  bench::register_numeric_flag("--headroom-pct",
                               "capacity slack over total volume, percent",
                               &headroom_pct);
  bench::register_numeric_flag("--zipf-milli",
                               "popularity exponent, thousandths",
                               &zipf_milli);
  bench::register_numeric_flag("--locality-pct",
                               "home-node share of accesses, percent",
                               &locality_pct);
  bench::init(argc, argv);
  bench::print_header(
      "Experiment A16",
      "price-decomposed catalog allocation over shared capacities");

  catalog::SyntheticCatalogOptions synth;
  synth.nodes = static_cast<std::size_t>(nodes);
  synth.headroom = static_cast<double>(headroom_pct) / 100.0;
  synth.zipf_s = static_cast<double>(zipf_milli) / 1000.0;
  synth.locality = static_cast<double>(locality_pct) / 100.0;

  // K-ladder: decades from 1000 up to (and always including) --objects.
  std::vector<std::size_t> ladder;
  for (std::size_t k = 1000; k < objects; k *= 10) {
    ladder.push_back(k);
  }
  ladder.push_back(static_cast<std::size_t>(objects));

  util::Table table({"objects", "rounds", "price converged", "residual",
                     "pre-repair residual", "repair moves",
                     "inner iters (final)", "unconverged", "hit rate",
                     "external traffic", "mean fragments"},
                    12);

  // One cache across the ladder: the topology depends only on
  // (nodes, seed), so every rung past the first reuses the APSP matrix.
  net::CostMatrixCache cache;
  const std::uint64_t master_seed = bench::seed(1);
  for (const std::size_t k : ladder) {
    synth.objects = k;
    const catalog::CatalogSpec spec =
        catalog::make_synthetic_catalog(synth, master_seed, cache);

    catalog::CatalogOptions options;
    options.jobs = bench::jobs();
    options.base_seed = master_seed;
    options.metrics = bench::metrics();
    options.run_id = "catalog_scale.K" + std::to_string(k);
    const catalog::CatalogSolver solver(spec, options);

    const auto t0 = std::chrono::steady_clock::now();
    const catalog::CatalogResult result = solver.solve();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - t0;
    std::cerr << "K=" << k << " nodes=" << nodes
              << " solve_s=" << elapsed.count()
              << " rounds=" << result.rounds
              << " residual=" << result.residual << "\n";

    table.add_row({static_cast<long long>(k),
                   static_cast<long long>(result.rounds),
                   static_cast<long long>(result.price_converged ? 1 : 0),
                   result.residual, result.pre_repair_residual,
                   static_cast<long long>(result.repair_moves),
                   static_cast<long long>(result.inner_iterations),
                   static_cast<long long>(result.unconverged_objects),
                   result.hit_rate, result.external_traffic,
                   result.mean_fragments});
  }
  std::cout << bench::render(table) << '\n';
  return 0;
}
