// Experiment A16: catalog allocation at scale. One price-decomposed
// solve per rung of a K-ladder (object count grows to --objects) over a
// fixed synthetic network, reporting the dual-loop diagnostics and the
// onlineJCCP-style workload metrics of the final allocation.
//
// The network side is selectable: the default random-metric topology
// carries a dense APSP matrix, while --topology fat-tree / geo-tiers
// builds a structured tier tree whose c_ij can also be served row-based
// (--provider rows: LRU-cached per-source Dijkstra) or implicitly
// (--provider implicit: O(depth) tier arithmetic, no matrix and no graph
// traversal). Providers return bit-equal rows, so for a fixed topology
// the stdout table is byte-identical across providers; `rows`/`implicit`
// keep the cost structure at O(n + cached rows) instead of n², which is
// what lets --nodes 4096 run end to end.
//
// The stdout table is a pure function of (flags, seed): no timing column,
// so `catalog_scale --jobs 1 --csv` and `--jobs 8 --csv` must be
// byte-identical — CI diffs the two. Wall-clock timings go to stderr.
//
// The acceptance configuration is the default one: 1e6 objects over 100
// nodes, capacity-violation residual <= 1e-9, solved in seconds.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "catalog/catalog_solver.hpp"
#include "catalog/catalog_spec.hpp"
#include "net/cost_cache.hpp"
#include "net/cost_provider.hpp"
#include "net/hierarchy.hpp"
#include "util/table.hpp"

namespace {

std::size_t fat_tree_fanout(std::size_t target) {
  std::size_t k = 1;
  while (1 + k + k * k + k * k * k < target) {
    ++k;
  }
  return k;
}

std::size_t geo_racks(std::size_t target) {
  // 4 regions × 4 DCs: N = 21 + 16·racks.
  return target > 21 + 16 ? (target - 21 + 15) / 16 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fap;
  std::uint64_t objects = 1000000;
  std::uint64_t nodes = 100;
  std::uint64_t headroom_pct = 25;
  std::uint64_t zipf_milli = 900;
  std::uint64_t locality_pct = 50;
  std::uint64_t row_cache = net::RowCostProvider::kDefaultCapacity;
  std::uint64_t inner_iters = 0;
  std::string topology = "metric";
  std::string provider = "dense";
  bench::register_numeric_flag("--objects", "catalog size (ladder top)",
                               &objects);
  bench::register_numeric_flag("--nodes", "network size", &nodes);
  bench::register_numeric_flag("--headroom-pct",
                               "capacity slack over total volume, percent",
                               &headroom_pct);
  bench::register_numeric_flag("--zipf-milli",
                               "popularity exponent, thousandths",
                               &zipf_milli);
  bench::register_numeric_flag("--locality-pct",
                               "home-node share of accesses, percent",
                               &locality_pct);
  bench::register_numeric_flag("--row-cache",
                               "cached rows per provider (default 64)",
                               &row_cache);
  bench::register_numeric_flag(
      "--inner-iters",
      "per-object allocator iteration cap (0 = library default). Large "
      "symmetric trees tie thousands of leaf costs exactly, and the "
      "spread-mass equilibrium then costs ~n per iteration per object; "
      "capping trades reported convergence for wall time (the repair pass "
      "still closes capacity residuals, and `unconverged` stays honest)",
      &inner_iters);
  bench::register_string_flag("--topology",
                              "metric | fat-tree | geo-tiers", &topology);
  bench::register_string_flag("--provider",
                              "dense | rows | implicit", &provider);
  bench::init(argc, argv);

  if (topology != "metric" && topology != "fat-tree" &&
      topology != "geo-tiers") {
    std::cerr << argv[0] << ": unknown --topology '" << topology << "'\n";
    return 2;
  }
  if (provider != "dense" && provider != "rows" && provider != "implicit") {
    std::cerr << argv[0] << ": unknown --provider '" << provider << "'\n";
    return 2;
  }
  const bool tiered = topology != "metric";
  if (!tiered && provider != "dense") {
    std::cerr << argv[0]
              << ": --provider rows/implicit needs --topology fat-tree or "
                 "geo-tiers (the metric network is the dense baseline)\n";
    return 2;
  }

  bench::print_header(
      "Experiment A16",
      "price-decomposed catalog allocation over shared capacities");

  catalog::SyntheticCatalogOptions synth;
  synth.nodes = static_cast<std::size_t>(nodes);
  synth.headroom = static_cast<double>(headroom_pct) / 100.0;
  synth.zipf_s = static_cast<double>(zipf_milli) / 1000.0;
  synth.locality = static_cast<double>(locality_pct) / 100.0;

  // Structured network, built once across the whole ladder. --nodes is a
  // TARGET there: the generators land on the nearest size at or above it
  // (fat-tree: smallest k with 1+k+k²+k³ >= target; geo-tiers: enough
  // racks under 4 regions × 4 DCs). The object/origin RNG streams do not
  // depend on the network, only on (options, seed).
  std::unique_ptr<net::TieredNetwork> network;
  std::shared_ptr<const net::CostProvider> comm_provider;
  if (tiered) {
    const auto target = static_cast<std::size_t>(nodes);
    network = std::make_unique<net::TieredNetwork>(
        topology == "fat-tree"
            ? net::make_fat_tree(fat_tree_fanout(target))
            : net::make_geo_tiers(geo_racks(target), 4, 4));
    synth.nodes = network->topology.node_count();
    const std::size_t cache_rows = std::max<std::uint64_t>(1, row_cache);
    if (provider == "rows") {
      comm_provider = std::make_shared<net::RowCostProvider>(
          network->topology, cache_rows);
    } else if (provider == "implicit") {
      comm_provider = std::make_shared<net::HierarchicalCostProvider>(
          network->spec, cache_rows);
    }
  }

  // K-ladder: decades from 1000 up to (and always including) --objects,
  // skipping rungs with K < 10·N. Below that, headroom spread over more
  // nodes than the catalog can fill leaves per-node capacity at a handful
  // of object volumes: the price loop degenerates into bin-packing and
  // oscillates to max_rounds while the near-tied inner solves crawl to
  // their iteration cap — a regime the shared-capacity decomposition is
  // not meant to model, and one whose cost explodes with N. Every
  // committed CI configuration has 10·N < 1000, so those ladders keep
  // their exact historical rungs.
  std::vector<std::size_t> ladder;
  const std::size_t k_floor =
      std::max<std::size_t>(1000, 10 * synth.nodes);
  for (std::size_t k = 1000; k < objects; k *= 10) {
    if (k >= k_floor) {
      ladder.push_back(k);
    }
  }
  if (ladder.empty() || ladder.back() != objects) {
    ladder.push_back(static_cast<std::size_t>(objects));
  }

  util::Table table({"objects", "rounds", "price converged", "residual",
                     "pre-repair residual", "repair moves",
                     "inner iters (final)", "unconverged", "hit rate",
                     "external traffic", "mean fragments"},
                    12);

  // One cache across the ladder: the topology depends only on
  // (nodes, seed), so every rung past the first reuses the APSP matrix.
  net::CostMatrixCache cache;
  const std::uint64_t master_seed = bench::seed(1);
  for (const std::size_t k : ladder) {
    synth.objects = k;
    const catalog::CatalogSpec spec =
        comm_provider != nullptr
            ? catalog::make_synthetic_catalog(synth, master_seed,
                                              comm_provider)
            : tiered
                  ? catalog::make_synthetic_catalog(
                        synth, master_seed, *cache.get(network->topology))
                  : catalog::make_synthetic_catalog(synth, master_seed,
                                                    cache);

    catalog::CatalogOptions options;
    if (inner_iters > 0) {
      options.inner.max_iterations = static_cast<std::size_t>(inner_iters);
    }
    options.jobs = bench::jobs();
    options.base_seed = master_seed;
    options.metrics = bench::metrics();
    options.run_id = "catalog_scale.K" + std::to_string(k);
    const catalog::CatalogSolver solver(spec, options);

    const auto t0 = std::chrono::steady_clock::now();
    const catalog::CatalogResult result = solver.solve();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - t0;
    std::cerr << "K=" << k << " nodes=" << synth.nodes
              << " solve_s=" << elapsed.count()
              << " rounds=" << result.rounds
              << " residual=" << result.residual << "\n";

    table.add_row({static_cast<long long>(k),
                   static_cast<long long>(result.rounds),
                   static_cast<long long>(result.price_converged ? 1 : 0),
                   result.residual, result.pre_repair_residual,
                   static_cast<long long>(result.repair_moves),
                   static_cast<long long>(result.inner_iterations),
                   static_cast<long long>(result.unconverged_objects),
                   result.hit_rate, result.external_traffic,
                   result.mean_fragments});
  }
  std::cout << bench::render(table) << '\n';
  return 0;
}
