// Ablation A13: asynchronous operation with stale marginal utilities.
// The paper's synchronous-rounds assumption relaxed: per-pair message
// delays, feasibility drift of the averaging update, the anti-entropy
// remedy, and the structural immunity of pairwise gossip.
#include <iostream>

#include "bench_common.hpp"
#include "core/single_file.hpp"
#include "net/generators.hpp"
#include "sim/async_protocol.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

std::vector<std::vector<std::size_t>> random_delay(std::size_t n,
                                                   std::size_t max_d,
                                                   std::uint64_t seed) {
  fap::util::Rng rng(seed);
  std::vector<std::vector<std::size_t>> delay(
      n, std::vector<std::size_t>(n, 0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) {
        delay[i][j] = rng.uniform_index(max_d + 1);
      }
    }
  }
  return delay;
}

}  // namespace

int main(int argc, char** argv) {
  fap::bench::init(argc, argv);
  using namespace fap;
  bench::print_header("Ablation A13",
                      "asynchrony: stale marginal utilities");

  const core::SingleFileModel model(core::make_paper_ring_problem());
  const net::Topology ring = net::make_ring(4, 1.0);
  const std::vector<double> start{0.8, 0.1, 0.1, 0.0};

  util::Table table({"scheme", "max delay", "anti-entropy", "final cost",
                     "max |sum x - 1|", "final |sum x - 1|"},
                    6);
  for (const std::size_t max_delay : {0u, 2u, 4u, 8u}) {
    sim::AsyncConfig config;
    config.alpha = 0.2;
    config.rounds = 800;
    if (max_delay > 0) {
      config.delay = random_delay(4, max_delay, 42);
    }

    const sim::AsyncResult averaging =
        sim::run_async_averaging(model, start, config);
    table.add_row({std::string("averaging (Section 5.2)"),
                   static_cast<long long>(max_delay), std::string("no"),
                   averaging.cost, averaging.max_feasibility_drift,
                   averaging.final_feasibility_drift});

    sim::AsyncConfig corrected = config;
    corrected.correction_interval = 10;
    const sim::AsyncResult fixed =
        sim::run_async_averaging(model, start, corrected);
    table.add_row({std::string("averaging + anti-entropy"),
                   static_cast<long long>(max_delay), std::string("/10"),
                   fixed.cost, fixed.max_feasibility_drift,
                   fixed.final_feasibility_drift});

    sim::AsyncConfig gossip_config = config;
    gossip_config.alpha = max_delay > 0 ? 0.05 : 0.2;  // delay-matched gain
    gossip_config.rounds = 4000;
    const sim::AsyncResult gossip =
        sim::run_async_gossip(model, ring, start, gossip_config);
    table.add_row({std::string("gossip (pairwise transfers)"),
                   static_cast<long long>(max_delay),
                   std::string("not needed"), gossip.cost,
                   gossip.max_feasibility_drift,
                   gossip.final_feasibility_drift});
  }
  std::cout << bench::render(table) << '\n';
  std::cout
      << "Averaging with heterogeneous staleness leaks file mass (nodes\n"
         "subtract different averages, so Σ Δx ≠ 0); periodic anti-entropy\n"
         "renormalization bounds the leak. Gossip moves mass in pairwise\n"
         "transfers and cannot drift regardless of staleness — it only\n"
         "needs its gain matched to the delay.\n";
  return 0;
}
