// Figure 6: increasing the number of nodes. Fully connected networks with
// unit link costs, N = 4..20, starting allocation (0.8, 0.1, 0.1, 0, ...),
// iterations to converge using the best α found per N.
//
// Paper: "increasing the problem size does not significantly increase the
// number of iterations required" — the curve is essentially flat.
//
// Each N is an independent problem (its own topology, model and α grid
// search), so the sweep runs through runtime::sweep: `--jobs 8` fills
// eight cores and prints byte-identical output to `--jobs 1`. Within a
// point, the 47-α grid search is ONE core::BatchAllocator batch (every α
// a lane, bit-identical to serial runs), and the winning lane's result
// is reused for the reported row instead of a re-run.
#include <iostream>

#include "bench_common.hpp"
#include "core/allocator.hpp"
#include "core/batch_allocator.hpp"
#include "core/single_file.hpp"
#include "net/cost_cache.hpp"
#include "net/generators.hpp"
#include "runtime/sweep.hpp"
#include "util/numeric.hpp"
#include "util/table.hpp"

namespace {

struct ScalingPoint {
  std::size_t n = 0;
  double best_alpha = 0.0;
  std::size_t iterations = 0;
  double cost = 0.0;
};

ScalingPoint measure_scaling_point(std::size_t n,
                                   fap::net::CostMatrixCache& cache) {
  using namespace fap;
  const net::Topology topology = net::make_complete(n, 1.0);
  const core::SingleFileModel model(
      core::make_problem(topology, core::Workload::uniform(n, 1.0),
                         /*mu=*/1.5, /*k=*/1.0, cache));
  std::vector<double> start(n, 0.0);
  start[0] = 0.8;
  start[1] = 0.1;
  start[2] = 0.1;

  // Best α per N via a grid search (the paper: "using the best possible
  // α"), run as one SoA batch: one lane per α candidate. A lane that
  // fails to converge gets a large penalty, keeping the search away from
  // divergent settings. grid_select applies grid_minimize's exact tie
  // rule, so the chosen α is the one the serial search would pick — and
  // its lane's result IS the serial rerun's result (bit-identical), so
  // the reported row reuses it directly.
  const std::vector<double> alphas = util::grid_points(0.05, 1.2, 47);
  core::BatchAllocator batch;
  for (const double alpha : alphas) {
    core::AllocatorOptions options;
    options.alpha = alpha;
    options.epsilon = 1e-3;
    options.max_iterations = 20000;
    batch.submit(model, options, start);
  }
  const std::vector<core::BatchRunResult> runs = batch.run_all();
  std::vector<double> scores;
  scores.reserve(runs.size());
  for (const core::BatchRunResult& run : runs) {
    scores.push_back(run.converged ? static_cast<double>(run.iterations)
                                   : 1e9);
  }
  const util::GridMinimum best = util::grid_select(alphas, scores);
  const core::BatchRunResult& chosen = runs[best.index];
  return {n, best.x, chosen.iterations, chosen.cost};
}

}  // namespace

int main(int argc, char** argv) {
  // The paper's figure stops at N = 20; --max-n extends the sweep so the
  // flatness claim (and the optimized kernels) can be exercised at larger
  // networks, e.g. --max-n 256.
  std::uint64_t max_nodes = 20;
  fap::bench::register_numeric_flag(
      "--max-n", "largest network size N to sweep (default 20)", &max_nodes);
  fap::bench::init(argc, argv);
  using namespace fap;
  bench::print_header("Figure 6",
                      "iterations (best alpha) vs number of nodes");

  constexpr std::size_t kMinNodes = 4;
  if (max_nodes < kMinNodes) {
    std::cerr << argv[0] << ": --max-n must be at least " << kMinNodes
              << "\n";
    return 2;
  }
  const auto kMaxNodes = static_cast<std::size_t>(max_nodes);
  net::CostMatrixCache cache;
  const std::vector<ScalingPoint> points =
      runtime::sweep(kMaxNodes - kMinNodes + 1,
                     bench::sweep_options("fig6_scaling"),
                     [&cache](std::size_t index, std::uint64_t /*seed*/) {
                       return measure_scaling_point(kMinNodes + index, cache);
                     });

  util::Table table({"N", "best alpha", "iterations", "final cost",
                     "optimal x_i (=1/N)"},
                    4);
  std::vector<double> iteration_series;
  for (const ScalingPoint& point : points) {
    table.add_row({static_cast<long long>(point.n), point.best_alpha,
                   static_cast<long long>(point.iterations), point.cost,
                   1.0 / static_cast<double>(point.n)});
    iteration_series.push_back(static_cast<double>(point.iterations));
  }
  std::cout << bench::render(table) << '\n';
  std::cout << util::ascii_chart(iteration_series, 34, 8,
                                 "iterations (x: N = 4.." +
                                     std::to_string(kMaxNodes) + ")")
            << '\n';
  std::cout << "Flatness check: max/min iterations across N = "
            << *std::max_element(iteration_series.begin(),
                                 iteration_series.end()) /
                   std::max(1.0, *std::min_element(iteration_series.begin(),
                                                   iteration_series.end()))
            << "x (paper: ~flat)\n";
  return 0;
}
