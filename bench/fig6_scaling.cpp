// Figure 6: increasing the number of nodes. Fully connected networks with
// unit link costs, N = 4..20, starting allocation (0.8, 0.1, 0.1, 0, ...),
// iterations to converge using the best α found per N.
//
// Paper: "increasing the problem size does not significantly increase the
// number of iterations required" — the curve is essentially flat.
//
// Each N is an independent problem (its own topology, model and α grid
// search), so the sweep runs through runtime::sweep: `--jobs 8` fills
// eight cores and prints byte-identical output to `--jobs 1`.
#include <iostream>

#include "bench_common.hpp"
#include "core/allocator.hpp"
#include "core/single_file.hpp"
#include "net/generators.hpp"
#include "runtime/sweep.hpp"
#include "util/numeric.hpp"
#include "util/table.hpp"

namespace {

// Iterations to converge for one (N, α) pair; a large penalty when the run
// fails to converge keeps the α search away from divergent settings.
double iterations_for(const fap::core::SingleFileModel& model,
                      const std::vector<double>& start, double alpha) {
  fap::core::AllocatorOptions options;
  options.alpha = alpha;
  options.epsilon = 1e-3;
  options.max_iterations = 20000;
  const fap::core::ResourceDirectedAllocator allocator(model, options);
  const fap::core::AllocationResult result = allocator.run(start);
  if (!result.converged) {
    return 1e9;
  }
  return static_cast<double>(result.iterations);
}

struct ScalingPoint {
  std::size_t n = 0;
  double best_alpha = 0.0;
  std::size_t iterations = 0;
  double cost = 0.0;
};

ScalingPoint measure_scaling_point(std::size_t n) {
  using namespace fap;
  const net::Topology topology = net::make_complete(n, 1.0);
  const core::SingleFileModel model(
      core::make_problem(topology, core::Workload::uniform(n, 1.0),
                         /*mu=*/1.5, /*k=*/1.0));
  std::vector<double> start(n, 0.0);
  start[0] = 0.8;
  start[1] = 0.1;
  start[2] = 0.1;

  // Best α per N via a grid search (the paper: "using the best possible
  // α").
  const util::GridMinimum best = util::grid_minimize(
      [&](double alpha) { return iterations_for(model, start, alpha); },
      0.05, 1.2, 47);

  core::AllocatorOptions options;
  options.alpha = best.x;
  options.epsilon = 1e-3;
  options.max_iterations = 20000;
  const core::ResourceDirectedAllocator allocator(model, options);
  const core::AllocationResult result = allocator.run(start);
  return {n, best.x, result.iterations, result.cost};
}

}  // namespace

int main(int argc, char** argv) {
  // The paper's figure stops at N = 20; --max-n extends the sweep so the
  // flatness claim (and the optimized kernels) can be exercised at larger
  // networks, e.g. --max-n 256.
  std::uint64_t max_nodes = 20;
  fap::bench::register_numeric_flag(
      "--max-n", "largest network size N to sweep (default 20)", &max_nodes);
  fap::bench::init(argc, argv);
  using namespace fap;
  bench::print_header("Figure 6",
                      "iterations (best alpha) vs number of nodes");

  constexpr std::size_t kMinNodes = 4;
  if (max_nodes < kMinNodes) {
    std::cerr << argv[0] << ": --max-n must be at least " << kMinNodes
              << "\n";
    return 2;
  }
  const auto kMaxNodes = static_cast<std::size_t>(max_nodes);
  const std::vector<ScalingPoint> points =
      runtime::sweep(kMaxNodes - kMinNodes + 1,
                     bench::sweep_options("fig6_scaling"),
                     [](std::size_t index, std::uint64_t /*seed*/) {
                       return measure_scaling_point(kMinNodes + index);
                     });

  util::Table table({"N", "best alpha", "iterations", "final cost",
                     "optimal x_i (=1/N)"},
                    4);
  std::vector<double> iteration_series;
  for (const ScalingPoint& point : points) {
    table.add_row({static_cast<long long>(point.n), point.best_alpha,
                   static_cast<long long>(point.iterations), point.cost,
                   1.0 / static_cast<double>(point.n)});
    iteration_series.push_back(static_cast<double>(point.iterations));
  }
  std::cout << bench::render(table) << '\n';
  std::cout << util::ascii_chart(iteration_series, 34, 8,
                                 "iterations (x: N = 4.." +
                                     std::to_string(kMaxNodes) + ")")
            << '\n';
  std::cout << "Flatness check: max/min iterations across N = "
            << *std::max_element(iteration_series.begin(),
                                 iteration_series.end()) /
                   std::max(1.0, *std::min_element(iteration_series.begin(),
                                                   iteration_series.end()))
            << "x (paper: ~flat)\n";
  return 0;
}
