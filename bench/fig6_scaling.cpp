// Figure 6: increasing the number of nodes. The paper's setup is fully
// connected networks with unit link costs, N = 4..20, starting allocation
// (0.8, 0.1, 0.1, 0, ...), iterations to converge using the best α found
// per N.
//
// Paper: "increasing the problem size does not significantly increase the
// number of iterations required" — the curve is essentially flat.
//
// Beyond the paper, --topology selects structured large-N networks (ring,
// fat-tree, geo-tiers) and --provider selects how the c_ij structure is
// served: `dense` builds the full APSP matrix (the small-N default),
// `rows` runs one Dijkstra per requested source row behind an LRU cache,
// and `implicit` computes tier-tree costs in O(depth) per pair with no
// graph traversal at all. Providers return bit-equal rows by contract, so
// for a fixed topology the printed output is byte-identical across
// providers (CI diffs them) — only the memory/time profile changes:
// `rows`/`implicit` never materialize the n×n matrix, which is what lets
// the sweep reach N = 10k.
//
// Each N is an independent problem (its own topology, model and α grid
// search), so the sweep runs through runtime::sweep: `--jobs 8` fills
// eight cores and prints byte-identical output to `--jobs 1`. Within a
// point, the α grid search is ONE core::BatchAllocator batch (every α a
// lane, bit-identical to serial runs), and the winning lane's result is
// reused for the reported row instead of a re-run.
#include <algorithm>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/allocator.hpp"
#include "core/batch_allocator.hpp"
#include "core/single_file.hpp"
#include "net/cost_cache.hpp"
#include "net/cost_provider.hpp"
#include "net/generators.hpp"
#include "net/hierarchy.hpp"
#include "runtime/sweep.hpp"
#include "util/numeric.hpp"
#include "util/table.hpp"

namespace {

struct ScalingPoint {
  std::size_t n = 0;
  double best_alpha = 0.0;
  std::size_t iterations = 0;
  double cost = 0.0;
};

constexpr std::size_t kMinNodes = 4;

std::size_t fat_tree_fanout(std::size_t target) {
  // Smallest k whose depth-3 complete tree (1 + k + k² + k³ nodes)
  // reaches the target size.
  std::size_t k = 1;
  while (1 + k + k * k + k * k * k < target) {
    ++k;
  }
  return k;
}

std::size_t geo_racks(std::size_t target) {
  // 4 regions × 4 DCs: N = 1 + 4 + 16 + 16·racks = 21 + 16·racks.
  return target > 21 + 16 ? (target - 21 + 15) / 16 : 1;
}

/// Network size a target ladder entry actually lands on (structured
/// generators cannot hit every N exactly).
std::size_t actual_nodes(const std::string& topology, std::size_t target) {
  if (topology == "fat-tree") {
    const std::size_t k = fat_tree_fanout(target);
    return 1 + k + k * k + k * k * k;
  }
  if (topology == "geo-tiers") {
    return 21 + 16 * geo_racks(target);
  }
  return target;  // complete and ring hit the target exactly
}

/// The explicit graph plus, for tier trees, the implicit spec.
struct NetworkCase {
  fap::net::Topology topology;
  fap::net::HierarchySpec spec;  // empty fanout unless tiered
  bool tiered = false;
};

NetworkCase build_network(const std::string& topology, std::size_t target) {
  using namespace fap;
  if (topology == "ring") {
    return NetworkCase{net::make_ring(target, 1.0), {}, false};
  }
  if (topology == "fat-tree") {
    net::TieredNetwork tiered = net::make_fat_tree(fat_tree_fanout(target));
    return NetworkCase{std::move(tiered.topology), std::move(tiered.spec),
                       true};
  }
  if (topology == "geo-tiers") {
    net::TieredNetwork tiered = net::make_geo_tiers(geo_racks(target), 4, 4);
    return NetworkCase{std::move(tiered.topology), std::move(tiered.spec),
                       true};
  }
  return NetworkCase{net::make_complete(target, 1.0), {}, false};
}

fap::core::SingleFileModel build_model(const NetworkCase& network,
                                       const std::string& provider,
                                       std::size_t row_cache,
                                       fap::net::CostMatrixCache& cache) {
  using namespace fap;
  const std::size_t n = network.topology.node_count();
  const core::Workload workload = core::Workload::uniform(n, 1.0);
  if (provider == "rows") {
    return core::SingleFileModel(core::make_problem(
        std::make_shared<net::RowCostProvider>(network.topology, row_cache),
        workload, /*mu=*/1.5, /*k=*/1.0));
  }
  if (provider == "implicit") {
    return core::SingleFileModel(core::make_problem(
        std::make_shared<net::HierarchicalCostProvider>(network.spec,
                                                        row_cache),
        workload, /*mu=*/1.5, /*k=*/1.0));
  }
  return core::SingleFileModel(core::make_problem(
      network.topology, workload, /*mu=*/1.5, /*k=*/1.0, cache));
}

ScalingPoint measure_scaling_point(const fap::core::SingleFileModel& model,
                                   std::size_t alpha_points) {
  using namespace fap;
  const std::size_t n = model.dimension();
  std::vector<double> start(n, 0.0);
  start[0] = 0.8;
  start[1] = 0.1;
  start[2] = 0.1;

  // Best α per N via a grid search (the paper: "using the best possible
  // α"), run as one SoA batch: one lane per α candidate. A lane that
  // fails to converge gets a large penalty, keeping the search away from
  // divergent settings. grid_select applies grid_minimize's exact tie
  // rule, so the chosen α is the one the serial search would pick — and
  // its lane's result IS the serial rerun's result (bit-identical), so
  // the reported row reuses it directly.
  const std::vector<double> alphas = util::grid_points(0.05, 1.2, alpha_points);
  core::BatchAllocator batch;
  for (const double alpha : alphas) {
    core::AllocatorOptions options;
    options.alpha = alpha;
    options.epsilon = 1e-3;
    options.max_iterations = 20000;
    batch.submit(model, options, start);
  }
  const std::vector<core::BatchRunResult> runs = batch.run_all();
  std::vector<double> scores;
  scores.reserve(runs.size());
  for (const core::BatchRunResult& run : runs) {
    scores.push_back(run.converged ? static_cast<double>(run.iterations)
                                   : 1e9);
  }
  const util::GridMinimum best = util::grid_select(alphas, scores);
  const core::BatchRunResult& chosen = runs[best.index];
  return {n, best.x, chosen.iterations, chosen.cost};
}

}  // namespace

int main(int argc, char** argv) {
  // The paper's figure stops at N = 20; --max-n extends the sweep so the
  // flatness claim (and the optimized kernels) can be exercised at larger
  // networks, e.g. --max-n 256 (complete) or --topology geo-tiers
  // --provider implicit --max-n 10000.
  std::uint64_t max_nodes = 20;
  std::uint64_t alpha_points = 47;
  std::uint64_t row_cache = fap::net::RowCostProvider::kDefaultCapacity;
  std::string topology = "complete";
  std::string provider = "dense";
  fap::bench::register_numeric_flag(
      "--max-n", "largest network size N to sweep (default 20)", &max_nodes);
  fap::bench::register_numeric_flag(
      "--alphas", "alpha grid points per N (default 47)", &alpha_points);
  fap::bench::register_numeric_flag(
      "--row-cache", "cached rows per provider (default 64)", &row_cache);
  fap::bench::register_string_flag(
      "--topology", "complete | ring | fat-tree | geo-tiers", &topology);
  fap::bench::register_string_flag(
      "--provider", "dense | rows | implicit", &provider);
  fap::bench::init(argc, argv);
  using namespace fap;

  if (topology != "complete" && topology != "ring" &&
      topology != "fat-tree" && topology != "geo-tiers") {
    std::cerr << argv[0] << ": unknown --topology '" << topology << "'\n";
    return 2;
  }
  if (provider != "dense" && provider != "rows" && provider != "implicit") {
    std::cerr << argv[0] << ": unknown --provider '" << provider << "'\n";
    return 2;
  }
  const bool tiered = topology == "fat-tree" || topology == "geo-tiers";
  if (provider == "implicit" && !tiered) {
    std::cerr << argv[0]
              << ": --provider implicit needs a tier-tree topology "
                 "(fat-tree or geo-tiers)\n";
    return 2;
  }
  if (max_nodes < kMinNodes) {
    std::cerr << argv[0] << ": --max-n must be at least " << kMinNodes
              << "\n";
    return 2;
  }
  if (alpha_points < 1) {
    std::cerr << argv[0] << ": --alphas must be at least 1\n";
    return 2;
  }

  bench::print_header("Figure 6",
                      "iterations (best alpha) vs number of nodes");

  // The paper's complete-network mode sweeps every N (the figure's x
  // axis); the structured large-N modes walk a power-of-two target ladder
  // instead — the point there is scaling, and the generators cannot hit
  // every N exactly anyway. Targets that land on the same actual size are
  // deduplicated.
  const auto kMaxNodes = static_cast<std::size_t>(max_nodes);
  std::vector<std::size_t> targets;
  if (topology == "complete") {
    for (std::size_t n = kMinNodes; n <= kMaxNodes; ++n) {
      targets.push_back(n);
    }
  } else {
    std::size_t last_actual = 0;
    for (std::size_t t = kMinNodes; t < kMaxNodes; t *= 2) {
      if (actual_nodes(topology, t) != last_actual) {
        targets.push_back(t);
        last_actual = actual_nodes(topology, t);
      }
    }
    if (actual_nodes(topology, kMaxNodes) != last_actual) {
      targets.push_back(kMaxNodes);
    }
  }

  net::CostMatrixCache cache;
  const std::size_t cache_rows = std::max<std::uint64_t>(1, row_cache);
  const std::vector<ScalingPoint> points = runtime::sweep(
      targets.size(), bench::sweep_options("fig6_scaling"),
      [&](std::size_t index, std::uint64_t /*seed*/) {
        const NetworkCase network = build_network(topology, targets[index]);
        const core::SingleFileModel model =
            build_model(network, provider, cache_rows, cache);
        return measure_scaling_point(model, alpha_points);
      });

  util::Table table({"N", "best alpha", "iterations", "final cost",
                     "optimal x_i (=1/N)"},
                    4);
  std::vector<double> iteration_series;
  for (const ScalingPoint& point : points) {
    table.add_row({static_cast<long long>(point.n), point.best_alpha,
                   static_cast<long long>(point.iterations), point.cost,
                   1.0 / static_cast<double>(point.n)});
    iteration_series.push_back(static_cast<double>(point.iterations));
  }
  std::cout << bench::render(table) << '\n';
  std::cout << util::ascii_chart(iteration_series, 34, 8,
                                 "iterations (x: N = 4.." +
                                     std::to_string(kMaxNodes) + ")")
            << '\n';
  std::cout << "Flatness check: max/min iterations across N = "
            << *std::max_element(iteration_series.begin(),
                                 iteration_series.end()) /
                   std::max(1.0, *std::min_element(iteration_series.begin(),
                                                   iteration_series.end()))
            << "x (paper: ~flat)\n";
  return 0;
}
