// Figure 9: decreasing α on the oscillating multicopy ring. Two profiles
// with α = 0.1 and α = 0.05, plus the paper's modified termination rule:
// decay α when oscillation is observed and halt on a small successive-cost
// difference.
//
// Paper: "decreasing this parameter causes the oscillations to be
// smaller"; the decay rule turns a non-converging oscillation into a halt.
#include <iostream>

#include "bench_common.hpp"
#include "core/multicopy_allocator.hpp"
#include "core/ring_model.hpp"
#include "runtime/sweep.hpp"
#include "util/table.hpp"

namespace {

fap::core::MultiCopyResult run_with(const fap::core::RingModel& model,
                                    double alpha, bool enable_decay,
                                    std::size_t max_iterations) {
  fap::core::MultiCopyOptions options;
  options.alpha = alpha;
  options.decay_interval = enable_decay ? 20 : 1000000;
  options.alpha_decay = 0.5;
  options.cost_epsilon = enable_decay ? 1e-7 : 1e-12;
  options.max_iterations = max_iterations;
  options.record_trace = true;
  const fap::core::MultiCopyAllocator allocator(model, options);
  return allocator.run({0.9, 0.5, 0.35, 0.25});
}

double tail_amplitude(const fap::core::MultiCopyResult& result) {
  double lo = 1e300;
  double hi = -1e300;
  for (std::size_t t = result.trace.size() / 2; t < result.trace.size();
       ++t) {
    lo = std::min(lo, result.trace[t].cost);
    hi = std::max(hi, result.trace[t].cost);
  }
  return hi - lo;
}

}  // namespace

int main(int argc, char** argv) {
  fap::bench::init(argc, argv);
  using namespace fap;
  bench::print_header("Figure 9", "decreasing alpha shrinks oscillations");

  const core::RingModel model{
      core::make_paper_ring_problem({4.0, 1.0, 1.0, 1.0})};

  // Three independent runs (two raw profiles + the decayed variant used
  // at the end): fan them out through the sweep runner (`--jobs 3` runs
  // them concurrently, byte-identical output to `--jobs 1`).
  struct RunConfig {
    double alpha;
    bool decay;
    std::size_t max_iterations;
  };
  const std::vector<RunConfig> configs{
      {0.10, false, 120}, {0.05, false, 120}, {0.10, true, 5000}};
  const std::vector<core::MultiCopyResult> runs = runtime::sweep(
      configs.size(), bench::sweep_options("fig9_alpha_decay"),
      [&model, &configs](std::size_t index, std::uint64_t /*seed*/) {
        const RunConfig& config = configs[index];
        return run_with(model, config.alpha, config.decay,
                        config.max_iterations);
      });
  const core::MultiCopyResult& big = runs[0];
  const core::MultiCopyResult& small = runs[1];

  util::Table series({"iter", "cost alpha=0.10", "cost alpha=0.05"}, 6);
  const std::size_t longest = std::max(big.trace.size(), small.trace.size());
  for (std::size_t t = 0; t < longest; ++t) {
    series.add_row({static_cast<long long>(t),
                    big.trace[std::min(t, big.trace.size() - 1)].cost,
                    small.trace[std::min(t, small.trace.size() - 1)].cost});
  }
  std::cout << bench::render(series) << '\n';

  util::Table summary({"alpha", "tail oscillation amplitude",
                       "cost increases", "best cost"},
                      6);
  summary.add_row({0.10, tail_amplitude(big),
                   static_cast<long long>(big.oscillation_count),
                   big.best_cost});
  summary.add_row({0.05, tail_amplitude(small),
                   static_cast<long long>(small.oscillation_count),
                   small.best_cost});
  std::cout << bench::render(summary) << '\n';

  // The modified termination rule (Section 7.3): α decay + ΔC halting.
  const core::MultiCopyResult& decayed = runs[2];
  std::cout << "with alpha decay: converged="
            << (decayed.converged ? "yes" : "no")
            << " after " << decayed.iterations
            << " iterations, final alpha=" << decayed.final_alpha
            << ", best cost=" << util::format_double(decayed.best_cost, 6)
            << " (lowest-observed-point rule)\n";
  return 0;
}
