// Ablation A12: joint allocation + routing (Section 8.2's integration of
// FAP with "the classic routing problem"). A dumbbell network with a
// single bridge; congestion sensitivity γ swept. The coupled optimizer
// consolidates the file on the heavy-demand side, draining the bridge —
// which the decoupled (γ-blind) allocation leaves congested.
#include <iostream>

#include "bench_common.hpp"
#include "core/joint_routing.hpp"
#include "net/topology.hpp"
#include "util/table.hpp"

namespace {

fap::net::Topology dumbbell() {
  fap::net::Topology topology(6);
  topology.add_edge(0, 1, 1.0);
  topology.add_edge(0, 2, 1.0);
  topology.add_edge(1, 2, 1.0);
  topology.add_edge(3, 4, 1.0);
  topology.add_edge(3, 5, 1.0);
  topology.add_edge(4, 5, 1.0);
  topology.add_edge(2, 3, 1.0);  // the bridge (edge index 6)
  return topology;
}

}  // namespace

int main(int argc, char** argv) {
  fap::bench::init(argc, argv);
  using namespace fap;
  bench::print_header("Ablation A12",
                      "joint file allocation and congestion-aware routing");

  core::JointRoutingProblem problem{dumbbell(),
                                    core::Workload{{0.2, 0.2, 0.2,
                                                    0.1, 0.1, 0.1}},
                                    std::vector<double>(6, 1.5),
                                    /*k=*/0.2,
                                    fap::queueing::DelayModel(),
                                    /*congestion=*/0.0};
  core::JointRoutingOptions options;
  options.allocator.alpha = 0.3;
  options.allocator.epsilon = 1e-6;
  options.allocator.max_iterations = 100000;
  options.max_outer_iterations = 300;
  options.tol = 1e-5;

  util::Table table({"gamma", "outer iters", "cluster-A share",
                     "cluster-B share", "bridge flow", "final cost"},
                    4);
  for (const double gamma : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    problem.congestion_factor = gamma;
    const core::JointRoutingOptimizer optimizer(problem, options);
    const core::JointRoutingResult result =
        optimizer.run(std::vector<double>(6, 1.0 / 6.0));
    const double share_a = result.x[0] + result.x[1] + result.x[2];
    const double share_b = result.x[3] + result.x[4] + result.x[5];
    const std::vector<double> flow = optimizer.link_flows(
        optimizer.effective_topology(result.link_flow), result.x);
    table.add_row({gamma, static_cast<long long>(result.outer_iterations),
                   share_a, share_b, flow[6], result.cost});
  }
  std::cout << bench::render(table) << '\n';
  std::cout
      << "As γ grows, the optimizer consolidates the file on the heavy\n"
         "cluster's side of the bridge: the minority cluster's share falls\n"
         "to zero and the bridge flow drops to only B's outbound accesses.\n"
         "Final costs are computed under the congestion-adjusted routes, so\n"
         "they are comparable only within a row's γ.\n";
  return 0;
}
