// Figure 3: convergence profiles — cost of the current file allocation as
// a function of the iteration number, for four step sizes.
//
// Setup (Section 6): four-node ring, unit link costs, μ = 1.5, k = 1,
// λ = 1 split evenly, ε = 0.001, starting allocation (0.8, 0.1, 0.1, 0.0).
// Paper: 4 iterations for α = 0.67, 10 for α = 0.30, 20 for α = 0.19 and
// 51 for α = 0.08; all converge to (0.25, 0.25, 0.25, 0.25); the rapid
// convergence phase has roughly the same length for every α.
#include <iostream>

#include "bench_common.hpp"
#include "core/allocator.hpp"
#include "core/single_file.hpp"
#include "runtime/sweep.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  fap::bench::init(argc, argv);
  using namespace fap;
  bench::print_header("Figure 3", "convergence profiles for several alpha");

  const core::SingleFileModel model(core::make_paper_ring_problem());
  const std::vector<double> start{0.8, 0.1, 0.1, 0.0};
  const std::vector<double> alphas{0.67, 0.30, 0.19, 0.08};
  const std::vector<std::size_t> paper_iterations{4, 10, 20, 51};

  // Each profile is an independent traced run; fan them out through the
  // sweep runner (`--jobs 4` fills four cores, output byte-identical to
  // `--jobs 1`).
  const std::vector<core::AllocationResult> results = runtime::sweep(
      alphas.size(), bench::sweep_options("fig3_convergence"),
      [&](std::size_t index, std::uint64_t /*seed*/) {
        core::AllocatorOptions options;
        options.alpha = alphas[index];
        options.epsilon = 1e-3;
        options.record_trace = true;
        const core::ResourceDirectedAllocator allocator(model, options);
        return allocator.run(start);
      });

  // The figure's series: cost per iteration for every α.
  std::size_t longest = 0;
  for (const auto& result : results) {
    longest = std::max(longest, result.trace.size());
  }
  util::Table series({"iter", "cost a=0.67", "cost a=0.30", "cost a=0.19",
                      "cost a=0.08"},
                     6);
  for (std::size_t t = 0; t < longest; ++t) {
    std::vector<util::Cell> row{static_cast<long long>(t)};
    for (const auto& result : results) {
      const std::size_t idx = std::min(t, result.trace.size() - 1);
      row.emplace_back(result.trace[idx].cost);
    }
    series.add_row(std::move(row));
  }
  std::cout << bench::render(series) << '\n';

  util::Table summary({"alpha", "iterations", "paper", "final cost",
                       "final allocation"},
                      4);
  for (std::size_t a = 0; a < alphas.size(); ++a) {
    std::string allocation = "(";
    for (std::size_t i = 0; i < results[a].x.size(); ++i) {
      allocation += util::format_double(results[a].x[i], 3);
      allocation += (i + 1 < results[a].x.size() ? ", " : ")");
    }
    summary.add_row({alphas[a], static_cast<long long>(results[a].iterations),
                     static_cast<long long>(paper_iterations[a]),
                     results[a].cost, allocation});
  }
  std::cout << bench::render(summary) << '\n';

  std::cout << util::ascii_chart(bench::cost_series(results[3].trace), 60, 10,
                                 "cost (alpha = 0.08)")
            << '\n';

  // The "rapid convergence phase" observation: iterations to get within 5%
  // of the optimal cost are nearly α-independent.
  util::Table rapid({"alpha", "iters to within 5% of optimum"}, 2);
  for (std::size_t a = 0; a < alphas.size(); ++a) {
    std::size_t within = results[a].trace.size();
    for (std::size_t t = 0; t < results[a].trace.size(); ++t) {
      if (results[a].trace[t].cost <= 1.05 * results[a].cost) {
        within = t;
        break;
      }
    }
    rapid.add_row({alphas[a], static_cast<long long>(within)});
  }
  std::cout << bench::render(rapid);
  return 0;
}
