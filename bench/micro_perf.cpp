// Microbenchmarks (google-benchmark): gradient evaluation, one algorithm
// iteration, all-pairs shortest paths, ring weight computation, and DES
// throughput — the building blocks whose costs determine how cheaply the
// algorithm can run "in the background" (Section 5.3).
#include <benchmark/benchmark.h>

#include <limits>
#include <map>

#include "baselines/branch_and_bound.hpp"
#include "catalog/catalog_solver.hpp"
#include "catalog/catalog_spec.hpp"
#include "core/allocator.hpp"
#include "core/batch_allocator.hpp"
#include "core/batch_kernels.hpp"
#include "core/simd_dispatch.hpp"
#include "core/ring_model.hpp"
#include "core/single_file.hpp"
#include "core/trace_export.hpp"
#include "fs/fragment_map.hpp"
#include "fs/popularity.hpp"
#include "fs/weighted_assignment.hpp"
#include "net/cost_cache.hpp"
#include "net/cost_provider.hpp"
#include "net/generators.hpp"
#include "net/hierarchy.hpp"
#include "net/shortest_paths.hpp"
#include "runtime/sweep.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/trace_server.hpp"
#include "sim/des.hpp"
#include "sim/des_system.hpp"
#include "util/rng.hpp"

namespace {

using namespace fap;

core::SingleFileModel make_model(std::size_t n) {
  const net::Topology topology = net::make_complete(n, 1.0);
  return core::SingleFileModel(core::make_problem(
      topology, core::Workload::uniform(n, 1.0), /*mu=*/1.5, /*k=*/1.0));
}

// Model setup runs an O(n³) all-pairs pass on a complete topology, and
// google-benchmark re-enters each benchmark body while calibrating the
// iteration count — cache the models so the n = 1000 setup happens once.
const core::SingleFileModel& cached_model(std::size_t n) {
  static std::map<std::size_t, core::SingleFileModel> models;
  auto it = models.find(n);
  if (it == models.end()) {
    it = models.emplace(n, make_model(n)).first;
  }
  return it->second;
}

void BM_GradientEvaluation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const core::SingleFileModel& model = cached_model(n);
  const std::vector<double> x(n, 1.0 / static_cast<double>(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.gradient(x));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_GradientEvaluation)->Arg(4)->Arg(20)->Arg(100)->Arg(1000);

void BM_AllocatorStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const core::SingleFileModel& model = cached_model(n);
  core::AllocatorOptions options;
  options.alpha = 0.3;
  const core::ResourceDirectedAllocator allocator(model, options);
  std::vector<double> x(n, 0.0);
  x[0] = 0.8;
  x[1] = 0.2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocator.step(x));
  }
}
BENCHMARK(BM_AllocatorStep)->Arg(4)->Arg(20)->Arg(100)->Arg(1000);

// The active-set procedure in isolation, on an allocation with most nodes
// pinned at the floor — the shape that made the reference procedure's
// re-admission scans quadratic.
void BM_ActiveSet(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const core::SingleFileModel& model = cached_model(n);
  const core::ResourceDirectedAllocator allocator(model, {});
  const core::ConstraintGroup group = model.constraint_groups().front();
  std::vector<double> x(n, 0.0);
  x[0] = 0.8;
  x[1] = 0.2;
  const std::vector<double> du = model.marginal_utilities(x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocator.active_set(group, x, du, 0.3));
  }
}
BENCHMARK(BM_ActiveSet)->Arg(100)->Arg(1000);

// One instance family shared by the batch-vs-serial comparison below:
// lane k descends the n = 16 complete-graph model from a lane-specific
// interior start with a lane-specific step size. epsilon is unattainably
// small, so every lane runs to the 100-iteration cap and items processed
// is exactly lanes * 100 instance-steps on both paths — items/sec is
// directly comparable across BM_BatchAllocatorStep and
// BM_SerialAllocatorStep at the same lane count.
constexpr std::size_t kStepBenchIterations = 100;
constexpr std::size_t kStepBenchNodes = 16;

core::AllocatorOptions step_bench_options(std::size_t lane) {
  core::AllocatorOptions options;
  options.alpha = 0.01 + 0.0002 * static_cast<double>(lane % 50);
  options.epsilon = 1e-300;
  options.max_iterations = kStepBenchIterations;
  return options;
}

std::vector<double> step_bench_start(std::size_t lane) {
  std::vector<double> x(kStepBenchNodes);
  double total = 0.0;
  for (std::size_t i = 0; i < kStepBenchNodes; ++i) {
    x[i] = 1.0 + 0.0125 * static_cast<double>((i * 7 + lane) % kStepBenchNodes);
    total += x[i];
  }
  for (double& v : x) {
    v /= total;
  }
  return x;
}

// The SoA lockstep kernel: submit `lanes` instances, run them to the
// iteration cap as one batch. Construction and submission copies sit
// inside the timing loop — they are part of the price of batching and are
// amortized over lanes * 100 steps, exactly as in the sweep pipeline.
void BM_BatchAllocatorStep(benchmark::State& state) {
  const auto lanes = static_cast<std::size_t>(state.range(0));
  const core::SingleFileModel& model = cached_model(kStepBenchNodes);
  for (auto _ : state) {
    core::BatchAllocator batch(lanes);
    for (std::size_t k = 0; k < lanes; ++k) {
      batch.submit(model, step_bench_options(k), step_bench_start(k));
    }
    benchmark::DoNotOptimize(batch.run_all());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(lanes) *
                          static_cast<int64_t>(kStepBenchIterations));
}
BENCHMARK(BM_BatchAllocatorStep)->Arg(8)->Arg(64)->Arg(256);

// The serial mirror: the same instances, one ResourceDirectedAllocator
// run() each (run() is the production serial path — an in-place
// step_into loop). Compare items/sec against BM_BatchAllocatorStep at
// equal lane count for the aggregate speedup of batching.
void BM_SerialAllocatorStep(benchmark::State& state) {
  const auto lanes = static_cast<std::size_t>(state.range(0));
  const core::SingleFileModel& model = cached_model(kStepBenchNodes);
  for (auto _ : state) {
    for (std::size_t k = 0; k < lanes; ++k) {
      const core::ResourceDirectedAllocator allocator(model,
                                                      step_bench_options(k));
      benchmark::DoNotOptimize(allocator.run(step_bench_start(k)));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(lanes) *
                          static_cast<int64_t>(kStepBenchIterations));
}
BENCHMARK(BM_SerialAllocatorStep)->Arg(8)->Arg(64)->Arg(256);

// --- Isolated kernel benchmarks: the dense SoA passes without the
// lockstep driver around them, so kernel-level regressions (or SIMD
// wins) are visible separately from submit/retire bookkeeping. The
// synthetic plane mirrors the BM_BatchAllocatorStep population: n = 16
// single-server rows, per-lane step sizes, fixed step rule.
core::detail::BatchSoA make_kernel_bench_soa(std::size_t lanes) {
  core::detail::BatchSoA soa;
  const std::size_t stride = core::detail::round_up_stride(lanes);
  soa.stride = stride;
  soa.live = lanes;
  soa.node_cap = kStepBenchNodes;
  soa.n_min = kStepBenchNodes;
  soa.n_max = kStepBenchNodes;
  soa.any_dyn = false;
  const std::size_t cells = kStepBenchNodes * stride;
  soa.x.assign(cells, 0.0);
  soa.xn.assign(cells, 0.0);
  soa.du.assign(cells, 0.0);
  soa.d2c.assign(cells, 0.0);
  soa.c.assign(cells, 0.0);
  soa.mu.assign(cells, 1.0);
  soa.imu.assign(cells, 1.0);
  soa.cap.assign(cells, std::numeric_limits<double>::infinity());
  for (util::AlignedVector* v :
       {&soa.lane_tr, &soa.lane_k, &soa.lane_scv, &soa.lane_rho,
        &soa.lane_nd, &soa.lane_dynd, &soa.lane_alpha_opt,
        &soa.lane_safety, &soa.sum_full, &soa.avg_full, &soa.alpha,
        &soa.lo, &soa.hi, &soa.theta}) {
    v->assign(stride, 0.0);
  }
  soa.pinc.assign(stride, 0u);
  soa.viol.assign(stride, 0u);
  for (std::size_t k = 0; k < lanes; ++k) {
    const std::vector<double> start = step_bench_start(k);
    for (std::size_t j = 0; j < kStepBenchNodes; ++j) {
      soa.x[j * stride + k] = start[j];
      soa.c[j * stride + k] = 0.5 + 0.1 * static_cast<double>(j % 5);
      soa.mu[j * stride + k] = 1.5;
      soa.imu[j * stride + k] = 1.0 / 1.5;
    }
    soa.lane_tr[k] = 1.0;
    soa.lane_k[k] = 1.0;
    soa.lane_scv[k] = 1.0;
    soa.lane_rho[k] = 1.0;
    soa.lane_nd[k] = static_cast<double>(kStepBenchNodes);
    soa.lane_alpha_opt[k] = step_bench_options(k).alpha;
    soa.lane_safety[k] = 1.0;
  }
  return soa;
}

// One delay-law + marginal-utility row sweep (the division-heavy pass).
// items = lane-cells evaluated.
void kernel_gradient_bench(benchmark::State& state,
                           const core::detail::BatchKernels& kernels) {
  const auto lanes = static_cast<std::size_t>(state.range(0));
  core::detail::BatchSoA soa = make_kernel_bench_soa(lanes);
  for (auto _ : state) {
    kernels.derivative_rows(soa, /*with_second=*/false);
    benchmark::DoNotOptimize(soa.du.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(lanes) *
                          static_cast<int64_t>(kStepBenchNodes));
}

// The census + θ + clamp-apply passes (the step's boundary logic).
// items = lane-steps applied.
void kernel_step_bench(benchmark::State& state,
                       const core::detail::BatchKernels& kernels) {
  const auto lanes = static_cast<std::size_t>(state.range(0));
  core::detail::BatchSoA soa = make_kernel_bench_soa(lanes);
  kernels.derivative_rows(soa, /*with_second=*/false);
  kernels.lane_sums(soa);
  kernels.step_sizes(soa);
  for (auto _ : state) {
    kernels.census_theta(soa);
    kernels.apply_step(soa);
    benchmark::DoNotOptimize(soa.xn.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(lanes));
}

void BM_BatchKernelGradient(benchmark::State& state) {
  kernel_gradient_bench(state, core::detail::select_batch_kernels());
}
BENCHMARK(BM_BatchKernelGradient)->Arg(64)->Arg(256);

void BM_BatchKernelGradientScalar(benchmark::State& state) {
  kernel_gradient_bench(state, core::detail::scalar_batch_kernels());
}
BENCHMARK(BM_BatchKernelGradientScalar)->Arg(64)->Arg(256);

void BM_BatchKernelStep(benchmark::State& state) {
  kernel_step_bench(state, core::detail::select_batch_kernels());
}
BENCHMARK(BM_BatchKernelStep)->Arg(64)->Arg(256);

void BM_BatchKernelStepScalar(benchmark::State& state) {
  kernel_step_bench(state, core::detail::scalar_batch_kernels());
}
BENCHMARK(BM_BatchKernelStepScalar)->Arg(64)->Arg(256);

void BM_FullConvergence(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const core::SingleFileModel& model = cached_model(n);
  core::AllocatorOptions options;
  options.alpha = 0.3;
  options.epsilon = 1e-3;
  const core::ResourceDirectedAllocator allocator(model, options);
  std::vector<double> start(n, 0.0);
  start[0] = 0.8;
  start[1] = 0.1;
  start[2] = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocator.run(start));
  }
}
BENCHMARK(BM_FullConvergence)->Arg(4)->Arg(20)->Arg(100);

void BM_AllPairsShortestPaths(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  const net::Topology topology = net::make_random_metric(n, 4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::all_pairs_shortest_paths(topology));
  }
}
BENCHMARK(BM_AllPairsShortestPaths)->Arg(20)->Arg(100)->Arg(300)->Arg(1000);

// Pool-parallel APSP (byte-identical rows, fanned over workers). The pool
// is built outside the timing loop: the steady-state cost is what matters
// for the pipeline, which reuses one pool across a whole sweep.
void BM_AllPairsShortestPathsParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  const net::Topology topology = net::make_random_metric(n, 4, rng);
  runtime::ThreadPool pool(runtime::ThreadPool::hardware_jobs());
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::all_pairs_shortest_paths(topology, pool));
  }
}
BENCHMARK(BM_AllPairsShortestPathsParallel)->Arg(300)->Arg(1000);

// The cost-matrix cache hit path: content-hash an n = 100 topology and
// return the shared matrix. Compare against BM_AllPairsShortestPaths/100
// — the miss cost the hit replaces for every sweep task after the first.
void BM_CostMatrixCache(benchmark::State& state) {
  util::Rng rng(7);
  const net::Topology topology = net::make_random_metric(100, 4, rng);
  net::CostMatrixCache cache;
  benchmark::DoNotOptimize(cache.get(topology));  // prime: the one miss
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.get(topology));
  }
}
BENCHMARK(BM_CostMatrixCache);

// The row-provider miss path: every request asks for a new source row
// (stride 7919 is coprime to n, so the walk cycles through all sources
// and a capacity-8 LRU never hits) — each iteration pays one CSR
// Dijkstra plus the cache bookkeeping. Compare n× this against
// BM_AllPairsShortestPaths at the same n for the full-matrix cost the
// on-demand path avoids.
void BM_RowProvider(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  const net::Topology topology = net::make_random_metric(n, 4, rng);
  const net::RowCostProvider provider(topology, /*row_cache_capacity=*/8);
  std::size_t source = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(provider.row(source));
    source = (source + 7919) % n;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_RowProvider)->Arg(1000)->Arg(10000);

// The implicit tier-tree pair cost: O(depth) arithmetic per c_ij with no
// graph in sight. geo_tiers(255, 4, 4) is the catalog_scale N=4101
// acceptance network; the id walk covers sources and destinations across
// all four levels. items = pair costs computed.
void BM_HierarchicalCost(benchmark::State& state) {
  const net::TieredNetwork tiered = net::make_geo_tiers(255, 4, 4);
  const net::HierarchicalCostProvider provider(tiered.spec);
  const std::size_t n = provider.node_count();
  std::size_t i = 0;
  std::size_t j = n / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(provider.cost(i, j));
    i = (i + 7919) % n;
    j = (j + 104729) % n;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HierarchicalCost);

void BM_RingGradient(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> costs(n, 1.0);
  core::RingProblem problem{net::VirtualRing(costs),
                            2.0,
                            std::vector<double>(n, 1.0 / n),
                            std::vector<double>(n, 1.5),
                            1.0,
                            queueing::DelayModel::mm1(0.95),
                            0.0};
  const core::RingModel model(problem);
  const std::vector<double> x(n, 2.0 / static_cast<double>(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.gradient(x));
  }
}
BENCHMARK(BM_RingGradient)->Arg(4)->Arg(20)->Arg(100);

void BM_DesThroughput(benchmark::State& state) {
  const core::SingleFileModel model(core::make_paper_ring_problem());
  sim::DesConfig config =
      sim::des_config_for(model, {0.25, 0.25, 0.25, 0.25});
  config.measured_accesses = static_cast<std::size_t>(state.range(0));
  config.warmup_time = 10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_des(config));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DesThroughput)->Arg(10000)->Arg(100000);

// A heavily loaded DES config: every node generates at unit rate, routing
// spreads the traffic over all n holders, and per-node service rates are
// sized so each server runs at utilization rho — the regime where queueing
// (not idling) dominates and the event loop runs flat out.
sim::DesConfig loaded_des_config(std::size_t n, double rho) {
  util::Rng rng(29);
  sim::DesConfig config;
  config.lambda.assign(n, 1.0);
  // Mildly skewed routing row (shared by every source) so the alias
  // sampler walks a non-trivial table.
  std::vector<double> row(n);
  double total = 0.0;
  for (double& w : row) {
    w = rng.uniform(0.5, 1.5);
    total += w;
  }
  for (double& w : row) {
    w /= total;
  }
  config.routing.assign(n, row);
  // Node i receives n * row[i] accesses per unit time; pin rho everywhere.
  config.mu.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    config.mu[i] = static_cast<double>(n) * row[i] / rho;
  }
  util::Rng topology_rng(7);
  const net::Topology topology =
      n == 4 ? net::make_ring(n, 1.0)
             : net::make_random_metric(n, 4, topology_rng);
  const net::CostMatrix costs = net::all_pairs_shortest_paths(topology);
  config.comm_cost.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      config.comm_cost[j][i] = costs(j, i);
    }
  }
  return config;
}

// The DES event loop in steady state: one long-lived DesSystem advanced in
// completion chunks, warmup and construction outside the timing loop. Arg
// is the node count: 4 = paper-ring scale, 64 = a random-metric network
// where routing rows and server state stop fitting in a handful of cache
// lines. items/sec is measured completions/sec (each completion is >= 2
// processed events: its generate + its departure).
void BM_DesHotLoop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::DesSystem system(loaded_des_config(n, /*rho=*/0.9));
  system.advance_until(200.0);  // past the fill-up transient
  system.reset_window();
  constexpr std::size_t kChunk = 10000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.advance_completions(kChunk));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kChunk));
}
BENCHMARK(BM_DesHotLoop)->Arg(4)->Arg(64);

// The replication path run_des_replications takes (runtime::sweep, serial):
// R independent warm-up-and-measure runs of one configuration. Exercises
// whole-run engine setup/reuse rather than the steady-state loop alone.
void BM_DesReplicationBatch(benchmark::State& state) {
  sim::DesConfig config = loaded_des_config(4, /*rho=*/0.9);
  config.warmup_time = 50.0;
  config.measured_accesses = 20000;
  constexpr std::size_t kReplications = 4;
  runtime::SweepOptions options;
  options.base_seed = 20260806;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::run_des_replications(config, kReplications, options));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kReplications) *
                          static_cast<int64_t>(config.measured_accesses));
}
BENCHMARK(BM_DesReplicationBatch);

// Trace generation alone: the open-loop workload source serve_trace
// drives 10M+ requests through. Drift is set so the alias table rebuilds
// on a realistic cadence (a few records of rotation per epoch batch).
// items/sec is generated requests/sec — the ceiling on serving
// throughput that is pure workload synthesis.
void BM_TraceGen(benchmark::State& state) {
  const auto records = static_cast<std::size_t>(state.range(0));
  serve::TraceWorkload workload;
  workload.records = records;
  workload.total_rate = 9.6;
  workload.zipf_s = 0.9;
  workload.drift_rate = 0.001;
  workload.update_fraction = 0.15;
  workload.epoch_requests = 8192;
  workload.seed = 20260809;
  serve::TraceGenerator generator(workload, /*node_count=*/16);
  std::size_t produced = 0;
  for (auto _ : state) {
    const std::vector<serve::TraceRequest>& epoch =
        generator.next_epoch(workload.epoch_requests);
    benchmark::DoNotOptimize(epoch.data());
    produced += epoch.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(produced));
}
BENCHMARK(BM_TraceGen)->Arg(5000)->Arg(200000);

// End-to-end trace serving at the CI smoke scale (Experiment A18's
// pipeline in miniature): generator -> DES injection -> per-window
// estimation, with the arg selecting the policy (0 = static, 1 = online
// with re-solves + live migration). items/sec is served requests/sec.
void BM_ServeTrace(benchmark::State& state) {
  const net::Topology topology = net::make_ring(4);
  serve::TraceWorkload workload;
  workload.records = 5000;
  workload.total_rate = 2.4;  // 60% of 4 nodes at mu = 1
  workload.zipf_s = 0.9;
  workload.update_fraction = 0.15;
  workload.epoch_requests = 8192;
  workload.seed = 20260809;
  const double window_time = 2.0 * 8192.0 / workload.total_rate;
  workload.drift_rate = 2.0 / window_time;
  serve::TraceServeOptions options;
  options.mode = state.range(0) == 0 ? serve::ServeMode::kStatic
                                     : serve::ServeMode::kOnline;
  options.estimation_epochs = 2;
  options.hysteresis = 0.05;
  constexpr std::size_t kRequests = 100000;
  for (auto _ : state) {
    serve::TraceServer server(topology, workload, options);
    benchmark::DoNotOptimize(server.serve(kRequests));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kRequests));
}
BENCHMARK(BM_ServeTrace)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_FragmentMapLookup(benchmark::State& state) {
  const auto records = static_cast<std::size_t>(state.range(0));
  std::vector<double> x(32, 1.0 / 32.0);
  const fs::FragmentMap map = fs::FragmentMap::from_allocation(records, x);
  std::size_t record = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.node_of(record));
    record = (record + 7919) % records;
  }
}
BENCHMARK(BM_FragmentMapLookup)->Arg(10000)->Arg(1000000);

void BM_ZipfPacking(benchmark::State& state) {
  const auto records = static_cast<std::size_t>(state.range(0));
  const std::vector<double> popularity = fs::zipf_popularity(records, 1.1);
  const std::vector<double> targets{0.4, 0.3, 0.2, 0.1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(fs::pack_records(popularity, targets));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(records));
}
BENCHMARK(BM_ZipfPacking)->Arg(1000)->Arg(50000);

void BM_BranchAndBound(benchmark::State& state) {
  const auto files = static_cast<std::size_t>(state.range(0));
  util::Rng rng(11);
  const net::Topology topology = net::make_random_metric(8, 2, rng);
  core::MultiFileProblem problem{net::all_pairs_shortest_paths(topology),
                                 {},
                                 {},
                                 1.0,
                                 queueing::DelayModel()};
  double total = 0.0;
  for (std::size_t f = 0; f < files; ++f) {
    std::vector<double> lambda(8, 0.0);
    for (double& rate : lambda) {
      rate = rng.uniform(0.01, 0.05);
      total += rate;
    }
    problem.per_file_lambda.push_back(std::move(lambda));
  }
  problem.mu.assign(8, total * 1.5);
  const core::MultiFileModel model(problem);
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::best_integral_multi_bnb(model));
  }
}
BENCHMARK(BM_BranchAndBound)->Arg(4)->Arg(6)->Arg(8);

void BM_TraceJsonExport(benchmark::State& state) {
  const core::SingleFileModel model = make_model(20);
  core::AllocatorOptions options;
  options.alpha = 0.1;
  options.epsilon = 1e-6;
  options.record_trace = true;
  const core::ResourceDirectedAllocator allocator(model, options);
  std::vector<double> start(20, 0.0);
  start[0] = 1.0;
  const core::AllocationResult result = allocator.run(start);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::result_to_json(result));
  }
}
BENCHMARK(BM_TraceJsonExport);

// Price-decomposed catalog allocation end to end (Experiment A16's inner
// engine): K objects over a 24-node network with moderate slack, so the
// dual loop settles in one round and the measurement tracks the
// per-object decomposition cost rather than tâtonnement behavior.
void BM_CatalogSolve(benchmark::State& state) {
  const auto objects = static_cast<std::size_t>(state.range(0));
  static std::map<std::size_t, catalog::CatalogSpec> specs;
  auto it = specs.find(objects);
  if (it == specs.end()) {
    catalog::SyntheticCatalogOptions synth;
    synth.objects = objects;
    synth.nodes = 24;
    synth.headroom = 0.5;
    synth.zipf_s = 0.9;
    it = specs.emplace(objects, catalog::make_synthetic_catalog(synth, 7))
             .first;
  }
  const catalog::CatalogSolver solver(it->second, catalog::CatalogOptions{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(objects));
}
BENCHMARK(BM_CatalogSolve)
    ->Arg(1000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Expanded BENCHMARK_MAIN() so the JSON context records THIS binary's
// build type and the SIMD level dispatch resolved at startup. The
// library's own "library_build_type" context field describes how
// libbenchmark was built (the system package reports "debug"), which is
// useless for deciding whether a capture is comparable —
// scripts/perf_check.py reads fap_build_type instead.
int main(int argc, char** argv) {
#if defined(NDEBUG)
  benchmark::AddCustomContext("fap_build_type", "release");
#else
  benchmark::AddCustomContext("fap_build_type", "debug");
#endif
  benchmark::AddCustomContext(
      "fap_simd_level",
      fap::core::simd_level_name(fap::core::active_simd_level()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
