// Ablation A8: the optimal number of copies (Section 8.2: "how many
// copies are optimal for the system? ... the cost of storage and copy
// maintenance will affect the optimal number of copies"). Sweep m on a
// six-node virtual ring under three storage-cost regimes.
#include <iostream>

#include "bench_common.hpp"
#include "core/copy_count.hpp"
#include "core/ring_model.hpp"
#include "net/virtual_ring.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  fap::bench::init(argc, argv);
  using namespace fap;
  bench::print_header("Ablation A8", "optimal number of copies m*");

  // Six-node ring with one long (expensive) arc, uneven demand.
  core::RingProblem base{net::VirtualRing({3.0, 1.0, 1.0, 2.0, 1.0, 1.0}),
                         /*copies=*/1.0,
                         {0.30, 0.05, 0.20, 0.05, 0.25, 0.15},
                         std::vector<double>(6, 1.8),
                         /*k=*/1.0,
                         queueing::DelayModel::mm1(0.95),
                         /*max_per_node=*/0.0};

  for (const double storage : {0.02, 0.2, 1.0}) {
    core::CopyCountOptions options;
    options.storage_cost_per_copy = storage;
    options.inner.alpha = 0.05;
    options.inner.decay_interval = 25;
    options.inner.max_iterations = 1500;

    const core::CopyCountResult result =
        core::optimal_copy_count(base, options);

    std::cout << "-- storage cost per copy: " << storage << " --\n";
    util::Table table({"m", "access cost", "storage cost", "total",
                       "best?"},
                      4);
    for (const core::CopyCountEntry& entry : result.sweep) {
      table.add_row({static_cast<long long>(entry.copies),
                     entry.access_cost, entry.storage_cost,
                     entry.total_cost,
                     std::string(entry.copies == result.best_copies ? "<=="
                                                                    : "")});
    }
    std::cout << bench::render(table) << '\n';
  }
  std::cout << "Cheap storage pushes m* toward full replication; expensive\n"
               "storage collapses it to a single fragmented copy — the knee\n"
               "moves exactly as Section 8.2 anticipates.\n";
  return 0;
}
