// Experiment A5: communication requirements of the decentralized protocol.
// Messages and payload per iteration for the broadcast and central-agent
// schemes (Section 5.1) and the single- vs multi-copy payload growth
// (Section 7.3), plus an end-to-end count for the Figure 3 run.
#include <iostream>

#include "bench_common.hpp"
#include "core/single_file.hpp"
#include "net/generators.hpp"
#include "sim/protocol_sim.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  fap::bench::init(argc, argv);
  using namespace fap;
  bench::print_header("Protocol A5",
                      "message and payload accounting per iteration");

  util::Table table({"N", "bcast p2p msgs", "bcast LAN msgs",
                     "central p2p msgs", "central LAN msgs",
                     "bcast payload (single)", "bcast payload (multi)",
                     "central payload (single)", "central payload (multi)"},
                    0);
  for (const std::size_t n : {4u, 8u, 16u, 32u, 64u}) {
    sim::ProtocolConfig broadcast;
    broadcast.scheme = sim::AggregationScheme::kBroadcast;
    sim::ProtocolConfig broadcast_multi = broadcast;
    broadcast_multi.needs_full_allocation = true;
    sim::ProtocolConfig central;
    central.scheme = sim::AggregationScheme::kCentralAgent;
    sim::ProtocolConfig central_multi = central;
    central_multi.needs_full_allocation = true;

    const auto b = sim::round_message_cost(n, broadcast);
    const auto bm = sim::round_message_cost(n, broadcast_multi);
    const auto c = sim::round_message_cost(n, central);
    const auto cm = sim::round_message_cost(n, central_multi);
    table.add_row({static_cast<long long>(n),
                   static_cast<long long>(b.point_to_point),
                   static_cast<long long>(b.broadcast_medium),
                   static_cast<long long>(c.point_to_point),
                   static_cast<long long>(c.broadcast_medium),
                   static_cast<long long>(b.payload_doubles),
                   static_cast<long long>(bm.payload_doubles),
                   static_cast<long long>(c.payload_doubles),
                   static_cast<long long>(cm.payload_doubles)});
  }
  std::cout << bench::render(table)
            << "(on a broadcast medium both schemes cost N transmissions "
               "per iteration — the paper's Section 5.1 observation)\n\n";

  // End-to-end: total messages for the Figure 3 headline run, both schemes.
  const core::SingleFileModel model(core::make_paper_ring_problem());
  util::Table run_table({"scheme", "rounds", "p2p msgs", "LAN msgs",
                         "payload doubles", "final cost"},
                        4);
  for (const auto scheme : {sim::AggregationScheme::kBroadcast,
                            sim::AggregationScheme::kCentralAgent}) {
    sim::ProtocolConfig config;
    config.scheme = scheme;
    config.algorithm.alpha = 0.3;
    config.algorithm.epsilon = 1e-3;
    const sim::ProtocolResult result =
        sim::run_protocol(model, {0.8, 0.1, 0.1, 0.0}, config);
    run_table.add_row(
        {std::string(scheme == sim::AggregationScheme::kBroadcast
                         ? "broadcast"
                         : "central agent"),
         static_cast<long long>(result.rounds),
         static_cast<long long>(result.point_to_point_messages),
         static_cast<long long>(result.broadcast_medium_messages),
         static_cast<long long>(result.payload_doubles), result.cost});
  }
  std::cout << bench::render(run_table);
  return 0;
}
