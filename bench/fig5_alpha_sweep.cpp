// Figure 5: how the choice of α affects convergence time. Iterations to
// converge (ε = 0.001) on the paper's four-node ring as α is swept.
//
// Paper: convergence time blows up as α shrinks, while "there is a
// relatively large range of α values which result in nearly optimal
// convergence speeds".
#include <iostream>

#include "bench_common.hpp"
#include "core/allocator.hpp"
#include "core/single_file.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  fap::bench::init(argc, argv);
  using namespace fap;
  bench::print_header("Figure 5", "iterations to converge vs alpha");

  const core::SingleFileModel model(core::make_paper_ring_problem());
  const std::vector<double> start{0.8, 0.1, 0.1, 0.0};

  util::Table table({"alpha", "iterations", "converged", "final cost"}, 4);
  std::vector<double> iteration_series;
  std::size_t best_iterations = static_cast<std::size_t>(-1);
  double best_alpha = 0.0;
  for (double alpha = 0.02; alpha <= 0.90001; alpha += 0.02) {
    core::AllocatorOptions options;
    options.alpha = alpha;
    options.epsilon = 1e-3;
    options.max_iterations = 20000;
    const core::ResourceDirectedAllocator allocator(model, options);
    const core::AllocationResult result = allocator.run(start);
    table.add_row({alpha, static_cast<long long>(result.iterations),
                   static_cast<long long>(result.converged ? 1 : 0),
                   result.cost});
    iteration_series.push_back(static_cast<double>(result.iterations));
    if (result.converged && result.iterations < best_iterations) {
      best_iterations = result.iterations;
      best_alpha = alpha;
    }
  }
  std::cout << bench::render(table) << '\n';
  std::cout << util::ascii_chart(iteration_series, 45, 10,
                                 "iterations (x: alpha 0.02..0.90)")
            << '\n';
  std::cout << "fastest alpha in sweep: " << best_alpha << " ("
            << best_iterations << " iterations)\n";

  // The plateau observation: count how many α values converge within 2x of
  // the best.
  std::size_t plateau = 0;
  for (const double iterations : iteration_series) {
    if (iterations <= 2.0 * static_cast<double>(best_iterations)) {
      ++plateau;
    }
  }
  std::cout << "alphas within 2x of fastest: " << plateau << " of "
            << iteration_series.size() << " (the paper's wide plateau)\n";
  return 0;
}
