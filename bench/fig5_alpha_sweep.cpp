// Figure 5: how the choice of α affects convergence time. Iterations to
// converge (ε = 0.001) on the paper's four-node ring as α is swept.
//
// Paper: convergence time blows up as α shrinks, while "there is a
// relatively large range of α values which result in nearly optimal
// convergence speeds".
//
// The 45 α points are independent allocator runs on the same model, so
// they go through runtime::batch_sweep + core::BatchAllocator: the whole
// sweep steps in SoA lockstep (bit-identical to the serial allocator),
// `--jobs N` distributes whole batches, and each task's model is built
// through a shared net::CostMatrixCache — 1 APSP miss, 44 hits (visible
// under --metrics as cost_cache_hit/cost_cache_miss).
#include <iostream>

#include "bench_common.hpp"
#include "core/batch_allocator.hpp"
#include "core/single_file.hpp"
#include "net/cost_cache.hpp"
#include "runtime/sweep.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  fap::bench::init(argc, argv);
  using namespace fap;
  bench::print_header("Figure 5", "iterations to converge vs alpha");

  const std::vector<double> start{0.8, 0.1, 0.1, 0.0};
  // The historical accumulation loop, kept verbatim so the α values (and
  // therefore the table) stay bit-identical to the serial versions.
  std::vector<double> alphas;
  for (double alpha = 0.02; alpha <= 0.90001; alpha += 0.02) {
    alphas.push_back(alpha);
  }

  struct Submission {
    core::SingleFileModel model;
    core::AllocatorOptions options;
  };
  net::CostMatrixCache cache;
  const std::vector<core::BatchRunResult> results = runtime::batch_sweep(
      alphas.size(), core::BatchAllocator::kDefaultWidth,
      bench::sweep_options("fig5_alpha_sweep"),
      [&](std::size_t i, std::uint64_t /*seed*/) {
        core::AllocatorOptions options;
        options.alpha = alphas[i];
        options.epsilon = 1e-3;
        options.max_iterations = 20000;
        return Submission{
            core::SingleFileModel(core::make_paper_ring_problem(cache)),
            options};
      },
      [&](std::size_t /*first*/, std::vector<Submission> items) {
        core::BatchAllocator batch;
        for (const Submission& item : items) {
          batch.submit(item.model, item.options, start);
        }
        return batch.run_all();
      });

  util::Table table({"alpha", "iterations", "converged", "final cost"}, 4);
  std::vector<double> iteration_series;
  std::size_t best_iterations = static_cast<std::size_t>(-1);
  double best_alpha = 0.0;
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    const core::BatchRunResult& result = results[i];
    table.add_row({alphas[i], static_cast<long long>(result.iterations),
                   static_cast<long long>(result.converged ? 1 : 0),
                   result.cost});
    iteration_series.push_back(static_cast<double>(result.iterations));
    if (result.converged && result.iterations < best_iterations) {
      best_iterations = result.iterations;
      best_alpha = alphas[i];
    }
  }
  std::cout << bench::render(table) << '\n';
  std::cout << util::ascii_chart(iteration_series, 45, 10,
                                 "iterations (x: alpha 0.02..0.90)")
            << '\n';
  std::cout << "fastest alpha in sweep: " << best_alpha << " ("
            << best_iterations << " iterations)\n";

  // The plateau observation: count how many α values converge within 2x of
  // the best.
  std::size_t plateau = 0;
  for (const double iterations : iteration_series) {
    if (iterations <= 2.0 * static_cast<double>(best_iterations)) {
      ++plateau;
    }
  }
  std::cout << "alphas within 2x of fastest: " << plateau << " of "
            << iteration_series.size() << " (the paper's wide plateau)\n";
  return 0;
}
