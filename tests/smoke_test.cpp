// End-to-end smoke test: the paper's headline experiment in one breath.
// Four-node ring, μ = 1.5, k = 1, λ = 1, ε = 0.001, start (0.8,0.1,0.1,0.0)
// — the algorithm must converge to the uniform allocation (0.25, ...).
#include <gtest/gtest.h>

#include "fap.hpp"

namespace {

TEST(Smoke, PaperHeadlineExperimentConverges) {
  const fap::core::SingleFileModel model(fap::core::make_paper_ring_problem());

  fap::core::AllocatorOptions options;
  options.alpha = 0.3;
  options.epsilon = 1e-3;
  const fap::core::ResourceDirectedAllocator allocator(model, options);

  const fap::core::AllocationResult result =
      allocator.run({0.8, 0.1, 0.1, 0.0});

  ASSERT_TRUE(result.converged);
  for (const double xi : result.x) {
    EXPECT_NEAR(xi, 0.25, 5e-3);
  }
  EXPECT_LT(result.cost, model.cost({0.8, 0.1, 0.1, 0.0}));
}

}  // namespace
