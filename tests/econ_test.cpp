// Tests for the generic microeconomic mechanisms of Section 2: Heal's
// resource-directed planner and Walrasian tâtonnement, including the
// comparative properties the paper lists.
#include <gtest/gtest.h>

#include <cmath>

#include "econ/price_directed.hpp"
#include "econ/resource_directed.hpp"
#include "econ/utility.hpp"
#include "util/contracts.hpp"
#include "util/numeric.hpp"

namespace {

namespace econ = fap::econ;

TEST(Utilities, DerivativesMatchNumeric) {
  const std::vector<econ::ConcaveUtility> utilities{
      econ::log_utility(2.0, 0.1), econ::quadratic_utility(3.0, 1.5),
      econ::power_utility(1.0, 0.5)};
  for (const econ::ConcaveUtility& u : utilities) {
    for (const double x : {0.2, 0.7, 1.5}) {
      const auto f = [&u](const std::vector<double>& v) {
        return u.value(v[0]);
      };
      EXPECT_NEAR(u.derivative(x), fap::util::numeric_gradient(f, {x})[0],
                  1e-5);
      EXPECT_NEAR(u.second_derivative(x),
                  fap::util::numeric_second_derivative(f, {x}, 0), 1e-3);
      EXPECT_LE(u.second_derivative(x), 0.0);  // concavity
    }
  }
}

TEST(Utilities, RejectBadParameters) {
  EXPECT_THROW(econ::log_utility(0.0), fap::util::PreconditionError);
  EXPECT_THROW(econ::quadratic_utility(1.0, 0.0),
               fap::util::PreconditionError);
  EXPECT_THROW(econ::power_utility(1.0, 1.5), fap::util::PreconditionError);
}

// Weighted log utilities have the closed-form optimum x_i + s ∝ w_i.
std::vector<econ::ConcaveUtility> log_agents(const std::vector<double>& w,
                                             double shift) {
  std::vector<econ::ConcaveUtility> agents;
  for (const double weight : w) {
    agents.push_back(econ::log_utility(weight, shift));
  }
  return agents;
}

TEST(ResourceDirected, ConvergesToClosedFormLogOptimum) {
  const std::vector<double> weights{1.0, 2.0, 3.0, 4.0};
  const double shift = 0.05;
  const double total = 1.0;
  const auto agents = log_agents(weights, shift);

  econ::PlannerOptions options;
  options.alpha = 0.01;
  options.epsilon = 1e-9;
  options.max_iterations = 500000;
  const econ::PlannerResult result = econ::resource_directed_plan(
      agents, {0.25, 0.25, 0.25, 0.25}, options);
  ASSERT_TRUE(result.converged);

  // KKT: w_i / (x_i + s) equal for all i => x_i = w_i (total + 4s)/Σw - s.
  const double wsum = 10.0;
  for (std::size_t i = 0; i < 4; ++i) {
    const double expected =
        weights[i] * (total + 4.0 * shift) / wsum - shift;
    EXPECT_NEAR(result.x[i], expected, 1e-5) << "agent " << i;
  }
}

TEST(ResourceDirected, FeasibleAndMonotoneEveryIteration) {
  const auto agents = log_agents({1.0, 5.0, 2.0}, 0.1);
  econ::PlannerOptions options;
  options.alpha = 0.02;
  options.epsilon = 1e-7;
  options.record_trace = true;
  options.max_iterations = 100000;
  const econ::PlannerResult result =
      econ::resource_directed_plan(agents, {0.9, 0.05, 0.05}, options);
  ASSERT_TRUE(result.converged);
  for (std::size_t t = 0; t < result.trace.size(); ++t) {
    EXPECT_NEAR(fap::util::sum(result.trace[t].x), 1.0, 1e-9);
    for (const double xi : result.trace[t].x) {
      EXPECT_GE(xi, 0.0);
    }
    if (t > 0) {
      EXPECT_GE(result.trace[t].social_utility,
                result.trace[t - 1].social_utility - 1e-12);
    }
  }
}

TEST(ResourceDirected, BoundaryAgentsReceiveNothing) {
  // One agent with negligible weight should end at (essentially) zero
  // under a quadratic utility with a low intercept.
  std::vector<econ::ConcaveUtility> agents{
      econ::quadratic_utility(10.0, 1.0),
      econ::quadratic_utility(10.0, 1.0),
      econ::quadratic_utility(0.01, 1.0)};  // marginal utility ~0 at x=0
  econ::PlannerOptions options;
  options.alpha = 0.01;
  options.epsilon = 1e-8;
  options.max_iterations = 200000;
  const econ::PlannerResult result =
      econ::resource_directed_plan(agents, {0.3, 0.3, 0.4}, options);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.x[2], 0.0, 1e-6);
  EXPECT_NEAR(result.x[0], 0.5, 1e-5);
}

TEST(AgentDemand, DecreasingInPriceAndClamped) {
  const econ::ConcaveUtility agent = econ::quadratic_utility(4.0, 2.0);
  // u'(x) = 4 - 2x = p  =>  x = (4 - p)/2.
  EXPECT_NEAR(econ::agent_demand(agent, 2.0, 10.0), 1.0, 1e-9);
  EXPECT_NEAR(econ::agent_demand(agent, 0.5, 10.0), 1.75, 1e-9);
  EXPECT_DOUBLE_EQ(econ::agent_demand(agent, 5.0, 10.0), 0.0);  // p > u'(0)
  EXPECT_DOUBLE_EQ(econ::agent_demand(agent, 0.5, 1.0), 1.0);   // cap binds
  double previous = 1e300;
  for (double p = 0.1; p < 4.0; p += 0.3) {
    const double demand = econ::agent_demand(agent, p, 10.0);
    EXPECT_LE(demand, previous);
    previous = demand;
  }
}

TEST(Tatonnement, ConvergesToMarketClearing) {
  const auto agents = log_agents({1.0, 2.0, 3.0}, 0.1);
  econ::TatonnementOptions options;
  options.gamma = 0.5;
  options.initial_price = 5.0;
  options.demand_cap = 1.0;
  options.tol = 1e-8;
  options.record_trace = true;
  const econ::TatonnementResult result =
      econ::tatonnement(agents, 1.0, options);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(fap::util::sum(result.x), 1.0, 1e-6);
  // Clearing price equals each active agent's marginal utility.
  for (std::size_t i = 0; i < 3; ++i) {
    if (result.x[i] > 1e-6) {
      EXPECT_NEAR(agents[i].derivative(result.x[i]), result.price, 1e-5);
    }
  }
}

TEST(Tatonnement, IntermediateDemandsAreInfeasible) {
  // The drawback the paper highlights: before convergence Σ demand ≠ total.
  const auto agents = log_agents({1.0, 2.0, 3.0}, 0.1);
  econ::TatonnementOptions options;
  options.gamma = 0.2;
  options.initial_price = 20.0;  // far from clearing
  options.record_trace = true;
  options.tol = 1e-10;
  const econ::TatonnementResult result =
      econ::tatonnement(agents, 1.0, options);
  ASSERT_GT(result.trace.size(), 2u);
  bool saw_infeasible = false;
  for (std::size_t t = 0; t + 1 < result.trace.size(); ++t) {
    if (std::fabs(result.trace[t].excess_demand) > 1e-3) {
      saw_infeasible = true;
    }
  }
  EXPECT_TRUE(saw_infeasible);
}

TEST(Tatonnement, StopsAtIterationCapWhenGammaTooLarge) {
  const auto agents = log_agents({1.0, 1.0}, 1e-3);
  econ::TatonnementOptions options;
  options.gamma = 1e6;  // violently overshooting price updates
  options.max_iterations = 50;
  const econ::TatonnementResult result =
      econ::tatonnement(agents, 1.0, options);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 50u);
}

TEST(WalrasianEquilibrium, MatchesResourceDirectedOptimum) {
  // For a separable concave social objective the market equilibrium and
  // the planner's optimum coincide.
  const std::vector<double> weights{1.0, 2.0, 5.0};
  const auto agents = log_agents(weights, 0.1);
  const econ::Equilibrium eq =
      econ::walrasian_equilibrium(agents, 1.0, 1.0);
  econ::PlannerOptions options;
  options.alpha = 0.01;
  options.epsilon = 1e-9;
  options.max_iterations = 500000;
  const econ::PlannerResult plan = econ::resource_directed_plan(
      agents, {0.34, 0.33, 0.33}, options);
  ASSERT_TRUE(plan.converged);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(eq.x[i], plan.x[i], 1e-4) << "agent " << i;
  }
  EXPECT_NEAR(fap::util::sum(eq.x), 1.0, 1e-6);
}

TEST(SocialUtility, SumsAgentValues) {
  const auto agents = log_agents({1.0, 1.0}, 1.0);
  EXPECT_NEAR(econ::social_utility(agents, {0.0, 0.0}), 0.0, 1e-12);
  EXPECT_THROW(econ::social_utility(agents, {0.0}),
               fap::util::PreconditionError);
}

}  // namespace
