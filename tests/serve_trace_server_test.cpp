// Tests for trace-driven serving (serve/trace_server.hpp): generator
// determinism and distribution mechanics, mode equivalences, migration
// completion, and the headline acceptance property — under popularity
// drift, online reallocation beats both the static placement and an LRU
// cache baseline on mean and tail delay.
#include "serve/trace_server.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "net/generators.hpp"
#include "util/contracts.hpp"

namespace {

using fap::serve::FlashCrowd;
using fap::serve::ServeMode;
using fap::serve::TraceGenerator;
using fap::serve::TraceRequest;
using fap::serve::TraceServeOptions;
using fap::serve::TraceServeResult;
using fap::serve::TraceServer;
using fap::serve::TraceWorkload;

TraceWorkload small_workload() {
  TraceWorkload workload;
  workload.records = 2000;
  workload.total_rate = 2.4;  // 60% of 4 nodes at mu = 1
  workload.zipf_s = 0.9;
  workload.epoch_requests = 4096;
  workload.seed = 42;
  return workload;
}

TEST(TraceGenerator, EpochsAreSizedAndStrictlyOrdered) {
  TraceGenerator generator(small_workload(), 4);
  double last = 0.0;
  std::size_t total = 0;
  for (int epoch = 0; epoch < 3; ++epoch) {
    const std::vector<TraceRequest>& batch = generator.next_epoch(100000);
    ASSERT_EQ(batch.size(), 4096u);
    for (const TraceRequest& request : batch) {
      EXPECT_GT(request.time, last);
      last = request.time;
      EXPECT_LT(request.origin, 4u);
      EXPECT_LT(request.record, 2000u);
      ++total;
    }
  }
  // A partial epoch when fewer requests remain.
  EXPECT_EQ(generator.next_epoch(10).size(), 10u);
  EXPECT_EQ(total, 3u * 4096u);
}

TEST(TraceGenerator, SameSeedSameTrace) {
  TraceGenerator a(small_workload(), 4);
  TraceGenerator b(small_workload(), 4);
  for (int epoch = 0; epoch < 2; ++epoch) {
    const std::vector<TraceRequest>& ba = a.next_epoch(4096);
    const std::vector<TraceRequest>& bb = b.next_epoch(4096);
    ASSERT_EQ(ba.size(), bb.size());
    for (std::size_t i = 0; i < ba.size(); ++i) {
      ASSERT_EQ(ba[i].time, bb[i].time);
      ASSERT_EQ(ba[i].origin, bb[i].origin);
      ASSERT_EQ(ba[i].record, bb[i].record);
      ASSERT_EQ(ba[i].update, bb[i].update);
    }
  }
}

TEST(TraceGenerator, PopularityIsNormalizedAndDriftRotatesIt) {
  TraceWorkload workload = small_workload();
  workload.drift_rate = 1.0;  // one record rank per unit time
  TraceGenerator generator(workload, 4);
  const std::vector<double> p0 = generator.popularity();
  double sum = 0.0;
  for (const double p : p0) {
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Record 0 is the rank-0 (hottest) record at t = 0.
  EXPECT_GT(p0[0], p0[1]);

  // Advance far enough that the rank shift is large, then check the
  // rotation: record r now carries the base mass of rank (r + shift).
  // Popularity is refreshed at each epoch's START, so the shift in force
  // after the last call derives from now() BEFORE that call.
  for (int epoch = 0; epoch < 7; ++epoch) {
    generator.next_epoch(4096);
  }
  const double refresh_time = generator.now();
  generator.next_epoch(4096);
  const std::size_t shift =
      static_cast<std::size_t>(workload.drift_rate * refresh_time) % 2000;
  ASSERT_GT(shift, 100u);
  const std::vector<double>& pt = generator.popularity();
  EXPECT_DOUBLE_EQ(pt[(2000 - shift) % 2000], p0[0]);
  EXPECT_LT(pt[0], p0[0]);  // record 0 demoted by `shift` ranks
}

TEST(TraceGenerator, FlashCrowdBoostsItsRecordsWhileActive) {
  TraceWorkload workload = small_workload();
  FlashCrowd crowd;
  crowd.start = 0.0;
  crowd.end = 1e18;  // active from the first epoch on
  crowd.first_record = 1500;
  crowd.last_record = 1600;
  crowd.boost = 50.0;
  workload.flash_crowds.push_back(crowd);
  TraceGenerator boosted(workload, 4);
  TraceGenerator plain(small_workload(), 4);
  boosted.next_epoch(1);
  plain.next_epoch(1);
  const std::vector<double>& pb = boosted.popularity();
  const std::vector<double>& pp = plain.popularity();
  // Boosted records gain mass, everything else loses it (renormalization).
  EXPECT_GT(pb[1500], pp[1500] * 10.0);
  EXPECT_LT(pb[0], pp[0]);
  double sum = 0.0;
  for (const double p : pb) {
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(TraceGenerator, RejectsBadWorkloads) {
  TraceWorkload bad = small_workload();
  bad.total_rate = 0.0;
  EXPECT_THROW(TraceGenerator(bad, 4), fap::util::PreconditionError);
  bad = small_workload();
  bad.update_fraction = 1.5;
  EXPECT_THROW(TraceGenerator(bad, 4), fap::util::PreconditionError);
  bad = small_workload();
  bad.origin_mix = {0.5, 0.5};  // 2 weights, 4 nodes
  EXPECT_THROW(TraceGenerator(bad, 4), fap::util::PreconditionError);
  bad = small_workload();
  bad.flash_crowds.push_back({0.0, 1.0, 1900, 2100, 10.0});
  EXPECT_THROW(TraceGenerator(bad, 4), fap::util::PreconditionError);
}

TEST(TraceServer, ServeIsDeterministic) {
  const fap::net::Topology ring = fap::net::make_ring(4);
  TraceWorkload workload = small_workload();
  workload.drift_rate = 0.02;
  workload.update_fraction = 0.15;
  TraceServeOptions options;
  options.mode = ServeMode::kOnline;
  options.estimation_epochs = 2;
  options.hysteresis = 0.25;
  const TraceServeResult a = TraceServer(ring, workload, options).serve(40000);
  const TraceServeResult b = TraceServer(ring, workload, options).serve(40000);
  ASSERT_EQ(a.requests_injected, 40000u);
  ASSERT_EQ(a.completions, b.completions);
  ASSERT_EQ(a.delay.count(), b.delay.count());
  ASSERT_EQ(a.delay.mean(), b.delay.mean());
  ASSERT_EQ(a.delay_hist.quantile(0.99), b.delay_hist.quantile(0.99));
  ASSERT_EQ(a.comm.mean(), b.comm.mean());
  ASSERT_EQ(a.reallocations, b.reallocations);
  ASSERT_EQ(a.migrated_records, b.migrated_records);
  ASSERT_EQ(a.stalled_requests, b.stalled_requests);
  ASSERT_EQ(a.span, b.span);
}

// Without drift the hysteresis test never fires (the threshold sits above
// the node-share sampling-noise floor), so online mode routes every
// request exactly like static mode: same completions, same histograms.
// (Means are merged from per-window accumulators in online mode, so they
// agree to rounding, not bitwise.)
TEST(TraceServer, WithoutDriftOnlineEqualsStatic) {
  const fap::net::Topology ring = fap::net::make_ring(4);
  const TraceWorkload workload = small_workload();  // drift_rate = 0
  TraceServeOptions options;
  options.estimation_epochs = 2;
  // Per-node access shares over an 8192-request window have sampling
  // noise of ~0.01 TV; keep the threshold well above it so noise alone
  // cannot trigger a re-solve.
  options.hysteresis = 0.05;
  options.mode = ServeMode::kStatic;
  const fap::net::Topology ring2 = fap::net::make_ring(4);
  TraceServer static_server(ring, workload, options);
  options.mode = ServeMode::kOnline;
  TraceServer online_server(ring2, workload, options);
  const TraceServeResult s = static_server.serve(40000);
  const TraceServeResult o = online_server.serve(40000);
  EXPECT_EQ(o.reallocations, 0u);
  EXPECT_EQ(o.migrated_records, 0u);
  EXPECT_EQ(o.stalled_requests, 0u);
  // Completion-time window attribution: nothing is dropped in either
  // mode, and the identically-routed runs count identical completions.
  ASSERT_EQ(s.completions, s.requests_injected);
  ASSERT_EQ(o.completions, s.completions);
  ASSERT_EQ(o.delay.count(), s.delay.count());
  // Histogram quantiles are computed from integer bucket counts, so they
  // match bitwise; the means are merged from per-window accumulators in
  // online mode and agree only to accumulation rounding.
  ASSERT_EQ(o.delay_hist.quantile(0.5), s.delay_hist.quantile(0.5));
  ASSERT_EQ(o.delay_hist.quantile(0.999), s.delay_hist.quantile(0.999));
  EXPECT_NEAR(o.delay.mean(), s.delay.mean(), 1e-9 * s.delay.mean());
  EXPECT_NEAR(o.comm.mean(), s.comm.mean(), 1e-9 * s.comm.mean());
  EXPECT_EQ(online_server.current_layout().node_of(0),
            online_server.initial_layout().node_of(0));
}

// The headline acceptance property: under sustained popularity drift the
// online reallocation mode beats BOTH the static placement and the LRU
// cache baseline on mean and p99 delay.
TEST(TraceServer, UnderDriftOnlineBeatsStaticAndLruOnMeanAndTail) {
  const fap::net::Topology ring = fap::net::make_ring(4);
  TraceWorkload workload = small_workload();
  // The rank rotation displaces ~17 records (~0.1 TV) per estimation
  // window — fast enough that the t = 0 placement degrades badly over
  // the run's ~500-record total shift, slow enough that per-window
  // re-solves can track it.
  workload.drift_rate = 0.005;
  workload.update_fraction = 0.2;
  TraceServeOptions options;
  options.estimation_epochs = 2;
  options.hysteresis = 0.05;
  options.cooldown_windows = 1;
  options.migration_bandwidth = 2000.0;

  auto run = [&](ServeMode mode) {
    TraceServeOptions o = options;
    o.mode = mode;
    return TraceServer(ring, workload, o).serve(240000);
  };
  const TraceServeResult st = run(ServeMode::kStatic);
  const TraceServeResult on = run(ServeMode::kOnline);
  const TraceServeResult lru = run(ServeMode::kLru);

  // No mode ever drops a request from its statistics.
  EXPECT_EQ(st.completions, st.requests_injected);
  EXPECT_EQ(on.completions, on.requests_injected);
  EXPECT_EQ(lru.completions, lru.requests_injected);

  EXPECT_GE(on.reallocations, 2u);
  EXPECT_GT(on.migrated_records, 0u);
  EXPECT_GT(lru.cache_hits, 0u);
  EXPECT_GT(lru.cache_invalidations, 0u);

  EXPECT_LT(on.delay.mean(), st.delay.mean());
  EXPECT_LT(on.delay.mean(), lru.delay.mean());
  EXPECT_LT(on.delay_hist.quantile(0.99), st.delay_hist.quantile(0.99));
  EXPECT_LT(on.delay_hist.quantile(0.99), lru.delay_hist.quantile(0.99));
}

// A forced quick migration: reallocation moves the deployed layout, and
// requests landing inside the in-flight wave are stalled and counted.
TEST(TraceServer, MigrationMovesTheLayoutAndAccountsStalls) {
  const fap::net::Topology ring = fap::net::make_ring(4);
  TraceWorkload workload = small_workload();
  workload.drift_rate = 0.1;  // fast drift forces early re-solves
  TraceServeOptions options;
  options.mode = ServeMode::kOnline;
  options.estimation_epochs = 2;
  options.hysteresis = 0.05;
  options.cooldown_windows = 0;
  // Slow migration: waves stay in flight long enough for live requests
  // to land inside them.
  options.migration_bandwidth = 10.0;
  TraceServer server(ring, workload, options);
  const TraceServeResult result = server.serve(120000);
  ASSERT_GE(result.reallocations, 1u);
  EXPECT_GT(result.migrated_records, 0u);
  EXPECT_GE(result.migration_waves, 1u);
  EXPECT_GT(result.stalled_requests, 0u);
  // The deployed layout actually moved off the initial one.
  const fap::fs::FragmentMap& initial = server.initial_layout();
  const fap::fs::FragmentMap& current = server.current_layout();
  ASSERT_EQ(current.record_count(), initial.record_count());
  bool moved = false;
  for (std::size_t r = 0; r < current.record_count() && !moved; ++r) {
    moved = current.node_of(r) != initial.node_of(r);
  }
  EXPECT_TRUE(moved);
}

// Every injected request is eventually served: the passive modes keep a
// single stats window for the whole run, so completions match injections
// EXACTLY and nothing is ever counted as failed.
TEST(TraceServer, AccountingIsConsistent) {
  const fap::net::Topology ring = fap::net::make_ring(4);
  TraceServeOptions options;
  options.mode = ServeMode::kLru;
  options.estimation_epochs = 2;
  TraceServer server(ring, small_workload(), options);
  const TraceServeResult result = server.serve(40000);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(result.completions, result.requests_injected);
  EXPECT_EQ(result.delay.count(), result.completions);
  EXPECT_GT(result.hit_rate(), 0.0);
  EXPECT_GT(result.external_traffic(), 0.0);
  // Cache bookkeeping only counts remote-home reads.
  EXPECT_GT(result.cache_hits + result.cache_misses, 0u);
}

}  // namespace
